//! Umbrella crate for the BayesFT reproduction workspace; see member crates.
