//! Minimal offline stub of `serde`.
//!
//! Re-exports the no-op derive macros so `#[derive(Serialize, Deserialize)]`
//! attributes compile, plus empty marker traits under the same names (the
//! derive and the trait live in different namespaces, exactly as upstream).
//! No actual serialization machinery exists; the workspace's JSON output is
//! hand-built on the `serde_json` stub's `Value` tree.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; never implemented by the no-op
/// derive and never required by workspace code.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`; see [`Serialize`].
pub trait Deserialize<'de> {}
