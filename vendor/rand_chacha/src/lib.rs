//! Minimal offline stub of `rand_chacha`: [`ChaCha8Rng`] is a genuine
//! 8-round ChaCha keystream generator (D. J. Bernstein's construction),
//! seeded through [`rand::SeedableRng`].
//!
//! Streams are reproducible for a given seed within this workspace but are
//! not bit-compatible with the upstream crate (word-ordering details of
//! the upstream buffer differ); nothing here depends on cross-crate
//! stream equality.

use rand::{RngCore, SeedableRng};

const ROUNDS: usize = 8;

/// An 8-round ChaCha random number generator.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Key + constant + counter/nonce state (the 4x4 ChaCha word matrix).
    state: [u32; 16],
    /// Current output block.
    block: [u32; 16],
    /// Next unread word index in `block`; 16 means "exhausted".
    cursor: usize,
}

#[inline(always)]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..ROUNDS / 2 {
            // Column round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (&w, &s)) in self
            .block
            .iter_mut()
            .zip(working.iter().zip(self.state.iter()))
        {
            *out = w.wrapping_add(s);
        }
        // 64-bit block counter in words 12/13.
        let counter = (self.state[12] as u64 | ((self.state[13] as u64) << 32)).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.cursor = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        // "expand 32-byte k" constants.
        let mut state = [0u32; 16];
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            state[4 + i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        // Words 12..16 (counter + nonce) start at zero.
        ChaCha8Rng {
            state,
            block: [0; 16],
            cursor: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.cursor >= 16 {
            self.refill();
        }
        let word = self.block[self.cursor];
        self.cursor += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(same < 4, "streams should be essentially disjoint");
    }

    #[test]
    fn clone_preserves_position() {
        let mut a = ChaCha8Rng::seed_from_u64(9);
        let _ = a.next_u32(); // advance mid-block
        let mut b = a.clone();
        for _ in 0..40 {
            assert_eq!(a.next_u32(), b.next_u32());
        }
    }

    #[test]
    fn unit_floats_look_uniform() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
