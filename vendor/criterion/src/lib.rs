//! Minimal offline stub of `criterion`.
//!
//! Implements the group/bench/iter surface the workspace's benches use and
//! prints mean wall-clock time per iteration. There is no statistical
//! analysis, HTML report, or baseline comparison — this is a smoke-level
//! timing harness so `cargo bench` works offline.
//!
//! Two additions over the bare upstream surface:
//!
//! * when the `CRITERION_JSON` environment variable names a path,
//!   [`write_json_report`] (invoked automatically by `criterion_main!`)
//!   dumps every measurement as a JSON array — CI uploads this as the
//!   bench artifact;
//! * [`record_metric`] lets a bench report non-timing gauges (e.g.
//!   bytes allocated per iteration) into the same report.

use std::fmt;
use std::hint::black_box as std_black_box;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Every measurement recorded this run: `(name, value, unit)`.
static RESULTS: Mutex<Vec<(String, f64, String)>> = Mutex::new(Vec::new());

fn push_result(name: &str, value: f64, unit: &str) {
    RESULTS
        .lock()
        .expect("bench result registry poisoned")
        .push((name.to_string(), value, unit.to_string()));
}

/// Records a custom gauge (e.g. `bytes/iter`) into the run report next to
/// the timing measurements.
pub fn record_metric(name: impl fmt::Display, value: f64, unit: &str) {
    println!("{:<48} {value:>12.3} {unit}", name.to_string());
    push_result(&name.to_string(), value, unit);
}

/// Writes all measurements recorded so far to the path named by the
/// `CRITERION_JSON` environment variable, if set. `criterion_main!` calls
/// this after the last group; calling it again is harmless (the file is
/// rewritten with the cumulative results).
pub fn write_json_report() {
    let Ok(path) = std::env::var("CRITERION_JSON") else {
        return;
    };
    let results = RESULTS.lock().expect("bench result registry poisoned");
    let mut out = String::from("[\n");
    for (i, (name, value, unit)) in results.iter().enumerate() {
        let sep = if i + 1 == results.len() { "" } else { "," };
        // Names come from bench ids (no quotes/backslashes in practice),
        // but escape defensively so the report is always valid JSON.
        let escaped: String = name
            .chars()
            .flat_map(|c| match c {
                '"' | '\\' => vec!['\\', c],
                c if (c as u32) < 0x20 => "\u{FFFD}".chars().collect(),
                c => vec![c],
            })
            .collect();
        out.push_str(&format!(
            "  {{\"name\": \"{escaped}\", \"value\": {value}, \"unit\": \"{unit}\"}}{sep}\n"
        ));
    }
    out.push_str("]\n");
    if let Err(e) = std::fs::write(&path, out) {
        eprintln!("failed to write criterion JSON report to {path}: {e}");
    }
}

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// A benchmark identifier: `function_id/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a displayed parameter.
    pub fn new(function_id: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_id.into(), parameter),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to the closure under measurement; runs and times the body.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it enough times to smooth noise.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up.
        for _ in 0..2 {
            std_black_box(routine());
        }
        let start = Instant::now();
        for _ in 0..self.iterations {
            std_black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    fn per_iter(&self) -> Duration {
        self.elapsed / self.iterations as u32
    }
}

fn report(name: &str, bencher: &Bencher) {
    println!(
        "{name:<48} {:>12.3?}/iter ({} iters)",
        bencher.per_iter(),
        bencher.iterations
    );
    push_result(name, bencher.per_iter().as_nanos() as f64, "ns/iter");
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed iterations each bench runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Benches `routine` under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        mut routine: F,
    ) -> &mut Self {
        let mut bencher = Bencher {
            iterations: self.sample_size,
            elapsed: Duration::ZERO,
        };
        routine(&mut bencher);
        report(&format!("{}/{}", self.name, id), &bencher);
        self
    }

    /// Benches `routine` with an input value under `id`.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self {
        let mut bencher = Bencher {
            iterations: self.sample_size,
            elapsed: Duration::ZERO,
        };
        routine(&mut bencher, input);
        report(&format!("{}/{}", self.name, id), &bencher);
        self
    }

    /// Ends the group (upstream flushes reports here; we print eagerly).
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _criterion: self,
        }
    }

    /// Benches a standalone function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: &str,
        mut routine: F,
    ) -> &mut Self {
        let mut bencher = Bencher {
            iterations: 10,
            elapsed: Duration::ZERO,
        };
        routine(&mut bencher);
        report(id, &bencher);
        self
    }
}

/// Declares a group-runner function from bench functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` from group-runner functions. Writes the JSON report
/// (see [`write_json_report`]) after the last group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::write_json_report();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("stub");
        group.sample_size(3);
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::new("sum", 8), &8u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    criterion_group!(stub_group, quick_bench);

    #[test]
    fn harness_runs() {
        stub_group();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("fit", 32).to_string(), "fit/32");
    }

    #[test]
    fn json_report_round_trips() {
        record_metric("stub/bytes_gauge", 42.0, "bytes/iter");
        let path = std::env::temp_dir().join("criterion_stub_report_test.json");
        std::env::set_var("CRITERION_JSON", &path);
        write_json_report();
        std::env::remove_var("CRITERION_JSON");
        let text = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        assert!(text.trim_start().starts_with('['));
        assert!(text.trim_end().ends_with(']'));
        assert!(text.contains("\"name\": \"stub/bytes_gauge\""));
        assert!(text.contains("\"unit\": \"bytes/iter\""));
    }
}
