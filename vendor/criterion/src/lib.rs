//! Minimal offline stub of `criterion`.
//!
//! Implements the group/bench/iter surface the workspace's benches use and
//! prints mean wall-clock time per iteration. There is no statistical
//! analysis, HTML report, or baseline comparison — this is a smoke-level
//! timing harness so `cargo bench` works offline.

use std::fmt;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// A benchmark identifier: `function_id/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a displayed parameter.
    pub fn new(function_id: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_id.into(), parameter),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to the closure under measurement; runs and times the body.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it enough times to smooth noise.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up.
        for _ in 0..2 {
            std_black_box(routine());
        }
        let start = Instant::now();
        for _ in 0..self.iterations {
            std_black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    fn per_iter(&self) -> Duration {
        self.elapsed / self.iterations as u32
    }
}

fn report(name: &str, bencher: &Bencher) {
    println!(
        "{name:<48} {:>12.3?}/iter ({} iters)",
        bencher.per_iter(),
        bencher.iterations
    );
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed iterations each bench runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Benches `routine` under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        mut routine: F,
    ) -> &mut Self {
        let mut bencher = Bencher {
            iterations: self.sample_size,
            elapsed: Duration::ZERO,
        };
        routine(&mut bencher);
        report(&format!("{}/{}", self.name, id), &bencher);
        self
    }

    /// Benches `routine` with an input value under `id`.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self {
        let mut bencher = Bencher {
            iterations: self.sample_size,
            elapsed: Duration::ZERO,
        };
        routine(&mut bencher, input);
        report(&format!("{}/{}", self.name, id), &bencher);
        self
    }

    /// Ends the group (upstream flushes reports here; we print eagerly).
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _criterion: self,
        }
    }

    /// Benches a standalone function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: &str,
        mut routine: F,
    ) -> &mut Self {
        let mut bencher = Bencher {
            iterations: 10,
            elapsed: Duration::ZERO,
        };
        routine(&mut bencher);
        report(id, &bencher);
        self
    }
}

/// Declares a group-runner function from bench functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("stub");
        group.sample_size(3);
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::new("sum", 8), &8u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    criterion_group!(stub_group, quick_bench);

    #[test]
    fn harness_runs() {
        stub_group();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("fit", 32).to_string(), "fit/32");
    }
}
