//! No-op `Serialize`/`Deserialize` derives for the offline serde stub.
//!
//! The workspace decorates a handful of config enums/structs with
//! `#[derive(Serialize, Deserialize)]` for forward compatibility but never
//! routes them through serde serialization (JSON output is hand-built via
//! the `serde_json` stub's `Value`). These derives therefore expand to
//! nothing: the attribute compiles, no trait impl is generated.

use proc_macro::TokenStream;

/// Expands to nothing; accepts any input item.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; accepts any input item.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
