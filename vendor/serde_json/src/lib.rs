//! Minimal offline stub of `serde_json`: a [`Value`] tree with compact and
//! pretty printers plus a recursive-descent parser ([`from_str`]). Objects
//! preserve insertion order (like upstream's `preserve_order` feature),
//! which keeps emitted reports byte-stable — the property the workspace's
//! determinism tests rely on.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any finite number (non-finite values print as `null`, as upstream).
    Number(f64),
    /// An unsigned integer, kept exact — `f64` loses precision above
    /// 2^53, which matters for 64-bit RNG seeds.
    UInt(u64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Builds an empty object.
    pub fn object() -> Value {
        Value::Object(Vec::new())
    }

    /// Inserts (or replaces) `key` in an object; panics on non-objects.
    pub fn insert(&mut self, key: impl Into<String>, value: impl Into<Value>) -> &mut Self {
        match self {
            Value::Object(entries) => {
                let key = key.into();
                let value = value.into();
                if let Some(slot) = entries.iter_mut().find(|(k, _)| *k == key) {
                    slot.1 = value;
                } else {
                    entries.push((key, value));
                }
                self
            }
            other => panic!("insert on non-object JSON value: {other:?}"),
        }
    }

    /// Removes (and returns) `key` from an object, preserving the order of
    /// the remaining entries. Returns `None` on non-objects and missing
    /// keys.
    pub fn remove(&mut self, key: &str) -> Option<Value> {
        match self {
            Value::Object(entries) => entries
                .iter()
                .position(|(k, _)| k == key)
                .map(|i| entries.remove(i).1),
            _ => None,
        }
    }

    /// Looks a key up in an object, mutably.
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Value> {
        match self {
            Value::Object(entries) => entries.iter_mut().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Looks a key up in an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number (lossy above 2^53 for
    /// [`Value::UInt`]; use [`Value::as_u64`] for exactness).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            Value::UInt(n) => Some(*n as f64),
            _ => None,
        }
    }

    /// The exact unsigned payload, if this is an unsigned integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(n) => Some(*n),
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The object entries, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    fn write(&self, out: &mut String, indent: Option<usize>, level: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => write_number(out, *n),
            Value::UInt(n) => {
                let _ = write!(out, "{n}");
            }
            Value::String(s) => write_escaped(out, s),
            Value::Array(items) => {
                write_seq(out, indent, level, '[', ']', items.len(), |out, i| {
                    items[i].write(out, indent, level + 1);
                })
            }
            Value::Object(entries) => {
                write_seq(out, indent, level, '{', '}', entries.len(), |out, i| {
                    let (k, v) = &entries[i];
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, level + 1);
                })
            }
        }
    }
}

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 1e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    level: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', width * (level + 1)));
        }
        item(out, i);
    }
    if len > 0 {
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', width * level));
        }
    }
    out.push(close);
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::String(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::String(s)
    }
}

macro_rules! from_number {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(n: $t) -> Value {
                Value::Number(n as f64)
            }
        }
    )*};
}

from_number!(f32, f64, i8, i16, i32, i64, isize);

macro_rules! from_unsigned {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(n: $t) -> Value {
                Value::UInt(n as u64)
            }
        }
    )*};
}

from_unsigned!(u8, u16, u32, u64, usize);

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(items: Vec<T>) -> Value {
        Value::Array(items.into_iter().map(Into::into).collect())
    }
}

/// Serializes a [`Value`] compactly.
pub fn to_string(value: &Value) -> String {
    let mut out = String::new();
    value.write(&mut out, None, 0);
    out
}

/// Serializes a [`Value`] with two-space indentation.
pub fn to_string_pretty(value: &Value) -> String {
    let mut out = String::new();
    value.write(&mut out, Some(2), 0);
    out
}

/// A JSON parse failure: what went wrong and the byte offset it happened at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description of the failure.
    pub message: String,
    /// Byte offset into the input where parsing stopped.
    pub offset: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses a JSON document into a [`Value`].
///
/// Whole non-negative integers up to `u64::MAX` become [`Value::UInt`]
/// (exact — full-width RNG seeds survive a round trip); everything else
/// numeric becomes [`Value::Number`]. Trailing whitespace is allowed,
/// trailing garbage is not.
///
/// # Errors
///
/// Returns [`ParseError`] on malformed input, with the byte offset of the
/// first offending character.
pub fn from_str(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(value)
}

/// Nesting depth cap; malformed deeply-nested input must not blow the stack.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, expected: u8) -> Result<(), ParseError> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", expected as char)))
        }
    }

    fn eat_literal(&mut self, literal: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected '{literal}'")))
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<Value, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.eat_literal("null", Value::Null),
            Some(b't') => self.eat_literal("true", Value::Bool(true)),
            Some(b'f') => self.eat_literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(depth),
            Some(b'{') => self.parse_object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            Some(c) => Err(self.err(format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_array(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn parse_object(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.eat(b'{')?;
        let mut entries: Vec<(String, Value)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.parse_value(depth + 1)?;
            // Duplicate keys: last one wins, as in upstream.
            if let Some(slot) = entries.iter_mut().find(|(k, _)| *k == key) {
                slot.1 = value;
            } else {
                entries.push((key, value));
            }
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let cp = self.parse_hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by an escaped low surrogate.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                self.pos += 1; // past the 4th hex digit
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                let low = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let combined = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                                    .ok_or_else(|| self.err("invalid surrogate pair"))?
                            } else {
                                char::from_u32(cp)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?
                            };
                            out.push(c);
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so byte
                    // boundaries are valid; find the char at this offset).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    if (c as u32) < 0x20 {
                        return Err(self.err("unescaped control character in string"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Parses `uXXXX`'s four hex digits, leaving `pos` on the last digit.
    fn parse_hex4(&mut self) -> Result<u32, ParseError> {
        let mut cp = 0u32;
        for _ in 0..4 {
            self.pos += 1;
            let d = match self.peek() {
                Some(c @ b'0'..=b'9') => (c - b'0') as u32,
                Some(c @ b'a'..=b'f') => (c - b'a') as u32 + 10,
                Some(c @ b'A'..=b'F') => (c - b'A') as u32 + 10,
                _ => return Err(self.err("invalid hex digit in unicode escape")),
            };
            cp = cp * 16 + d;
        }
        Ok(cp)
    }

    fn parse_number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let int_start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let integral_end = self.pos;
        // JSON grammar: the integral part is `0` or a non-zero digit
        // followed by digits -- never empty, never zero-padded.
        let int_digits = integral_end - int_start;
        if int_digits == 0 || (int_digits > 1 && self.bytes[int_start] == b'0') {
            return Err(ParseError {
                message: "invalid number: integral part must be 0 or start 1-9".into(),
                offset: start,
            });
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let frac_start = self.pos;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
            if self.pos == frac_start {
                return Err(self.err("invalid number: '.' needs following digits"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp_start = self.pos;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
            if self.pos == exp_start {
                return Err(self.err("invalid number: exponent needs digits"));
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        // Whole non-negative integers stay exact (RNG seeds above 2^53).
        if integral_end == self.pos && !text.starts_with('-') {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::UInt(n));
            }
        }
        match text.parse::<f64>() {
            Ok(n) if n.is_finite() => Ok(Value::Number(n)),
            _ => Err(ParseError {
                message: format!("invalid number '{text}'"),
                offset: start,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Value {
        let mut obj = Value::object();
        obj.insert("name", "bayesft");
        obj.insert("trials", 4u32);
        obj.insert("alpha", vec![0.25f64, 0.5]);
        obj.insert("nested", {
            let mut inner = Value::object();
            inner.insert("ok", true);
            inner
        });
        obj
    }

    #[test]
    fn compact_round_trip_shape() {
        let s = to_string(&sample());
        assert_eq!(
            s,
            r#"{"name":"bayesft","trials":4,"alpha":[0.25,0.5],"nested":{"ok":true}}"#
        );
    }

    #[test]
    fn pretty_is_indented() {
        let s = to_string_pretty(&sample());
        assert!(s.contains("\n  \"name\": \"bayesft\""), "got: {s}");
        assert!(s.ends_with('}'));
    }

    #[test]
    fn escaping_handles_control_chars() {
        let v = Value::String("a\"b\\c\nd\u{1}".into());
        assert_eq!(to_string(&v), "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(to_string(&Value::Number(f64::NAN)), "null");
        assert_eq!(to_string(&Value::Number(f64::INFINITY)), "null");
    }

    #[test]
    fn insert_replaces_existing_keys() {
        let mut obj = Value::object();
        obj.insert("k", 1u32);
        obj.insert("k", 2u32);
        assert_eq!(obj.get("k").and_then(Value::as_f64), Some(2.0));
    }

    #[test]
    fn integers_print_without_decimal_point() {
        assert_eq!(to_string(&Value::Number(3.0)), "3");
        assert_eq!(to_string(&Value::Number(3.5)), "3.5");
    }

    #[test]
    fn u64_values_are_exact_at_full_width() {
        let v = Value::from(u64::MAX);
        assert_eq!(to_string(&v), "18446744073709551615");
        assert_eq!(v.as_u64(), Some(u64::MAX));
    }

    #[test]
    fn parse_round_trips_compact_output() {
        let v = sample();
        assert_eq!(from_str(&to_string(&v)).unwrap(), v);
        assert_eq!(from_str(&to_string_pretty(&v)).unwrap(), v);
    }

    #[test]
    fn parse_handles_scalars() {
        assert_eq!(from_str("null").unwrap(), Value::Null);
        assert_eq!(from_str(" true ").unwrap(), Value::Bool(true));
        assert_eq!(from_str("false").unwrap(), Value::Bool(false));
        assert_eq!(from_str("3.5").unwrap(), Value::Number(3.5));
        assert_eq!(from_str("-2").unwrap(), Value::Number(-2.0));
        assert_eq!(from_str("1e3").unwrap(), Value::Number(1000.0));
        assert_eq!(from_str("\"hi\"").unwrap(), Value::String("hi".into()));
    }

    #[test]
    fn parse_keeps_large_seeds_exact() {
        assert_eq!(
            from_str("18446744073709551615").unwrap().as_u64(),
            Some(u64::MAX)
        );
    }

    #[test]
    fn parse_decodes_escapes() {
        assert_eq!(
            from_str(r#""a\"b\\c\nd\u0041\u00e9""#).unwrap(),
            Value::String("a\"b\\c\ndAé".into())
        );
        // Surrogate pair → 😀
        assert_eq!(
            from_str(r#""\ud83d\ude00""#).unwrap(),
            Value::String("😀".into())
        );
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "tru",
            "1.2.3",
            "\"unterminated",
            "{\"a\":1} trailing",
            "[1 2]",
            "\"\\q\"",
            "nan",
            "01",
            "1.",
            "1e",
            "-5e+",
            "-",
            ".5",
        ] {
            assert!(from_str(bad).is_err(), "accepted {bad:?}");
        }
        let err = from_str("[1, ?]").unwrap_err();
        assert_eq!(err.offset, 4);
        assert!(err.to_string().contains("byte 4"), "{err}");
    }

    #[test]
    fn parse_duplicate_keys_last_wins() {
        let v = from_str(r#"{"k":1,"k":2}"#).unwrap();
        assert_eq!(v.get("k").and_then(Value::as_f64), Some(2.0));
        assert_eq!(v.as_object().map(<[_]>::len), Some(1));
    }

    #[test]
    fn parse_depth_is_bounded() {
        let deep = "[".repeat(4096) + &"]".repeat(4096);
        assert!(from_str(&deep).is_err(), "must not overflow the stack");
    }
}
