//! Minimal offline stub of `serde_json`: a [`Value`] tree with compact and
//! pretty printers. Objects preserve insertion order (like upstream's
//! `preserve_order` feature), which keeps emitted reports byte-stable —
//! the property the workspace's determinism tests rely on.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any finite number (non-finite values print as `null`, as upstream).
    Number(f64),
    /// An unsigned integer, kept exact — `f64` loses precision above
    /// 2^53, which matters for 64-bit RNG seeds.
    UInt(u64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Builds an empty object.
    pub fn object() -> Value {
        Value::Object(Vec::new())
    }

    /// Inserts (or replaces) `key` in an object; panics on non-objects.
    pub fn insert(&mut self, key: impl Into<String>, value: impl Into<Value>) -> &mut Self {
        match self {
            Value::Object(entries) => {
                let key = key.into();
                let value = value.into();
                if let Some(slot) = entries.iter_mut().find(|(k, _)| *k == key) {
                    slot.1 = value;
                } else {
                    entries.push((key, value));
                }
                self
            }
            other => panic!("insert on non-object JSON value: {other:?}"),
        }
    }

    /// Looks a key up in an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number (lossy above 2^53 for
    /// [`Value::UInt`]; use [`Value::as_u64`] for exactness).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            Value::UInt(n) => Some(*n as f64),
            _ => None,
        }
    }

    /// The exact unsigned payload, if this is an unsigned integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(n) => Some(*n),
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    fn write(&self, out: &mut String, indent: Option<usize>, level: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => write_number(out, *n),
            Value::UInt(n) => {
                let _ = write!(out, "{n}");
            }
            Value::String(s) => write_escaped(out, s),
            Value::Array(items) => {
                write_seq(out, indent, level, '[', ']', items.len(), |out, i| {
                    items[i].write(out, indent, level + 1);
                })
            }
            Value::Object(entries) => {
                write_seq(out, indent, level, '{', '}', entries.len(), |out, i| {
                    let (k, v) = &entries[i];
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, level + 1);
                })
            }
        }
    }
}

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 1e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    level: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', width * (level + 1)));
        }
        item(out, i);
    }
    if len > 0 {
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', width * level));
        }
    }
    out.push(close);
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::String(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::String(s)
    }
}

macro_rules! from_number {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(n: $t) -> Value {
                Value::Number(n as f64)
            }
        }
    )*};
}

from_number!(f32, f64, i8, i16, i32, i64, isize);

macro_rules! from_unsigned {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(n: $t) -> Value {
                Value::UInt(n as u64)
            }
        }
    )*};
}

from_unsigned!(u8, u16, u32, u64, usize);

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(items: Vec<T>) -> Value {
        Value::Array(items.into_iter().map(Into::into).collect())
    }
}

/// Serializes a [`Value`] compactly.
pub fn to_string(value: &Value) -> String {
    let mut out = String::new();
    value.write(&mut out, None, 0);
    out
}

/// Serializes a [`Value`] with two-space indentation.
pub fn to_string_pretty(value: &Value) -> String {
    let mut out = String::new();
    value.write(&mut out, Some(2), 0);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Value {
        let mut obj = Value::object();
        obj.insert("name", "bayesft");
        obj.insert("trials", 4u32);
        obj.insert("alpha", vec![0.25f64, 0.5]);
        obj.insert("nested", {
            let mut inner = Value::object();
            inner.insert("ok", true);
            inner
        });
        obj
    }

    #[test]
    fn compact_round_trip_shape() {
        let s = to_string(&sample());
        assert_eq!(
            s,
            r#"{"name":"bayesft","trials":4,"alpha":[0.25,0.5],"nested":{"ok":true}}"#
        );
    }

    #[test]
    fn pretty_is_indented() {
        let s = to_string_pretty(&sample());
        assert!(s.contains("\n  \"name\": \"bayesft\""), "got: {s}");
        assert!(s.ends_with('}'));
    }

    #[test]
    fn escaping_handles_control_chars() {
        let v = Value::String("a\"b\\c\nd\u{1}".into());
        assert_eq!(to_string(&v), "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(to_string(&Value::Number(f64::NAN)), "null");
        assert_eq!(to_string(&Value::Number(f64::INFINITY)), "null");
    }

    #[test]
    fn insert_replaces_existing_keys() {
        let mut obj = Value::object();
        obj.insert("k", 1u32);
        obj.insert("k", 2u32);
        assert_eq!(obj.get("k").and_then(Value::as_f64), Some(2.0));
    }

    #[test]
    fn integers_print_without_decimal_point() {
        assert_eq!(to_string(&Value::Number(3.0)), "3");
        assert_eq!(to_string(&Value::Number(3.5)), "3.5");
    }

    #[test]
    fn u64_values_are_exact_at_full_width() {
        let v = Value::from(u64::MAX);
        assert_eq!(to_string(&v), "18446744073709551615");
        assert_eq!(v.as_u64(), Some(u64::MAX));
    }
}
