//! Minimal offline stub of `proptest`.
//!
//! Implements the subset this workspace's property tests use, with the
//! upstream syntax: the [`proptest!`] macro (with optional
//! `#![proptest_config(..)]` header), `prop_assert!` / `prop_assert_eq!`,
//! the [`Strategy`] trait with `prop_map` / `prop_flat_map`, range and
//! tuple strategies, and `proptest::collection::vec`.
//!
//! Unlike upstream there is no shrinking: a failing case reports its case
//! index and seed so it can be replayed, which is enough for the small
//! deterministic generators used here.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::ops::Range;

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// The RNG handed to strategies; one per test case, deterministically
/// seeded from the case index.
pub type TestRng = ChaCha8Rng;

/// A value generator.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(f32, f64, i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, G);

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// Something usable as a vector length: a fixed size or a range.
    pub trait IntoLen {
        /// Draws a concrete length.
        fn draw_len(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoLen for usize {
        fn draw_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoLen for Range<usize> {
        fn draw_len(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    /// A strategy producing `Vec`s of `element` values with a length drawn
    /// from `len`.
    pub fn vec<S: Strategy, L: IntoLen>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    /// See [`vec`].
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    impl<S: Strategy, L: IntoLen> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.draw_len(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

/// Asserts a condition inside a property, failing the current case with a
/// formatted message instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(format!($($fmt)*));
        }
    };
}

/// Asserts equality inside a property (requires `Debug` operands).
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{:?}` != `{:?}`",
                left, right
            ));
        }
    }};
}

/// Declares property tests. Supports the upstream shape:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(24))]
///     #[test]
///     fn my_property(x in 0.0f32..1.0, v in proptest::collection::vec(0u64..9, 3)) {
///         prop_assert!(x < 1.0);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut proptest_case_rng = $crate::case_rng(stringify!($name), case);
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut proptest_case_rng);)+
                let outcome: ::std::result::Result<(), ::std::string::String> =
                    (|| -> ::std::result::Result<(), ::std::string::String> {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(message) = outcome {
                    panic!(
                        "property {} failed at case {}/{}: {}",
                        stringify!($name), case, config.cases, message
                    );
                }
            }
        }
        $crate::__proptest_impl!{ config = ($cfg); $($rest)* }
    };
    (config = ($cfg:expr);) => {};
}

/// Builds the deterministic RNG for (`test`, `case`).
pub fn case_rng(test: &str, case: u32) -> TestRng {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for b in test.bytes() {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x1_0000_0000_01b3);
    }
    TestRng::seed_from_u64(hash ^ ((case as u64) << 32 | case as u64))
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::Strategy;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_respect_bounds(x in 1.0f32..2.0, n in 3usize..7) {
            prop_assert!((1.0..2.0).contains(&x));
            prop_assert!((3..7).contains(&n), "n = {n}");
        }

        #[test]
        fn vec_strategy_sizes(v in crate::collection::vec(0u64..10, 2..5)) {
            prop_assert!((2..5).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn map_and_flat_map_compose(
            t in (1usize..4, 1usize..4).prop_flat_map(|(r, c)| {
                crate::collection::vec(0.0f64..1.0, r * c).prop_map(move |v| (r, c, v))
            })
        ) {
            let (r, c, v) = t;
            prop_assert_eq!(v.len(), r * c);
        }
    }

    #[test]
    fn case_rng_is_deterministic() {
        use rand::RngCore;
        let mut a = crate::case_rng("t", 3);
        let mut b = crate::case_rng("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
