//! Minimal offline stub of the `rand` crate (0.8-compatible surface).
//!
//! Provides the exact trait surface this workspace uses: [`RngCore`],
//! the extension trait [`Rng`] (blanket-implemented for every `RngCore`,
//! sized or not, so `&mut dyn RngCore` works), and [`SeedableRng`] with
//! the same SplitMix64-based `seed_from_u64` seed expansion rand 0.8 uses.
//!
//! Uniform range sampling uses widening-multiply for integers and
//! `lo + unit * (hi - lo)` for floats — statistically sound for the
//! Monte-Carlo workloads here, not bit-compatible with upstream `rand`.

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: a source of random words.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A type that can be sampled uniformly over its full "standard" domain
/// (`[0, 1)` for floats, the whole value range for integers).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 high bits -> [0, 1) with full f32 precision.
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

/// A range that a uniform value can be drawn from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! float_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as Standard>::standard_sample(rng);
                self.start + unit * (self.end - self.start)
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let unit = <$t as Standard>::standard_sample(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}

float_ranges!(f32, f64);

/// Uniform integer in `[0, width)` via widening multiply (Lemire's method
/// without the rejection step; bias is < 2^-32 of the width here).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, width: u64) -> u64 {
    debug_assert!(width > 0);
    ((rng.next_u64() as u128 * width as u128) >> 64) as u64
}

macro_rules! int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, width) as i128) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let width = (hi as i128 - lo as i128) as u128 + 1;
                let draw = ((rng.next_u64() as u128 * width) >> 64) as i128;
                (lo as i128 + draw) as $t
            }
        }
    )*};
}

int_ranges!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`] (including unsized `dyn RngCore`).
pub trait Rng: RngCore {
    /// Draws a value from the type's standard distribution (`[0, 1)` for
    /// floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        f64::standard_sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// SplitMix64 step — the same seed-expansion generator rand 0.8 uses for
/// `seed_from_u64`.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A generator that can be instantiated from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// Raw seed type (a byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it with SplitMix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut s = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = splitmix64(&mut s).to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);

    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }

        fn next_u64(&mut self) -> u64 {
            let mut s = self.0;
            self.0 = self.0.wrapping_add(1);
            splitmix64(&mut s)
        }
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = Counter(0);
        for _ in 0..1000 {
            let v: f32 = rng.gen_range(2.0f32..3.0);
            assert!((2.0..3.0).contains(&v));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn int_ranges_cover_endpoints() {
        let mut rng = Counter(7);
        let mut seen = [false; 5];
        for _ in 0..500 {
            let v = rng.gen_range(-2i32..=2);
            seen[(v + 2) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "inclusive range missed a value");
    }

    #[test]
    fn dyn_rng_core_works() {
        let mut rng = Counter(3);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        let v: f32 = dyn_rng.gen_range(0.0f32..1.0);
        assert!((0.0..1.0).contains(&v));
    }
}
