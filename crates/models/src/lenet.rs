//! LeNet-5 (Fig. 3(b)): the classic two-convolution network, sized for the
//! 14×14 synthetic digit images.

use nn::{Conv2d, Dense, Dropout, Flatten, MaxPool2d, Relu, Sequential};
use rand::Rng;
use tensor::Conv2dSpec;

use crate::delegate_layer;

/// LeNet-5 adapted to arbitrary square grayscale-ish inputs:
/// `conv(6@5×5, pad 2) → pool → conv(16@5×5) → pool → fc → fc(classes)`,
/// with a mutable-rate dropout slot after every weighted layer except the
/// output.
///
/// # Example
///
/// ```
/// use models::LeNet5;
/// use nn::{Layer, Mode};
/// use rand::SeedableRng;
/// use rand_chacha::ChaCha8Rng;
/// use tensor::Tensor;
///
/// let mut rng = ChaCha8Rng::seed_from_u64(0);
/// let mut net = LeNet5::new(1, 14, 10, &mut rng);
/// let y = net.forward(&Tensor::ones(&[2, 1, 14, 14]), Mode::Eval);
/// assert_eq!(y.dims(), &[2, 10]);
/// ```
#[derive(Clone)]
pub struct LeNet5 {
    net: Sequential,
}

impl LeNet5 {
    /// Builds LeNet-5 for `in_channels`×`hw`×`hw` inputs and `classes`
    /// outputs.
    ///
    /// # Panics
    ///
    /// Panics if `hw < 12` (the two 5×5 stages need at least 12 pixels).
    pub fn new(in_channels: usize, hw: usize, classes: usize, rng: &mut impl Rng) -> Self {
        assert!(hw >= 12, "LeNet-5 needs inputs of at least 12×12");
        let c1 = Conv2dSpec::new(in_channels, 6, 5, 1, 2);
        let (h1, _) = c1.output_hw(hw, hw);
        let p1 = h1 / 2;
        let c2 = Conv2dSpec::new(6, 16, 5, 1, 0);
        let (h2, _) = c2.output_hw(p1, p1);
        let p2 = ((h2 - 2) / 2) + 1;
        let flat = 16 * p2 * p2;
        let net = Sequential::new(vec![
            Box::new(Conv2d::new(in_channels, 6, 5, 1, 2, rng)),
            Box::new(Relu::new()),
            Box::new(Dropout::new(0.0, 0x1e1)),
            Box::new(MaxPool2d::new(2, 2)),
            Box::new(Conv2d::new(6, 16, 5, 1, 0, rng)),
            Box::new(Relu::new()),
            Box::new(Dropout::new(0.0, 0x1e2)),
            Box::new(MaxPool2d::new(2, 2)),
            Box::new(Flatten::new()),
            Box::new(Dense::new(flat, 48, rng)),
            Box::new(Relu::new()),
            Box::new(Dropout::new(0.0, 0x1e3)),
            Box::new(Dense::new(48, classes, rng)),
        ]);
        LeNet5 { net }
    }
}

delegate_layer!(LeNet5, "lenet5");

#[cfg(test)]
mod tests {
    use super::*;
    use nn::{Layer, Mode};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use tensor::Tensor;

    #[test]
    fn forward_shape_14() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut net = LeNet5::new(1, 14, 10, &mut rng);
        let y = net.forward(&Tensor::ones(&[3, 1, 14, 14]), Mode::Eval);
        assert_eq!(y.dims(), &[3, 10]);
    }

    #[test]
    fn forward_shape_16_rgb() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut net = LeNet5::new(3, 16, 43, &mut rng);
        let y = net.forward(&Tensor::ones(&[2, 3, 16, 16]), Mode::Eval);
        assert_eq!(y.dims(), &[2, 43]);
    }

    #[test]
    fn has_three_dropout_slots() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut net = LeNet5::new(1, 14, 10, &mut rng);
        assert_eq!(crate::dropout_count(&mut net), 3);
    }

    #[test]
    fn backward_produces_input_gradient() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut net = LeNet5::new(1, 14, 4, &mut rng);
        let x = Tensor::randn(&[2, 1, 14, 14], 0.0, 1.0, &mut rng);
        let y = net.forward(&x, Mode::Train);
        let g = net.backward(&Tensor::ones(y.dims()));
        assert_eq!(g.dims(), x.dims());
        assert!(g.norm() > 0.0, "gradient must flow to the input");
    }
}
