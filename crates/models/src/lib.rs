//! Model zoo for the BayesFT reproduction — every architecture evaluated in
//! the paper's Figs. 2–4, scaled to the synthetic datasets and CPU
//! training:
//!
//! | paper model | here | used in |
//! |---|---|---|
//! | 3/6/9-layer MLP | [`Mlp`] | Fig. 2 ablations, Fig. 3(a) |
//! | LeNet-5 | [`LeNet5`] | Fig. 3(b) |
//! | AlexNet | [`AlexNetS`] | Fig. 3(c) |
//! | ResNet-18 | [`ResNet18S`] | Fig. 3(d) |
//! | VGG-11 | [`Vgg11S`] | Fig. 3(e) |
//! | PreAct ResNet-18/50/152 | [`PreActResNetS`] | Fig. 3(f–h) |
//! | spatial transformer net | [`StnClassifier`] | Fig. 3(i) |
//! | Mask R-CNN | [`TinyDetector`] | Fig. 3(j), Fig. 4 |
//!
//! Every model follows the paper's search-space convention: a mutable-rate
//! [`nn::Dropout`] layer sits after each weighted layer (except the output
//! layer), initialized to rate 0 so the same skeleton serves as the ERM
//! baseline. BayesFT re-targets the rates through
//! [`nn::Layer::visit_dropout`] / [`set_dropout_rates`].
//!
//! The `-S` suffix marks width/depth-scaled variants: block structure and
//! family ordering (18 < 50 < 152) match the originals, absolute parameter
//! counts do not (see DESIGN.md for the substitution rationale).
//!
//! # Example
//!
//! ```
//! use models::{dropout_count, set_dropout_rates, Mlp, MlpConfig};
//! use nn::{Layer, Mode};
//! use rand::SeedableRng;
//! use rand_chacha::ChaCha8Rng;
//! use tensor::Tensor;
//!
//! let mut rng = ChaCha8Rng::seed_from_u64(0);
//! let mut mlp = Mlp::new(&MlpConfig::new(4, 10), &mut rng);
//! assert_eq!(dropout_count(&mut mlp), 2); // 3 layers → 2 dropout slots
//! set_dropout_rates(&mut mlp, &[0.1, 0.3]);
//! let logits = mlp.forward(&Tensor::ones(&[2, 4]), Mode::Eval);
//! assert_eq!(logits.dims(), &[2, 10]);
//! ```

mod convnets;
mod detector;
mod kind;
mod lenet;
mod mlp;
mod resnet;
mod stn;

pub use convnets::{AlexNetS, Vgg11S};
pub use detector::{DetectionLoss, TinyDetector, GRID};
pub use kind::ModelKind;
pub use lenet::LeNet5;
pub use mlp::{DropoutKind, Mlp, MlpConfig};
pub use resnet::{PreActDepth, PreActResNetS, ResNet18S};
pub use stn::{SpatialTransformer, StnClassifier};

use nn::Layer;

/// Number of dropout layers (BayesFT search-space dimensions) in a network.
pub fn dropout_count(network: &mut dyn Layer) -> usize {
    let mut n = 0;
    network.visit_dropout(&mut |_| n += 1);
    n
}

/// Sets per-layer dropout rates in visit order, clamping each to
/// `[0, 0.95]`. Extra rates are ignored; missing rates leave later layers
/// unchanged.
pub fn set_dropout_rates(network: &mut dyn Layer, rates: &[f32]) {
    let mut i = 0;
    network.visit_dropout(&mut |d| {
        if let Some(&r) = rates.get(i) {
            d.set_rate(r);
        }
        i += 1;
    });
}

/// Reads the current per-layer dropout rates in visit order.
pub fn dropout_rates(network: &mut dyn Layer) -> Vec<f32> {
    let mut rates = Vec::new();
    network.visit_dropout(&mut |d| rates.push(d.rate()));
    rates
}

/// Implements [`nn::Layer`] by delegating to a `net: Sequential` field —
/// the pattern shared by every model wrapper in this crate.
macro_rules! delegate_layer {
    ($ty:ident, $tag:literal) => {
        impl nn::Layer for $ty {
            fn forward(&mut self, input: &tensor::Tensor, mode: nn::Mode) -> tensor::Tensor {
                self.net.forward(input, mode)
            }

            fn forward_ws(
                &mut self,
                input: &tensor::Tensor,
                mode: nn::Mode,
                ws: &mut nn::Workspace,
            ) -> tensor::Tensor {
                self.net.forward_ws(input, mode, ws)
            }

            fn backward(&mut self, grad_out: &tensor::Tensor) -> tensor::Tensor {
                self.net.backward(grad_out)
            }

            fn backward_ws(
                &mut self,
                grad_out: &tensor::Tensor,
                ws: &mut nn::Workspace,
            ) -> tensor::Tensor {
                self.net.backward_ws(grad_out, ws)
            }

            fn visit_params(&mut self, f: &mut dyn FnMut(&mut nn::Param)) {
                self.net.visit_params(f);
            }

            fn visit_dropout(&mut self, f: &mut dyn FnMut(&mut nn::Dropout)) {
                self.net.visit_dropout(f);
            }

            fn name(&self) -> &'static str {
                $tag
            }

            fn clone_box(&self) -> Box<dyn nn::Layer> {
                Box::new(self.clone())
            }
        }

        impl std::fmt::Debug for $ty {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.debug_struct(stringify!($ty)).finish()
            }
        }
    };
}
pub(crate) use delegate_layer;

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn rate_helpers_round_trip() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut mlp = Mlp::new(&MlpConfig::new(4, 3).depth(4), &mut rng);
        assert_eq!(dropout_count(&mut mlp), 3);
        set_dropout_rates(&mut mlp, &[0.1, 0.2, 0.3]);
        let rates = dropout_rates(&mut mlp);
        assert!((rates[0] - 0.1).abs() < 1e-6);
        assert!((rates[2] - 0.3).abs() < 1e-6);
    }

    #[test]
    fn set_rates_clamps_and_tolerates_short_vectors() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut mlp = Mlp::new(&MlpConfig::new(4, 3), &mut rng);
        set_dropout_rates(&mut mlp, &[2.0]); // clamped, second left alone
        let rates = dropout_rates(&mut mlp);
        assert!((rates[0] - 0.95).abs() < 1e-6);
        assert_eq!(rates[1], 0.0);
    }
}
