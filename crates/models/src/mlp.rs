//! The configurable multi-layer perceptron behind every Fig. 2 ablation and
//! the MLP rows of Fig. 3.

use nn::{Activation, AlphaDropout, Dense, Dropout, NormKind, Sequential};
use rand::Rng;

use crate::delegate_layer;

/// Which dropout flavour the ablation inserts (Fig. 2(a)).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum DropoutKind {
    /// Mutable-rate standard dropout at the given initial rate — the
    /// BayesFT search space (rate 0 ⇒ ERM skeleton).
    #[default]
    Standard,
    /// Alpha dropout at a fixed rate.
    Alpha(f32),
    /// No dropout layers at all (pure "Original Model" ablation arm).
    None,
}

/// Configuration for [`Mlp`].
///
/// Defaults: 3 layers of 64 hidden units, ReLU, no normalization, standard
/// zero-rate dropout slots after every hidden layer.
#[derive(Debug, Clone, PartialEq)]
pub struct MlpConfig {
    /// Input feature count.
    pub input_dim: usize,
    /// Output class count.
    pub classes: usize,
    /// Total number of weighted layers (≥ 2): `depth − 1` hidden + 1 output.
    pub depth: usize,
    /// Hidden width.
    pub hidden: usize,
    /// Normalization after each hidden layer (Fig. 2(b)).
    pub norm: NormKind,
    /// Activation function (Fig. 2(d)).
    pub activation: Activation,
    /// Dropout flavour (Fig. 2(a)).
    pub dropout: DropoutKind,
    /// Initial rate for `DropoutKind::Standard` slots.
    pub initial_rate: f32,
    /// RNG seed for the dropout masks.
    pub dropout_seed: u64,
}

impl MlpConfig {
    /// A 3-layer ReLU MLP with no normalization and zero-rate dropout slots.
    pub fn new(input_dim: usize, classes: usize) -> Self {
        MlpConfig {
            input_dim,
            classes,
            depth: 3,
            hidden: 64,
            norm: NormKind::None,
            activation: Activation::Relu,
            dropout: DropoutKind::Standard,
            initial_rate: 0.0,
            dropout_seed: 0x5eed,
        }
    }

    /// Sets the number of weighted layers (Fig. 2(c): 3, 6, 9).
    ///
    /// # Panics
    ///
    /// Panics if `depth < 2`.
    pub fn depth(mut self, depth: usize) -> Self {
        assert!(depth >= 2, "an MLP needs at least input and output layers");
        self.depth = depth;
        self
    }

    /// Sets the hidden width.
    pub fn hidden(mut self, hidden: usize) -> Self {
        self.hidden = hidden;
        self
    }

    /// Sets the normalization scheme.
    pub fn norm(mut self, norm: NormKind) -> Self {
        self.norm = norm;
        self
    }

    /// Sets the activation function.
    pub fn activation(mut self, activation: Activation) -> Self {
        self.activation = activation;
        self
    }

    /// Sets the dropout flavour.
    pub fn dropout(mut self, dropout: DropoutKind) -> Self {
        self.dropout = dropout;
        self
    }

    /// Sets the initial standard-dropout rate.
    pub fn initial_rate(mut self, rate: f32) -> Self {
        self.initial_rate = rate;
        self
    }
}

/// A multi-layer perceptron: `depth` dense layers with configurable
/// normalization, activation and dropout, ending in raw class logits.
///
/// See the crate-level example for usage.
#[derive(Clone)]
pub struct Mlp {
    net: Sequential,
}

impl Mlp {
    /// Builds the MLP described by `config` with Xavier-initialized weights.
    pub fn new(config: &MlpConfig, rng: &mut impl Rng) -> Self {
        let mut layers: Vec<Box<dyn nn::Layer>> = Vec::new();
        let mut in_dim = config.input_dim;
        for layer_idx in 0..config.depth - 1 {
            layers.push(Box::new(Dense::new(in_dim, config.hidden, rng)));
            if config.norm != NormKind::None {
                layers.push(config.norm.build(config.hidden));
            }
            layers.push(config.activation.build());
            match config.dropout {
                DropoutKind::Standard => layers.push(Box::new(Dropout::new(
                    config.initial_rate,
                    config.dropout_seed.wrapping_add(layer_idx as u64),
                ))),
                DropoutKind::Alpha(rate) => layers.push(Box::new(AlphaDropout::new(
                    rate,
                    config.dropout_seed.wrapping_add(layer_idx as u64),
                ))),
                DropoutKind::None => {}
            }
            in_dim = config.hidden;
        }
        layers.push(Box::new(Dense::new(in_dim, config.classes, rng)));
        Mlp {
            net: Sequential::new(layers),
        }
    }
}

delegate_layer!(Mlp, "mlp");

#[cfg(test)]
mod tests {
    use super::*;
    use nn::{Layer, Mode};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use tensor::Tensor;

    #[test]
    fn output_shape_matches_classes() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut mlp = Mlp::new(&MlpConfig::new(8, 5), &mut rng);
        let y = mlp.forward(&Tensor::ones(&[3, 8]), Mode::Eval);
        assert_eq!(y.dims(), &[3, 5]);
    }

    #[test]
    fn depth_controls_dense_count() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for depth in [2, 3, 6, 9] {
            let mut mlp = Mlp::new(&MlpConfig::new(4, 2).depth(depth), &mut rng);
            let mut dense = 0;
            mlp.visit_params(&mut |p| {
                if p.kind == nn::ParamKind::Weight {
                    dense += 1;
                }
            });
            assert_eq!(dense, depth, "depth {depth}");
        }
    }

    #[test]
    fn norm_variant_adds_norm_params() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut with_norm = Mlp::new(&MlpConfig::new(4, 2).norm(NormKind::Batch), &mut rng);
        let mut norm_params = 0;
        with_norm.visit_params(&mut |p| {
            if matches!(p.kind, nn::ParamKind::NormGain | nn::ParamKind::NormBias) {
                norm_params += 1;
            }
        });
        assert_eq!(norm_params, 4); // 2 hidden layers × (γ, β)
    }

    #[test]
    fn alpha_dropout_variant_has_no_search_dimensions() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut mlp = Mlp::new(
            &MlpConfig::new(4, 2).dropout(DropoutKind::Alpha(0.2)),
            &mut rng,
        );
        assert_eq!(crate::dropout_count(&mut mlp), 0);
    }

    #[test]
    fn overfits_tiny_problem() {
        // Sanity: the MLP can drive training loss down on 8 separable points.
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let mut mlp = Mlp::new(&MlpConfig::new(2, 2).hidden(16), &mut rng);
        let x = Tensor::from_vec(
            vec![
                0.0, 0.0, 0.1, 0.2, 0.9, 1.0, 1.0, 0.8, 0.0, 1.0, 0.2, 0.9, 1.0, 0.0, 0.8, 0.1,
            ],
            &[8, 2],
        )
        .unwrap();
        let labels = [0usize, 0, 1, 1, 0, 0, 1, 1];
        let mut opt = nn::Sgd::new(0.5).momentum(0.9);
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..150 {
            let logits = mlp.forward(&x, Mode::Train);
            let out = nn::softmax_cross_entropy(&logits, &labels);
            first.get_or_insert(out.loss);
            last = out.loss;
            let _ = mlp.backward(&out.grad);
            nn::Optimizer::step(&mut opt, &mut mlp);
        }
        assert!(
            last < 0.1 * first.unwrap(),
            "loss {last} did not shrink from {}",
            first.unwrap()
        );
    }
}
