//! ResNet-18-S and the pre-activation ResNet family (Fig. 3(d, f–h)).
//!
//! Depth scaling: the paper's 18/50/152-layer networks are reproduced as
//! 6/10/20-block variants with the same *ordering* — the Fig. 3(f–h)
//! conclusion ("deeper falls steeper under drift") depends on relative
//! depth, not absolute layer count.

use nn::{Conv2d, Dense, Dropout, GlobalAvgPool, PreActBlock, Relu, Residual, Sequential};
use rand::Rng;

use crate::delegate_layer;

/// Builds a post-activation residual block (classic ResNet).
fn res_block(
    in_ch: usize,
    out_ch: usize,
    stride: usize,
    seed: u64,
    rng: &mut impl Rng,
) -> Residual {
    let main = Sequential::new(vec![
        Box::new(Conv2d::new(in_ch, out_ch, 3, stride, 1, rng)),
        Box::new(Relu::new()),
        Box::new(Dropout::new(0.0, seed)),
        Box::new(Conv2d::new(out_ch, out_ch, 3, 1, 1, rng)),
    ]);
    let shortcut = if stride != 1 || in_ch != out_ch {
        Some(Sequential::new(vec![Box::new(Conv2d::new(
            in_ch, out_ch, 1, stride, 0, rng,
        ))]))
    } else {
        None
    };
    Residual::new(main, shortcut)
}

/// Builds a pre-activation residual block (He et al. 2016b).
fn preact_block(
    in_ch: usize,
    out_ch: usize,
    stride: usize,
    seed: u64,
    rng: &mut impl Rng,
) -> PreActBlock {
    let main = Sequential::new(vec![
        Box::new(Relu::new()),
        Box::new(Conv2d::new(in_ch, out_ch, 3, stride, 1, rng)),
        Box::new(Relu::new()),
        Box::new(Dropout::new(0.0, seed)),
        Box::new(Conv2d::new(out_ch, out_ch, 3, 1, 1, rng)),
    ]);
    let shortcut = if stride != 1 || in_ch != out_ch {
        Some(Sequential::new(vec![Box::new(Conv2d::new(
            in_ch, out_ch, 1, stride, 0, rng,
        ))]))
    } else {
        None
    };
    PreActBlock::new(main, shortcut)
}

/// ResNet-18-S (Fig. 3(d)): stem conv + three stages of two post-activation
/// residual blocks + global average pooling + classifier.
///
/// # Example
///
/// ```
/// use models::ResNet18S;
/// use nn::{Layer, Mode};
/// use rand::SeedableRng;
/// use rand_chacha::ChaCha8Rng;
/// use tensor::Tensor;
///
/// let mut rng = ChaCha8Rng::seed_from_u64(0);
/// let mut net = ResNet18S::new(3, 10, &mut rng);
/// let y = net.forward(&Tensor::ones(&[1, 3, 16, 16]), Mode::Eval);
/// assert_eq!(y.dims(), &[1, 10]);
/// ```
#[derive(Clone)]
pub struct ResNet18S {
    net: Sequential,
}

impl ResNet18S {
    /// Builds ResNet-18-S for square inputs of any size divisible by 4.
    pub fn new(in_channels: usize, classes: usize, rng: &mut impl Rng) -> Self {
        let widths = [16usize, 32, 64];
        let mut layers: Vec<Box<dyn nn::Layer>> = vec![
            Box::new(Conv2d::new(in_channels, widths[0], 3, 1, 1, rng)),
            Box::new(Relu::new()),
            Box::new(Dropout::new(0.0, 0xc0)),
        ];
        let mut ch = widths[0];
        let mut seed = 0xc1u64;
        for (stage, &w) in widths.iter().enumerate() {
            for block in 0..2 {
                let stride = if stage > 0 && block == 0 { 2 } else { 1 };
                layers.push(Box::new(res_block(ch, w, stride, seed, rng)));
                layers.push(Box::new(Relu::new()));
                ch = w;
                seed += 1;
            }
        }
        layers.push(Box::new(GlobalAvgPool::new()));
        layers.push(Box::new(Dropout::new(0.0, seed)));
        layers.push(Box::new(Dense::new(ch, classes, rng)));
        ResNet18S {
            net: Sequential::new(layers),
        }
    }
}

delegate_layer!(ResNet18S, "resnet18_s");

/// Depth variants of the pre-activation family (Fig. 3(f–h)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PreActDepth {
    /// PreAct-18 stand-in: 2 blocks per stage (6 total).
    D18,
    /// PreAct-50 stand-in: `[3, 4, 3]` blocks (10 total).
    D50,
    /// PreAct-152 stand-in: `[6, 8, 6]` blocks (20 total).
    D152,
}

impl PreActDepth {
    /// Blocks per stage.
    pub fn blocks(&self) -> [usize; 3] {
        match self {
            PreActDepth::D18 => [2, 2, 2],
            PreActDepth::D50 => [3, 4, 3],
            PreActDepth::D152 => [6, 8, 6],
        }
    }

    /// Label used in figure output.
    pub fn label(&self) -> &'static str {
        match self {
            PreActDepth::D18 => "preact-18",
            PreActDepth::D50 => "preact-50",
            PreActDepth::D152 => "preact-152",
        }
    }
}

/// Pre-activation ResNet-S family (Fig. 3(f–h)): stem conv + three stages
/// of pre-activation blocks + global average pooling + classifier, widths
/// `[8, 16, 32]`.
#[derive(Clone)]
pub struct PreActResNetS {
    net: Sequential,
    depth: PreActDepth,
}

impl PreActResNetS {
    /// Builds the requested depth variant.
    pub fn new(depth: PreActDepth, in_channels: usize, classes: usize, rng: &mut impl Rng) -> Self {
        let widths = [8usize, 16, 32];
        let blocks = depth.blocks();
        let mut layers: Vec<Box<dyn nn::Layer>> =
            vec![Box::new(Conv2d::new(in_channels, widths[0], 3, 1, 1, rng))];
        let mut ch = widths[0];
        let mut seed = 0xd0u64;
        for (stage, (&w, &nblocks)) in widths.iter().zip(blocks.iter()).enumerate() {
            for block in 0..nblocks {
                let stride = if stage > 0 && block == 0 { 2 } else { 1 };
                layers.push(Box::new(preact_block(ch, w, stride, seed, rng)));
                ch = w;
                seed += 1;
            }
        }
        layers.push(Box::new(Relu::new()));
        layers.push(Box::new(GlobalAvgPool::new()));
        layers.push(Box::new(Dropout::new(0.0, seed)));
        layers.push(Box::new(Dense::new(ch, classes, rng)));
        PreActResNetS {
            net: Sequential::new(layers),
            depth,
        }
    }

    /// The depth variant this network was built with.
    pub fn depth(&self) -> PreActDepth {
        self.depth
    }
}

delegate_layer!(PreActResNetS, "preact_resnet_s");

#[cfg(test)]
mod tests {
    use super::*;
    use nn::{Layer, Mode};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use tensor::Tensor;

    #[test]
    fn resnet18_forward_backward() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut net = ResNet18S::new(3, 10, &mut rng);
        let x = Tensor::randn(&[2, 3, 16, 16], 0.0, 1.0, &mut rng);
        let y = net.forward(&x, Mode::Train);
        assert_eq!(y.dims(), &[2, 10]);
        let g = net.backward(&Tensor::ones(y.dims()));
        assert_eq!(g.dims(), x.dims());
    }

    #[test]
    fn preact_depths_order_by_parameter_count() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut p18 = PreActResNetS::new(PreActDepth::D18, 3, 10, &mut rng);
        let mut p50 = PreActResNetS::new(PreActDepth::D50, 3, 10, &mut rng);
        let mut p152 = PreActResNetS::new(PreActDepth::D152, 3, 10, &mut rng);
        let (a, b, c) = (p18.param_count(), p50.param_count(), p152.param_count());
        assert!(a < b && b < c, "param counts {a} < {b} < {c} violated");
    }

    #[test]
    fn preact152_forward_shape() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut net = PreActResNetS::new(PreActDepth::D152, 3, 10, &mut rng);
        let y = net.forward(&Tensor::ones(&[1, 3, 16, 16]), Mode::Eval);
        assert_eq!(y.dims(), &[1, 10]);
    }

    #[test]
    fn dropout_slots_scale_with_depth() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut p18 = PreActResNetS::new(PreActDepth::D18, 3, 10, &mut rng);
        let mut p50 = PreActResNetS::new(PreActDepth::D50, 3, 10, &mut rng);
        assert!(crate::dropout_count(&mut p50) > crate::dropout_count(&mut p18));
    }

    #[test]
    fn resnet_trains_on_tiny_batch() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let mut net = ResNet18S::new(1, 2, &mut rng);
        let x = Tensor::randn(&[4, 1, 8, 8], 0.0, 1.0, &mut rng);
        let labels = [0usize, 1, 0, 1];
        let mut opt = nn::Adam::new(0.01);
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..30 {
            let logits = net.forward(&x, Mode::Train);
            let out = nn::softmax_cross_entropy(&logits, &labels);
            first.get_or_insert(out.loss);
            last = out.loss;
            let _ = net.backward(&out.grad);
            nn::Optimizer::step(&mut opt, &mut net);
        }
        assert!(
            last < first.unwrap(),
            "loss should decrease: {last} vs {first:?}"
        );
    }
}
