//! Spatial-transformer classifier (Fig. 3(i)): a localization network
//! predicts an affine transform, the input is bilinearly resampled through
//! it, and a CNN classifies the canonicalized image — the architecture the
//! paper uses for randomized-geometry traffic-sign recognition (ref. [27]).

use nn::{Conv2d, Dense, Dropout, Flatten, Layer, MaxPool2d, Mode, Param, Relu, Sequential};
use rand::Rng;
use tensor::Tensor;

use crate::delegate_layer;

/// A differentiable affine spatial transformer: `y = sample(x, θ(x))` where
/// `θ: [N, 6]` comes from an internal localization network and sampling is
/// bilinear with zero padding.
///
/// The localization head is initialized to the identity transform (zero
/// weights, bias `[1,0,0,0,1,0]`), so an untrained STN is a no-op.
#[derive(Clone)]
pub struct SpatialTransformer {
    loc: Sequential,
    cache: Option<StnCache>,
}

#[derive(Clone)]
struct StnCache {
    input: Tensor,
    theta: Tensor,
}

impl SpatialTransformer {
    /// Builds a transformer for `in_channels`×`hw`×`hw` inputs.
    ///
    /// # Panics
    ///
    /// Panics if `hw < 8`.
    pub fn new(in_channels: usize, hw: usize, rng: &mut impl Rng) -> Self {
        assert!(hw >= 8, "spatial transformer needs at least 8×8 inputs");
        let pooled = hw / 2;
        let flat = 8 * pooled * pooled;
        let mut loc = Sequential::new(vec![
            Box::new(Conv2d::new(in_channels, 8, 3, 1, 1, rng)),
            Box::new(Relu::new()),
            Box::new(MaxPool2d::new(2, 2)),
            Box::new(Flatten::new()),
            Box::new(Dense::new(flat, 32, rng)),
            Box::new(Relu::new()),
            Box::new(Dense::new(32, 6, rng)),
        ]);
        // Identity init of the affine head: zero weight, identity bias.
        let total = {
            let mut n = 0;
            loc.visit_params(&mut |_| n += 1);
            n
        };
        let mut idx = 0;
        loc.visit_params(&mut |p: &mut Param| {
            if idx == total - 2 {
                p.value.map_inplace(|_| 0.0);
            } else if idx == total - 1 {
                p.value = Tensor::from_slice(&[1.0, 0.0, 0.0, 0.0, 1.0, 0.0]);
            }
            idx += 1;
        });
        SpatialTransformer { loc, cache: None }
    }

    /// The most recent predicted affine parameters (testing hook).
    pub fn last_theta(&self) -> Option<&Tensor> {
        self.cache.as_ref().map(|c| &c.theta)
    }
}

/// Zero-padded pixel fetch.
#[inline]
fn pixel(img: &[f32], c: usize, y: i64, x: i64, h: usize, w: usize) -> f32 {
    if y < 0 || x < 0 || y >= h as i64 || x >= w as i64 {
        0.0
    } else {
        img[(c * h + y as usize) * w + x as usize]
    }
}

impl Layer for SpatialTransformer {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Tensor {
        assert_eq!(input.rank(), 4, "spatial transformer expects [N, C, H, W]");
        let theta = self.loc.forward(input, mode);
        let (n, c, h, w) = (
            input.dims()[0],
            input.dims()[1],
            input.dims()[2],
            input.dims()[3],
        );
        let mut out = Tensor::zeros(input.dims());
        let src = input.as_slice();
        let dst = out.as_mut_slice();
        let chw = c * h * w;
        for s in 0..n {
            let t = theta.row(s);
            let img = &src[s * chw..(s + 1) * chw];
            for i in 0..h {
                let ys = 2.0 * i as f32 / (h - 1).max(1) as f32 - 1.0;
                for j in 0..w {
                    let xs = 2.0 * j as f32 / (w - 1).max(1) as f32 - 1.0;
                    let sx = t[0] * xs + t[1] * ys + t[2];
                    let sy = t[3] * xs + t[4] * ys + t[5];
                    let px = (sx + 1.0) / 2.0 * (w - 1) as f32;
                    let py = (sy + 1.0) / 2.0 * (h - 1) as f32;
                    let x0 = px.floor() as i64;
                    let y0 = py.floor() as i64;
                    let fx = px - x0 as f32;
                    let fy = py - y0 as f32;
                    for ch in 0..c {
                        let v00 = pixel(img, ch, y0, x0, h, w);
                        let v01 = pixel(img, ch, y0, x0 + 1, h, w);
                        let v10 = pixel(img, ch, y0 + 1, x0, h, w);
                        let v11 = pixel(img, ch, y0 + 1, x0 + 1, h, w);
                        dst[s * chw + (ch * h + i) * w + j] = v00 * (1.0 - fx) * (1.0 - fy)
                            + v01 * fx * (1.0 - fy)
                            + v10 * (1.0 - fx) * fy
                            + v11 * fx * fy;
                    }
                }
            }
        }
        self.cache = Some(StnCache {
            input: input.clone(),
            theta,
        });
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let cache = self
            .cache
            .as_ref()
            .expect("backward called before forward on spatial_transformer");
        let input = &cache.input;
        let theta = &cache.theta;
        let (n, c, h, w) = (
            input.dims()[0],
            input.dims()[1],
            input.dims()[2],
            input.dims()[3],
        );
        let chw = c * h * w;
        let src = input.as_slice();
        let go = grad_out.as_slice();
        let mut grad_input = Tensor::zeros(input.dims());
        let mut grad_theta = Tensor::zeros(&[n, 6]);
        for s in 0..n {
            let t = theta.row(s);
            let img = &src[s * chw..(s + 1) * chw];
            let mut gt = [0.0f32; 6];
            for i in 0..h {
                let ys = 2.0 * i as f32 / (h - 1).max(1) as f32 - 1.0;
                for j in 0..w {
                    let xs = 2.0 * j as f32 / (w - 1).max(1) as f32 - 1.0;
                    let sx = t[0] * xs + t[1] * ys + t[2];
                    let sy = t[3] * xs + t[4] * ys + t[5];
                    let px = (sx + 1.0) / 2.0 * (w - 1) as f32;
                    let py = (sy + 1.0) / 2.0 * (h - 1) as f32;
                    let x0 = px.floor() as i64;
                    let y0 = py.floor() as i64;
                    let fx = px - x0 as f32;
                    let fy = py - y0 as f32;
                    let mut dpx = 0.0f32;
                    let mut dpy = 0.0f32;
                    for ch in 0..c {
                        let g = go[s * chw + (ch * h + i) * w + j];
                        if g == 0.0 {
                            continue;
                        }
                        let v00 = pixel(img, ch, y0, x0, h, w);
                        let v01 = pixel(img, ch, y0, x0 + 1, h, w);
                        let v10 = pixel(img, ch, y0 + 1, x0, h, w);
                        let v11 = pixel(img, ch, y0 + 1, x0 + 1, h, w);
                        // Gradient w.r.t. the four source pixels.
                        let gi = grad_input.as_mut_slice();
                        let mut scatter = |y: i64, x: i64, wgt: f32| {
                            if y >= 0 && x >= 0 && (y as usize) < h && (x as usize) < w {
                                gi[s * chw + (ch * h + y as usize) * w + x as usize] += g * wgt;
                            }
                        };
                        scatter(y0, x0, (1.0 - fx) * (1.0 - fy));
                        scatter(y0, x0 + 1, fx * (1.0 - fy));
                        scatter(y0 + 1, x0, (1.0 - fx) * fy);
                        scatter(y0 + 1, x0 + 1, fx * fy);
                        // Gradient w.r.t. the continuous sample position.
                        dpx += g * ((v01 - v00) * (1.0 - fy) + (v11 - v10) * fy);
                        dpy += g * ((v10 - v00) * (1.0 - fx) + (v11 - v01) * fx);
                    }
                    // Chain to θ: px = (sx+1)/2·(w−1), sx = t0·xs + t1·ys + t2.
                    let dsx = dpx * (w - 1) as f32 / 2.0;
                    let dsy = dpy * (h - 1) as f32 / 2.0;
                    gt[0] += dsx * xs;
                    gt[1] += dsx * ys;
                    gt[2] += dsx;
                    gt[3] += dsy * xs;
                    gt[4] += dsy * ys;
                    gt[5] += dsy;
                }
            }
            grad_theta.row_mut(s).copy_from_slice(&gt);
        }
        let grad_via_loc = self.loc.backward(&grad_theta);
        grad_input.add_assign(&grad_via_loc);
        grad_input
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.loc.visit_params(f);
    }

    fn visit_dropout(&mut self, f: &mut dyn FnMut(&mut Dropout)) {
        self.loc.visit_dropout(f);
    }

    fn name(&self) -> &'static str {
        "spatial_transformer"
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

impl std::fmt::Debug for SpatialTransformer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpatialTransformer").finish()
    }
}

/// STN classifier (Fig. 3(i)): [`SpatialTransformer`] front-end followed by
/// a small CNN classifier, for the 43-class synthetic traffic-sign task.
#[derive(Clone)]
pub struct StnClassifier {
    net: Sequential,
}

impl StnClassifier {
    /// Builds the classifier for `in_channels`×`hw`×`hw` inputs.
    ///
    /// # Panics
    ///
    /// Panics if `hw` is not divisible by 4.
    pub fn new(in_channels: usize, hw: usize, classes: usize, rng: &mut impl Rng) -> Self {
        assert_eq!(hw % 4, 0, "STN classifier needs hw divisible by 4");
        let flat = 32 * (hw / 4) * (hw / 4);
        let net = Sequential::new(vec![
            Box::new(SpatialTransformer::new(in_channels, hw, rng)),
            Box::new(Conv2d::new(in_channels, 16, 3, 1, 1, rng)),
            Box::new(Relu::new()),
            Box::new(Dropout::new(0.0, 0xe1)),
            Box::new(MaxPool2d::new(2, 2)),
            Box::new(Conv2d::new(16, 32, 3, 1, 1, rng)),
            Box::new(Relu::new()),
            Box::new(Dropout::new(0.0, 0xe2)),
            Box::new(MaxPool2d::new(2, 2)),
            Box::new(Flatten::new()),
            Box::new(Dense::new(flat, 96, rng)),
            Box::new(Relu::new()),
            Box::new(Dropout::new(0.0, 0xe3)),
            Box::new(Dense::new(96, classes, rng)),
        ]);
        StnClassifier { net }
    }
}

delegate_layer!(StnClassifier, "stn_classifier");

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn identity_init_is_a_no_op() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut stn = SpatialTransformer::new(1, 8, &mut rng);
        let x = Tensor::randn(&[2, 1, 8, 8], 0.0, 1.0, &mut rng);
        let y = stn.forward(&x, Mode::Eval);
        for (a, b) in x.as_slice().iter().zip(y.as_slice()) {
            assert!((a - b).abs() < 1e-4, "identity STN altered the image");
        }
    }

    #[test]
    fn gradcheck_input_through_sampler() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut stn = SpatialTransformer::new(1, 8, &mut rng);
        // Nudge the loc head off identity so the transform is non-trivial
        // but smooth.
        let total = {
            let mut n = 0;
            stn.visit_params(&mut |_| n += 1);
            n
        };
        let mut idx = 0;
        stn.visit_params(&mut |p| {
            if idx == total - 1 {
                p.value = Tensor::from_slice(&[0.9, 0.05, 0.02, -0.03, 0.95, -0.01]);
            }
            idx += 1;
        });
        let x = Tensor::randn(&[1, 1, 8, 8], 0.5, 0.25, &mut rng);
        let err = nn::GradCheck::new().eps(1e-2).max_input_error(&mut stn, &x);
        // Bilinear sampling is piecewise smooth; allow a loose bound.
        assert!(err < 0.15, "input gradient error {err}");
    }

    #[test]
    fn theta_gradients_reach_loc_net() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut stn = SpatialTransformer::new(1, 8, &mut rng);
        let x = Tensor::randn(&[2, 1, 8, 8], 0.5, 0.3, &mut rng);
        let y = stn.forward(&x, Mode::Train);
        let _ = stn.backward(&Tensor::ones(y.dims()));
        let mut grad_norm = 0.0;
        stn.visit_params(&mut |p| grad_norm += p.grad.norm_sq());
        assert!(grad_norm > 0.0, "loc-net gradients must be non-zero");
    }

    #[test]
    fn classifier_shapes() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut net = StnClassifier::new(3, 16, 43, &mut rng);
        let y = net.forward(&Tensor::ones(&[2, 3, 16, 16]), Mode::Eval);
        assert_eq!(y.dims(), &[2, 43]);
        assert_eq!(crate::dropout_count(&mut net), 3);
    }
}
