//! Width-scaled AlexNet and VGG-11 (Fig. 3(c, e)).

use nn::{Conv2d, Dense, Dropout, Flatten, MaxPool2d, Relu, Sequential};
use rand::Rng;

use crate::delegate_layer;

fn conv_block(
    layers: &mut Vec<Box<dyn nn::Layer>>,
    in_ch: usize,
    out_ch: usize,
    seed: u64,
    rng: &mut impl Rng,
) {
    layers.push(Box::new(Conv2d::new(in_ch, out_ch, 3, 1, 1, rng)));
    layers.push(Box::new(Relu::new()));
    layers.push(Box::new(Dropout::new(0.0, seed)));
}

/// AlexNet-S (Fig. 3(c)): three 3×3 conv/pool stages and two dense layers,
/// width-scaled for 16×16 synthetic CIFAR stand-ins.
///
/// # Example
///
/// ```
/// use models::AlexNetS;
/// use nn::{Layer, Mode};
/// use rand::SeedableRng;
/// use rand_chacha::ChaCha8Rng;
/// use tensor::Tensor;
///
/// let mut rng = ChaCha8Rng::seed_from_u64(0);
/// let mut net = AlexNetS::new(3, 16, 10, &mut rng);
/// let y = net.forward(&Tensor::ones(&[1, 3, 16, 16]), Mode::Eval);
/// assert_eq!(y.dims(), &[1, 10]);
/// ```
#[derive(Clone)]
pub struct AlexNetS {
    net: Sequential,
}

impl AlexNetS {
    /// Builds AlexNet-S for `in_channels`×`hw`×`hw` inputs.
    ///
    /// # Panics
    ///
    /// Panics if `hw` is not divisible by 8 (three 2× pooling stages).
    pub fn new(in_channels: usize, hw: usize, classes: usize, rng: &mut impl Rng) -> Self {
        assert_eq!(hw % 8, 0, "AlexNet-S needs hw divisible by 8");
        let mut layers: Vec<Box<dyn nn::Layer>> = Vec::new();
        conv_block(&mut layers, in_channels, 16, 0xa1, rng);
        layers.push(Box::new(MaxPool2d::new(2, 2)));
        conv_block(&mut layers, 16, 32, 0xa2, rng);
        layers.push(Box::new(MaxPool2d::new(2, 2)));
        conv_block(&mut layers, 32, 64, 0xa3, rng);
        layers.push(Box::new(MaxPool2d::new(2, 2)));
        layers.push(Box::new(Flatten::new()));
        let flat = 64 * (hw / 8) * (hw / 8);
        layers.push(Box::new(Dense::new(flat, 96, rng)));
        layers.push(Box::new(Relu::new()));
        layers.push(Box::new(Dropout::new(0.0, 0xa4)));
        layers.push(Box::new(Dense::new(96, classes, rng)));
        AlexNetS {
            net: Sequential::new(layers),
        }
    }
}

delegate_layer!(AlexNetS, "alexnet_s");

/// VGG-11-S (Fig. 3(e)): the VGG-11 stage layout
/// `[C, M, C, M, C, C, M, C, C, M]` with scaled widths, for 16×16 inputs.
#[derive(Clone)]
pub struct Vgg11S {
    net: Sequential,
}

impl Vgg11S {
    /// Builds VGG-11-S for `in_channels`×`hw`×`hw` inputs.
    ///
    /// # Panics
    ///
    /// Panics if `hw` is not divisible by 16 (four 2× pooling stages).
    pub fn new(in_channels: usize, hw: usize, classes: usize, rng: &mut impl Rng) -> Self {
        assert_eq!(hw % 16, 0, "VGG-11-S needs hw divisible by 16");
        let mut layers: Vec<Box<dyn nn::Layer>> = Vec::new();
        let mut seed = 0xb0u64;
        let mut ch = in_channels;
        // (width, convs-before-pool) per VGG-11 stage, width-scaled 4×.
        for &(width, convs) in &[(16usize, 1usize), (32, 1), (64, 2), (96, 2)] {
            for _ in 0..convs {
                conv_block(&mut layers, ch, width, seed, rng);
                seed += 1;
                ch = width;
            }
            layers.push(Box::new(MaxPool2d::new(2, 2)));
        }
        layers.push(Box::new(Flatten::new()));
        let flat = ch * (hw / 16) * (hw / 16);
        layers.push(Box::new(Dense::new(flat, 96, rng)));
        layers.push(Box::new(Relu::new()));
        layers.push(Box::new(Dropout::new(0.0, seed)));
        layers.push(Box::new(Dense::new(96, classes, rng)));
        Vgg11S {
            net: Sequential::new(layers),
        }
    }
}

delegate_layer!(Vgg11S, "vgg11_s");

#[cfg(test)]
mod tests {
    use super::*;
    use nn::{Layer, Mode};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use tensor::Tensor;

    #[test]
    fn alexnet_shapes_and_dropout_slots() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut net = AlexNetS::new(3, 16, 10, &mut rng);
        let y = net.forward(&Tensor::ones(&[2, 3, 16, 16]), Mode::Eval);
        assert_eq!(y.dims(), &[2, 10]);
        assert_eq!(crate::dropout_count(&mut net), 4);
    }

    #[test]
    fn vgg_shapes_and_dropout_slots() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut net = Vgg11S::new(3, 16, 10, &mut rng);
        let y = net.forward(&Tensor::ones(&[2, 3, 16, 16]), Mode::Eval);
        assert_eq!(y.dims(), &[2, 10]);
        // 6 conv blocks + 1 fc dropout
        assert_eq!(crate::dropout_count(&mut net), 7);
    }

    #[test]
    fn vgg_backward_flows() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut net = Vgg11S::new(3, 16, 4, &mut rng);
        let x = Tensor::randn(&[1, 3, 16, 16], 0.0, 1.0, &mut rng);
        let y = net.forward(&x, Mode::Train);
        let g = net.backward(&Tensor::ones(y.dims()));
        assert_eq!(g.dims(), x.dims());
    }

    #[test]
    #[should_panic(expected = "divisible by 8")]
    fn alexnet_rejects_bad_size() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let _ = AlexNetS::new(3, 14, 10, &mut rng);
    }
}
