//! TinyDetector (Fig. 3(j), Fig. 4): a single-stage grid detector standing
//! in for the paper's Mask R-CNN on the synthetic pedestrian scenes.
//!
//! The image is divided into a `G×G` cell grid; for each cell the head
//! predicts `[objectness, cx, cy, w, h]` (all squashed by a sigmoid). A cell
//! is positive when a ground-truth pedestrian center falls inside it. This
//! reproduces the failure mode the paper studies — weight drift corrupts
//! both the confidence map and the box regressions — with the same dropout
//! search space as the classifiers.

use datasets::{BBox, Scene};
use nn::{Conv2d, Dropout, Layer, MaxPool2d, Mode, Relu, Sequential, Workspace};
use rand::Rng;
use tensor::Tensor;

use crate::delegate_layer;

/// Downsampling factor from image pixels to grid cells.
pub const GRID: usize = 4;

#[inline]
fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// The detector network: conv backbone (two pooling stages) + 1×1 conv head
/// emitting 5 channels per grid cell.
#[derive(Clone)]
pub struct TinyDetector {
    net: Sequential,
    image_hw: usize,
}

impl TinyDetector {
    /// Builds a detector for 3-channel `hw`×`hw` scenes.
    ///
    /// # Panics
    ///
    /// Panics if `hw` is not divisible by [`GRID`].
    pub fn new(hw: usize, rng: &mut impl Rng) -> Self {
        assert_eq!(hw % GRID, 0, "scene size must be divisible by {GRID}");
        let net = Sequential::new(vec![
            Box::new(Conv2d::new(3, 16, 3, 1, 1, rng)),
            Box::new(Relu::new()),
            Box::new(Dropout::new(0.0, 0xf1)),
            Box::new(MaxPool2d::new(2, 2)),
            Box::new(Conv2d::new(16, 32, 3, 1, 1, rng)),
            Box::new(Relu::new()),
            Box::new(Dropout::new(0.0, 0xf2)),
            Box::new(MaxPool2d::new(2, 2)),
            Box::new(Conv2d::new(32, 5, 1, 1, 0, rng)),
        ]);
        TinyDetector { net, image_hw: hw }
    }

    /// Image side length this detector was built for.
    pub fn image_hw(&self) -> usize {
        self.image_hw
    }

    /// Grid side length (`hw / GRID`).
    pub fn grid(&self) -> usize {
        self.image_hw / GRID
    }

    /// Decodes raw head output for one image into `(box, score)` pairs with
    /// objectness above `threshold`.
    ///
    /// # Panics
    ///
    /// Panics if `raw` is not `[5, G, G]`.
    pub fn decode(&self, raw: &Tensor, threshold: f32) -> Vec<(BBox, f32)> {
        let g = self.grid();
        assert_eq!(raw.dims(), &[5, g, g], "unexpected head output shape");
        let cell = GRID as f32;
        let size = self.image_hw as f32;
        let mut out = Vec::new();
        for i in 0..g {
            for j in 0..g {
                let score = sigmoid(raw.at(&[0, i, j]));
                if score < threshold {
                    continue;
                }
                let cx = (j as f32 + sigmoid(raw.at(&[1, i, j]))) * cell;
                let cy = (i as f32 + sigmoid(raw.at(&[2, i, j]))) * cell;
                let w = sigmoid(raw.at(&[3, i, j])) * size;
                let h = sigmoid(raw.at(&[4, i, j])) * size;
                out.push((
                    BBox::new(cx - w / 2.0, cy - h / 2.0, cx + w / 2.0, cy + h / 2.0),
                    score,
                ));
            }
        }
        // Greedy NMS at IoU 0.4. Descending with NaN ranked last: a
        // NaN-scored box (drift-corrupted head output) must not win the
        // suppression contest by tie-ing against every real score.
        out.sort_by(|a, b| tensor::nan_low_cmp(b.1, a.1));
        let mut kept: Vec<(BBox, f32)> = Vec::new();
        for (bbox, score) in out {
            if kept.iter().all(|(k, _)| k.iou(&bbox) < 0.4) {
                kept.push((bbox, score));
            }
        }
        kept
    }

    /// Runs inference on a batch of scene images `[N, 3, H, W]` and decodes
    /// per-image detections.
    pub fn detect(&mut self, images: &Tensor, threshold: f32) -> Vec<Vec<(BBox, f32)>> {
        let raw = self.net.forward(images, Mode::Eval);
        let g = self.grid();
        let n = images.dims()[0];
        let per = 5 * g * g;
        (0..n)
            .map(|i| {
                let slice =
                    Tensor::from_vec(raw.as_slice()[i * per..(i + 1) * per].to_vec(), &[5, g, g])
                        .expect("head slice length");
                self.decode(&slice, threshold)
            })
            .collect()
    }
}

delegate_layer!(TinyDetector, "tiny_detector");

/// Builds training targets and the loss/gradient for [`TinyDetector`].
#[derive(Debug, Clone, Copy)]
pub struct DetectionLoss {
    /// Weight on the box-regression terms relative to objectness.
    pub box_weight: f32,
}

impl Default for DetectionLoss {
    fn default() -> Self {
        DetectionLoss { box_weight: 2.0 }
    }
}

impl DetectionLoss {
    /// Computes the mean loss and its gradient w.r.t. the raw head output
    /// for a batch of scenes.
    ///
    /// Objectness: MSE between `σ(logit)` and the 0/1 cell target over all
    /// cells. Box terms: MSE between the sigmoid-decoded offsets/sizes and
    /// the encoded ground truth, on positive cells only.
    ///
    /// # Panics
    ///
    /// Panics if `raw` is not `[N, 5, G, G]` with `N == scenes.len()`.
    pub fn loss_and_grad(&self, raw: &Tensor, scenes: &[Scene], image_hw: usize) -> (f32, Tensor) {
        let g = image_hw / GRID;
        let mut grad = Tensor::zeros(raw.dims());
        let mut targets = vec![0.0f32; 5 * g * g];
        let loss = self.loss_and_grad_impl(raw, scenes, image_hw, &mut grad, &mut targets);
        (loss, grad)
    }

    /// [`DetectionLoss::loss_and_grad`] backed by pooled buffers: the
    /// gradient tensor and the per-scene target scratch both come from
    /// `ws`, so a warmed training loop computes the loss with zero heap
    /// allocations. The caller recycles the returned gradient after its
    /// backward pass. Bit-identical to the allocating variant.
    ///
    /// # Panics
    ///
    /// Panics if `raw` is not `[N, 5, G, G]` with `N == scenes.len()`.
    pub fn loss_and_grad_ws(
        &self,
        raw: &Tensor,
        scenes: &[Scene],
        image_hw: usize,
        ws: &mut Workspace,
    ) -> (f32, Tensor) {
        let g = image_hw / GRID;
        let mut grad = ws.take_tensor(raw.dims());
        grad.as_mut_slice().fill(0.0); // pooled buffers carry stale data
        let mut targets = ws.take(5 * g * g);
        let loss = self.loss_and_grad_impl(raw, scenes, image_hw, &mut grad, &mut targets);
        ws.recycle_vec(targets);
        (loss, grad)
    }

    /// Shared kernel: `grad` must be pre-zeroed and shaped like `raw`;
    /// `targets` is `5 * G * G` scratch holding per-cell
    /// `[obj, cx-frac, cy-frac, w-frac, h-frac]` rows, rebuilt per scene.
    fn loss_and_grad_impl(
        &self,
        raw: &Tensor,
        scenes: &[Scene],
        image_hw: usize,
        grad: &mut Tensor,
        targets: &mut [f32],
    ) -> f32 {
        let g = image_hw / GRID;
        let n = scenes.len();
        assert_eq!(raw.dims(), &[n, 5, g, g], "head output shape mismatch");
        assert_eq!(targets.len(), 5 * g * g, "target scratch length mismatch");
        let cell = GRID as f32;
        let size = image_hw as f32;
        let mut loss = 0.0f32;
        let cells = (n * g * g) as f32;
        for (s, scene) in scenes.iter().enumerate() {
            // Cell targets: rows of (obj, cx-frac, cy-frac, w-frac, h-frac).
            targets.fill(0.0);
            for b in &scene.boxes {
                let (cx, cy) = b.center();
                let (w, h) = b.size();
                let j = ((cx / cell) as usize).min(g - 1);
                let i = ((cy / cell) as usize).min(g - 1);
                let row = &mut targets[(i * g + j) * 5..(i * g + j) * 5 + 5];
                row[0] = 1.0;
                row[1] = (cx / cell - j as f32).clamp(0.01, 0.99);
                row[2] = (cy / cell - i as f32).clamp(0.01, 0.99);
                row[3] = (w / size).clamp(0.01, 0.99);
                row[4] = (h / size).clamp(0.01, 0.99);
            }
            for i in 0..g {
                for j in 0..g {
                    let row = &targets[(i * g + j) * 5..(i * g + j) * 5 + 5];
                    let obj_target = row[0];
                    let logit = raw.at(&[s, 0, i, j]);
                    let p = sigmoid(logit);
                    let diff = p - obj_target;
                    loss += diff * diff / cells;
                    *grad.at_mut(&[s, 0, i, j]) = 2.0 * diff * p * (1.0 - p) / cells;
                    if obj_target > 0.0 {
                        for (k, &tk) in row[1..].iter().enumerate() {
                            let l = raw.at(&[s, k + 1, i, j]);
                            let v = sigmoid(l);
                            let d = v - tk;
                            loss += self.box_weight * d * d / cells;
                            *grad.at_mut(&[s, k + 1, i, j]) =
                                2.0 * self.box_weight * d * v * (1.0 - v) / cells;
                        }
                    }
                }
            }
        }
        loss
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datasets::ped_scenes;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn forward_shape() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut det = TinyDetector::new(24, &mut rng);
        let y = det.forward(&Tensor::ones(&[2, 3, 24, 24]), Mode::Eval);
        assert_eq!(y.dims(), &[2, 5, 6, 6]);
        assert_eq!(det.grid(), 6);
    }

    #[test]
    fn decode_respects_threshold_and_nms() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let det = TinyDetector::new(24, &mut rng);
        let mut raw = Tensor::full(&[5, 6, 6], -10.0); // all objectness ~0
        *raw.at_mut(&[0, 2, 3]) = 10.0; // one confident cell
        *raw.at_mut(&[1, 2, 3]) = 0.0; // cx at cell center
        *raw.at_mut(&[2, 2, 3]) = 0.0; // cy at cell center
        *raw.at_mut(&[3, 2, 3]) = 0.0; // w = 12 px
        *raw.at_mut(&[4, 2, 3]) = 0.0; // h = 12 px
        let dets = det.decode(&raw, 0.5);
        assert_eq!(dets.len(), 1);
        let (bbox, score) = dets[0];
        assert!(score > 0.99);
        let (cx, cy) = bbox.center();
        assert!((cx - 14.0).abs() < 0.1 && (cy - 10.0).abs() < 0.1);
    }

    #[test]
    fn nan_scored_cell_cannot_win_nms() {
        // Regression for the partial_cmp(..).unwrap_or(Equal) NMS sort:
        // a NaN objectness logit produces a NaN score that passed the
        // `score < threshold` gate (NaN comparisons are false) and then
        // tied against every real detection, leaving the winner to
        // input order. With nan_low_cmp the NaN box sorts last, so the
        // overlapping real box wins suppression deterministically.
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let det = TinyDetector::new(24, &mut rng);
        let mut raw = Tensor::full(&[5, 6, 6], -10.0);
        // Two adjacent confident cells decoding to overlapping boxes;
        // the earlier (scan-order) one is NaN-corrupted.
        for (cell, logit) in [(2usize, f32::NAN), (3usize, 10.0)] {
            *raw.at_mut(&[0, 2, cell]) = logit;
            *raw.at_mut(&[1, 2, cell]) = 0.0;
            *raw.at_mut(&[2, 2, cell]) = 0.0;
            *raw.at_mut(&[3, 2, cell]) = 2.0; // wide boxes → IoU > 0.4
            *raw.at_mut(&[4, 2, cell]) = 2.0;
        }
        let dets = det.decode(&raw, 0.5);
        assert_eq!(dets.len(), 1, "overlapping pair must collapse to one");
        assert!(dets[0].1 > 0.99, "the real box must win, got {}", dets[0].1);
    }

    #[test]
    fn loss_gradient_matches_finite_difference() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let scenes = ped_scenes(2, 24, 2, &mut rng);
        let loss_fn = DetectionLoss::default();
        let raw = Tensor::randn(&[2, 5, 6, 6], 0.0, 1.0, &mut rng);
        let (_, grad) = loss_fn.loss_and_grad(&raw, scenes.scenes(), 24);
        let eps = 1e-2;
        let mut max_err = 0.0f32;
        for i in (0..raw.len()).step_by(17) {
            let mut hi = raw.clone();
            hi.as_mut_slice()[i] += eps;
            let mut lo = raw.clone();
            lo.as_mut_slice()[i] -= eps;
            let num = (loss_fn.loss_and_grad(&hi, scenes.scenes(), 24).0
                - loss_fn.loss_and_grad(&lo, scenes.scenes(), 24).0)
                / (2.0 * eps);
            max_err = max_err.max((num - grad.as_slice()[i]).abs());
        }
        assert!(max_err < 1e-3, "gradient error {max_err}");
    }

    #[test]
    fn workspace_loss_is_bit_identical_to_the_allocating_variant() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let scenes = ped_scenes(3, 24, 2, &mut rng);
        let loss_fn = DetectionLoss::default();
        let raw = Tensor::randn(&[3, 5, 6, 6], 0.0, 1.0, &mut rng);
        let (loss, grad) = loss_fn.loss_and_grad(&raw, scenes.scenes(), 24);
        let mut ws = Workspace::new();
        // Pre-dirty the pool so stale contents would surface a missing clear.
        let dirty = Tensor::full(&[3, 5, 6, 6], 7.5);
        ws.recycle(dirty);
        ws.recycle_vec(vec![3.25f32; 5 * 6 * 6]);
        for _ in 0..2 {
            let (loss_ws, grad_ws) = loss_fn.loss_and_grad_ws(&raw, scenes.scenes(), 24, &mut ws);
            assert_eq!(loss.to_bits(), loss_ws.to_bits());
            assert_eq!(grad.as_slice(), grad_ws.as_slice());
            ws.recycle(grad_ws);
        }
    }

    #[test]
    fn detector_learns_on_tiny_set() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let scenes = ped_scenes(4, 24, 1, &mut rng);
        let mut det = TinyDetector::new(24, &mut rng);
        let loss_fn = DetectionLoss::default();
        // Stack scene images into one batch.
        let mut data = Vec::new();
        for scene in scenes.scenes() {
            data.extend_from_slice(scene.image.as_slice());
        }
        let images = Tensor::from_vec(data, &[4, 3, 24, 24]).unwrap();
        let mut opt = nn::Adam::new(0.01);
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..40 {
            let raw = det.forward(&images, Mode::Train);
            let (loss, grad) = loss_fn.loss_and_grad(&raw, scenes.scenes(), 24);
            first.get_or_insert(loss);
            last = loss;
            let _ = det.backward(&grad);
            nn::Optimizer::step(&mut opt, &mut det);
        }
        assert!(last < first.unwrap(), "detector loss must decrease");
    }

    #[test]
    fn has_two_dropout_slots() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let mut det = TinyDetector::new(24, &mut rng);
        assert_eq!(crate::dropout_count(&mut det), 2);
    }
}
