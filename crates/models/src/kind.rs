//! Model registry used by the benchmark harness to build any Fig. 3
//! architecture by name.

use nn::Layer;
use rand::Rng;

use crate::{
    AlexNetS, LeNet5, Mlp, MlpConfig, PreActDepth, PreActResNetS, ResNet18S, StnClassifier, Vgg11S,
};

/// Every classification architecture evaluated in Fig. 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum ModelKind {
    /// 3-layer MLP (Fig. 3(a), 3(i) substrate).
    Mlp,
    /// LeNet-5 (Fig. 3(b)).
    LeNet5,
    /// AlexNet-S (Fig. 3(c)).
    AlexNet,
    /// ResNet-18-S (Fig. 3(d)).
    ResNet18,
    /// VGG-11-S (Fig. 3(e)).
    Vgg11,
    /// PreAct ResNet-18-S (Fig. 3(f)).
    PreAct18,
    /// PreAct ResNet-50-S (Fig. 3(g)).
    PreAct50,
    /// PreAct ResNet-152-S (Fig. 3(h)).
    PreAct152,
    /// Spatial-transformer classifier (Fig. 3(i)).
    Stn,
}

impl ModelKind {
    /// Builds the network for `in_channels`×`hw`×`hw` inputs and `classes`
    /// outputs.
    ///
    /// The MLP flattens its input internally (`Dense` folds trailing dims),
    /// so a single `[N, C·H·W]`-reshaped batch works for all kinds.
    pub fn build(
        &self,
        in_channels: usize,
        hw: usize,
        classes: usize,
        rng: &mut impl Rng,
    ) -> Box<dyn Layer> {
        match self {
            ModelKind::Mlp => Box::new(Mlp::new(
                &MlpConfig::new(in_channels * hw * hw, classes),
                rng,
            )),
            ModelKind::LeNet5 => Box::new(LeNet5::new(in_channels, hw, classes, rng)),
            ModelKind::AlexNet => Box::new(AlexNetS::new(in_channels, hw, classes, rng)),
            ModelKind::ResNet18 => Box::new(ResNet18S::new(in_channels, classes, rng)),
            ModelKind::Vgg11 => Box::new(Vgg11S::new(in_channels, hw, classes, rng)),
            ModelKind::PreAct18 => Box::new(PreActResNetS::new(
                PreActDepth::D18,
                in_channels,
                classes,
                rng,
            )),
            ModelKind::PreAct50 => Box::new(PreActResNetS::new(
                PreActDepth::D50,
                in_channels,
                classes,
                rng,
            )),
            ModelKind::PreAct152 => Box::new(PreActResNetS::new(
                PreActDepth::D152,
                in_channels,
                classes,
                rng,
            )),
            ModelKind::Stn => Box::new(StnClassifier::new(in_channels, hw, classes, rng)),
        }
    }

    /// Whether the model consumes flat `[N, D]` rows rather than image
    /// tensors.
    pub fn wants_flat_input(&self) -> bool {
        matches!(self, ModelKind::Mlp)
    }

    /// Label used in figure output.
    pub fn label(&self) -> &'static str {
        match self {
            ModelKind::Mlp => "mlp",
            ModelKind::LeNet5 => "lenet5",
            ModelKind::AlexNet => "alexnet",
            ModelKind::ResNet18 => "resnet18",
            ModelKind::Vgg11 => "vgg11",
            ModelKind::PreAct18 => "preact-18",
            ModelKind::PreAct50 => "preact-50",
            ModelKind::PreAct152 => "preact-152",
            ModelKind::Stn => "stn",
        }
    }
}

impl std::fmt::Display for ModelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nn::Mode;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use tensor::Tensor;

    #[test]
    fn every_kind_builds_and_forwards() {
        let kinds = [
            ModelKind::Mlp,
            ModelKind::LeNet5,
            ModelKind::AlexNet,
            ModelKind::ResNet18,
            ModelKind::Vgg11,
            ModelKind::PreAct18,
            ModelKind::Stn,
        ];
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        for kind in kinds {
            let mut net = kind.build(3, 16, 10, &mut rng);
            let x = if kind.wants_flat_input() {
                Tensor::ones(&[2, 3 * 16 * 16])
            } else {
                Tensor::ones(&[2, 3, 16, 16])
            };
            let y = net.forward(&x, Mode::Eval);
            assert_eq!(y.dims(), &[2, 10], "{kind} output shape");
            assert!(
                crate::dropout_count(net.as_mut()) > 0,
                "{kind} has no search space"
            );
        }
    }

    #[test]
    fn labels_are_unique() {
        let kinds = [
            ModelKind::Mlp,
            ModelKind::LeNet5,
            ModelKind::AlexNet,
            ModelKind::ResNet18,
            ModelKind::Vgg11,
            ModelKind::PreAct18,
            ModelKind::PreAct50,
            ModelKind::PreAct152,
            ModelKind::Stn,
        ];
        let labels: std::collections::HashSet<_> = kinds.iter().map(|k| k.label()).collect();
        assert_eq!(labels.len(), kinds.len());
    }
}
