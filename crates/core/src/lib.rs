//! **BayesFT** — Bayesian optimization for fault-tolerant neural network
//! architecture (Ye et al., DAC 2021; reproduction), packaged as a
//! composable experiment engine.
//!
//! The paper's pipeline, end to end:
//!
//! 1. **Search space** ([`SearchSpace`]): the paper appends a dropout layer
//!    after every weighted layer and searches the per-layer rates
//!    `α ∈ [0, 1]^{K−1}` (§III-B) — [`DropoutSearchSpace`]. Alternative
//!    spaces plug into the same engine: [`SharedDropoutSpace`] (one shared
//!    rate) and [`GroupedDropoutSpace`] (rates tied across layer groups).
//! 2. **Objective** ([`Objective`]): the drift-marginalized utility of
//!    Eq. (3), estimated by Monte-Carlo sampling (Eq. 4) —
//!    [`DriftObjective`], generic over any [`reram::DriftModel`]
//!    (log-normal, Gaussian-additive, uniform, stuck-at, bit-flip,
//!    composite).
//! 3. **Engine** ([`Engine`], Algorithm 1): alternate SGD epochs on the
//!    weights `θ` with Gaussian-process posterior updates over `α`; pick
//!    each next `α` by maximizing the posterior (via
//!    [`bayesopt::Acquisition`]). Independent Monte-Carlo drift samples
//!    fan out over worker threads (`parallelism(n)`) with bit-identical
//!    results to the serial path.
//! 4. **Reporting** ([`RunReport`], [`accuracy_vs_sigma`], [`SweepTable`],
//!    [`robustness_gain`]): a JSON-serializable run record plus the
//!    accuracy-vs-σ curves of Figs. 2–3 and the "BayesFT is 10–100× more
//!    robust" headline ratios.
//!
//! Errors from every stage surface as the unified [`BayesFtError`].
//! The original [`BayesFt`] driver remains as a thin shim over the engine.
//!
//! # Example
//!
//! ```
//! use bayesft::{DriftObjective, Engine};
//! use datasets::moons;
//! use models::{Mlp, MlpConfig};
//! use rand::SeedableRng;
//! use rand_chacha::ChaCha8Rng;
//!
//! let mut rng = ChaCha8Rng::seed_from_u64(0);
//! let data = moons(200, 0.1, &mut rng);
//! let (train, val) = data.split(0.8, &mut rng);
//! let net = Box::new(Mlp::new(&MlpConfig::new(2, 2).hidden(16), &mut rng));
//!
//! let result = Engine::builder()
//!     .objective(DriftObjective::with_sigmas(vec![0.0, 0.3, 0.6], 3))
//!     .trials(4)
//!     .epochs_per_trial(2)
//!     .final_epochs(2)
//!     .parallelism(2) // fan MC samples over 2 threads; same result as serial
//!     .seed(7)
//!     .run(net, &train, &val)?;
//!
//! assert_eq!(result.report.trials.len(), 4);
//! assert!(!result.report.best_alpha.is_empty());
//! let json = result.report.to_json_string(); // serializable run record
//! assert!(json.contains("\"best_alpha\""));
//! # Ok::<(), bayesft::BayesFtError>(())
//! ```

mod algorithm;
mod engine;
mod error;
mod objective;
mod report;
mod space;
mod sweep;

pub use algorithm::{optimize_dropout, BayesFt, BayesFtConfig, BayesFtResult, Trial};
pub use engine::{Engine, ExperimentBuilder, ExperimentResult};
pub use error::BayesFtError;
pub use objective::{DriftObjective, EvalCtx, Objective, ObjectiveMetric};
pub use report::{RunReport, ScenarioMeta, StageTimings, TrialRecord};
pub use space::{DropoutSearchSpace, GroupedDropoutSpace, SearchSpace, SharedDropoutSpace};
pub use sweep::{accuracy_vs_sigma, robustness_gain, MethodCurve, SweepTable, SIGMA_GRID};
