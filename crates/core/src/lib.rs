//! **BayesFT** — Bayesian optimization for fault-tolerant neural network
//! architecture (Ye et al., DAC 2021; reproduction).
//!
//! The paper's pipeline, end to end:
//!
//! 1. **Search space** ([`DropoutSearchSpace`]): instead of searching all
//!    network topologies, append a dropout layer after every weighted layer
//!    (except the output head) and search only the per-layer rates
//!    `α ∈ [0, 1]^{K−1}` (§III-B).
//! 2. **Objective** ([`DriftObjective`]): the drift-marginalized utility of
//!    Eq. (3), estimated by Monte-Carlo sampling of the log-normal
//!    memristance drift of Eq. (1) — Eq. (4).
//! 3. **Optimizer** ([`BayesFt`], Algorithm 1): alternate SGD epochs on the
//!    weights `θ` with Gaussian-process posterior updates over `α`; pick
//!    each next `α` by maximizing the posterior (via
//!    [`bayesopt::Acquisition`]).
//! 4. **Reporting** ([`accuracy_vs_sigma`], [`SweepTable`],
//!    [`robustness_gain`]): the accuracy-vs-σ curves of Figs. 2–3 and the
//!    "BayesFT is 10–100× more robust" headline ratios.
//!
//! # Example
//!
//! ```
//! use bayesft::{BayesFt, BayesFtConfig};
//! use datasets::moons;
//! use models::{Mlp, MlpConfig};
//! use rand::SeedableRng;
//! use rand_chacha::ChaCha8Rng;
//!
//! let mut rng = ChaCha8Rng::seed_from_u64(0);
//! let data = moons(200, 0.1, &mut rng);
//! let (train, val) = data.split(0.8, &mut rng);
//! let net = Box::new(Mlp::new(&MlpConfig::new(2, 2).hidden(16), &mut rng));
//! let cfg = BayesFtConfig::fast_test();
//! let result = BayesFt::new(cfg).run(net, &train, &val)?;
//! assert!(!result.best_alpha.is_empty());
//! # Ok::<(), bayesopt::GpError>(())
//! ```

mod algorithm;
mod objective;
mod space;
mod sweep;

pub use algorithm::{optimize_dropout, BayesFt, BayesFtConfig, BayesFtResult, Trial};
pub use objective::{DriftObjective, ObjectiveMetric};
pub use space::DropoutSearchSpace;
pub use sweep::{accuracy_vs_sigma, robustness_gain, MethodCurve, SweepTable, SIGMA_GRID};
