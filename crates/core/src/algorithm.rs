//! Algorithm 1 compatibility layer: [`BayesFt`] (a thin shim over the
//! [`Engine`](crate::Engine)) and the generic [`optimize_dropout`] loop.

use baselines::{TrainConfig, TrainedModel};
use bayesopt::{Acquisition, BayesOpt, SquaredExponential};
use datasets::ClassificationDataset;
use nn::Layer;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::{BayesFtError, Engine, ExperimentResult, SearchSpace};

/// One completed Algorithm-1 trial.
#[derive(Debug, Clone, PartialEq)]
pub struct Trial {
    /// Architecture coordinates in the unit cube.
    pub alpha: Vec<f64>,
    /// Monte-Carlo drift objective value (mean).
    pub objective: f64,
    /// Objective standard deviation across MC samples.
    pub objective_std: f64,
}

/// Hyper-parameters of the BayesFT search.
#[derive(Debug, Clone, PartialEq)]
pub struct BayesFtConfig {
    /// Number of Bayesian-optimization trials (outer iterations).
    pub trials: usize,
    /// SGD epochs per trial (`E` in Algorithm 1).
    pub epochs_per_trial: usize,
    /// Monte-Carlo samples per objective evaluation (`T` in Eq. 4).
    pub mc_samples: usize,
    /// Drift level the architecture is optimized for.
    pub sigma: f32,
    /// Acquisition rule (default: the paper's posterior mean).
    pub acquisition: Acquisition,
    /// GP kernel lengthscale over the unit cube.
    pub lengthscale: f64,
    /// Weight-training hyper-parameters.
    pub train: TrainConfig,
    /// Master seed.
    pub seed: u64,
    /// Largest dropout rate `α = 1` maps to.
    pub max_rate: f32,
    /// Fine-tuning epochs after the best architecture is locked in.
    pub final_epochs: usize,
    /// Monte-Carlo worker threads (`0` = one per CPU core, `1` = serial).
    /// Any value produces identical results.
    pub parallelism: usize,
}

impl Default for BayesFtConfig {
    fn default() -> Self {
        BayesFtConfig {
            trials: 12,
            epochs_per_trial: 3,
            mc_samples: 8,
            sigma: 0.6,
            acquisition: Acquisition::PosteriorMean,
            lengthscale: 0.3,
            train: TrainConfig::default(),
            seed: 0,
            max_rate: 0.8,
            final_epochs: 10,
            parallelism: 1,
        }
    }
}

impl BayesFtConfig {
    /// A deliberately tiny budget for unit tests.
    pub fn fast_test() -> Self {
        BayesFtConfig {
            trials: 4,
            epochs_per_trial: 2,
            mc_samples: 3,
            sigma: 0.5,
            train: TrainConfig::fast_test(),
            final_epochs: 2,
            ..BayesFtConfig::default()
        }
    }
}

/// Result of a BayesFT search.
pub struct BayesFtResult {
    /// The trained network with the best architecture applied, bundled for
    /// drift evaluation alongside the baselines.
    pub model: TrainedModel,
    /// Best architecture coordinates found.
    pub best_alpha: Vec<f64>,
    /// Full trial history, in order.
    pub history: Vec<Trial>,
}

impl std::fmt::Debug for BayesFtResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BayesFtResult")
            .field("best_alpha", &self.best_alpha)
            .field("trials", &self.history.len())
            .finish()
    }
}

impl From<ExperimentResult> for BayesFtResult {
    fn from(outcome: ExperimentResult) -> Self {
        BayesFtResult {
            model: outcome.model,
            best_alpha: outcome.report.best_alpha,
            history: outcome
                .report
                .trials
                .into_iter()
                .map(|t| Trial {
                    alpha: t.alpha,
                    objective: t.objective,
                    objective_std: t.objective_std,
                })
                .collect(),
        }
    }
}

/// The BayesFT search driver (Algorithm 1) — kept as a compatibility shim
/// over [`Engine`](crate::Engine), which it delegates to verbatim.
///
/// New code should prefer the builder API directly:
/// `Engine::builder().trials(..).sigma(..).run(net, train, val)?` exposes
/// the same search plus pluggable spaces/objectives, Monte-Carlo
/// parallelism, and the serializable [`RunReport`](crate::RunReport).
#[derive(Debug, Clone)]
pub struct BayesFt {
    config: BayesFtConfig,
}

impl BayesFt {
    /// Creates a driver with the given configuration.
    pub fn new(config: BayesFtConfig) -> Self {
        BayesFt { config }
    }

    /// Runs the alternating search on a classification task; see
    /// [`Engine::run`](crate::Engine::run).
    ///
    /// # Errors
    ///
    /// Returns [`BayesFtError`] if the configuration is invalid, the
    /// network has no dropout layers, or the GP surrogate cannot be
    /// fitted.
    pub fn run(
        &self,
        net: Box<dyn Layer>,
        train: &ClassificationDataset,
        val: &ClassificationDataset,
    ) -> Result<BayesFtResult, BayesFtError> {
        let cfg = &self.config;
        let outcome = Engine::builder()
            .trials(cfg.trials)
            .epochs_per_trial(cfg.epochs_per_trial)
            .mc_samples(cfg.mc_samples)
            .sigma(cfg.sigma)
            .acquisition(cfg.acquisition)
            .lengthscale(cfg.lengthscale)
            .train(cfg.train.clone())
            .seed(cfg.seed)
            .max_rate(cfg.max_rate)
            .final_epochs(cfg.final_epochs)
            .parallelism(cfg.parallelism)
            .run(net, train, val)?;
        Ok(BayesFtResult::from(outcome))
    }
}

/// Generic Algorithm-1 loop, decoupled from the task: alternates a caller-
/// supplied training step with Bayesian-optimization updates over any
/// [`SearchSpace`].
///
/// `train_step` trains `θ` for one trial's budget; `objective` returns
/// `(mean, std)` of the drift-marginalized utility for trial `t` (derive
/// per-trial seeds with [`reram::mix_seed`]). Used by experiments whose
/// training loop does not fit the classification mold (e.g. the
/// object-detection mAP objective).
///
/// # Errors
///
/// Returns [`BayesFtError::InvalidConfig`] for a zero trial budget,
/// [`BayesFtError::DimensionMismatch`] if the space does not fit the
/// network, and [`BayesFtError::Gp`] if the surrogate cannot be fitted.
#[allow(clippy::too_many_arguments)]
pub fn optimize_dropout(
    net: &mut dyn Layer,
    space: &dyn SearchSpace,
    trials: usize,
    acquisition: Acquisition,
    lengthscale: f64,
    seed: u64,
    mut train_step: impl FnMut(&mut dyn Layer),
    mut objective: impl FnMut(&mut dyn Layer, usize) -> (f64, f64),
) -> Result<(Vec<f64>, Vec<Trial>), BayesFtError> {
    if trials == 0 {
        return Err(BayesFtError::InvalidConfig(
            "need at least one search trial".into(),
        ));
    }
    let mut bo = BayesOpt::new(space.dim(), SquaredExponential::isotropic(1.0, lengthscale))
        .acquisition(acquisition)
        .candidates(192);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut history = Vec::with_capacity(trials);
    for t in 0..trials {
        let alpha = bo.suggest(&mut rng)?;
        space.apply(net, &alpha)?;
        train_step(net);
        let (mean, std) = objective(net, t);
        bo.tell(alpha.clone(), mean);
        history.push(Trial {
            alpha,
            objective: mean,
            objective_std: std,
        });
    }
    let best_alpha = bo
        .best_observed()
        .map(|(x, _)| x)
        .ok_or_else(|| BayesFtError::InvalidConfig("no trials completed".into()))?;
    Ok((best_alpha, history))
}

#[cfg(test)]
mod tests {
    use super::*;
    use baselines::{drift_accuracy, train_erm};
    use datasets::moons;
    use models::{Mlp, MlpConfig};
    use reram::LogNormalDrift;

    #[test]
    fn search_produces_history_and_valid_alpha() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let data = moons(200, 0.1, &mut rng);
        let (train, val) = data.split(0.8, &mut rng);
        let net = Box::new(Mlp::new(&MlpConfig::new(2, 2).hidden(16), &mut rng));
        let result = BayesFt::new(BayesFtConfig::fast_test())
            .run(net, &train, &val)
            .unwrap();
        assert_eq!(result.history.len(), 4);
        assert_eq!(result.best_alpha.len(), 2);
        assert!(result.best_alpha.iter().all(|&a| (0.0..=1.0).contains(&a)));
        assert_eq!(result.model.method, "bayesft");
    }

    #[test]
    fn best_alpha_matches_best_history_entry() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let data = moons(150, 0.1, &mut rng);
        let (train, val) = data.split(0.8, &mut rng);
        let net = Box::new(Mlp::new(&MlpConfig::new(2, 2), &mut rng));
        let result = BayesFt::new(BayesFtConfig::fast_test())
            .run(net, &train, &val)
            .unwrap();
        let best = result
            .history
            .iter()
            .max_by(|a, b| bayesopt::nan_low_cmp(a.objective, b.objective))
            .unwrap();
        assert_eq!(best.alpha, result.best_alpha);
    }

    #[test]
    fn shim_parallelism_matches_serial() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let data = moons(150, 0.1, &mut rng);
        let (train, val) = data.split(0.8, &mut rng);
        let mut rng_a = ChaCha8Rng::seed_from_u64(6);
        let net_a = Box::new(Mlp::new(&MlpConfig::new(2, 2).hidden(12), &mut rng_a));
        let mut rng_b = ChaCha8Rng::seed_from_u64(6);
        let net_b = Box::new(Mlp::new(&MlpConfig::new(2, 2).hidden(12), &mut rng_b));
        let serial = BayesFt::new(BayesFtConfig::fast_test())
            .run(net_a, &train, &val)
            .unwrap();
        let parallel = BayesFt::new(BayesFtConfig {
            parallelism: 4,
            ..BayesFtConfig::fast_test()
        })
        .run(net_b, &train, &val)
        .unwrap();
        assert_eq!(serial.history, parallel.history);
        assert_eq!(serial.best_alpha, parallel.best_alpha);
    }

    #[test]
    fn bayesft_beats_erm_under_drift_on_moons() {
        // The paper's headline claim, at miniature scale: the searched
        // architecture is more drift-robust than plain ERM.
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let data = moons(400, 0.1, &mut rng);
        let (train, val) = data.split(0.8, &mut rng);

        let erm_net = Box::new(Mlp::new(&MlpConfig::new(2, 2).hidden(24), &mut rng));
        let cfg = TrainConfig {
            epochs: 24,
            ..TrainConfig::fast_test()
        };
        let mut erm = train_erm(erm_net, &train, &cfg);

        let bft_net = Box::new(Mlp::new(&MlpConfig::new(2, 2).hidden(24), &mut rng));
        let bft_cfg = BayesFtConfig {
            trials: 8,
            epochs_per_trial: 3,
            mc_samples: 6,
            sigma: 0.8,
            train: TrainConfig::fast_test(),
            ..BayesFtConfig::default()
        };
        let mut bft = BayesFt::new(bft_cfg).run(bft_net, &train, &val).unwrap();

        let sigma = LogNormalDrift::new(1.0);
        let erm_acc = drift_accuracy(&mut erm, &val, &sigma, 12, 99).mean;
        let bft_acc = drift_accuracy(&mut bft.model, &val, &sigma, 12, 99).mean;
        assert!(
            bft_acc >= erm_acc - 0.02,
            "BayesFT ({bft_acc}) should not lose to ERM ({erm_acc}) under drift"
        );
    }

    #[test]
    fn generic_loop_rejects_zero_trials() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut net = Mlp::new(&MlpConfig::new(2, 2), &mut rng);
        let space = crate::DropoutSearchSpace::probe(&mut net);
        let err = optimize_dropout(
            &mut net,
            &space,
            0,
            Acquisition::PosteriorMean,
            0.3,
            0,
            |_| {},
            |_, _| (0.0, 0.0),
        )
        .unwrap_err();
        assert!(matches!(err, BayesFtError::InvalidConfig(_)));
    }
}
