//! Objectives: the drift-marginalized utility of Eqs. (3)–(4), behind a
//! pluggable trait.

use std::sync::Arc;

use datasets::ClassificationDataset;
use nn::{softmax_cross_entropy, Layer, Mode};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use reram::{DriftModel, FaultInjector, LogNormalDrift, McStats};
use tensor::Tensor;

/// Per-evaluation metadata handed to an [`Objective`] by the engine.
///
/// Carries the already-decorrelated seed for this trial (see
/// [`reram::mix_seed`]) plus scheduling information, so objectives never
/// derive their own streams from a raw master seed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvalCtx {
    /// Zero-based trial index within the search.
    pub trial: usize,
    /// Decorrelated RNG seed for this evaluation.
    pub seed: u64,
    /// Worker threads the objective may fan Monte-Carlo samples over
    /// (`<= 1` means serial).
    pub parallelism: usize,
}

impl EvalCtx {
    /// A serial evaluation context.
    pub fn new(trial: usize, seed: u64) -> Self {
        EvalCtx {
            trial,
            seed,
            parallelism: 1,
        }
    }

    /// Sets the worker budget.
    pub fn parallelism(mut self, workers: usize) -> Self {
        self.parallelism = workers;
        self
    }
}

/// A scalar utility of a network on a validation set, to be maximized by
/// the Bayesian-optimization loop.
///
/// Implementations must be deterministic in `(network weights, data, ctx)`:
/// given the same inputs they must return identical statistics regardless
/// of `ctx.parallelism` — the engine's reproducibility guarantee leans on
/// this.
pub trait Objective: Send + Sync {
    /// Evaluates the utility; `.mean` is what the optimizer maximizes.
    fn evaluate(
        &self,
        network: &mut dyn Layer,
        data: &ClassificationDataset,
        ctx: &EvalCtx,
    ) -> McStats;

    /// Short label identifying the objective in a
    /// [`RunReport`](crate::RunReport).
    fn label(&self) -> String {
        "custom".to_string()
    }
}

/// What the Monte-Carlo marginalization measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ObjectiveMetric {
    /// `−E[ℓ]`, the paper's Eq. (3) utility (higher is better).
    NegLoss,
    /// Expected test accuracy (higher is better) — monotonically related
    /// and what Fig. 3 reports.
    #[default]
    Accuracy,
}

/// Evaluates `u(α, θ) ≈ (1/T) Σ_t metric(f(drift_t(θ)))` on a held-out set.
///
/// Generic over the fault distribution: any set of
/// [`reram::DriftModel`]s — log-normal (the paper's Eq. 1), additive
/// Gaussian, uniform, stuck-at, bit-flip, or composites — can be averaged
/// over, not just the log-normal σ-ladder of the original formulation.
///
/// # Example
///
/// ```
/// use bayesft::DriftObjective;
/// use datasets::moons;
/// use models::{Mlp, MlpConfig};
/// use rand::SeedableRng;
/// use rand_chacha::ChaCha8Rng;
/// use reram::StuckAtFault;
/// use std::sync::Arc;
///
/// let mut rng = ChaCha8Rng::seed_from_u64(0);
/// let data = moons(100, 0.1, &mut rng);
/// let mut net = Mlp::new(&MlpConfig::new(2, 2), &mut rng);
///
/// // The paper's log-normal objective…
/// let obj = DriftObjective::new(0.5, 4);
/// assert_eq!(obj.evaluate(&mut net, &data, 7).values.len(), 4);
///
/// // …or any other fault model.
/// let stuck = DriftObjective::with_models(
///     vec![Arc::new(StuckAtFault::new(0.1, 0.0, 1.0))], 4);
/// assert_eq!(stuck.evaluate(&mut net, &data, 7).values.len(), 4);
/// ```
#[derive(Clone)]
pub struct DriftObjective {
    /// Fault distributions the objective averages over. The paper's
    /// Eq. (3) uses a single log-normal σ; averaging over a small ladder
    /// (e.g. `{0, σ/2, σ}`) trades a little fidelity for architectures
    /// that keep their clean accuracy — used by the search driver.
    levels: Vec<Arc<dyn DriftModel>>,
    /// Monte-Carlo sample count `T` (Eq. 4) per fault level.
    trials: usize,
    /// Measured quantity.
    metric: ObjectiveMetric,
}

impl std::fmt::Debug for DriftObjective {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DriftObjective")
            .field(
                "levels",
                &self.levels.iter().map(|m| m.name()).collect::<Vec<_>>(),
            )
            .field("trials", &self.trials)
            .field("metric", &self.metric)
            .finish()
    }
}

impl DriftObjective {
    /// Creates the objective at a single log-normal drift level `sigma`
    /// with `T = trials` MC samples, measuring accuracy.
    ///
    /// # Panics
    ///
    /// Panics if `trials == 0` or `sigma` is negative.
    pub fn new(sigma: f32, trials: usize) -> Self {
        DriftObjective::with_sigmas(vec![sigma], trials)
    }

    /// Creates an objective that averages the metric over several
    /// log-normal drift levels.
    ///
    /// # Panics
    ///
    /// Panics if `trials == 0`, `sigmas` is empty, or any σ is negative.
    pub fn with_sigmas(sigmas: Vec<f32>, trials: usize) -> Self {
        assert!(!sigmas.is_empty(), "need at least one drift level");
        let levels: Vec<Arc<dyn DriftModel>> = sigmas
            .into_iter()
            .map(|s| Arc::new(LogNormalDrift::new(s)) as Arc<dyn DriftModel>)
            .collect();
        DriftObjective::with_models(levels, trials)
    }

    /// Creates an objective averaging over the fault mix described by
    /// textual/config [`reram::FaultSpec`]s — the entry point scenario
    /// files and CLIs share (`lognormal:0.3`, `quantize:16+stuckat:0.01`).
    ///
    /// # Errors
    ///
    /// Returns [`BayesFtError::InvalidConfig`] for an empty spec list or
    /// `trials == 0`, and [`BayesFtError::Fault`] if a spec fails to build.
    pub fn from_specs(
        specs: &[reram::FaultSpec],
        trials: usize,
    ) -> Result<Self, crate::BayesFtError> {
        if specs.is_empty() {
            return Err(crate::BayesFtError::InvalidConfig(
                "need at least one fault spec".into(),
            ));
        }
        if trials == 0 {
            return Err(crate::BayesFtError::InvalidConfig(
                "need at least one Monte-Carlo sample".into(),
            ));
        }
        let models = specs
            .iter()
            .map(reram::FaultSpec::build_arc)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(DriftObjective::with_models(models, trials))
    }

    /// Creates an objective averaging over arbitrary fault models.
    ///
    /// # Panics
    ///
    /// Panics if `trials == 0` or `models` is empty.
    pub fn with_models(models: Vec<Arc<dyn DriftModel>>, trials: usize) -> Self {
        assert!(trials > 0, "need at least one Monte-Carlo sample");
        assert!(!models.is_empty(), "need at least one fault model");
        DriftObjective {
            levels: models,
            trials,
            metric: ObjectiveMetric::Accuracy,
        }
    }

    /// Switches the measured quantity.
    pub fn metric(mut self, metric: ObjectiveMetric) -> Self {
        self.metric = metric;
        self
    }

    /// Monte-Carlo samples per fault level.
    pub fn trials(&self) -> usize {
        self.trials
    }

    /// The fault models averaged over.
    pub fn levels(&self) -> &[Arc<dyn DriftModel>] {
        &self.levels
    }

    /// Monte-Carlo statistics of the metric under drift, pooled over all
    /// fault levels; the objective value for Bayesian optimization is
    /// `.mean`. Serial evaluation; the network's weights are restored
    /// afterwards.
    pub fn evaluate(
        &self,
        network: &mut dyn Layer,
        data: &ClassificationDataset,
        seed: u64,
    ) -> McStats {
        self.evaluate_parallel(network, data, seed, 1)
    }

    /// [`DriftObjective::evaluate`] with the Monte-Carlo samples of **all**
    /// fault levels fanned out over one pool of `workers` threads.
    /// Replicas are cloned and threads spawned once per evaluation, not per
    /// level. Bit-identical to the serial path for every worker count:
    /// sample `(i, t)` uses the same RNG seed either way, and results are
    /// reassembled in level-major order.
    pub fn evaluate_parallel(
        &self,
        network: &mut dyn Layer,
        data: &ClassificationDataset,
        seed: u64,
        workers: usize,
    ) -> McStats {
        let metric = self.metric;
        let trials = self.trials;
        let total = self.levels.len() * trials;
        let workers = workers.min(total);
        // Per-sample seed, shared by both paths. The inner mix matches
        // what `reram::monte_carlo` derives for trial `t` of a run seeded
        // with the outer mix — the equality the serial path relies on.
        let sample_seed =
            |i: usize, t: usize| reram::mix_seed(reram::mix_seed(seed, i as u64 + 1), t as u64);

        if workers <= 1 {
            let mut values = Vec::with_capacity(total);
            for (i, level) in self.levels.iter().enumerate() {
                let stats = reram::monte_carlo(
                    network,
                    level.as_ref(),
                    trials,
                    reram::mix_seed(seed, i as u64 + 1),
                    |net| evaluate_once(net, data, metric),
                );
                values.extend(stats.values);
            }
            return McStats::from_values(values);
        }

        let snapshot = FaultInjector::snapshot(network);
        let snapshot_ref = &snapshot;
        let levels = &self.levels;
        let replicas: Vec<Box<dyn Layer>> = (0..workers).map(|_| network.clone_box()).collect();
        let mut values = vec![0.0f32; total];
        std::thread::scope(|scope| {
            let handles: Vec<_> = replicas
                .into_iter()
                .enumerate()
                .map(|(w, mut replica)| {
                    scope.spawn(move || {
                        let mut local = Vec::with_capacity(total / workers + 1);
                        let mut k = w;
                        // Fused inject-from-snapshot (see `reram::monte_carlo`):
                        // every sample drifts straight from the shared pristine
                        // snapshot, eliminating the per-sample restore pass.
                        // The replica is dropped when the worker exits.
                        while k < total {
                            let (i, t) = (k / trials, k % trials);
                            let mut rng = ChaCha8Rng::seed_from_u64(sample_seed(i, t));
                            FaultInjector::inject_from(
                                snapshot_ref,
                                replica.as_mut(),
                                levels[i].as_ref(),
                                &mut rng,
                            )
                            .expect("snapshot was taken from this network's replica");
                            local.push((k, evaluate_once(replica.as_mut(), data, metric)));
                            k += workers;
                        }
                        local
                    })
                })
                .collect();
            for handle in handles {
                for (k, v) in handle.join().expect("objective worker panicked") {
                    values[k] = v;
                }
            }
        });
        McStats::from_values(values)
    }
}

impl Objective for DriftObjective {
    fn evaluate(
        &self,
        network: &mut dyn Layer,
        data: &ClassificationDataset,
        ctx: &EvalCtx,
    ) -> McStats {
        self.evaluate_parallel(network, data, ctx.seed, ctx.parallelism)
    }

    fn label(&self) -> String {
        let levels: Vec<&str> = self.levels.iter().map(|m| m.name()).collect();
        format!("drift[{}]x{}", levels.join(","), self.trials)
    }
}

fn evaluate_once(
    net: &mut dyn Layer,
    data: &ClassificationDataset,
    metric: ObjectiveMetric,
) -> f32 {
    let mut total_loss = 0.0f32;
    let mut correct = 0usize;
    let mut batches = 0usize;
    for (x, labels) in data.batches(64) {
        let x = flatten_if_mlp(net, &x);
        let logits = net.forward(x.as_ref(), Mode::Eval);
        match metric {
            ObjectiveMetric::NegLoss => {
                total_loss += softmax_cross_entropy(&logits, &labels).loss;
                batches += 1;
            }
            ObjectiveMetric::Accuracy => {
                correct += logits
                    .argmax_rows()
                    .iter()
                    .zip(&labels)
                    .filter(|(p, l)| p == l)
                    .count();
            }
        }
    }
    match metric {
        ObjectiveMetric::NegLoss => -total_loss / batches.max(1) as f32,
        ObjectiveMetric::Accuracy => correct as f32 / data.len().max(1) as f32,
    }
}

/// Flattens image batches for MLP-style networks; borrows the input
/// untouched otherwise — the non-MLP eval loop used to pay one full batch
/// clone here per batch per Monte-Carlo trial.
fn flatten_if_mlp<'a>(net: &mut dyn Layer, x: &'a Tensor) -> std::borrow::Cow<'a, Tensor> {
    if net.name() == "mlp" && x.rank() > 2 {
        let n = x.dims()[0];
        let rest: usize = x.dims()[1..].iter().product();
        std::borrow::Cow::Owned(x.reshaped(&[n, rest]).expect("element count preserved"))
    } else {
        std::borrow::Cow::Borrowed(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datasets::moons;
    use models::{Mlp, MlpConfig};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use reram::{GaussianAdditive, StuckAtFault, UniformDrift};

    fn setup() -> (Mlp, ClassificationDataset) {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let data = moons(200, 0.1, &mut rng);
        let net = Mlp::new(&MlpConfig::new(2, 2).hidden(16), &mut rng);
        (net, data)
    }

    #[test]
    fn zero_sigma_objective_is_deterministic() {
        let (mut net, data) = setup();
        let obj = DriftObjective::new(0.0, 3);
        let stats = obj.evaluate(&mut net, &data, 1);
        assert!(stats.std < 1e-9);
    }

    #[test]
    fn neg_loss_is_negative_for_untrained_network() {
        let (mut net, data) = setup();
        let obj = DriftObjective::new(0.0, 1).metric(ObjectiveMetric::NegLoss);
        let stats = obj.evaluate(&mut net, &data, 1);
        assert!(stats.mean < 0.0, "cross-entropy is positive, so −ℓ < 0");
    }

    #[test]
    fn objective_restores_weights() {
        let (mut net, data) = setup();
        let before = reram::FaultInjector::snapshot(&mut net);
        let _ = DriftObjective::new(1.0, 5).evaluate(&mut net, &data, 3);
        let after = reram::FaultInjector::snapshot(&mut net);
        for (a, b) in before.tensors().iter().zip(after.tensors()) {
            assert_eq!(a.as_slice(), b.as_slice());
        }
    }

    #[test]
    fn higher_sigma_increases_variance() {
        let (mut net, data) = setup();
        let low = DriftObjective::new(0.05, 8).evaluate(&mut net, &data, 5);
        let high = DriftObjective::new(2.0, 8).evaluate(&mut net, &data, 5);
        assert!(high.std >= low.std);
    }

    #[test]
    fn arbitrary_models_are_accepted() {
        let (mut net, data) = setup();
        let obj = DriftObjective::with_models(
            vec![
                Arc::new(GaussianAdditive::new(0.2)),
                Arc::new(UniformDrift::new(0.3)),
                Arc::new(StuckAtFault::new(0.05, 0.0, 1.0)),
            ],
            2,
        );
        let stats = obj.evaluate(&mut net, &data, 9);
        assert_eq!(stats.values.len(), 6, "2 samples x 3 fault levels");
        assert!(obj.label().starts_with("drift[gaussian_additive,"));
    }

    #[test]
    fn parallel_evaluation_is_bitwise_equal_to_serial() {
        let (mut net, data) = setup();
        let obj = DriftObjective::with_sigmas(vec![0.0, 0.4, 0.8], 4);
        let serial = obj.evaluate(&mut net, &data, 11);
        for workers in [2usize, 4, 16] {
            let parallel = obj.evaluate_parallel(&mut net, &data, 11, workers);
            assert_eq!(serial.values, parallel.values, "{workers} workers");
        }
    }

    #[test]
    fn from_specs_matches_hand_built_objective() {
        let (mut net, data) = setup();
        let specs: Vec<reram::FaultSpec> = ["lognormal:0.4", "stuckat:0.05"]
            .iter()
            .map(|s| s.parse().unwrap())
            .collect();
        let from_specs = DriftObjective::from_specs(&specs, 3).unwrap();
        let by_hand = DriftObjective::with_models(
            vec![
                Arc::new(reram::LogNormalDrift::new(0.4)),
                Arc::new(StuckAtFault::new(0.05, 0.0, 1.0)),
            ],
            3,
        );
        let a = from_specs.evaluate(&mut net, &data, 17);
        let b = by_hand.evaluate(&mut net, &data, 17);
        assert_eq!(a.values, b.values, "spec-built objective must be identical");
    }

    #[test]
    fn from_specs_rejects_bad_configs() {
        use crate::BayesFtError;
        assert!(matches!(
            DriftObjective::from_specs(&[], 3).unwrap_err(),
            BayesFtError::InvalidConfig(_)
        ));
        let spec: reram::FaultSpec = "lognormal:0.3".parse().unwrap();
        assert!(matches!(
            DriftObjective::from_specs(&[spec], 0).unwrap_err(),
            BayesFtError::InvalidConfig(_)
        ));
        // A spec built by hand (bypassing the validating parser) still
        // surfaces a recoverable Fault error, not a panic.
        let bad = reram::FaultSpec::LogNormal { sigma: -1.0 };
        assert!(matches!(
            DriftObjective::from_specs(&[bad], 3).unwrap_err(),
            BayesFtError::Fault(_)
        ));
    }

    #[test]
    fn flatten_if_mlp_borrows_unless_reshaping() {
        use std::borrow::Cow;
        let (mut net, _) = setup();
        // Already flat: the eval loop must not pay a clone per batch.
        let flat = Tensor::ones(&[4, 2]);
        assert!(matches!(flatten_if_mlp(&mut net, &flat), Cow::Borrowed(_)));
        // Image batch into an MLP: reshaped copy.
        let img = Tensor::ones(&[4, 1, 1, 2]);
        let reshaped = flatten_if_mlp(&mut net, &img);
        assert!(matches!(reshaped, Cow::Owned(_)));
        assert_eq!(reshaped.dims(), &[4, 2]);
        // Non-MLP networks keep image batches borrowed, any rank.
        let mut id = nn::Identity::new();
        assert!(matches!(flatten_if_mlp(&mut id, &img), Cow::Borrowed(_)));
    }

    #[test]
    fn trait_object_dispatch_works() {
        let (mut net, data) = setup();
        let obj: Box<dyn Objective> = Box::new(DriftObjective::new(0.3, 2));
        let ctx = EvalCtx::new(0, 42).parallelism(2);
        let stats = obj.evaluate(&mut net, &data, &ctx);
        assert_eq!(stats.values.len(), 2);
    }
}
