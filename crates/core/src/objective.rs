//! The drift-marginalized objective of Eqs. (3)–(4).

use datasets::ClassificationDataset;
use nn::{softmax_cross_entropy, Layer, Mode};
use reram::{monte_carlo, LogNormalDrift, McStats};
use tensor::Tensor;

/// What the Monte-Carlo marginalization measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ObjectiveMetric {
    /// `−E[ℓ]`, the paper's Eq. (3) utility (higher is better).
    NegLoss,
    /// Expected test accuracy (higher is better) — monotonically related
    /// and what Fig. 3 reports.
    #[default]
    Accuracy,
}

/// Evaluates `u(α, θ) ≈ (1/T) Σ_t metric(f(θ·e^{λ_t}))` on a held-out set.
///
/// # Example
///
/// ```
/// use bayesft::DriftObjective;
/// use datasets::moons;
/// use models::{Mlp, MlpConfig};
/// use rand::SeedableRng;
/// use rand_chacha::ChaCha8Rng;
///
/// let mut rng = ChaCha8Rng::seed_from_u64(0);
/// let data = moons(100, 0.1, &mut rng);
/// let mut net = Mlp::new(&MlpConfig::new(2, 2), &mut rng);
/// let obj = DriftObjective::new(0.5, 4);
/// let stats = obj.evaluate(&mut net, &data, 7);
/// assert_eq!(stats.values.len(), 4);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DriftObjective {
    /// Resistance-variation levels the objective averages over. The paper's
    /// Eq. (3) uses a single σ; averaging over a small ladder (e.g.
    /// `{0, σ/2, σ}`) trades a little fidelity for architectures that keep
    /// their clean accuracy — used by the search driver.
    pub sigmas: Vec<f32>,
    /// Monte-Carlo sample count `T` (Eq. 4) per σ level.
    pub trials: usize,
    /// Measured quantity.
    pub metric: ObjectiveMetric,
}

impl DriftObjective {
    /// Creates the objective at a single drift level `sigma` with
    /// `T = trials` MC samples, measuring accuracy.
    ///
    /// # Panics
    ///
    /// Panics if `trials == 0` or `sigma` is negative.
    pub fn new(sigma: f32, trials: usize) -> Self {
        DriftObjective::with_sigmas(vec![sigma], trials)
    }

    /// Creates an objective that averages the metric over several drift
    /// levels.
    ///
    /// # Panics
    ///
    /// Panics if `trials == 0`, `sigmas` is empty, or any σ is negative.
    pub fn with_sigmas(sigmas: Vec<f32>, trials: usize) -> Self {
        assert!(trials > 0, "need at least one Monte-Carlo sample");
        assert!(!sigmas.is_empty(), "need at least one drift level");
        assert!(
            sigmas.iter().all(|&s| s >= 0.0),
            "sigma must be non-negative"
        );
        DriftObjective {
            sigmas,
            trials,
            metric: ObjectiveMetric::Accuracy,
        }
    }

    /// Switches the measured quantity.
    pub fn metric(mut self, metric: ObjectiveMetric) -> Self {
        self.metric = metric;
        self
    }

    /// Monte-Carlo statistics of the metric under drift, pooled over all σ
    /// levels; the objective value for Bayesian optimization is `.mean`.
    ///
    /// The network's weights are restored afterwards.
    pub fn evaluate(
        &self,
        network: &mut dyn Layer,
        data: &ClassificationDataset,
        seed: u64,
    ) -> McStats {
        let metric = self.metric;
        let mut values = Vec::with_capacity(self.sigmas.len() * self.trials);
        for (i, &sigma) in self.sigmas.iter().enumerate() {
            let stats = monte_carlo(
                network,
                &LogNormalDrift::new(sigma),
                self.trials,
                seed ^ ((i as u64 + 1) << 33),
                |net| evaluate_once(net, data, metric),
            );
            values.extend(stats.values);
        }
        McStats::from_values(values)
    }
}

fn evaluate_once(net: &mut dyn Layer, data: &ClassificationDataset, metric: ObjectiveMetric) -> f32 {
    let mut total_loss = 0.0f32;
    let mut correct = 0usize;
    let mut batches = 0usize;
    for (x, labels) in data.batches(64) {
        let x = flatten_if_mlp(net, &x);
        let logits = net.forward(&x, Mode::Eval);
        match metric {
            ObjectiveMetric::NegLoss => {
                total_loss += softmax_cross_entropy(&logits, &labels).loss;
                batches += 1;
            }
            ObjectiveMetric::Accuracy => {
                correct += logits
                    .argmax_rows()
                    .iter()
                    .zip(&labels)
                    .filter(|(p, l)| p == l)
                    .count();
            }
        }
    }
    match metric {
        ObjectiveMetric::NegLoss => -total_loss / batches.max(1) as f32,
        ObjectiveMetric::Accuracy => correct as f32 / data.len().max(1) as f32,
    }
}

fn flatten_if_mlp(net: &mut dyn Layer, x: &Tensor) -> Tensor {
    if net.name() == "mlp" && x.rank() > 2 {
        let n = x.dims()[0];
        let rest: usize = x.dims()[1..].iter().product();
        x.reshaped(&[n, rest]).expect("element count preserved")
    } else {
        x.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datasets::moons;
    use models::{Mlp, MlpConfig};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn setup() -> (Mlp, ClassificationDataset) {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let data = moons(200, 0.1, &mut rng);
        let net = Mlp::new(&MlpConfig::new(2, 2).hidden(16), &mut rng);
        (net, data)
    }

    #[test]
    fn zero_sigma_objective_is_deterministic() {
        let (mut net, data) = setup();
        let obj = DriftObjective::new(0.0, 3);
        let stats = obj.evaluate(&mut net, &data, 1);
        assert!(stats.std < 1e-9);
    }

    #[test]
    fn neg_loss_is_negative_for_untrained_network() {
        let (mut net, data) = setup();
        let obj = DriftObjective::new(0.0, 1).metric(ObjectiveMetric::NegLoss);
        let stats = obj.evaluate(&mut net, &data, 1);
        assert!(stats.mean < 0.0, "cross-entropy is positive, so −ℓ < 0");
    }

    #[test]
    fn objective_restores_weights() {
        let (mut net, data) = setup();
        let before = reram::FaultInjector::snapshot(&mut net);
        let _ = DriftObjective::new(1.0, 5).evaluate(&mut net, &data, 3);
        let after = reram::FaultInjector::snapshot(&mut net);
        for (a, b) in before.tensors().iter().zip(after.tensors()) {
            assert_eq!(a.as_slice(), b.as_slice());
        }
    }

    #[test]
    fn higher_sigma_increases_variance() {
        let (mut net, data) = setup();
        let low = DriftObjective::new(0.05, 8).evaluate(&mut net, &data, 5);
        let high = DriftObjective::new(2.0, 8).evaluate(&mut net, &data, 5);
        assert!(high.std >= low.std);
    }
}
