//! Robustness sweeps: the accuracy-vs-σ curves of Figs. 2–3 and the
//! headline robustness ratios.

use baselines::TrainedModel;
use datasets::ClassificationDataset;
use reram::{LogNormalDrift, McStats};

/// The σ grid every figure in the paper sweeps: 0 to 1.5 in steps of 0.3.
pub const SIGMA_GRID: [f32; 6] = [0.0, 0.3, 0.6, 0.9, 1.2, 1.5];

/// Accuracy of a trained model at each σ of a grid (Monte-Carlo averaged).
///
/// # Panics
///
/// Panics if `trials == 0`.
pub fn accuracy_vs_sigma(
    model: &mut TrainedModel,
    data: &ClassificationDataset,
    sigmas: &[f32],
    trials: usize,
    seed: u64,
) -> Vec<(f32, McStats)> {
    sigmas
        .iter()
        .map(|&sigma| {
            let stats = baselines::drift_accuracy(
                model,
                data,
                &LogNormalDrift::new(sigma),
                trials,
                seed ^ ((sigma * 1000.0) as u64),
            );
            (sigma, stats)
        })
        .collect()
}

/// One method's accuracy curve over the σ grid.
#[derive(Debug, Clone, PartialEq)]
pub struct MethodCurve {
    /// Method label (`"erm"`, `"bayesft"`, …).
    pub method: String,
    /// `(σ, mean accuracy, std)` triples.
    pub points: Vec<(f32, f32, f32)>,
}

impl MethodCurve {
    /// Builds a curve from sweep output.
    pub fn from_sweep(method: impl Into<String>, sweep: &[(f32, McStats)]) -> Self {
        MethodCurve {
            method: method.into(),
            points: sweep
                .iter()
                .map(|(s, stats)| (*s, stats.mean, stats.std))
                .collect(),
        }
    }

    /// Mean accuracy at the grid point nearest to `sigma`.
    pub fn at(&self, sigma: f32) -> Option<f32> {
        // total_cmp: a NaN distance (NaN grid point or query) sorts above
        // every finite distance, so it deterministically loses the argmin
        // instead of tying arbitrarily via partial_cmp.
        self.points
            .iter()
            .min_by(|a, b| (a.0 - sigma).abs().total_cmp(&(b.0 - sigma).abs()))
            .map(|p| p.1)
    }
}

/// A printable figure: several method curves over one σ grid.
///
/// `Display` renders the table the way the paper's figures tabulate —
/// σ across the columns, one row per method — so every `fig*` bench binary
/// reproduces a readable artifact.
#[derive(Debug, Clone, Default)]
pub struct SweepTable {
    curves: Vec<MethodCurve>,
    title: String,
}

impl SweepTable {
    /// Creates an empty table with a figure title.
    pub fn new(title: impl Into<String>) -> Self {
        SweepTable {
            curves: Vec::new(),
            title: title.into(),
        }
    }

    /// Adds a method curve.
    pub fn push(&mut self, curve: MethodCurve) {
        self.curves.push(curve);
    }

    /// The collected curves.
    pub fn curves(&self) -> &[MethodCurve] {
        &self.curves
    }

    /// The figure title.
    pub fn title(&self) -> &str {
        &self.title
    }
}

impl std::fmt::Display for SweepTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "=== {} ===", self.title)?;
        if self.curves.is_empty() {
            return writeln!(f, "(no data)");
        }
        write!(f, "{:<12}", "sigma")?;
        for (s, _, _) in &self.curves[0].points {
            write!(f, "{s:>8.2}")?;
        }
        writeln!(f)?;
        for curve in &self.curves {
            write!(f, "{:<12}", curve.method)?;
            for (_, mean, _) in &curve.points {
                write!(f, "{:>8.1}", mean * 100.0)?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Robustness gain of `method` over `baseline` at `sigma`: the accuracy
/// ratio after subtracting chance level (`1/classes`). This is the
/// quantity behind the paper's "10–100×" claim — at large σ the baseline
/// collapses to chance while BayesFT retains most of its accuracy.
///
/// Returns `None` if either curve lacks the grid point or the baseline is
/// at/below chance (ratio undefined — the gain is effectively unbounded).
pub fn robustness_gain(
    method: &MethodCurve,
    baseline: &MethodCurve,
    sigma: f32,
    classes: usize,
) -> Option<f32> {
    let chance = 1.0 / classes.max(1) as f32;
    let m = method.at(sigma)? - chance;
    let b = baseline.at(sigma)? - chance;
    if b <= 0.0 {
        None
    } else {
        Some(m / b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use baselines::{train_erm, TrainConfig};
    use datasets::moons;
    use models::{Mlp, MlpConfig};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn fake_curve(method: &str, accs: &[f32]) -> MethodCurve {
        MethodCurve {
            method: method.into(),
            points: accs
                .iter()
                .enumerate()
                .map(|(i, &a)| (i as f32 * 0.3, a, 0.01))
                .collect(),
        }
    }

    #[test]
    fn sweep_covers_grid_and_is_monotonic_in_spirit() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let data = moons(200, 0.1, &mut rng);
        let net = Box::new(Mlp::new(&MlpConfig::new(2, 2).hidden(16), &mut rng));
        let mut model = train_erm(
            net,
            &data,
            &TrainConfig {
                epochs: 20,
                ..TrainConfig::fast_test()
            },
        );
        let sweep = accuracy_vs_sigma(&mut model, &data, &[0.0, 1.5], 6, 3);
        assert_eq!(sweep.len(), 2);
        assert!(
            sweep[0].1.mean >= sweep[1].1.mean,
            "σ=0 ({}) should beat σ=1.5 ({})",
            sweep[0].1.mean,
            sweep[1].1.mean
        );
    }

    #[test]
    fn table_renders_all_methods() {
        let mut table = SweepTable::new("Fig. test");
        table.push(fake_curve("erm", &[0.9, 0.5, 0.2]));
        table.push(fake_curve("bayesft", &[0.9, 0.85, 0.7]));
        let text = table.to_string();
        assert!(text.contains("erm") && text.contains("bayesft"));
        assert!(text.contains("90.0"));
    }

    #[test]
    fn robustness_gain_math() {
        let bayes = fake_curve("bayesft", &[0.9, 0.8]);
        let erm = fake_curve("erm", &[0.9, 0.55]);
        // At σ=0.3 with 2 classes: (0.8−0.5)/(0.55−0.5) = 6×.
        let gain = robustness_gain(&bayes, &erm, 0.3, 2).unwrap();
        assert!((gain - 6.0).abs() < 0.1, "gain {gain}");
        // Baseline at chance → unbounded gain → None.
        let collapsed = fake_curve("erm", &[0.9, 0.5]);
        assert!(robustness_gain(&bayes, &collapsed, 0.3, 2).is_none());
    }

    #[test]
    fn curve_at_picks_nearest_grid_point() {
        let c = fake_curve("m", &[0.9, 0.8, 0.7]);
        assert_eq!(c.at(0.0), Some(0.9));
        assert_eq!(c.at(0.29), Some(0.8));
        assert_eq!(c.at(10.0), Some(0.7));
    }

    #[test]
    fn sigma_grid_matches_paper() {
        assert_eq!(SIGMA_GRID.len(), 6);
        assert_eq!(SIGMA_GRID[0], 0.0);
        assert_eq!(SIGMA_GRID[5], 1.5);
    }
}
