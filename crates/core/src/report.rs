//! Structured, serializable record of one engine run.

use serde_json::Value;

/// One completed search trial, as recorded in a [`RunReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct TrialRecord {
    /// Zero-based trial index.
    pub trial: usize,
    /// Architecture coordinates in the unit cube.
    pub alpha: Vec<f64>,
    /// Monte-Carlo objective value (mean).
    pub objective: f64,
    /// Objective standard deviation across MC samples.
    pub objective_std: f64,
}

/// Wall-clock spent in each stage of a run, in milliseconds.
///
/// Timings are measurements, not results: two runs of the same seed produce
/// identical trials but different timings, which is why
/// [`RunReport::deterministic_eq`] ignores this struct.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StageTimings {
    /// Bayesian-optimization suggestion (GP fit + acquisition argmax).
    pub suggest_ms: f64,
    /// Weight training across all trials.
    pub train_ms: f64,
    /// Monte-Carlo objective evaluation across all trials (the Eq. 4 hot
    /// path the engine parallelizes).
    pub eval_ms: f64,
    /// Final fine-tuning after the best architecture is locked in.
    pub finetune_ms: f64,
    /// End-to-end run time.
    pub total_ms: f64,
}

/// Which campaign scenario produced a report, when the engine was driven
/// by a scenario runner rather than called directly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioMeta {
    /// Human-readable scenario name from the campaign file.
    pub name: String,
    /// Content digest of the scenario spec (hex), the memoization key
    /// alongside the seed.
    pub digest: String,
    /// Campaign-level progress coordinates: `(index, total)` — this
    /// scenario's zero-based position in its campaign and the campaign's
    /// scenario count. `None` for standalone scenario runs.
    pub position: Option<(usize, usize)>,
}

/// Everything a finished search produced, minus the trained model itself.
///
/// Serializes to JSON via [`RunReport::to_json`] for downstream tooling;
/// object key order is fixed, so equal reports serialize to equal strings.
///
/// # Example
///
/// ```
/// use bayesft::{RunReport, StageTimings, TrialRecord};
///
/// let report = RunReport {
///     space: "per_layer".into(),
///     objective: "drift[log_normal]x4".into(),
///     dim: 2,
///     seed: 7,
///     parallelism: 1,
///     trials: vec![TrialRecord { trial: 0, alpha: vec![0.5, 0.25], objective: 0.9, objective_std: 0.01 }],
///     best_alpha: vec![0.5, 0.25],
///     best_objective: 0.9,
///     timings: StageTimings::default(),
///     scenario: None,
/// };
/// let json = report.to_json_string();
/// assert!(json.contains("\"best_alpha\":[0.5,0.25]"));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Label of the search space ([`SearchSpace::label`](crate::SearchSpace::label)).
    pub space: String,
    /// Label of the objective ([`Objective::label`](crate::Objective::label)).
    pub objective: String,
    /// Search-space dimensionality.
    pub dim: usize,
    /// Master seed of the run.
    pub seed: u64,
    /// Monte-Carlo worker threads used.
    pub parallelism: usize,
    /// Full trial history, in order.
    pub trials: Vec<TrialRecord>,
    /// Best architecture coordinates found.
    pub best_alpha: Vec<f64>,
    /// Objective value of the best trial.
    pub best_objective: f64,
    /// Per-stage wall-clock breakdown.
    pub timings: StageTimings,
    /// Campaign scenario that requested this run, if any (`None` for
    /// direct [`Engine`](crate::Engine) calls).
    pub scenario: Option<ScenarioMeta>,
}

impl RunReport {
    /// Tags the report with the campaign scenario that produced it.
    pub fn with_scenario(mut self, name: impl Into<String>, digest: impl Into<String>) -> Self {
        self.scenario = Some(ScenarioMeta {
            name: name.into(),
            digest: digest.into(),
            position: None,
        });
        self
    }

    /// Tags the report's scenario metadata with its campaign position
    /// (`index` of `total`). No-op on untagged reports.
    pub fn with_campaign_position(mut self, index: usize, total: usize) -> Self {
        if let Some(meta) = &mut self.scenario {
            meta.position = Some((index, total));
        }
        self
    }

    /// Builds the JSON tree of the report.
    pub fn to_json(&self) -> Value {
        let mut root = Value::object();
        if let Some(meta) = &self.scenario {
            root.insert("scenario", meta.name.as_str());
            root.insert("scenario_digest", meta.digest.as_str());
            if let Some((index, total)) = meta.position {
                root.insert("scenario_index", index);
                root.insert("scenario_total", total);
            }
        }
        root.insert("space", self.space.as_str());
        root.insert("objective", self.objective.as_str());
        root.insert("dim", self.dim);
        root.insert("seed", self.seed);
        root.insert("parallelism", self.parallelism);
        root.insert(
            "trials",
            Value::Array(
                self.trials
                    .iter()
                    .map(|t| {
                        let mut obj = Value::object();
                        obj.insert("trial", t.trial);
                        obj.insert("alpha", t.alpha.clone());
                        obj.insert("objective", t.objective);
                        obj.insert("objective_std", t.objective_std);
                        obj
                    })
                    .collect(),
            ),
        );
        root.insert("best_alpha", self.best_alpha.clone());
        root.insert("best_objective", self.best_objective);
        let mut timings = Value::object();
        timings.insert("suggest_ms", self.timings.suggest_ms);
        timings.insert("train_ms", self.timings.train_ms);
        timings.insert("eval_ms", self.timings.eval_ms);
        timings.insert("finetune_ms", self.timings.finetune_ms);
        timings.insert("total_ms", self.timings.total_ms);
        root.insert("timings", timings);
        root
    }

    /// Compact JSON string of the report.
    pub fn to_json_string(&self) -> String {
        serde_json::to_string(&self.to_json())
    }

    /// Pretty-printed JSON string of the report.
    pub fn to_json_string_pretty(&self) -> String {
        serde_json::to_string_pretty(&self.to_json())
    }

    /// Parses a report back from its [`RunReport::to_json`] form — the
    /// inverse used by resumable campaign stores to serve a persisted run
    /// without recomputing it. Round-trips every field, including the
    /// scenario tag and timings.
    ///
    /// # Errors
    ///
    /// Returns a description of the first missing or mistyped field.
    pub fn from_json(value: &Value) -> Result<Self, String> {
        let text = |key: &str| -> Result<String, String> {
            value
                .get(key)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("report is missing string '{key}'"))
        };
        // The serializer writes non-finite f64s as JSON `null` (a diverged
        // search can legitimately report a NaN objective), so `null` reads
        // back as NaN here: stored NaN campaigns replay under `--resume`
        // instead of recomputing with a warning.
        let num = |v: &Value, what: &str| -> Result<f64, String> {
            match v {
                Value::Null => Ok(f64::NAN),
                _ => v.as_f64().ok_or_else(|| format!("non-numeric {what}")),
            }
        };
        let field_num = |key: &str| -> Result<f64, String> {
            num(
                value
                    .get(key)
                    .ok_or_else(|| format!("report is missing '{key}'"))?,
                key,
            )
        };
        let f64_vec = |v: &Value, what: &str| -> Result<Vec<f64>, String> {
            v.as_array()
                .ok_or_else(|| format!("{what} must be an array"))?
                .iter()
                .map(|x| num(x, what))
                .collect()
        };
        let scenario = match value.get("scenario") {
            None => None,
            Some(name) => {
                let name = name
                    .as_str()
                    .ok_or_else(|| "non-string 'scenario'".to_string())?;
                let position = match (value.get("scenario_index"), value.get("scenario_total")) {
                    (Some(i), Some(t)) => Some((
                        i.as_u64().ok_or("non-integer 'scenario_index'")? as usize,
                        t.as_u64().ok_or("non-integer 'scenario_total'")? as usize,
                    )),
                    _ => None,
                };
                Some(ScenarioMeta {
                    name: name.to_string(),
                    digest: text("scenario_digest")?,
                    position,
                })
            }
        };
        let trials = value
            .get("trials")
            .and_then(Value::as_array)
            .ok_or("report is missing 'trials'")?
            .iter()
            .map(|t| {
                Ok(TrialRecord {
                    trial: t
                        .get("trial")
                        .and_then(Value::as_u64)
                        .ok_or("trial record is missing 'trial'")?
                        as usize,
                    alpha: f64_vec(
                        t.get("alpha").ok_or("trial record is missing 'alpha'")?,
                        "alpha",
                    )?,
                    objective: num(
                        t.get("objective")
                            .ok_or("trial record is missing 'objective'")?,
                        "objective",
                    )?,
                    objective_std: num(
                        t.get("objective_std")
                            .ok_or("trial record is missing 'objective_std'")?,
                        "objective_std",
                    )?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        let timings = match value.get("timings") {
            None => StageTimings::default(),
            Some(t) => StageTimings {
                suggest_ms: num(
                    t.get("suggest_ms").unwrap_or(&Value::Number(0.0)),
                    "suggest_ms",
                )?,
                train_ms: num(t.get("train_ms").unwrap_or(&Value::Number(0.0)), "train_ms")?,
                eval_ms: num(t.get("eval_ms").unwrap_or(&Value::Number(0.0)), "eval_ms")?,
                finetune_ms: num(
                    t.get("finetune_ms").unwrap_or(&Value::Number(0.0)),
                    "finetune_ms",
                )?,
                total_ms: num(t.get("total_ms").unwrap_or(&Value::Number(0.0)), "total_ms")?,
            },
        };
        Ok(RunReport {
            space: text("space")?,
            objective: text("objective")?,
            dim: value
                .get("dim")
                .and_then(Value::as_u64)
                .ok_or("report is missing 'dim'")? as usize,
            seed: value
                .get("seed")
                .and_then(Value::as_u64)
                .ok_or("report is missing 'seed'")?,
            parallelism: value
                .get("parallelism")
                .and_then(Value::as_u64)
                .unwrap_or(1) as usize,
            trials,
            best_alpha: f64_vec(
                value
                    .get("best_alpha")
                    .ok_or("report is missing 'best_alpha'")?,
                "best_alpha",
            )?,
            best_objective: field_num("best_objective")?,
            timings,
            scenario,
        })
    }

    /// Equality over everything the search *computed* — trials, best
    /// vector, labels, seed — ignoring wall-clock timings and the worker
    /// count that produced them.
    ///
    /// This is the relation the engine's determinism guarantee is stated
    /// in: serial and parallel runs of the same seed are
    /// `deterministic_eq`, never `==` (their timings differ).
    pub fn deterministic_eq(&self, other: &RunReport) -> bool {
        self.space == other.space
            && self.objective == other.objective
            && self.dim == other.dim
            && self.seed == other.seed
            && self.trials == other.trials
            && self.best_alpha == other.best_alpha
            && self.best_objective == other.best_objective
            && self.scenario == other.scenario
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunReport {
        RunReport {
            space: "per_layer".into(),
            objective: "drift[log_normal]x2".into(),
            dim: 2,
            seed: 3,
            parallelism: 4,
            trials: vec![
                TrialRecord {
                    trial: 0,
                    alpha: vec![0.1, 0.9],
                    objective: 0.8,
                    objective_std: 0.02,
                },
                TrialRecord {
                    trial: 1,
                    alpha: vec![0.3, 0.4],
                    objective: 0.85,
                    objective_std: 0.01,
                },
            ],
            best_alpha: vec![0.3, 0.4],
            best_objective: 0.85,
            timings: StageTimings {
                suggest_ms: 1.0,
                train_ms: 10.0,
                eval_ms: 5.0,
                finetune_ms: 3.0,
                total_ms: 19.5,
            },
            scenario: None,
        }
    }

    #[test]
    fn json_contains_all_sections() {
        let json = sample().to_json();
        assert_eq!(json.get("dim").and_then(Value::as_f64), Some(2.0));
        assert_eq!(
            json.get("trials")
                .and_then(Value::as_array)
                .map(<[Value]>::len),
            Some(2)
        );
        assert!(json.get("timings").is_some());
        let s = sample().to_json_string();
        assert!(s.contains("\"best_objective\":0.85"), "{s}");
    }

    #[test]
    fn equal_reports_serialize_identically() {
        assert_eq!(sample().to_json_string(), sample().to_json_string());
    }

    #[test]
    fn deterministic_eq_ignores_timings_and_parallelism() {
        let a = sample();
        let mut b = sample();
        b.parallelism = 1;
        b.timings = StageTimings::default();
        assert_ne!(a, b);
        assert!(a.deterministic_eq(&b));
        let mut c = sample();
        c.best_objective = 0.9;
        assert!(!a.deterministic_eq(&c));
    }

    #[test]
    fn report_json_round_trips_exactly() {
        let original = sample().with_scenario("rt", "feedbeef");
        let back = RunReport::from_json(&original.to_json()).unwrap();
        assert_eq!(back, original, "lossless round-trip, timings included");
        // And through text, the way a result store replays it.
        let reparsed = serde_json::from_str(&original.to_json_string()).unwrap();
        assert_eq!(RunReport::from_json(&reparsed).unwrap(), original);
    }

    #[test]
    fn from_json_tolerates_stripped_measurement_fields() {
        // Compacted stores drop timings/parallelism; the parse defaults
        // them instead of failing.
        let mut json = sample().to_json();
        if let Value::Object(entries) = &mut json {
            entries.retain(|(k, _)| k != "timings" && k != "parallelism");
        }
        let back = RunReport::from_json(&json).unwrap();
        assert_eq!(back.timings, StageTimings::default());
        assert_eq!(back.parallelism, 1);
        assert!(sample().deterministic_eq(&back));
    }

    #[test]
    fn nan_results_round_trip_as_json_null() {
        let mut report = sample().with_scenario("diverged", "dead00");
        report.best_objective = f64::NAN;
        report.best_alpha = vec![0.25, f64::NAN];
        report.trials[1].objective = f64::NAN;
        let json = report.to_json_string();
        assert!(json.contains("\"best_objective\":null"), "{json}");
        assert!(json.contains("\"best_alpha\":[0.25,null]"), "{json}");
        let back = RunReport::from_json(&serde_json::from_str(&json).unwrap()).unwrap();
        assert!(back.best_objective.is_nan());
        assert_eq!(back.best_alpha[0], 0.25);
        assert!(back.best_alpha[1].is_nan());
        assert!(back.trials[1].objective.is_nan());
        assert_eq!(back.scenario, report.scenario);
    }

    #[test]
    fn from_json_rejects_missing_required_fields() {
        let mut json = sample().to_json();
        if let Value::Object(entries) = &mut json {
            entries.retain(|(k, _)| k != "best_alpha");
        }
        let err = RunReport::from_json(&json).unwrap_err();
        assert!(err.contains("best_alpha"), "{err}");
    }

    #[test]
    fn campaign_position_serializes_and_round_trips() {
        let tagged = sample()
            .with_scenario("pos", "c0ffee")
            .with_campaign_position(2, 5);
        let json = tagged.to_json_string();
        assert!(json.contains("\"scenario_index\":2"), "{json}");
        assert!(json.contains("\"scenario_total\":5"), "{json}");
        let back = RunReport::from_json(&tagged.to_json()).unwrap();
        assert_eq!(back.scenario.as_ref().unwrap().position, Some((2, 5)));
        // Position is part of the deterministic content.
        assert!(!tagged.deterministic_eq(&sample().with_scenario("pos", "c0ffee")));
        // Untagged reports ignore the position tag.
        assert!(sample().with_campaign_position(0, 1).scenario.is_none());
    }

    #[test]
    fn scenario_metadata_serializes_and_distinguishes_reports() {
        let plain = sample();
        assert!(plain.to_json().get("scenario").is_none());
        let tagged = sample().with_scenario("stuckat-sweep", "a1b2c3");
        let json = tagged.to_json_string();
        assert!(json.contains("\"scenario\":\"stuckat-sweep\""), "{json}");
        assert!(json.contains("\"scenario_digest\":\"a1b2c3\""), "{json}");
        assert!(!plain.deterministic_eq(&tagged));
        assert!(tagged.deterministic_eq(&sample().with_scenario("stuckat-sweep", "a1b2c3")));
    }
}
