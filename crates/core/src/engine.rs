//! The experiment engine: a fluent, trait-driven driver for Algorithm 1.
//!
//! [`Engine::builder`] assembles a search from pluggable parts — any
//! [`SearchSpace`], any [`Objective`], any [`bayesopt::Acquisition`] — and
//! [`Engine::run`] executes the alternating weight-training /
//! Bayesian-optimization loop, fanning the Monte-Carlo drift samples of
//! each objective evaluation over worker threads. The run returns both the
//! trained model and a serializable [`RunReport`].

use std::time::Instant;

use baselines::{train_epochs, OutputDecoder, TrainConfig, TrainedModel};
use bayesopt::{Acquisition, BayesOpt, SquaredExponential};
use datasets::ClassificationDataset;
use nn::Layer;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use reram::mix_seed;

use crate::{
    BayesFtError, DriftObjective, DropoutSearchSpace, EvalCtx, Objective, RunReport, SearchSpace,
    StageTimings, TrialRecord,
};

/// Seed stream of the Bayesian-optimization candidate sampler.
const SUGGEST_STREAM: u64 = 0x5bfd;
/// Seed-stream offset of per-trial objective evaluations.
const EVAL_STREAM: u64 = 0x0b5e;

/// Result of [`Engine::run`]: the trained model plus the run record.
pub struct ExperimentResult {
    /// The trained network with the best architecture applied, bundled for
    /// drift evaluation alongside the baselines.
    pub model: TrainedModel,
    /// Serializable record of the search (trials, best α, timings).
    pub report: RunReport,
}

impl std::fmt::Debug for ExperimentResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExperimentResult")
            .field("best_alpha", &self.report.best_alpha)
            .field("trials", &self.report.trials.len())
            .finish()
    }
}

/// Fluent configuration of an [`Engine`]; see [`Engine::builder`].
pub struct ExperimentBuilder {
    space: Option<Box<dyn SearchSpace>>,
    objective: Option<Box<dyn Objective>>,
    trials: usize,
    epochs_per_trial: usize,
    final_epochs: usize,
    mc_samples: usize,
    sigma: f32,
    max_rate: f32,
    acquisition: Acquisition,
    lengthscale: f64,
    candidates: usize,
    seed: u64,
    parallelism: usize,
    train: TrainConfig,
}

impl Default for ExperimentBuilder {
    fn default() -> Self {
        ExperimentBuilder {
            space: None,
            objective: None,
            trials: 12,
            epochs_per_trial: 3,
            final_epochs: 10,
            mc_samples: 8,
            sigma: 0.6,
            max_rate: 0.8,
            acquisition: Acquisition::PosteriorMean,
            lengthscale: 0.3,
            candidates: 192,
            seed: 0,
            parallelism: 1,
            train: TrainConfig::default(),
        }
    }
}

impl ExperimentBuilder {
    /// Sets the search space (default: [`DropoutSearchSpace`] probed from
    /// the network at run time).
    pub fn space(mut self, space: impl SearchSpace + 'static) -> Self {
        self.space = Some(Box::new(space));
        self
    }

    /// Boxed-form [`ExperimentBuilder::space`] for dynamically chosen
    /// spaces.
    pub fn space_boxed(mut self, space: Box<dyn SearchSpace>) -> Self {
        self.space = Some(space);
        self
    }

    /// Sets the objective (default: a [`DriftObjective`] over the σ-ladder
    /// `{0, σ/2, σ}` with [`ExperimentBuilder::mc_samples`] samples).
    pub fn objective(mut self, objective: impl Objective + 'static) -> Self {
        self.objective = Some(Box::new(objective));
        self
    }

    /// Boxed-form [`ExperimentBuilder::objective`].
    pub fn objective_boxed(mut self, objective: Box<dyn Objective>) -> Self {
        self.objective = Some(objective);
        self
    }

    /// Number of Bayesian-optimization trials (outer iterations).
    pub fn trials(mut self, trials: usize) -> Self {
        self.trials = trials;
        self
    }

    /// SGD epochs per trial (`E` in Algorithm 1).
    pub fn epochs_per_trial(mut self, epochs: usize) -> Self {
        self.epochs_per_trial = epochs;
        self
    }

    /// Fine-tuning epochs after the best architecture is locked in.
    pub fn final_epochs(mut self, epochs: usize) -> Self {
        self.final_epochs = epochs;
        self
    }

    /// Monte-Carlo samples per default-objective evaluation (`T` in Eq. 4).
    pub fn mc_samples(mut self, samples: usize) -> Self {
        self.mc_samples = samples;
        self
    }

    /// Drift level the default objective optimizes for.
    pub fn sigma(mut self, sigma: f32) -> Self {
        self.sigma = sigma;
        self
    }

    /// Largest dropout rate `α = 1` maps to in the default space.
    pub fn max_rate(mut self, max_rate: f32) -> Self {
        self.max_rate = max_rate;
        self
    }

    /// Acquisition rule (default: the paper's posterior mean).
    pub fn acquisition(mut self, acquisition: Acquisition) -> Self {
        self.acquisition = acquisition;
        self
    }

    /// GP kernel lengthscale over the unit cube.
    pub fn lengthscale(mut self, lengthscale: f64) -> Self {
        self.lengthscale = lengthscale;
        self
    }

    /// How many candidate points each acquisition maximization scores.
    pub fn candidates(mut self, candidates: usize) -> Self {
        self.candidates = candidates;
        self
    }

    /// Master seed of the run.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Worker threads for Monte-Carlo objective evaluation. `0` means
    /// "one per available CPU core"; `1` (the default) is fully serial.
    ///
    /// Any value yields bit-identical results; this knob trades threads
    /// for wall-clock only.
    pub fn parallelism(mut self, workers: usize) -> Self {
        self.parallelism = workers;
        self
    }

    /// Weight-training hyper-parameters.
    pub fn train(mut self, train: TrainConfig) -> Self {
        self.train = train;
        self
    }

    /// Validates the configuration and produces a runnable [`Engine`].
    ///
    /// # Errors
    ///
    /// Returns [`BayesFtError::InvalidConfig`] for zero trial budgets,
    /// non-positive drift levels, or an out-of-range `max_rate`.
    pub fn build(self) -> Result<Engine, BayesFtError> {
        if self.trials == 0 {
            return Err(BayesFtError::InvalidConfig(
                "need at least one search trial".into(),
            ));
        }
        if self.mc_samples == 0 {
            return Err(BayesFtError::InvalidConfig(
                "need at least one Monte-Carlo sample".into(),
            ));
        }
        if !(self.sigma >= 0.0 && self.sigma.is_finite()) {
            return Err(BayesFtError::InvalidConfig(format!(
                "sigma must be finite and >= 0, got {}",
                self.sigma
            )));
        }
        crate::space::check_max_rate(self.max_rate)?;
        if self.candidates == 0 {
            return Err(BayesFtError::InvalidConfig(
                "need at least one acquisition candidate".into(),
            ));
        }
        let parallelism = if self.parallelism == 0 {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        } else {
            self.parallelism
        };
        Ok(Engine {
            builder: ExperimentBuilder {
                parallelism,
                ..self
            },
        })
    }

    /// Builds and immediately runs; see [`Engine::run`].
    ///
    /// # Errors
    ///
    /// Propagates [`ExperimentBuilder::build`] and [`Engine::run`] errors.
    pub fn run(
        self,
        net: Box<dyn Layer>,
        train: &ClassificationDataset,
        val: &ClassificationDataset,
    ) -> Result<ExperimentResult, BayesFtError> {
        self.build()?.run(net, train, val)
    }
}

/// The configured experiment driver (Algorithm 1, generalized).
///
/// # Example
///
/// ```
/// use bayesft::Engine;
/// use datasets::moons;
/// use models::{Mlp, MlpConfig};
/// use rand::SeedableRng;
/// use rand_chacha::ChaCha8Rng;
///
/// let mut rng = ChaCha8Rng::seed_from_u64(0);
/// let data = moons(200, 0.1, &mut rng);
/// let (train, val) = data.split(0.8, &mut rng);
/// let net = Box::new(Mlp::new(&MlpConfig::new(2, 2).hidden(16), &mut rng));
///
/// let result = Engine::builder()
///     .trials(3)
///     .epochs_per_trial(1)
///     .final_epochs(1)
///     .mc_samples(2)
///     .sigma(0.5)
///     .parallelism(2)
///     .run(net, &train, &val)?;
/// assert_eq!(result.report.trials.len(), 3);
/// println!("{}", result.report.to_json_string_pretty());
/// # Ok::<(), bayesft::BayesFtError>(())
/// ```
pub struct Engine {
    builder: ExperimentBuilder,
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("trials", &self.builder.trials)
            .field("parallelism", &self.builder.parallelism)
            .field("seed", &self.builder.seed)
            .finish()
    }
}

impl Engine {
    /// Starts configuring an experiment.
    pub fn builder() -> ExperimentBuilder {
        ExperimentBuilder::default()
    }

    /// Runs the alternating search on a classification task.
    ///
    /// Weights `θ` persist across trials (Algorithm 1 trains them
    /// continuously); only the architecture vector `α` jumps between
    /// Bayesian-optimization suggestions. After the search the best `α` is
    /// re-applied and the weights fine-tuned.
    ///
    /// The run is deterministic in the master seed: for a fixed seed the
    /// returned [`RunReport`] is [`RunReport::deterministic_eq`]-identical
    /// for every `parallelism` setting.
    ///
    /// # Errors
    ///
    /// Returns [`BayesFtError::EmptySearchSpace`] if no space was supplied
    /// and the network has no dropout layers, [`BayesFtError::Gp`] if the
    /// surrogate cannot be fitted, and
    /// [`BayesFtError::DimensionMismatch`] if the supplied space does not
    /// fit the network.
    pub fn run(
        &self,
        mut net: Box<dyn Layer>,
        train: &ClassificationDataset,
        val: &ClassificationDataset,
    ) -> Result<ExperimentResult, BayesFtError> {
        let cfg = &self.builder;
        let run_start = Instant::now();

        let probed;
        let space: &dyn SearchSpace = match &cfg.space {
            Some(space) => space.as_ref(),
            None => {
                probed = DropoutSearchSpace::try_probe(net.as_mut())?.max_rate(cfg.max_rate);
                &probed
            }
        };
        space.validate(net.as_mut())?;
        let ladder;
        let objective: &dyn Objective = match &cfg.objective {
            Some(objective) => objective.as_ref(),
            None => {
                // σ ladder {0, σ/2, σ}: robust at the target drift level
                // without surrendering clean accuracy.
                ladder = DriftObjective::with_sigmas(
                    vec![0.0, cfg.sigma / 2.0, cfg.sigma],
                    cfg.mc_samples,
                );
                &ladder
            }
        };

        let epoch_cfg = TrainConfig {
            epochs: cfg.epochs_per_trial,
            ..cfg.train.clone()
        };
        let mut bo = BayesOpt::new(
            space.dim(),
            SquaredExponential::isotropic(1.0, cfg.lengthscale),
        )
        .acquisition(cfg.acquisition)
        .candidates(cfg.candidates);
        let mut suggest_rng = ChaCha8Rng::seed_from_u64(mix_seed(cfg.seed, SUGGEST_STREAM));

        let mut timings = StageTimings::default();
        let mut trials = Vec::with_capacity(cfg.trials);
        for t in 0..cfg.trials {
            let mark = Instant::now();
            let alpha = {
                let _s = telemetry::Span::enter(
                    "engine.suggest",
                    telemetry::duration_histogram!("engine_suggest_seconds"),
                );
                bo.suggest(&mut suggest_rng)?
            };
            timings.suggest_ms += ms_since(mark);

            space.apply(net.as_mut(), &alpha)?;

            let mark = Instant::now();
            {
                let _s = telemetry::Span::enter(
                    "engine.train",
                    telemetry::duration_histogram!("engine_train_seconds"),
                );
                let _ = train_epochs(net.as_mut(), train, &epoch_cfg);
            }
            timings.train_ms += ms_since(mark);

            let ctx = EvalCtx::new(t, mix_seed(cfg.seed, EVAL_STREAM.wrapping_add(t as u64)))
                .parallelism(cfg.parallelism);
            let mark = Instant::now();
            let stats = {
                let _s = telemetry::Span::enter(
                    "engine.eval",
                    telemetry::duration_histogram!("engine_eval_seconds"),
                );
                objective.evaluate(net.as_mut(), val, &ctx)
            };
            timings.eval_ms += ms_since(mark);

            bo.tell(alpha.clone(), stats.mean as f64);
            trials.push(TrialRecord {
                trial: t,
                alpha,
                objective: stats.mean as f64,
                objective_std: stats.std as f64,
            });
        }

        let (best_alpha, best_objective) = bo
            .best_observed()
            .ok_or_else(|| BayesFtError::InvalidConfig("no trials completed".into()))?;

        // Final: lock in the best architecture and fine-tune.
        space.apply(net.as_mut(), &best_alpha)?;
        let final_cfg = TrainConfig {
            epochs: cfg.final_epochs,
            ..cfg.train.clone()
        };
        let mark = Instant::now();
        {
            let _s = telemetry::Span::enter(
                "engine.finetune",
                telemetry::duration_histogram!("engine_finetune_seconds"),
            );
            let _ = train_epochs(net.as_mut(), train, &final_cfg);
        }
        timings.finetune_ms = ms_since(mark);
        timings.total_ms = ms_since(run_start);

        Ok(ExperimentResult {
            model: TrainedModel {
                net,
                decoder: OutputDecoder::Softmax,
                method: "bayesft",
            },
            report: RunReport {
                space: space.label().to_string(),
                objective: objective.label(),
                dim: space.dim(),
                seed: cfg.seed,
                parallelism: cfg.parallelism,
                trials,
                best_alpha,
                best_objective,
                timings,
                scenario: None,
            },
        })
    }
}

fn ms_since(mark: Instant) -> f64 {
    mark.elapsed().as_secs_f64() * 1e3
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SharedDropoutSpace;
    use models::{Mlp, MlpConfig};

    fn task() -> (ClassificationDataset, ClassificationDataset, Box<Mlp>) {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let data = datasets::moons(200, 0.1, &mut rng);
        let (train, val) = data.split(0.8, &mut rng);
        let net = Box::new(Mlp::new(&MlpConfig::new(2, 2).hidden(16), &mut rng));
        (train, val, net)
    }

    fn quick() -> ExperimentBuilder {
        Engine::builder()
            .trials(3)
            .epochs_per_trial(1)
            .final_epochs(1)
            .mc_samples(2)
            .sigma(0.5)
            .train(TrainConfig::fast_test())
    }

    #[test]
    fn engine_runs_and_reports() {
        let (train, val, net) = task();
        let result = quick().seed(7).run(net, &train, &val).unwrap();
        assert_eq!(result.report.trials.len(), 3);
        assert_eq!(result.report.best_alpha.len(), 2);
        assert_eq!(result.report.space, "per_layer");
        assert!(result.report.objective.starts_with("drift["));
        assert_eq!(result.model.method, "bayesft");
        assert!(result.report.timings.total_ms > 0.0);
        let json = result.report.to_json_string();
        assert!(json.contains("\"seed\":7"), "{json}");
    }

    #[test]
    fn builder_rejects_bad_configs() {
        assert!(matches!(
            Engine::builder().trials(0).build().unwrap_err(),
            BayesFtError::InvalidConfig(_)
        ));
        assert!(matches!(
            Engine::builder().mc_samples(0).build().unwrap_err(),
            BayesFtError::InvalidConfig(_)
        ));
        assert!(matches!(
            Engine::builder().sigma(-1.0).build().unwrap_err(),
            BayesFtError::InvalidConfig(_)
        ));
        assert!(matches!(
            Engine::builder().max_rate(0.99).build().unwrap_err(),
            BayesFtError::InvalidConfig(_)
        ));
    }

    #[test]
    fn dropout_free_network_yields_empty_space_error() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let data = datasets::moons(60, 0.1, &mut rng);
        let (train, val) = data.split(0.8, &mut rng);
        let net = Box::new(Mlp::new(
            &MlpConfig::new(2, 2).dropout(models::DropoutKind::None),
            &mut rng,
        ));
        let err = quick().run(net, &train, &val).unwrap_err();
        assert_eq!(err, BayesFtError::EmptySearchSpace);
    }

    #[test]
    fn custom_space_is_respected() {
        let (train, val, mut net) = task();
        let space = SharedDropoutSpace::probe(net.as_mut());
        let result = quick().space(space).run(net, &train, &val).unwrap();
        assert_eq!(result.report.dim, 1);
        assert_eq!(result.report.space, "shared_rate");
        assert_eq!(result.report.best_alpha.len(), 1);
    }

    #[test]
    fn mismatched_space_is_rejected_before_the_search() {
        let (train, val, _) = task();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        // Space probed from a 3-dropout network, run against a 2-dropout one.
        let mut deep = Mlp::new(&MlpConfig::new(2, 2).depth(4), &mut rng);
        let space = crate::DropoutSearchSpace::probe(&mut deep);
        let shallow = Box::new(Mlp::new(&MlpConfig::new(2, 2).hidden(16), &mut rng));
        let err = quick().space(space).run(shallow, &train, &val).unwrap_err();
        assert!(
            matches!(
                err,
                BayesFtError::DimensionMismatch {
                    expected: 3,
                    got: 2,
                    ..
                }
            ),
            "{err}"
        );
    }

    #[test]
    fn full_width_seeds_survive_json_round_trip() {
        let (train, val, net) = task();
        let result = quick().seed(u64::MAX).run(net, &train, &val).unwrap();
        let json = result.report.to_json_string();
        assert!(
            json.contains("\"seed\":18446744073709551615"),
            "seed lost precision: {json}"
        );
        assert_eq!(
            result
                .report
                .to_json()
                .get("seed")
                .and_then(serde_json::Value::as_u64),
            Some(u64::MAX)
        );
    }

    #[test]
    fn parallel_run_is_deterministically_equal_to_serial() {
        let (train, val, net) = task();
        let serial = quick()
            .seed(11)
            .parallelism(1)
            .run(net, &train, &val)
            .unwrap();
        let (train2, val2, net2) = task();
        let parallel = quick()
            .seed(11)
            .parallelism(4)
            .run(net2, &train2, &val2)
            .unwrap();
        assert!(serial.report.deterministic_eq(&parallel.report));
        assert_eq!(
            serial.report.to_json().get("trials"),
            parallel.report.to_json().get("trials")
        );
    }
}
