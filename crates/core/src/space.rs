//! Search spaces over network architecture knobs (§III-B and extensions).
//!
//! The paper searches the per-layer dropout rates `α ∈ [0, 1]^{K−1}`. The
//! [`SearchSpace`] trait generalizes that: any object that can map a
//! unit-cube coordinate vector onto a concrete network is a valid search
//! space, and the [`Engine`](crate::Engine) is generic over it. Three
//! implementations ship here:
//!
//! * [`DropoutSearchSpace`] — the paper's space: one coordinate per dropout
//!   layer.
//! * [`SharedDropoutSpace`] — a single coordinate driving every dropout
//!   layer in lockstep (1-D search; the cheapest possible space and a
//!   strong baseline when layers behave similarly).
//! * [`GroupedDropoutSpace`] — coordinates tied across explicit groups of
//!   dropout layers (e.g. all conv-block layers share one rate, all dense
//!   layers another), interpolating between the two extremes above.

use models::{dropout_count, dropout_rates, set_dropout_rates};
use nn::Layer;

use crate::BayesFtError;

/// A mapping from unit-cube Bayesian-optimization coordinates onto a
/// concrete network's architecture knobs.
///
/// Implementations must be deterministic: applying the same `alpha` twice
/// must configure the network identically (the engine re-applies the best
/// vector after the search).
pub trait SearchSpace: Send + Sync {
    /// Number of coordinates (the Bayesian-optimization dimensionality).
    fn dim(&self) -> usize;

    /// Checks that this space actually fits `network` — called once by the
    /// engine before the search starts, so a space probed from one network
    /// cannot silently drive a prefix of another.
    ///
    /// The default accepts every network (for spaces with no structural
    /// expectations).
    ///
    /// # Errors
    ///
    /// Returns [`BayesFtError::DimensionMismatch`] if the network's
    /// structure does not match what the space was built for.
    fn validate(&self, network: &mut dyn Layer) -> Result<(), BayesFtError> {
        let _ = network;
        Ok(())
    }

    /// Writes unit-cube coordinates into the network.
    ///
    /// # Errors
    ///
    /// Returns [`BayesFtError::DimensionMismatch`] if `alpha.len() != dim()`.
    fn apply(&self, network: &mut dyn Layer, alpha: &[f64]) -> Result<(), BayesFtError>;

    /// Human-readable coordinate names, in order (used by reports).
    fn names(&self) -> Vec<String>;

    /// Short label identifying the space kind in a [`RunReport`](crate::RunReport).
    fn label(&self) -> &'static str {
        "custom"
    }
}

/// Checks an alpha vector against a space dimension.
fn check_dim(expected: usize, alpha: &[f64]) -> Result<(), BayesFtError> {
    if alpha.len() != expected {
        return Err(BayesFtError::DimensionMismatch {
            what: "alpha",
            expected,
            got: alpha.len(),
        });
    }
    Ok(())
}

/// Checks that a network exposes exactly the dropout-layer count a space
/// was probed for.
fn check_layer_count(expected: usize, network: &mut dyn Layer) -> Result<(), BayesFtError> {
    let got = dropout_count(network);
    if got != expected {
        return Err(BayesFtError::DimensionMismatch {
            what: "network dropout-layer",
            expected,
            got,
        });
    }
    Ok(())
}

/// Validates a `max_rate` override (shared with the engine builder).
pub(crate) fn check_max_rate(max_rate: f32) -> Result<(), BayesFtError> {
    if !(max_rate > 0.0 && max_rate <= 0.95) {
        return Err(BayesFtError::InvalidConfig(format!(
            "max dropout rate must be in (0, 0.95], got {max_rate}"
        )));
    }
    Ok(())
}

/// The paper's search space: one coordinate per dropout layer
/// (`α ∈ [0, 1]^{K−1}`, §III-B).
///
/// The unit interval is scaled by `max_rate` (default 0.8) before being
/// written into the layers: rates near 1 would zero entire layers, which
/// both the paper's clamp-free formulation and training stability argue
/// against.
///
/// # Example
///
/// ```
/// use bayesft::{DropoutSearchSpace, SearchSpace};
/// use models::{Mlp, MlpConfig};
/// use rand::SeedableRng;
/// use rand_chacha::ChaCha8Rng;
///
/// let mut rng = ChaCha8Rng::seed_from_u64(0);
/// let mut net = Mlp::new(&MlpConfig::new(4, 2).depth(3), &mut rng);
/// let space = DropoutSearchSpace::probe(&mut net);
/// assert_eq!(space.dim(), 2);
/// space.apply(&mut net, &[0.5, 1.0])?;
/// # Ok::<(), bayesft::BayesFtError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DropoutSearchSpace {
    dim: usize,
    max_rate: f32,
}

impl DropoutSearchSpace {
    /// Probes a network for its dropout layers and builds the matching
    /// search space.
    ///
    /// # Panics
    ///
    /// Panics if the network has no dropout layers; use
    /// [`DropoutSearchSpace::try_probe`] for a fallible variant.
    pub fn probe(network: &mut dyn Layer) -> Self {
        Self::try_probe(network)
            .expect("network has no dropout layers; BayesFT's search space is empty")
    }

    /// Fallible [`DropoutSearchSpace::probe`].
    ///
    /// # Errors
    ///
    /// Returns [`BayesFtError::EmptySearchSpace`] if the network has no
    /// dropout layers.
    pub fn try_probe(network: &mut dyn Layer) -> Result<Self, BayesFtError> {
        let dim = dropout_count(network);
        if dim == 0 {
            return Err(BayesFtError::EmptySearchSpace);
        }
        Ok(DropoutSearchSpace { dim, max_rate: 0.8 })
    }

    /// Overrides the maximum dropout rate that α = 1 maps to.
    ///
    /// # Panics
    ///
    /// Panics if `max_rate` is outside `(0, 0.95]`.
    pub fn max_rate(mut self, max_rate: f32) -> Self {
        check_max_rate(max_rate).unwrap_or_else(|e| panic!("{e}"));
        self.max_rate = max_rate;
        self
    }

    /// Reads the network's current rates back as unit-cube coordinates.
    pub fn read(&self, network: &mut dyn Layer) -> Vec<f64> {
        dropout_rates(network)
            .iter()
            .map(|&r| (r / self.max_rate).clamp(0.0, 1.0) as f64)
            .collect()
    }
}

impl SearchSpace for DropoutSearchSpace {
    fn dim(&self) -> usize {
        self.dim
    }

    fn validate(&self, network: &mut dyn Layer) -> Result<(), BayesFtError> {
        check_layer_count(self.dim, network)
    }

    fn apply(&self, network: &mut dyn Layer, alpha: &[f64]) -> Result<(), BayesFtError> {
        check_dim(self.dim, alpha)?;
        let rates: Vec<f32> = alpha
            .iter()
            .map(|&a| (a as f32).clamp(0.0, 1.0) * self.max_rate)
            .collect();
        set_dropout_rates(network, &rates);
        Ok(())
    }

    fn names(&self) -> Vec<String> {
        (0..self.dim).map(|i| format!("dropout[{i}]")).collect()
    }

    fn label(&self) -> &'static str {
        "per_layer"
    }
}

/// A one-dimensional space: a single shared rate drives every dropout
/// layer.
///
/// Collapsing the paper's `K−1` coordinates to one makes the Bayesian
/// optimization dramatically cheaper (the GP is over `[0, 1]`) at the cost
/// of per-layer expressiveness — the right trade on homogeneous stacks or
/// tiny trial budgets.
///
/// # Example
///
/// ```
/// use bayesft::{SearchSpace, SharedDropoutSpace};
/// use models::{dropout_rates, Mlp, MlpConfig};
/// use rand::SeedableRng;
/// use rand_chacha::ChaCha8Rng;
///
/// let mut rng = ChaCha8Rng::seed_from_u64(0);
/// let mut net = Mlp::new(&MlpConfig::new(4, 2).depth(4), &mut rng);
/// let space = SharedDropoutSpace::probe(&mut net);
/// assert_eq!(space.dim(), 1);
/// space.apply(&mut net, &[1.0])?;
/// let rates = dropout_rates(&mut net);
/// assert!(rates.iter().all(|&r| (r - 0.8).abs() < 1e-6));
/// # Ok::<(), bayesft::BayesFtError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SharedDropoutSpace {
    layers: usize,
    max_rate: f32,
}

impl SharedDropoutSpace {
    /// Builds the shared-rate space for a network.
    ///
    /// # Errors
    ///
    /// Returns [`BayesFtError::EmptySearchSpace`] if the network has no
    /// dropout layers.
    pub fn try_probe(network: &mut dyn Layer) -> Result<Self, BayesFtError> {
        let layers = dropout_count(network);
        if layers == 0 {
            return Err(BayesFtError::EmptySearchSpace);
        }
        Ok(SharedDropoutSpace {
            layers,
            max_rate: 0.8,
        })
    }

    /// Infallible [`SharedDropoutSpace::try_probe`].
    ///
    /// # Panics
    ///
    /// Panics if the network has no dropout layers.
    pub fn probe(network: &mut dyn Layer) -> Self {
        Self::try_probe(network).expect("network has no dropout layers")
    }

    /// Overrides the maximum dropout rate that α = 1 maps to.
    ///
    /// # Panics
    ///
    /// Panics if `max_rate` is outside `(0, 0.95]`.
    pub fn max_rate(mut self, max_rate: f32) -> Self {
        check_max_rate(max_rate).unwrap_or_else(|e| panic!("{e}"));
        self.max_rate = max_rate;
        self
    }
}

impl SearchSpace for SharedDropoutSpace {
    fn dim(&self) -> usize {
        1
    }

    fn validate(&self, network: &mut dyn Layer) -> Result<(), BayesFtError> {
        check_layer_count(self.layers, network)
    }

    fn apply(&self, network: &mut dyn Layer, alpha: &[f64]) -> Result<(), BayesFtError> {
        check_dim(1, alpha)?;
        let rate = (alpha[0] as f32).clamp(0.0, 1.0) * self.max_rate;
        set_dropout_rates(network, &vec![rate; self.layers]);
        Ok(())
    }

    fn names(&self) -> Vec<String> {
        vec!["dropout[shared]".to_string()]
    }

    fn label(&self) -> &'static str {
        "shared_rate"
    }
}

/// Coordinates tied across explicit groups of dropout layers.
///
/// Each group of layer indices shares one coordinate, so the search runs in
/// `groups.len()` dimensions while still distinguishing structurally
/// different parts of the network — the classic split being "all conv-stage
/// dropouts" vs "all dense-stage dropouts". Layers not mentioned in any
/// group keep whatever rate they already have.
///
/// # Example
///
/// ```
/// use bayesft::{GroupedDropoutSpace, SearchSpace};
/// use models::{dropout_rates, Mlp, MlpConfig};
/// use rand::SeedableRng;
/// use rand_chacha::ChaCha8Rng;
///
/// let mut rng = ChaCha8Rng::seed_from_u64(0);
/// let mut net = Mlp::new(&MlpConfig::new(4, 2).depth(5), &mut rng); // 4 dropouts
/// let space = GroupedDropoutSpace::new(&mut net, vec![vec![0, 1], vec![2, 3]])?;
/// assert_eq!(space.dim(), 2);
/// space.apply(&mut net, &[0.0, 1.0])?;
/// let rates = dropout_rates(&mut net);
/// assert!(rates[0] < 1e-6 && (rates[3] - 0.8).abs() < 1e-6);
/// # Ok::<(), bayesft::BayesFtError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GroupedDropoutSpace {
    groups: Vec<Vec<usize>>,
    layers: usize,
    max_rate: f32,
}

impl GroupedDropoutSpace {
    /// Builds a grouped space over `network` with the given groups of
    /// dropout-layer indices (in `visit_dropout` order).
    ///
    /// # Errors
    ///
    /// Returns [`BayesFtError::EmptySearchSpace`] if `groups` is empty or
    /// any group is empty, [`BayesFtError::DimensionMismatch`] if an index
    /// exceeds the network's dropout count, and
    /// [`BayesFtError::InvalidConfig`] if an index appears in two groups.
    pub fn new(network: &mut dyn Layer, groups: Vec<Vec<usize>>) -> Result<Self, BayesFtError> {
        let layers = dropout_count(network);
        if groups.is_empty() || groups.iter().any(Vec::is_empty) {
            return Err(BayesFtError::EmptySearchSpace);
        }
        let mut seen = vec![false; layers];
        for &idx in groups.iter().flatten() {
            if idx >= layers {
                return Err(BayesFtError::DimensionMismatch {
                    what: "group index",
                    expected: layers,
                    got: idx,
                });
            }
            if seen[idx] {
                return Err(BayesFtError::InvalidConfig(format!(
                    "dropout layer {idx} appears in more than one group"
                )));
            }
            seen[idx] = true;
        }
        Ok(GroupedDropoutSpace {
            groups,
            layers,
            max_rate: 0.8,
        })
    }

    /// Splits a network's dropout layers into `k` contiguous groups of
    /// (as close as possible to) equal size — a structure-agnostic default
    /// that ties neighbouring stages together.
    ///
    /// # Errors
    ///
    /// Returns [`BayesFtError::EmptySearchSpace`] for dropout-free
    /// networks and [`BayesFtError::InvalidConfig`] if `k` is zero or
    /// exceeds the layer count.
    pub fn chunked(network: &mut dyn Layer, k: usize) -> Result<Self, BayesFtError> {
        let layers = dropout_count(network);
        if layers == 0 {
            return Err(BayesFtError::EmptySearchSpace);
        }
        if k == 0 || k > layers {
            return Err(BayesFtError::InvalidConfig(format!(
                "cannot split {layers} dropout layers into {k} groups"
            )));
        }
        let base = layers / k;
        let extra = layers % k;
        let mut groups = Vec::with_capacity(k);
        let mut next = 0usize;
        for g in 0..k {
            let size = base + usize::from(g < extra);
            groups.push((next..next + size).collect());
            next += size;
        }
        Self::new(network, groups)
    }

    /// Overrides the maximum dropout rate that α = 1 maps to.
    ///
    /// # Panics
    ///
    /// Panics if `max_rate` is outside `(0, 0.95]`.
    pub fn max_rate(mut self, max_rate: f32) -> Self {
        check_max_rate(max_rate).unwrap_or_else(|e| panic!("{e}"));
        self.max_rate = max_rate;
        self
    }
}

impl SearchSpace for GroupedDropoutSpace {
    fn dim(&self) -> usize {
        self.groups.len()
    }

    fn validate(&self, network: &mut dyn Layer) -> Result<(), BayesFtError> {
        check_layer_count(self.layers, network)
    }

    fn apply(&self, network: &mut dyn Layer, alpha: &[f64]) -> Result<(), BayesFtError> {
        check_dim(self.groups.len(), alpha)?;
        // Start from the network's current rates so ungrouped layers keep
        // their values.
        let mut rates = dropout_rates(network);
        rates.resize(self.layers, 0.0);
        for (group, &a) in self.groups.iter().zip(alpha) {
            let rate = (a as f32).clamp(0.0, 1.0) * self.max_rate;
            for &idx in group {
                rates[idx] = rate;
            }
        }
        set_dropout_rates(network, &rates);
        Ok(())
    }

    fn names(&self) -> Vec<String> {
        self.groups
            .iter()
            .enumerate()
            .map(|(g, members)| format!("dropout[group{g}:{members:?}]"))
            .collect()
    }

    fn label(&self) -> &'static str {
        "layer_group"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use models::{Mlp, MlpConfig};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn mlp(depth: usize) -> Mlp {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        Mlp::new(&MlpConfig::new(4, 2).depth(depth), &mut rng)
    }

    #[test]
    fn probe_counts_layers() {
        let mut net = mlp(6);
        assert_eq!(DropoutSearchSpace::probe(&mut net).dim(), 5);
    }

    #[test]
    fn apply_and_read_round_trip() {
        let mut net = mlp(4);
        let space = DropoutSearchSpace::probe(&mut net);
        let alpha = vec![0.25, 0.5, 1.0];
        space.apply(&mut net, &alpha).unwrap();
        let back = space.read(&mut net);
        for (a, b) in alpha.iter().zip(&back) {
            assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
    }

    #[test]
    fn apply_scales_by_max_rate() {
        let mut net = mlp(3);
        let space = DropoutSearchSpace::probe(&mut net).max_rate(0.5);
        space.apply(&mut net, &[1.0, 1.0]).unwrap();
        let rates = models::dropout_rates(&mut net);
        assert!(rates.iter().all(|&r| (r - 0.5).abs() < 1e-6));
    }

    #[test]
    fn apply_rejects_wrong_dimension() {
        let mut net = mlp(3);
        let space = DropoutSearchSpace::probe(&mut net);
        let err = space.apply(&mut net, &[0.5]).unwrap_err();
        assert!(matches!(
            err,
            BayesFtError::DimensionMismatch {
                expected: 2,
                got: 1,
                ..
            }
        ));
    }

    #[test]
    #[should_panic(expected = "search space is empty")]
    fn probing_dropout_free_network_panics() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut net = Mlp::new(
            &MlpConfig::new(4, 2).dropout(models::DropoutKind::None),
            &mut rng,
        );
        let _ = DropoutSearchSpace::probe(&mut net);
    }

    #[test]
    fn try_probe_reports_empty_space() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut net = Mlp::new(
            &MlpConfig::new(4, 2).dropout(models::DropoutKind::None),
            &mut rng,
        );
        assert_eq!(
            DropoutSearchSpace::try_probe(&mut net).unwrap_err(),
            BayesFtError::EmptySearchSpace
        );
        assert_eq!(
            SharedDropoutSpace::try_probe(&mut net).unwrap_err(),
            BayesFtError::EmptySearchSpace
        );
    }

    #[test]
    fn shared_space_drives_all_layers() {
        let mut net = mlp(5);
        let space = SharedDropoutSpace::probe(&mut net);
        assert_eq!(space.dim(), 1);
        space.apply(&mut net, &[0.5]).unwrap();
        let rates = models::dropout_rates(&mut net);
        assert_eq!(rates.len(), 4);
        assert!(rates.iter().all(|&r| (r - 0.4).abs() < 1e-6));
    }

    #[test]
    fn grouped_space_ties_members_and_spares_others() {
        let mut net = mlp(5); // 4 dropout layers
        models::set_dropout_rates(&mut net, &[0.1, 0.1, 0.1, 0.1]);
        let space = GroupedDropoutSpace::new(&mut net, vec![vec![0, 2]]).unwrap();
        space.apply(&mut net, &[1.0]).unwrap();
        let rates = models::dropout_rates(&mut net);
        assert!((rates[0] - 0.8).abs() < 1e-6);
        assert!((rates[2] - 0.8).abs() < 1e-6);
        assert!((rates[1] - 0.1).abs() < 1e-6, "ungrouped layer changed");
        assert!((rates[3] - 0.1).abs() < 1e-6, "ungrouped layer changed");
    }

    #[test]
    fn grouped_space_validates_input() {
        let mut net = mlp(4); // 3 dropout layers
        assert!(GroupedDropoutSpace::new(&mut net, vec![]).is_err());
        assert!(GroupedDropoutSpace::new(&mut net, vec![vec![]]).is_err());
        assert!(GroupedDropoutSpace::new(&mut net, vec![vec![7]]).is_err());
        assert!(GroupedDropoutSpace::new(&mut net, vec![vec![0], vec![0]]).is_err());
    }

    #[test]
    fn chunked_covers_all_layers_evenly() {
        let mut net = mlp(6); // 5 dropout layers
        let space = GroupedDropoutSpace::chunked(&mut net, 2).unwrap();
        assert_eq!(space.dim(), 2);
        space.apply(&mut net, &[1.0, 0.0]).unwrap();
        let rates = models::dropout_rates(&mut net);
        // First chunk gets 3 layers, second 2.
        assert!(rates[..3].iter().all(|&r| (r - 0.8).abs() < 1e-6));
        assert!(rates[3..].iter().all(|&r| r < 1e-6));
        assert!(GroupedDropoutSpace::chunked(&mut net, 0).is_err());
        assert!(GroupedDropoutSpace::chunked(&mut net, 9).is_err());
    }

    #[test]
    fn names_match_dimensions() {
        let mut net = mlp(4);
        let per_layer = DropoutSearchSpace::probe(&mut net);
        assert_eq!(per_layer.names().len(), per_layer.dim());
        let shared = SharedDropoutSpace::probe(&mut net);
        assert_eq!(shared.names().len(), 1);
        let grouped = GroupedDropoutSpace::chunked(&mut net, 3).unwrap();
        assert_eq!(grouped.names().len(), 3);
        assert_eq!(per_layer.label(), "per_layer");
        assert_eq!(shared.label(), "shared_rate");
        assert_eq!(grouped.label(), "layer_group");
    }
}
