//! The dropout-rate search space (§III-B): `α ∈ [0, 1]^{K−1}`.

use models::{dropout_count, dropout_rates, set_dropout_rates};
use nn::Layer;

/// Maps unit-cube Bayesian-optimization coordinates onto the per-layer
/// dropout rates of a concrete network.
///
/// The unit interval is scaled by `max_rate` (default 0.8) before being
/// written into the layers: rates near 1 would zero entire layers, which
/// both the paper's clamp-free formulation and our training stability
/// argue against.
///
/// # Example
///
/// ```
/// use bayesft::DropoutSearchSpace;
/// use models::{Mlp, MlpConfig};
/// use rand::SeedableRng;
/// use rand_chacha::ChaCha8Rng;
///
/// let mut rng = ChaCha8Rng::seed_from_u64(0);
/// let mut net = Mlp::new(&MlpConfig::new(4, 2).depth(3), &mut rng);
/// let space = DropoutSearchSpace::probe(&mut net);
/// assert_eq!(space.dim(), 2);
/// space.apply(&mut net, &[0.5, 1.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DropoutSearchSpace {
    dim: usize,
    max_rate: f32,
}

impl DropoutSearchSpace {
    /// Probes a network for its dropout layers and builds the matching
    /// search space.
    ///
    /// # Panics
    ///
    /// Panics if the network has no dropout layers (nothing to search).
    pub fn probe(network: &mut dyn Layer) -> Self {
        let dim = dropout_count(network);
        assert!(
            dim > 0,
            "network has no dropout layers; BayesFT's search space is empty"
        );
        DropoutSearchSpace { dim, max_rate: 0.8 }
    }

    /// Overrides the maximum dropout rate that α = 1 maps to.
    ///
    /// # Panics
    ///
    /// Panics if `max_rate` is outside `(0, 0.95]`.
    pub fn max_rate(mut self, max_rate: f32) -> Self {
        assert!(
            max_rate > 0.0 && max_rate <= 0.95,
            "max rate must be in (0, 0.95]"
        );
        self.max_rate = max_rate;
        self
    }

    /// Search-space dimension (`K − 1` in the paper's notation).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Writes unit-cube coordinates into the network's dropout layers.
    ///
    /// # Panics
    ///
    /// Panics if `alpha.len() != dim()`.
    pub fn apply(&self, network: &mut dyn Layer, alpha: &[f64]) {
        assert_eq!(alpha.len(), self.dim, "alpha dimension mismatch");
        let rates: Vec<f32> = alpha
            .iter()
            .map(|&a| (a as f32).clamp(0.0, 1.0) * self.max_rate)
            .collect();
        set_dropout_rates(network, &rates);
    }

    /// Reads the network's current rates back as unit-cube coordinates.
    pub fn read(&self, network: &mut dyn Layer) -> Vec<f64> {
        dropout_rates(network)
            .iter()
            .map(|&r| (r / self.max_rate).clamp(0.0, 1.0) as f64)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use models::{Mlp, MlpConfig};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn probe_counts_layers() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut net = Mlp::new(&MlpConfig::new(4, 2).depth(6), &mut rng);
        assert_eq!(DropoutSearchSpace::probe(&mut net).dim(), 5);
    }

    #[test]
    fn apply_and_read_round_trip() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut net = Mlp::new(&MlpConfig::new(4, 2).depth(4), &mut rng);
        let space = DropoutSearchSpace::probe(&mut net);
        let alpha = vec![0.25, 0.5, 1.0];
        space.apply(&mut net, &alpha);
        let back = space.read(&mut net);
        for (a, b) in alpha.iter().zip(&back) {
            assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
    }

    #[test]
    fn apply_scales_by_max_rate() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut net = Mlp::new(&MlpConfig::new(4, 2), &mut rng);
        let space = DropoutSearchSpace::probe(&mut net).max_rate(0.5);
        space.apply(&mut net, &[1.0, 1.0]);
        let rates = models::dropout_rates(&mut net);
        assert!(rates.iter().all(|&r| (r - 0.5).abs() < 1e-6));
    }

    #[test]
    #[should_panic(expected = "search space is empty")]
    fn probing_dropout_free_network_panics() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut net = Mlp::new(
            &MlpConfig::new(4, 2).dropout(models::DropoutKind::None),
            &mut rng,
        );
        let _ = DropoutSearchSpace::probe(&mut net);
    }
}
