//! The unified error type of the experiment engine.

use bayesopt::GpError;
use reram::FaultError;
use std::fmt;

/// Everything that can go wrong while configuring or running a BayesFT
/// experiment.
///
/// Failure modes that used to be `assert!`/`expect` panics scattered across
/// `core`, `bayesopt`, and `baselines` plumbing — dimension mismatches
/// between a search space and its network, empty search spaces, nonsensical
/// budgets — surface here as values, with the Gaussian-process layer's
/// [`GpError`] wrapped rather than re-encoded.
///
/// # Example
///
/// ```
/// use bayesft::BayesFtError;
/// use bayesopt::GpError;
///
/// let err = BayesFtError::from(GpError::NotFitted);
/// assert!(matches!(err, BayesFtError::Gp(_)));
/// assert!(err.to_string().contains("fitted"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BayesFtError {
    /// The Gaussian-process surrogate failed (singular kernel, not fitted,
    /// ragged observations).
    Gp(GpError),
    /// A coordinate vector does not match the search-space dimension, or a
    /// space does not match its network.
    DimensionMismatch {
        /// What was being matched (e.g. `"alpha"`, `"group index"`).
        what: &'static str,
        /// The dimension the receiver expected.
        expected: usize,
        /// The dimension actually supplied.
        got: usize,
    },
    /// The network exposes no searchable degrees of freedom.
    EmptySearchSpace,
    /// A builder or config value is out of its valid domain.
    InvalidConfig(String),
    /// The fault-injection layer rejected a model parameter, fault spec,
    /// or snapshot (see [`reram::FaultError`]).
    Fault(FaultError),
}

impl fmt::Display for BayesFtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BayesFtError::Gp(e) => write!(f, "gaussian-process surrogate: {e}"),
            BayesFtError::DimensionMismatch {
                what,
                expected,
                got,
            } => write!(
                f,
                "{what} dimension mismatch: expected {expected}, got {got}"
            ),
            BayesFtError::EmptySearchSpace => {
                write!(
                    f,
                    "network has no searchable layers; the search space is empty"
                )
            }
            BayesFtError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            BayesFtError::Fault(e) => write!(f, "fault model: {e}"),
        }
    }
}

impl std::error::Error for BayesFtError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BayesFtError::Gp(e) => Some(e),
            BayesFtError::Fault(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GpError> for BayesFtError {
    fn from(e: GpError) -> Self {
        BayesFtError::Gp(e)
    }
}

impl From<FaultError> for BayesFtError {
    fn from(e: FaultError) -> Self {
        BayesFtError::Fault(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = BayesFtError::DimensionMismatch {
            what: "alpha",
            expected: 3,
            got: 2,
        };
        assert_eq!(e.to_string(), "alpha dimension mismatch: expected 3, got 2");
        assert!(BayesFtError::EmptySearchSpace.to_string().contains("empty"));
        assert!(BayesFtError::InvalidConfig("trials must be > 0".into())
            .to_string()
            .contains("trials"));
    }

    #[test]
    fn gp_errors_wrap_with_source() {
        use std::error::Error;
        let e = BayesFtError::from(GpError::SingularKernel);
        assert!(e.source().is_some());
    }

    #[test]
    fn fault_errors_wrap_with_source() {
        use std::error::Error;
        let fault = "lognormal:bogus".parse::<reram::FaultSpec>().unwrap_err();
        let e = BayesFtError::from(fault);
        assert!(matches!(e, BayesFtError::Fault(_)));
        assert!(e.source().is_some());
        assert!(e.to_string().contains("lognormal:bogus"), "{e}");
    }
}
