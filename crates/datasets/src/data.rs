//! Labeled dataset container, splitting and batching.

use rand::Rng;
use tensor::Tensor;

/// A labeled classification dataset.
///
/// Images/features are stored as one tensor whose first dimension is the
/// sample index (`[N, D]` for tabular data, `[N, C, H, W]` for images).
#[derive(Debug, Clone)]
pub struct ClassificationDataset {
    x: Tensor,
    labels: Vec<usize>,
    classes: usize,
}

impl ClassificationDataset {
    /// Wraps pre-built features and labels.
    ///
    /// # Panics
    ///
    /// Panics if the sample count and label count differ, or any label is
    /// `>= classes`.
    pub fn new(x: Tensor, labels: Vec<usize>, classes: usize) -> Self {
        assert_eq!(
            x.dims()[0],
            labels.len(),
            "sample count {} != label count {}",
            x.dims()[0],
            labels.len()
        );
        assert!(
            labels.iter().all(|&l| l < classes),
            "label out of range for {classes} classes"
        );
        ClassificationDataset { x, labels, classes }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// The feature/image tensor (`[N, ...]`).
    pub fn images(&self) -> &Tensor {
        &self.x
    }

    /// The label vector.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Per-sample feature count (product of non-batch dims).
    pub fn feature_len(&self) -> usize {
        self.x.dims()[1..].iter().product()
    }

    /// Extracts the samples at `indices` into a new dataset.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn subset(&self, indices: &[usize]) -> ClassificationDataset {
        let f = self.feature_len();
        let mut data = Vec::with_capacity(indices.len() * f);
        let mut labels = Vec::with_capacity(indices.len());
        for &i in indices {
            assert!(i < self.len(), "index {i} out of bounds");
            data.extend_from_slice(&self.x.as_slice()[i * f..(i + 1) * f]);
            labels.push(self.labels[i]);
        }
        let mut dims = self.x.dims().to_vec();
        dims[0] = indices.len();
        ClassificationDataset {
            x: Tensor::from_vec(data, &dims).expect("subset length matches"),
            labels,
            classes: self.classes,
        }
    }

    /// Randomly splits into `(train, test)` with `train_fraction` of the
    /// samples in the training set.
    ///
    /// # Panics
    ///
    /// Panics if `train_fraction` is outside `(0, 1)`.
    pub fn split(
        &self,
        train_fraction: f32,
        rng: &mut impl Rng,
    ) -> (ClassificationDataset, ClassificationDataset) {
        assert!(
            train_fraction > 0.0 && train_fraction < 1.0,
            "train fraction must be in (0, 1)"
        );
        let mut indices: Vec<usize> = (0..self.len()).collect();
        for i in (1..indices.len()).rev() {
            let j = rng.gen_range(0..=i);
            indices.swap(i, j);
        }
        let cut = ((self.len() as f32 * train_fraction).round() as usize)
            .clamp(1, self.len().saturating_sub(1).max(1));
        (self.subset(&indices[..cut]), self.subset(&indices[cut..]))
    }

    /// Iterates over consecutive mini-batches of at most `batch_size`
    /// samples.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size` is zero.
    pub fn batches(&self, batch_size: usize) -> Batches<'_> {
        assert!(batch_size > 0, "batch size must be positive");
        Batches {
            data: self,
            batch_size,
            cursor: 0,
        }
    }

    /// Returns a copy with sample order shuffled (fresh epoch ordering).
    pub fn shuffled(&self, rng: &mut impl Rng) -> ClassificationDataset {
        let mut indices: Vec<usize> = (0..self.len()).collect();
        for i in (1..indices.len()).rev() {
            let j = rng.gen_range(0..=i);
            indices.swap(i, j);
        }
        self.subset(&indices)
    }
}

/// Mini-batch iterator over a [`ClassificationDataset`].
///
/// Yields `(images, labels)` pairs; the final batch may be smaller.
#[derive(Debug)]
pub struct Batches<'a> {
    data: &'a ClassificationDataset,
    batch_size: usize,
    cursor: usize,
}

impl Iterator for Batches<'_> {
    type Item = (Tensor, Vec<usize>);

    fn next(&mut self) -> Option<Self::Item> {
        if self.cursor >= self.data.len() {
            return None;
        }
        let end = (self.cursor + self.batch_size).min(self.data.len());
        let indices: Vec<usize> = (self.cursor..end).collect();
        let batch = self.data.subset(&indices);
        self.cursor = end;
        Some((batch.x, batch.labels))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn toy() -> ClassificationDataset {
        let x = Tensor::from_vec((0..20).map(|v| v as f32).collect(), &[10, 2]).unwrap();
        ClassificationDataset::new(x, (0..10).map(|i| i % 2).collect(), 2)
    }

    #[test]
    fn construction_validates() {
        let x = Tensor::zeros(&[3, 2]);
        assert!(std::panic::catch_unwind(|| {
            ClassificationDataset::new(x.clone(), vec![0, 1], 2)
        })
        .is_err());
        assert!(
            std::panic::catch_unwind(|| { ClassificationDataset::new(x, vec![0, 1, 5], 2) })
                .is_err()
        );
    }

    #[test]
    fn subset_selects_rows() {
        let d = toy();
        let s = d.subset(&[3, 7]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.images().row(0), &[6.0, 7.0]);
        assert_eq!(s.labels(), &[1, 1]);
    }

    #[test]
    fn split_partitions_all_samples() {
        let d = toy();
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let (train, test) = d.split(0.7, &mut rng);
        assert_eq!(train.len() + test.len(), d.len());
        assert_eq!(train.len(), 7);
    }

    #[test]
    fn batches_cover_dataset_in_order() {
        let d = toy();
        let batches: Vec<_> = d.batches(4).collect();
        assert_eq!(batches.len(), 3);
        assert_eq!(batches[0].0.dims(), &[4, 2]);
        assert_eq!(batches[2].0.dims(), &[2, 2]); // remainder
        let total: usize = batches.iter().map(|(_, l)| l.len()).sum();
        assert_eq!(total, 10);
        // First batch is rows 0..4.
        assert_eq!(batches[0].0.row(0), &[0.0, 1.0]);
    }

    /// NaN-total canonical ordering for multiset comparison. total_cmp
    /// (not partial_cmp().unwrap()) so a NaN feature value yields a
    /// comparison failure with a diff, not a panic inside the sort.
    fn canonical(values: &[f32]) -> Vec<f32> {
        let mut v = values.to_vec();
        v.sort_by(|x, y| x.total_cmp(y));
        v
    }

    #[test]
    fn shuffled_preserves_multiset() {
        let d = toy();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let s = d.shuffled(&mut rng);
        let a = canonical(d.images().as_slice());
        let b = canonical(s.images().as_slice());
        assert_eq!(a, b);
    }

    #[test]
    fn canonical_ordering_survives_nan_features() {
        // Regression: partial_cmp(..).unwrap() panicked here instead of
        // reporting a multiset mismatch when a feature was NaN.
        let v = canonical(&[2.0, f32::NAN, -1.0, f32::NEG_INFINITY]);
        assert_eq!(v[0], f32::NEG_INFINITY);
        assert_eq!(v[1], -1.0);
        assert_eq!(v[2], 2.0);
        assert!(v[3].is_nan(), "total_cmp ranks (positive) NaN above +inf");
    }

    #[test]
    fn feature_len_for_images() {
        let x = Tensor::zeros(&[2, 3, 4, 4]);
        let d = ClassificationDataset::new(x, vec![0, 1], 2);
        assert_eq!(d.feature_len(), 48);
    }
}
