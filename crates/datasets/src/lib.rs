//! Synthetic datasets for the BayesFT reproduction.
//!
//! The paper evaluates on MNIST, CIFAR-10, GTSRB and PennFudanPed. Those
//! datasets are not redistributable inside this offline workspace, so this
//! crate procedurally generates stand-ins with matching *structure* — class
//! counts, channel counts, and enough intra-class variation that the
//! networks must genuinely learn:
//!
//! | paper dataset | stand-in | structure |
//! |---|---|---|
//! | scikit-learn binary toy (Fig. 1) | [`moons`] | 2-D two-class interleaved half-moons |
//! | MNIST | [`digits`] | 10 glyph classes, 1×14×14, jittered bitmap font |
//! | CIFAR-10 | [`shapes`] | 10 textured-shape classes, 3×16×16 |
//! | GTSRB | [`signs`] | 43 sign classes (shape × color × glyph), 3×16×16 |
//! | PennFudanPed | [`ped_scenes`] | detection scenes with boxed "pedestrians" |
//!
//! Every generator takes an explicit RNG, so datasets are reproducible from
//! a seed.
//!
//! # Example
//!
//! ```
//! use datasets::digits;
//! use rand::SeedableRng;
//! use rand_chacha::ChaCha8Rng;
//!
//! let mut rng = ChaCha8Rng::seed_from_u64(0);
//! let data = digits(20, &mut rng); // 20 per class
//! assert_eq!(data.len(), 200);
//! assert_eq!(data.classes(), 10);
//! assert_eq!(data.images().dims(), &[200, 1, 14, 14]);
//! ```

mod data;
mod detect;
mod digits;
mod moons;
mod shapes;
mod signs;

pub use data::{Batches, ClassificationDataset};
pub use detect::{ped_scenes, BBox, DetectionDataset, Scene};
pub use digits::{digits, glyph_bitmap};
pub use moons::moons;
pub use shapes::shapes;
pub use signs::signs;
