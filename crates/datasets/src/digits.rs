//! MNIST-like synthetic digit images: a 5×7 bitmap font rendered onto a
//! 14×14 canvas with random shift, intensity scaling, and pixel noise.

use rand::Rng;
use tensor::Tensor;

use crate::ClassificationDataset;

/// Canvas side length of generated digit images.
pub const DIGIT_SIZE: usize = 14;

/// 5×7 bitmap font for the digits 0–9 (row-major, 1 = ink).
const FONT: [[u8; 35]; 10] = [
    // 0
    [
        0, 1, 1, 1, 0, 1, 0, 0, 0, 1, 1, 0, 0, 1, 1, 1, 0, 1, 0, 1, 1, 1, 0, 0, 1, 1, 0, 0, 0, 1,
        0, 1, 1, 1, 0,
    ],
    // 1
    [
        0, 0, 1, 0, 0, 0, 1, 1, 0, 0, 0, 0, 1, 0, 0, 0, 0, 1, 0, 0, 0, 0, 1, 0, 0, 0, 0, 1, 0, 0,
        0, 1, 1, 1, 0,
    ],
    // 2
    [
        0, 1, 1, 1, 0, 1, 0, 0, 0, 1, 0, 0, 0, 0, 1, 0, 0, 0, 1, 0, 0, 0, 1, 0, 0, 0, 1, 0, 0, 0,
        1, 1, 1, 1, 1,
    ],
    // 3
    [
        1, 1, 1, 1, 1, 0, 0, 0, 1, 0, 0, 0, 1, 0, 0, 0, 0, 1, 1, 0, 0, 0, 0, 0, 1, 1, 0, 0, 0, 1,
        0, 1, 1, 1, 0,
    ],
    // 4
    [
        0, 0, 0, 1, 0, 0, 0, 1, 1, 0, 0, 1, 0, 1, 0, 1, 0, 0, 1, 0, 1, 1, 1, 1, 1, 0, 0, 0, 1, 0,
        0, 0, 0, 1, 0,
    ],
    // 5
    [
        1, 1, 1, 1, 1, 1, 0, 0, 0, 0, 1, 1, 1, 1, 0, 0, 0, 0, 0, 1, 0, 0, 0, 0, 1, 1, 0, 0, 0, 1,
        0, 1, 1, 1, 0,
    ],
    // 6
    [
        0, 0, 1, 1, 0, 0, 1, 0, 0, 0, 1, 0, 0, 0, 0, 1, 1, 1, 1, 0, 1, 0, 0, 0, 1, 1, 0, 0, 0, 1,
        0, 1, 1, 1, 0,
    ],
    // 7
    [
        1, 1, 1, 1, 1, 0, 0, 0, 0, 1, 0, 0, 0, 1, 0, 0, 0, 1, 0, 0, 0, 1, 0, 0, 0, 0, 1, 0, 0, 0,
        0, 1, 0, 0, 0,
    ],
    // 8
    [
        0, 1, 1, 1, 0, 1, 0, 0, 0, 1, 1, 0, 0, 0, 1, 0, 1, 1, 1, 0, 1, 0, 0, 0, 1, 1, 0, 0, 0, 1,
        0, 1, 1, 1, 0,
    ],
    // 9
    [
        0, 1, 1, 1, 0, 1, 0, 0, 0, 1, 1, 0, 0, 0, 1, 0, 1, 1, 1, 1, 0, 0, 0, 0, 1, 0, 0, 0, 1, 0,
        0, 1, 1, 0, 0,
    ],
];

/// Returns the 5×7 bitmap (35 values, row-major) of a digit glyph.
///
/// # Panics
///
/// Panics if `digit > 9`.
pub fn glyph_bitmap(digit: usize) -> &'static [u8; 35] {
    assert!(digit < 10, "digit must be 0–9");
    &FONT[digit]
}

/// Generates `per_class` jittered samples of each digit 0–9 as
/// `[N, 1, 14, 14]` images with values in `[0, 1]`.
///
/// Jitter per sample: ±2 px translation, ink intensity in `[0.7, 1.0]`,
/// additive uniform pixel noise up to 0.15, and a 2× nearest-neighbour
/// upscale of the 5×7 glyph so strokes are 2 px wide.
///
/// # Panics
///
/// Panics if `per_class == 0`.
pub fn digits(per_class: usize, rng: &mut impl Rng) -> ClassificationDataset {
    assert!(per_class > 0, "need at least one sample per class");
    let n = per_class * 10;
    let hw = DIGIT_SIZE * DIGIT_SIZE;
    let mut data = vec![0.0f32; n * hw];
    let mut labels = Vec::with_capacity(n);
    for s in 0..n {
        let digit = s % 10;
        labels.push(digit);
        let dx = rng.gen_range(-2i32..=2);
        let dy = rng.gen_range(-2i32..=2);
        let ink = rng.gen_range(0.7..1.0f32);
        let noise = rng.gen_range(0.0..0.15f32);
        let img = &mut data[s * hw..(s + 1) * hw];
        // Render the 5×7 glyph at 2× scale (10×14 area) centered-ish.
        for gy in 0..7 {
            for gx in 0..5 {
                if FONT[digit][gy * 5 + gx] == 0 {
                    continue;
                }
                for sy in 0..2 {
                    for sx in 0..2 {
                        let y = gy as i32 * 2 + sy + dy;
                        let x = gx as i32 * 2 + sx + 2 + dx;
                        if (0..DIGIT_SIZE as i32).contains(&y)
                            && (0..DIGIT_SIZE as i32).contains(&x)
                        {
                            img[y as usize * DIGIT_SIZE + x as usize] = ink;
                        }
                    }
                }
            }
        }
        for p in img.iter_mut() {
            *p = (*p + rng.gen::<f32>() * noise).min(1.0);
        }
    }
    ClassificationDataset::new(
        Tensor::from_vec(data, &[n, 1, DIGIT_SIZE, DIGIT_SIZE]).expect("length matches"),
        labels,
        10,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn shape_and_balance() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let d = digits(5, &mut rng);
        assert_eq!(d.len(), 50);
        assert_eq!(d.images().dims(), &[50, 1, 14, 14]);
        for c in 0..10 {
            assert_eq!(d.labels().iter().filter(|&&l| l == c).count(), 5);
        }
    }

    #[test]
    fn pixels_are_in_unit_range() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let d = digits(3, &mut rng);
        assert!(d
            .images()
            .as_slice()
            .iter()
            .all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn glyphs_have_distinct_ink_patterns() {
        // Any two font glyphs differ in at least 4 cells.
        for a in 0..10 {
            for b in (a + 1)..10 {
                let diff = glyph_bitmap(a)
                    .iter()
                    .zip(glyph_bitmap(b))
                    .filter(|(x, y)| x != y)
                    .count();
                assert!(diff >= 4, "glyphs {a} and {b} differ in only {diff} cells");
            }
        }
    }

    #[test]
    fn images_contain_ink() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let d = digits(2, &mut rng);
        let hw = DIGIT_SIZE * DIGIT_SIZE;
        for s in 0..d.len() {
            let sum: f32 = d.images().as_slice()[s * hw..(s + 1) * hw].iter().sum();
            assert!(sum > 3.0, "sample {s} looks blank (sum {sum})");
        }
    }

    #[test]
    fn generation_is_reproducible() {
        let a = digits(2, &mut ChaCha8Rng::seed_from_u64(3));
        let b = digits(2, &mut ChaCha8Rng::seed_from_u64(3));
        assert_eq!(a.images().as_slice(), b.images().as_slice());
    }
}
