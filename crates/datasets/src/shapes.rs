//! CIFAR-10-like synthetic images: 10 classes of colored geometric shapes
//! on textured 3×16×16 canvases.

use rand::Rng;
use tensor::Tensor;

use crate::ClassificationDataset;

/// Canvas side length of generated shape images.
pub const SHAPE_SIZE: usize = 16;

/// Generates `per_class` samples of each of 10 shape classes as
/// `[N, 3, 16, 16]` images in `[0, 1]`.
///
/// The classes pair five geometries (disc, ring, square, triangle, cross)
/// with two color schemes each, drawn at randomized position, scale and
/// hue over a textured background — enough intra-class variance that a
/// linear model cannot solve the task.
///
/// # Panics
///
/// Panics if `per_class == 0`.
pub fn shapes(per_class: usize, rng: &mut impl Rng) -> ClassificationDataset {
    assert!(per_class > 0, "need at least one sample per class");
    let n = per_class * 10;
    let chw = 3 * SHAPE_SIZE * SHAPE_SIZE;
    let mut data = vec![0.0f32; n * chw];
    let mut labels = Vec::with_capacity(n);
    for s in 0..n {
        let class = s % 10;
        labels.push(class);
        let img = &mut data[s * chw..(s + 1) * chw];
        render_class(class, img, rng);
    }
    ClassificationDataset::new(
        Tensor::from_vec(data, &[n, 3, SHAPE_SIZE, SHAPE_SIZE]).expect("length matches"),
        labels,
        10,
    )
}

/// Base colors (RGB in `[0,1]`) for the two schemes of each geometry.
const COLORS: [[f32; 3]; 4] = [
    [0.9, 0.2, 0.2], // red
    [0.2, 0.4, 0.9], // blue
    [0.2, 0.8, 0.3], // green
    [0.9, 0.8, 0.2], // yellow
];

fn render_class(class: usize, img: &mut [f32], rng: &mut impl Rng) {
    let geometry = class % 5;
    let scheme = class / 5; // 0 or 1
    let color = COLORS[(geometry + scheme * 2) % 4];
    let bg = COLORS[(geometry + scheme * 2 + 1) % 4];
    let size = SHAPE_SIZE;

    // Textured background: dimmed bg color plus per-pixel noise.
    for y in 0..size {
        for x in 0..size {
            for c in 0..3 {
                img[c * size * size + y * size + x] = 0.25 * bg[c] + 0.1 * rng.gen::<f32>();
            }
        }
    }

    let cx = rng.gen_range(5.0..(size as f32 - 5.0));
    let cy = rng.gen_range(5.0..(size as f32 - 5.0));
    let r = rng.gen_range(3.0..5.0f32);
    let jitter = rng.gen_range(0.85..1.0f32);

    for y in 0..size {
        for x in 0..size {
            let fx = x as f32 - cx;
            let fy = y as f32 - cy;
            let inside = match geometry {
                0 => fx * fx + fy * fy <= r * r, // disc
                1 => {
                    let d2 = fx * fx + fy * fy;
                    d2 <= r * r && d2 >= (r - 1.8) * (r - 1.8) // ring
                }
                2 => fx.abs() <= r * 0.8 && fy.abs() <= r * 0.8, // square
                3 => fy >= -r && fy <= r && fx.abs() <= (r - fy) * 0.5, // triangle
                _ => fx.abs() <= 1.2 || fy.abs() <= 1.2,         // cross (clipped below)
            };
            let in_bounds = geometry != 4 || (fx.abs() <= r && fy.abs() <= r);
            if inside && in_bounds {
                for c in 0..3 {
                    img[c * size * size + y * size + x] = (color[c] * jitter).min(1.0);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn shape_and_balance() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let d = shapes(4, &mut rng);
        assert_eq!(d.len(), 40);
        assert_eq!(d.images().dims(), &[40, 3, 16, 16]);
        assert_eq!(d.classes(), 10);
    }

    #[test]
    fn pixels_in_unit_range() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let d = shapes(2, &mut rng);
        assert!(d
            .images()
            .as_slice()
            .iter()
            .all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn classes_have_distinct_mean_images() {
        // Average image per class should differ between classes — the signal
        // a classifier learns.
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let d = shapes(20, &mut rng);
        let chw = 3 * 16 * 16;
        let mut means = vec![vec![0.0f32; chw]; 10];
        for s in 0..d.len() {
            let c = d.labels()[s];
            for (m, &v) in means[c]
                .iter_mut()
                .zip(&d.images().as_slice()[s * chw..(s + 1) * chw])
            {
                *m += v / 20.0;
            }
        }
        for a in 0..10 {
            for b in (a + 1)..10 {
                let dist: f32 = means[a]
                    .iter()
                    .zip(&means[b])
                    .map(|(x, y)| (x - y) * (x - y))
                    .sum();
                assert!(dist > 0.05, "classes {a} and {b} look identical ({dist})");
            }
        }
    }

    #[test]
    fn intra_class_variation_exists() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let d = shapes(2, &mut rng);
        let chw = 3 * 16 * 16;
        // Two samples of class 0 (indices 0 and 10) must differ.
        let a = &d.images().as_slice()[0..chw];
        let b = &d.images().as_slice()[10 * chw..11 * chw];
        let dist: f32 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
        assert!(dist > 0.01, "no intra-class variation");
    }
}
