//! GTSRB-like synthetic traffic-sign images: 43 classes formed by
//! (border shape × background color × inner glyph) combinations on
//! 3×16×16 canvases, with the randomized scale/position the paper's
//! spatial-transformer model is meant to handle.

use rand::Rng;
use tensor::Tensor;

use crate::digits::glyph_bitmap;
use crate::ClassificationDataset;

/// Canvas side length of generated sign images.
pub const SIGN_SIZE: usize = 16;

/// Number of traffic-sign classes, matching GTSRB.
pub const SIGN_CLASSES: usize = 43;

/// Generates `per_class` samples of each of the 43 sign classes as
/// `[N, 3, 16, 16]` images in `[0, 1]`.
///
/// Class `c` decomposes as `shape = c % 4`, `color = (c / 4) % 3`,
/// `glyph = c / 12` (mixed radix over 4 border shapes × 3 colors × 4
/// glyphs = 48 combinations, of which the first 43 are used). Signs are
/// drawn with randomized center and radius — the "randomized input shape"
/// property the paper notes for this task.
///
/// # Panics
///
/// Panics if `per_class == 0`.
pub fn signs(per_class: usize, rng: &mut impl Rng) -> ClassificationDataset {
    assert!(per_class > 0, "need at least one sample per class");
    let n = per_class * SIGN_CLASSES;
    let chw = 3 * SIGN_SIZE * SIGN_SIZE;
    let mut data = vec![0.0f32; n * chw];
    let mut labels = Vec::with_capacity(n);
    for s in 0..n {
        let class = s % SIGN_CLASSES;
        labels.push(class);
        render_sign(class, &mut data[s * chw..(s + 1) * chw], rng);
    }
    ClassificationDataset::new(
        Tensor::from_vec(data, &[n, 3, SIGN_SIZE, SIGN_SIZE]).expect("length matches"),
        labels,
        SIGN_CLASSES,
    )
}

const SIGN_COLORS: [[f32; 3]; 3] = [
    [0.85, 0.15, 0.15], // red
    [0.15, 0.25, 0.85], // blue
    [0.9, 0.85, 0.2],   // yellow
];

fn render_sign(class: usize, img: &mut [f32], rng: &mut impl Rng) {
    let shape = class % 4;
    let color = SIGN_COLORS[(class / 4) % 3];
    let glyph = class / 12; // 0..=3
    let size = SIGN_SIZE;

    // Gray textured background.
    for p in img.iter_mut() {
        *p = 0.35 + 0.1 * rng.gen::<f32>();
    }

    let cx = rng.gen_range(6.5..(size as f32 - 6.5));
    let cy = rng.gen_range(6.5..(size as f32 - 6.5));
    let r = rng.gen_range(5.0..6.5f32);

    for y in 0..size {
        for x in 0..size {
            let fx = x as f32 - cx;
            let fy = y as f32 - cy;
            let inside = match shape {
                0 => fx * fx + fy * fy <= r * r,                        // circle
                1 => fy >= -r && fy <= r && fx.abs() <= (r - fy) * 0.6, // triangle
                2 => fx.abs() <= r * 0.85 && fy.abs() <= r * 0.85,      // square
                _ => fx.abs() + fy.abs() <= r,                          // diamond
            };
            if inside {
                for c in 0..3 {
                    img[c * size * size + y * size + x] = color[c];
                }
            }
        }
    }

    // White inner disc with a dark digit glyph (0–3).
    let ir = r * 0.55;
    for y in 0..size {
        for x in 0..size {
            let fx = x as f32 - cx;
            let fy = y as f32 - cy;
            if fx * fx + fy * fy <= ir * ir {
                for c in 0..3 {
                    img[c * size * size + y * size + x] = 0.95;
                }
            }
        }
    }
    let bitmap = glyph_bitmap(glyph);
    let gx0 = cx as i32 - 2;
    let gy0 = cy as i32 - 3;
    for gy in 0..7i32 {
        for gx in 0..5i32 {
            if bitmap[(gy * 5 + gx) as usize] == 0 {
                continue;
            }
            let y = gy0 + gy;
            let x = gx0 + gx;
            if (0..size as i32).contains(&y) && (0..size as i32).contains(&x) {
                for c in 0..3 {
                    img[c * size * size + y as usize * size + x as usize] = 0.05;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn has_43_balanced_classes() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let d = signs(2, &mut rng);
        assert_eq!(d.classes(), 43);
        assert_eq!(d.len(), 86);
        for c in 0..43 {
            assert_eq!(d.labels().iter().filter(|&&l| l == c).count(), 2);
        }
    }

    #[test]
    fn pixels_in_unit_range() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let d = signs(1, &mut rng);
        assert!(d
            .images()
            .as_slice()
            .iter()
            .all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn class_factorization_is_injective_over_43() {
        let mut seen = std::collections::HashSet::new();
        for c in 0..43 {
            let key = (c % 4, (c / 4) % 3, c / 12);
            assert!(seen.insert(key), "class {c} collides");
        }
    }

    #[test]
    fn sign_images_contain_colored_region() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let d = signs(1, &mut rng);
        let chw = 3 * 16 * 16;
        for s in 0..5 {
            let img = &d.images().as_slice()[s * chw..(s + 1) * chw];
            let bright = img.iter().filter(|&&v| v > 0.8).count();
            assert!(bright > 5, "sample {s} has no bright sign area");
        }
    }
}
