//! PennFudanPed-like synthetic pedestrian-detection scenes.

use rand::Rng;
use tensor::Tensor;

/// An axis-aligned bounding box in pixel coordinates (`x0 ≤ x1`, `y0 ≤ y1`,
/// inclusive-exclusive on the max edge).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BBox {
    /// Left edge.
    pub x0: f32,
    /// Top edge.
    pub y0: f32,
    /// Right edge.
    pub x1: f32,
    /// Bottom edge.
    pub y1: f32,
}

impl BBox {
    /// Creates a box, normalizing corner order.
    pub fn new(x0: f32, y0: f32, x1: f32, y1: f32) -> Self {
        BBox {
            x0: x0.min(x1),
            y0: y0.min(y1),
            x1: x0.max(x1),
            y1: y0.max(y1),
        }
    }

    /// Box area (0 for degenerate boxes).
    pub fn area(&self) -> f32 {
        (self.x1 - self.x0).max(0.0) * (self.y1 - self.y0).max(0.0)
    }

    /// Intersection-over-union with another box, in `[0, 1]`.
    pub fn iou(&self, other: &BBox) -> f32 {
        let ix0 = self.x0.max(other.x0);
        let iy0 = self.y0.max(other.y0);
        let ix1 = self.x1.min(other.x1);
        let iy1 = self.y1.min(other.y1);
        let inter = (ix1 - ix0).max(0.0) * (iy1 - iy0).max(0.0);
        let union = self.area() + other.area() - inter;
        if union <= 0.0 {
            0.0
        } else {
            inter / union
        }
    }

    /// Center coordinates `(cx, cy)`.
    pub fn center(&self) -> (f32, f32) {
        ((self.x0 + self.x1) / 2.0, (self.y0 + self.y1) / 2.0)
    }

    /// Width and height.
    pub fn size(&self) -> (f32, f32) {
        (self.x1 - self.x0, self.y1 - self.y0)
    }
}

/// One detection scene: an image plus ground-truth pedestrian boxes.
#[derive(Debug, Clone)]
pub struct Scene {
    /// `[3, H, W]` image in `[0, 1]`.
    pub image: Tensor,
    /// Ground-truth boxes.
    pub boxes: Vec<BBox>,
}

/// A detection dataset of independent scenes.
#[derive(Debug, Clone)]
pub struct DetectionDataset {
    scenes: Vec<Scene>,
    size: usize,
}

impl DetectionDataset {
    /// The scenes.
    pub fn scenes(&self) -> &[Scene] {
        &self.scenes
    }

    /// Number of scenes.
    pub fn len(&self) -> usize {
        self.scenes.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.scenes.is_empty()
    }

    /// Image side length.
    pub fn image_size(&self) -> usize {
        self.size
    }

    /// Splits into `(train, test)` at `train_fraction`.
    ///
    /// # Panics
    ///
    /// Panics if `train_fraction` is outside `(0, 1)`.
    pub fn split(&self, train_fraction: f32) -> (DetectionDataset, DetectionDataset) {
        assert!(
            train_fraction > 0.0 && train_fraction < 1.0,
            "train fraction must be in (0, 1)"
        );
        let cut = ((self.len() as f32 * train_fraction).round() as usize).clamp(1, self.len() - 1);
        (
            DetectionDataset {
                scenes: self.scenes[..cut].to_vec(),
                size: self.size,
            },
            DetectionDataset {
                scenes: self.scenes[cut..].to_vec(),
                size: self.size,
            },
        )
    }
}

/// Generates `n` pedestrian scenes of `size`×`size` pixels, each containing
/// 1 to `max_peds` "pedestrians" (vertically elongated two-tone figures on
/// a textured street-like background) with ground-truth boxes.
///
/// # Panics
///
/// Panics if `n == 0`, `size < 16`, or `max_peds == 0`.
///
/// # Example
///
/// ```
/// use datasets::ped_scenes;
/// use rand::SeedableRng;
/// use rand_chacha::ChaCha8Rng;
///
/// let mut rng = ChaCha8Rng::seed_from_u64(0);
/// let data = ped_scenes(4, 24, 2, &mut rng);
/// assert_eq!(data.len(), 4);
/// assert!(!data.scenes()[0].boxes.is_empty());
/// ```
pub fn ped_scenes(n: usize, size: usize, max_peds: usize, rng: &mut impl Rng) -> DetectionDataset {
    assert!(n > 0, "need at least one scene");
    assert!(size >= 16, "scene size must be at least 16");
    assert!(max_peds > 0, "need at least one pedestrian per scene");
    let mut scenes = Vec::with_capacity(n);
    for _ in 0..n {
        scenes.push(render_scene(size, max_peds, rng));
    }
    DetectionDataset { scenes, size }
}

fn render_scene(size: usize, max_peds: usize, rng: &mut impl Rng) -> Scene {
    let mut img = vec![0.0f32; 3 * size * size];
    // Street-like background: horizontal brightness gradient + noise.
    for y in 0..size {
        for x in 0..size {
            let base = 0.3 + 0.2 * (y as f32 / size as f32);
            for c in 0..3 {
                img[c * size * size + y * size + x] =
                    base + 0.06 * rng.gen::<f32>() + if c == 2 { 0.05 } else { 0.0 };
            }
        }
    }
    let count = rng.gen_range(1..=max_peds);
    let mut boxes: Vec<BBox> = Vec::with_capacity(count);
    for _ in 0..count {
        // Pedestrian dimensions: tall and narrow.
        let h = rng.gen_range((size as f32 * 0.3)..(size as f32 * 0.55));
        let w = h * rng.gen_range(0.3..0.45f32);
        let x0 = rng.gen_range(1.0..(size as f32 - w - 1.0));
        let y0 = rng.gen_range(1.0..(size as f32 - h - 1.0));
        let bbox = BBox::new(x0, y0, x0 + w, y0 + h);
        // Avoid heavy overlap so ground truth stays unambiguous.
        if boxes.iter().any(|b| b.iou(&bbox) > 0.3) {
            continue;
        }
        draw_pedestrian(&mut img, size, &bbox, rng);
        boxes.push(bbox);
    }
    if boxes.is_empty() {
        // Guarantee at least one pedestrian.
        let bbox = BBox::new(
            size as f32 * 0.3,
            size as f32 * 0.25,
            size as f32 * 0.45,
            size as f32 * 0.7,
        );
        draw_pedestrian(&mut img, size, &bbox, rng);
        boxes.push(bbox);
    }
    Scene {
        image: Tensor::from_vec(img, &[3, size, size]).expect("length matches"),
        boxes,
    }
}

fn draw_pedestrian(img: &mut [f32], size: usize, bbox: &BBox, rng: &mut impl Rng) {
    let shirt = [rng.gen_range(0.6..0.95), 0.15, 0.15];
    let pants = [0.1, 0.1, rng.gen_range(0.3..0.6)];
    let skin = [0.85, 0.7, 0.55];
    let (cx, _) = bbox.center();
    let (w, h) = bbox.size();
    let head_r = (w * 0.45).max(1.0);
    for y in (bbox.y0 as usize)..(bbox.y1 as usize).min(size) {
        for x in (bbox.x0 as usize)..(bbox.x1 as usize).min(size) {
            let fy = (y as f32 - bbox.y0) / h; // 0 head, 1 feet
            let dx = (x as f32 - cx).abs();
            let color = if fy < 0.2 {
                if dx <= head_r {
                    Some(skin)
                } else {
                    None
                }
            } else if fy < 0.6 {
                if dx <= w * 0.5 {
                    Some(shirt)
                } else {
                    None
                }
            } else if dx <= w * 0.4 {
                Some(pants)
            } else {
                None
            };
            if let Some(c) = color {
                for (ch, &v) in c.iter().enumerate() {
                    img[ch * size * size + y * size + x] = v;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn iou_identities() {
        let a = BBox::new(0.0, 0.0, 10.0, 10.0);
        assert!((a.iou(&a) - 1.0).abs() < 1e-6);
        let b = BBox::new(20.0, 20.0, 30.0, 30.0);
        assert_eq!(a.iou(&b), 0.0);
        let c = BBox::new(5.0, 0.0, 15.0, 10.0);
        // inter 50, union 150
        assert!((a.iou(&c) - 1.0 / 3.0).abs() < 1e-6);
        // Symmetry
        assert_eq!(a.iou(&c), c.iou(&a));
    }

    #[test]
    fn bbox_normalizes_corners() {
        let b = BBox::new(10.0, 8.0, 2.0, 1.0);
        assert_eq!(b.x0, 2.0);
        assert_eq!(b.y1, 8.0);
        assert_eq!(b.area(), 56.0);
    }

    #[test]
    fn scenes_have_valid_boxes() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let d = ped_scenes(10, 24, 3, &mut rng);
        for scene in d.scenes() {
            assert!(!scene.boxes.is_empty());
            for b in &scene.boxes {
                assert!(b.x0 >= 0.0 && b.y0 >= 0.0);
                assert!(b.x1 <= 24.0 && b.y1 <= 24.0);
                assert!(b.area() > 4.0, "degenerate pedestrian box");
            }
            assert_eq!(scene.image.dims(), &[3, 24, 24]);
        }
    }

    #[test]
    fn pedestrians_are_visible_against_background() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let d = ped_scenes(5, 24, 1, &mut rng);
        for scene in d.scenes() {
            let b = &scene.boxes[0];
            let (cx, cy) = b.center();
            // Shirt region (upper middle of the box) should be strongly red.
            let y = (b.y0 + (b.y1 - b.y0) * 0.4) as usize;
            let x = cx as usize;
            let red = scene.image.at(&[0, y, x]);
            let blue = scene.image.at(&[2, y, x]);
            assert!(
                red > blue,
                "pedestrian shirt not visible at ({x},{y}): r={red} b={blue}; cy={cy}"
            );
        }
    }

    #[test]
    fn split_partitions_scenes() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let d = ped_scenes(10, 20, 2, &mut rng);
        let (train, test) = d.split(0.8);
        assert_eq!(train.len(), 8);
        assert_eq!(test.len(), 2);
    }
}
