//! Two interleaved half-moons — the 2-D binary toy set behind the paper's
//! Fig. 1 decision-boundary visualization (generated with scikit-learn in
//! the paper).

use rand::Rng;
use tensor::Tensor;

use crate::ClassificationDataset;

/// Generates `n` samples of the two-moons dataset with Gaussian coordinate
/// noise of standard deviation `noise`.
///
/// Class 0 is the upper moon, class 1 the lower interleaved moon; features
/// are roughly in `[-1.5, 2.5] × [-1, 1.5]`.
///
/// # Panics
///
/// Panics if `n == 0` or `noise` is negative.
///
/// # Example
///
/// ```
/// use datasets::moons;
/// use rand::SeedableRng;
/// use rand_chacha::ChaCha8Rng;
///
/// let mut rng = ChaCha8Rng::seed_from_u64(0);
/// let data = moons(100, 0.1, &mut rng);
/// assert_eq!(data.len(), 100);
/// assert_eq!(data.classes(), 2);
/// ```
pub fn moons(n: usize, noise: f32, rng: &mut impl Rng) -> ClassificationDataset {
    assert!(n > 0, "need at least one sample");
    assert!(noise >= 0.0, "noise must be non-negative");
    let mut data = Vec::with_capacity(n * 2);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let label = i % 2;
        let t = rng.gen::<f32>() * std::f32::consts::PI;
        let (mut x, mut y) = if label == 0 {
            (t.cos(), t.sin())
        } else {
            (1.0 - t.cos(), 0.5 - t.sin())
        };
        x += noise * gaussian(rng);
        y += noise * gaussian(rng);
        data.push(x);
        data.push(y);
        labels.push(label);
    }
    ClassificationDataset::new(
        Tensor::from_vec(data, &[n, 2]).expect("length matches"),
        labels,
        2,
    )
}

fn gaussian(rng: &mut impl Rng) -> f32 {
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn classes_are_balanced() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let d = moons(200, 0.05, &mut rng);
        let ones = d.labels().iter().filter(|&&l| l == 1).count();
        assert_eq!(ones, 100);
    }

    #[test]
    fn noiseless_moons_lie_on_unit_arcs() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let d = moons(50, 0.0, &mut rng);
        for i in 0..d.len() {
            let x = d.images().at(&[i, 0]);
            let y = d.images().at(&[i, 1]);
            let r = if d.labels()[i] == 0 {
                (x * x + y * y).sqrt()
            } else {
                ((x - 1.0).powi(2) + (y - 0.5).powi(2)).sqrt()
            };
            assert!((r - 1.0).abs() < 1e-5, "sample {i} off its arc: r={r}");
        }
    }

    #[test]
    fn moons_are_linearly_inseparable_but_distinct() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let d = moons(400, 0.05, &mut rng);
        // Class means differ (distinct clusters).
        let mut mean = [[0.0f32; 2]; 2];
        let mut cnt = [0usize; 2];
        for i in 0..d.len() {
            let l = d.labels()[i];
            mean[l][0] += d.images().at(&[i, 0]);
            mean[l][1] += d.images().at(&[i, 1]);
            cnt[l] += 1;
        }
        for l in 0..2 {
            mean[l][0] /= cnt[l] as f32;
            mean[l][1] /= cnt[l] as f32;
        }
        let dist = ((mean[0][0] - mean[1][0]).powi(2) + (mean[0][1] - mean[1][1]).powi(2)).sqrt();
        assert!(dist > 0.5, "class means too close: {dist}");
    }
}
