//! Chaos tests for the fault-tolerant campaign service: supervised
//! worker processes are crashed, hung, and garbled mid-campaign
//! (`SERVE_FAULT` plans injected through [`ServeConfig::chaos`]), and
//! every case must end in a terminal `done` event — with the daemon
//! answering pings throughout and the compacted store byte-identical to
//! a serial run whenever the job recovers.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use scenarios::{Campaign, CampaignError, CampaignRunner, ResultStore, Scenario, TaskKind};
use serde_json::Value;
use serve::{Client, Daemon, Isolation, ServeConfig, ServeError};

/// The exact binary the daemon supervises in production, resolved by
/// Cargo for this test build.
const WORKER_EXE: &str = env!("CARGO_BIN_EXE_campaign");

fn tiny(name: &str, faults: &[&str], seed: u64) -> Scenario {
    Scenario::new(name, faults.iter().map(|f| f.parse().unwrap()).collect())
        .seed(seed)
        .budgets(3, 2, 1, 1)
        .task(TaskKind::Moons {
            samples: 80,
            noise: 0.1,
        })
}

fn three_scenarios(tag: &str) -> Campaign {
    Campaign::new(
        tag,
        vec![
            tiny("lognormal", &["lognormal:0.5"], 3),
            tiny("defects", &["stuckat:0.05,0.02,2", "bitflip:0.005"], 5),
            tiny("drift", &["lognormal:0.3"], 7),
        ],
    )
}

fn temp_store(tag: &str) -> PathBuf {
    let path =
        std::env::temp_dir().join(format!("bayesft-chaos-{}-{tag}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);
    path
}

/// Process-isolated daemon config pointing at this build's `campaign`
/// binary, with tight chaos-scale retry timing.
fn chaos_config(store: &Path, plan: &str) -> ServeConfig {
    ServeConfig {
        store: store.to_string_lossy().into_owned(),
        workers: 1,
        shards: 1,
        isolation: Isolation::Process,
        worker_exe: Some(WORKER_EXE.to_string()),
        chaos: Some(plan.to_string()),
        max_retries: 2,
        backoff_base: Duration::from_millis(50),
        backoff_cap: Duration::from_millis(200),
        ..ServeConfig::default()
    }
}

fn start(config: ServeConfig) -> (String, thread::JoinHandle<Result<(), CampaignError>>) {
    let daemon = Daemon::bind("127.0.0.1:0", config).unwrap();
    let addr = daemon.local_addr().unwrap().to_string();
    let handle = thread::spawn(move || daemon.run());
    (addr, handle)
}

fn state_of(done: &Value) -> &str {
    done.get("state").and_then(Value::as_str).unwrap_or("?")
}

/// Keeps a second connection pinging until `stop`; panics (failing the
/// test) if the daemon ever stops answering — the whole point of process
/// isolation is that worker crashes never take the service down.
fn pinger(addr: String, stop: Arc<AtomicBool>, count: Arc<AtomicUsize>) -> thread::JoinHandle<()> {
    thread::spawn(move || {
        let mut client = Client::connect(&addr).expect("pinger connects");
        while !stop.load(Ordering::SeqCst) {
            client.ping().expect("daemon answers pings during chaos");
            count.fetch_add(1, Ordering::SeqCst);
            thread::sleep(Duration::from_millis(20));
        }
    })
}

#[test]
fn crashed_worker_is_retried_and_the_store_matches_a_serial_run() {
    let campaign = three_scenarios("chaos-crash");
    let store_path = temp_store("crash");
    // The worker aborts (SIGABRT) after its 2nd completed scenario, on
    // attempt 1 only — the supervised retry must finish the job.
    let (addr, daemon) = start(chaos_config(&store_path, "crash_after:2"));

    let stop = Arc::new(AtomicBool::new(false));
    let pings = Arc::new(AtomicUsize::new(0));
    let ping_thread = pinger(addr.clone(), Arc::clone(&stop), Arc::clone(&pings));

    let mut client = Client::connect(&addr).unwrap();
    let job = client.submit(campaign.to_json()).unwrap();
    let mut retries = Vec::new();
    let done = client
        .watch(&job, |event| {
            if event.get("event").and_then(Value::as_str) == Some("retry") {
                retries.push(event.clone());
            }
        })
        .unwrap();
    assert_eq!(state_of(&done), "done", "retry must recover: {done:?}");
    assert!(
        done.get("attempts").and_then(Value::as_u64) >= Some(2),
        "the crash costs at least one extra attempt: {done:?}"
    );
    assert_eq!(
        retries.len(),
        1,
        "exactly one crash, one retry: {retries:?}"
    );
    assert!(
        retries[0]
            .get("backoff_ms")
            .and_then(Value::as_u64)
            .unwrap()
            >= 25,
        "retry waits out a backoff: {:?}",
        retries[0]
    );
    assert!(
        retries[0]
            .get("error")
            .and_then(Value::as_str)
            .unwrap()
            .contains("signal"),
        "the crash is classified as signal death: {:?}",
        retries[0]
    );

    // The retry accounting is externally visible in the metrics snapshot.
    let metrics = client.metrics().unwrap();
    let retried: u64 = metrics
        .lines()
        .find_map(|l| l.strip_prefix("daemon_job_retries_total "))
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(0);
    assert!(retried >= 1, "daemon_job_retries_total missing:\n{metrics}");

    stop.store(true, Ordering::SeqCst);
    ping_thread.join().unwrap();
    assert!(
        pings.load(Ordering::SeqCst) > 0,
        "the pinger must have run during the chaos"
    );
    client.shutdown().unwrap();
    daemon.join().unwrap().unwrap();

    // Acceptance: after a kill-and-retry, the compacted daemon store is
    // byte-identical to an undisturbed serial run.
    let direct_path = temp_store("crash-direct");
    CampaignRunner::new()
        .run_campaign_report(&campaign, Some(&ResultStore::open(&direct_path)))
        .unwrap();
    ResultStore::open(&store_path).compact().unwrap();
    ResultStore::open(&direct_path).compact().unwrap();
    let daemon_bytes = std::fs::read(&store_path).unwrap();
    assert!(!daemon_bytes.is_empty());
    assert_eq!(
        daemon_bytes,
        std::fs::read(&direct_path).unwrap(),
        "chaos-recovered store diverged from a serial run"
    );
    // A recovered job cleans up its per-job scratch files.
    let shard = format!("{}.{job}.shard0.jsonl", store_path.to_string_lossy());
    assert!(
        !Path::new(&shard).exists(),
        "successful jobs leave no shard stores behind"
    );
    let _ = std::fs::remove_file(&store_path);
    let _ = std::fs::remove_file(&direct_path);
}

#[test]
fn hung_worker_is_killed_at_the_deadline() {
    let campaign = three_scenarios("chaos-hang");
    let store_path = temp_store("hang");
    let mut config = chaos_config(&store_path, "hang_after:1");
    // A hang is not a crash: no retry would help, so none is configured;
    // only the deadline frees the supervisor.
    config.max_retries = 0;
    config.deadline = Some(Duration::from_secs(2));
    let (addr, daemon) = start(config);

    let mut client = Client::connect(&addr).unwrap();
    let job = client.submit(campaign.to_json()).unwrap();
    let started = Instant::now();
    let done = client.watch(&job, |_| {}).unwrap();
    assert_eq!(state_of(&done), "timed_out", "deadline must fire: {done:?}");
    assert!(
        started.elapsed() < Duration::from_secs(30),
        "the kill happens at the deadline, not at test timeout"
    );
    let status = client.status(Some(&job)).unwrap();
    assert_eq!(
        status
            .get("job")
            .and_then(|j| j.get("state"))
            .and_then(Value::as_str),
        Some("timed_out")
    );
    client.shutdown().unwrap();
    daemon.join().unwrap().unwrap();
    let _ = std::fs::remove_file(&store_path);
}

#[test]
fn retry_exhaustion_fails_the_job_and_keeps_its_partial_prefix() {
    let campaign = three_scenarios("chaos-exhaust");
    let store_path = temp_store("exhaust");
    // `@9` keeps the plan armed on every attempt: the worker crashes
    // after its 2nd completion each time, so the single retry cannot
    // save the job — but the 1st scenario's record must survive.
    let mut config = chaos_config(&store_path, "crash_after:2@9");
    config.max_retries = 1;
    let (addr, daemon) = start(config);

    let mut client = Client::connect(&addr).unwrap();
    let job = client.submit(campaign.to_json()).unwrap();
    let done = client.watch(&job, |_| {}).unwrap();
    assert_eq!(state_of(&done), "failed", "budget exhausted: {done:?}");
    assert_eq!(done.get("attempts").and_then(Value::as_u64), Some(2));
    let error = done.get("error").and_then(Value::as_str).unwrap_or("");
    assert!(
        error.contains("crashed on all 2 attempt(s)"),
        "the error names the exhausted budget: {error}"
    );

    // Failed ≠ vanished: the fsynced prefix is merged into the daemon
    // store, and the shard store is kept on disk for forensics.
    client.shutdown().unwrap();
    daemon.join().unwrap().unwrap();
    let records = ResultStore::open(&store_path).load().unwrap();
    assert!(
        !records.is_empty(),
        "the partial prefix must be persisted in the daemon store"
    );
    assert!(records.iter().all(|r| r.campaign == "chaos-exhaust"));
    let shard = format!("{}.{job}.shard0.jsonl", store_path.to_string_lossy());
    assert!(
        Path::new(&shard).exists(),
        "failed jobs keep their shard stores for forensics"
    );
    let _ = std::fs::remove_file(&store_path);
    let _ = std::fs::remove_file(&shard);
    let _ = std::fs::remove_file(format!("{shard}.lock"));
}

#[test]
fn garbage_on_the_event_stream_is_tolerated() {
    let campaign = three_scenarios("chaos-garbage");
    let store_path = temp_store("garbage");
    let (addr, daemon) = start(chaos_config(&store_path, "garbage_after:1"));

    let mut client = Client::connect(&addr).unwrap();
    let job = client.submit(campaign.to_json()).unwrap();
    let mut warnings = Vec::new();
    let done = client
        .watch(&job, |event| {
            if event.get("event").and_then(Value::as_str) == Some("warning") {
                warnings.push(
                    event
                        .get("message")
                        .and_then(Value::as_str)
                        .unwrap_or("")
                        .to_string(),
                );
            }
        })
        .unwrap();
    assert_eq!(state_of(&done), "done", "garbage is survivable: {done:?}");
    assert_eq!(done.get("attempts").and_then(Value::as_u64), Some(1));
    assert!(
        warnings.iter().any(|w| w.contains("non-protocol")),
        "the garbage is surfaced as a warning, not swallowed: {warnings:?}"
    );
    client.shutdown().unwrap();
    daemon.join().unwrap().unwrap();
    let records = ResultStore::open(&store_path).load().unwrap();
    assert_eq!(records.len(), 3, "all scenarios persisted despite garbage");
    let _ = std::fs::remove_file(&store_path);
}

#[test]
fn submit_with_retry_waits_out_a_briefly_full_queue() {
    // No workers: queued jobs stay queued until cancelled, so the
    // one-slot queue is deterministically full.
    let store_path = temp_store("backpressure");
    let config = ServeConfig {
        store: store_path.to_string_lossy().into_owned(),
        workers: 0,
        queue_capacity: 1,
        ..ServeConfig::default()
    };
    let (addr, daemon) = start(config);
    let campaign = three_scenarios("chaos-queue");

    let mut client = Client::connect(&addr).unwrap();
    let first = client.submit(campaign.to_json()).unwrap();

    // A plain submit against the full queue fails fast — with the
    // machine-readable reason and a usable back-pressure hint.
    match client.submit(campaign.to_json()) {
        Err(ServeError::Busy {
            message,
            reason,
            retry_after_ms,
        }) => {
            assert!(message.contains("queue full"), "{message}");
            assert_eq!(reason, "queue_full");
            assert!(retry_after_ms >= 100, "hint too small: {retry_after_ms}");
        }
        other => panic!("full queue must refuse with a Busy hint: {other:?}"),
    }

    // Free the slot from another connection after a beat; the retrying
    // submit must ride out the refusals and land.
    let canceller = {
        let addr = addr.clone();
        thread::spawn(move || {
            thread::sleep(Duration::from_millis(150));
            let mut side = Client::connect(&addr).unwrap();
            side.cancel(&first).unwrap();
        })
    };
    let started = Instant::now();
    let (job, attempts) = client
        .submit_with_retry(&campaign.to_json(), 50)
        .expect("retries outlast the briefly-full queue");
    canceller.join().unwrap();
    assert_eq!(job, "job-2");
    assert!(attempts > 1, "the full queue must cost at least one retry");
    assert!(
        started.elapsed() >= Duration::from_millis(100),
        "each retry sleeps the daemon's hint (clamped), not zero"
    );

    client.shutdown().unwrap();
    daemon.join().unwrap().unwrap();
    let _ = std::fs::remove_file(&store_path);
}
