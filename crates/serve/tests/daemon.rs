//! End-to-end campaign service tests: submit/watch/cancel over real TCP,
//! multi-tenant dedup through the shared runner, queue bounds, and
//! restart recovery from the persisted store prefix.

use std::path::{Path, PathBuf};
use std::thread;

use scenarios::{Campaign, CampaignError, CampaignRunner, ResultStore, Scenario, TaskKind};
use serde_json::Value;
use serve::{Client, Daemon, ServeConfig};

fn tiny(name: &str, faults: &[&str], seed: u64) -> Scenario {
    Scenario::new(name, faults.iter().map(|f| f.parse().unwrap()).collect())
        .seed(seed)
        .budgets(3, 2, 1, 1)
        .task(TaskKind::Moons {
            samples: 80,
            noise: 0.1,
        })
}

fn temp_store(tag: &str) -> PathBuf {
    let path =
        std::env::temp_dir().join(format!("bayesft-serve-{}-{tag}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);
    path
}

/// Binds on an ephemeral loopback port and runs the daemon on a thread.
fn start(config: ServeConfig) -> (String, thread::JoinHandle<Result<(), CampaignError>>) {
    let daemon = Daemon::bind("127.0.0.1:0", config).unwrap();
    let addr = daemon.local_addr().unwrap().to_string();
    let handle = thread::spawn(move || daemon.run());
    (addr, handle)
}

fn config(store: &Path, workers: usize) -> ServeConfig {
    ServeConfig {
        store: store.to_string_lossy().into_owned(),
        workers,
        ..ServeConfig::default()
    }
}

fn u64_field(value: &Value, key: &str) -> u64 {
    value.get(key).and_then(Value::as_u64).unwrap_or(u64::MAX)
}

#[test]
fn daemon_runs_a_submitted_campaign_end_to_end() {
    let campaign = Campaign::new(
        "served",
        vec![
            tiny("lognormal", &["lognormal:0.5"], 3),
            tiny("defects", &["stuckat:0.05,0.02,2", "bitflip:0.005"], 3),
        ],
    );
    let store_path = temp_store("e2e");
    let (addr, daemon) = start(config(&store_path, 1));

    let mut client = Client::connect(&addr).unwrap();
    let ping = client.ping().unwrap();
    assert_eq!(
        ping.get("service").and_then(Value::as_str),
        Some("campaign")
    );

    let job = client.submit(campaign.to_json()).unwrap();
    assert_eq!(job, "job-1");
    let mut scenario_events = Vec::new();
    let done = client
        .watch(&job, |event| {
            if event.get("event").and_then(Value::as_str) == Some("scenario") {
                scenario_events.push(event.clone());
            }
        })
        .unwrap();
    assert_eq!(done.get("state").and_then(Value::as_str), Some("done"));
    assert_eq!(u64_field(&done, "completed"), 2);
    assert_eq!(u64_field(&done, "failed"), 0);
    assert_eq!(scenario_events.len(), 2, "one event per scenario");
    for event in &scenario_events {
        assert_eq!(event.get("ok").and_then(Value::as_bool), Some(true));
        assert_eq!(u64_field(event, "total"), 2);
        assert!(u64_field(event, "index") < 2);
    }

    // Resubmitting the same campaign costs zero engine runs: the daemon's
    // runner memoizes across jobs.
    let job2 = client.submit(campaign.to_json()).unwrap();
    let done2 = client.watch(&job2, |_| {}).unwrap();
    assert_eq!(done2.get("state").and_then(Value::as_str), Some("done"));
    assert_eq!(u64_field(&done2, "cache_served"), 2);

    // Status knows both jobs.
    let status = client.status(None).unwrap();
    let jobs = status.get("jobs").and_then(Value::as_array).unwrap();
    assert_eq!(jobs.len(), 2);
    assert!(jobs
        .iter()
        .all(|j| j.get("state").and_then(Value::as_str) == Some("done")));

    client.shutdown().unwrap();
    daemon.join().unwrap().unwrap();

    // Acceptance: the daemon's compacted store is byte-identical to a
    // direct `campaign run` of the same campaign.
    let direct_path = temp_store("e2e-direct");
    CampaignRunner::new()
        .run_campaign_report(&campaign, Some(&ResultStore::open(&direct_path)))
        .unwrap();
    ResultStore::open(&store_path).compact().unwrap();
    ResultStore::open(&direct_path).compact().unwrap();
    let daemon_bytes = std::fs::read(&store_path).unwrap();
    assert_eq!(
        daemon_bytes,
        std::fs::read(&direct_path).unwrap(),
        "daemon-submitted store diverged from a direct run"
    );
    assert!(!daemon_bytes.is_empty());
    let _ = std::fs::remove_file(&store_path);
    let _ = std::fs::remove_file(&direct_path);
}

#[test]
fn concurrent_aliased_submissions_cost_one_engine_run() {
    // Jobs from two clients share scenario content under different names:
    // the shared in-flight reservation must collapse them to one compute.
    let shared_spec = ["lognormal:0.5"];
    let job_a = Campaign::new(
        "tenant-a",
        vec![
            tiny("a-shared", &shared_spec, 3),
            tiny("a-own", &["stuckat:0.05,0.02,2"], 3),
        ],
    );
    let job_b = Campaign::new(
        "tenant-b",
        vec![
            tiny("b-shared", &shared_spec, 3),
            tiny("b-own", &["quantize:16+lognormal:0.3"], 3),
        ],
    );
    let store_path = temp_store("aliased");
    let (addr, daemon) = start(config(&store_path, 2));

    let submit_and_watch = |campaign: Campaign, addr: String| {
        thread::spawn(move || {
            let mut client = Client::connect(&addr).unwrap();
            let job = client.submit(campaign.to_json()).unwrap();
            client.watch(&job, |_| {}).unwrap()
        })
    };
    let a = submit_and_watch(job_a, addr.clone());
    let b = submit_and_watch(job_b, addr.clone());
    let (done_a, done_b) = (a.join().unwrap(), b.join().unwrap());

    for done in [&done_a, &done_b] {
        assert_eq!(done.get("state").and_then(Value::as_str), Some("done"));
        assert_eq!(u64_field(done, "completed"), 2);
        assert_eq!(u64_field(done, "failed"), 0);
    }
    // 3 unique scenario contents across 4 submissions: exactly 3 engine
    // runs, however the two workers interleaved.
    let fresh = |done: &Value| {
        u64_field(done, "completed")
            - u64_field(done, "cache_served")
            - u64_field(done, "store_served")
    };
    assert_eq!(
        fresh(&done_a) + fresh(&done_b),
        3,
        "content-aliased submissions must share one engine run"
    );

    let mut client = Client::connect(&addr).unwrap();
    client.shutdown().unwrap();
    daemon.join().unwrap().unwrap();

    // Both jobs' records are persisted, and the shared scenario's two
    // records (one per job) are bit-identical.
    let store = ResultStore::open(&store_path);
    assert_eq!(store.load().unwrap().len(), 4);
    let groups = store.compare().unwrap();
    let shared = groups
        .iter()
        .find(|g| g.runs == 2)
        .expect("the shared content forms a 2-run group");
    assert!(
        shared.identical,
        "aliased submissions must store bit-identical results"
    );
    let _ = std::fs::remove_file(&store_path);
}

#[test]
fn queued_jobs_cancel_and_overflow_is_refused() {
    // No workers: jobs queue deterministically and never start.
    let store_path = temp_store("queue");
    let mut config = config(&store_path, 0);
    config.queue_capacity = 2;
    let (addr, daemon) = start(config);
    let campaign = Campaign::new("queued", vec![tiny("only", &["lognormal:0.5"], 3)]);

    let mut client = Client::connect(&addr).unwrap();
    let first = client.submit(campaign.to_json()).unwrap();
    let second = client.submit(campaign.to_json()).unwrap();
    assert_eq!((first.as_str(), second.as_str()), ("job-1", "job-2"));

    // Third submission overflows the bounded queue: refused, not dropped.
    let overflow = client.submit(campaign.to_json());
    let message = overflow.expect_err("overflow must be refused").to_string();
    assert!(
        message.contains("queue full"),
        "refusal must say why: {message}"
    );

    // Cancelling a queued job finalizes it without running anything.
    let cancel = client.cancel(&first).unwrap();
    assert_eq!(
        cancel.get("state").and_then(Value::as_str),
        Some("cancelled")
    );
    let done = client.watch(&first, |_| {}).unwrap();
    assert_eq!(done.get("state").and_then(Value::as_str), Some("cancelled"));
    let status = client.status(Some(&first)).unwrap();
    assert_eq!(
        status
            .get("job")
            .and_then(|j| j.get("state"))
            .and_then(Value::as_str),
        Some("cancelled")
    );

    // Unknown jobs are refused, not hung.
    assert!(client.cancel("job-99").is_err());
    assert!(client.status(Some("job-99")).is_err());

    // Shutdown cancels the remaining queued job and refuses new work.
    client.shutdown().unwrap();
    let done = client.watch(&second, |_| {}).unwrap();
    assert_eq!(done.get("state").and_then(Value::as_str), Some("cancelled"));
    assert!(
        client.submit(campaign.to_json()).is_err(),
        "submissions during shutdown must be refused"
    );
    daemon.join().unwrap().unwrap();
    assert!(
        !store_path.exists(),
        "no job ran, so nothing may be persisted"
    );
}

#[test]
fn restarted_daemon_resumes_from_the_persisted_prefix() {
    let campaign = Campaign::new(
        "restart",
        vec![
            tiny("lognormal", &["lognormal:0.5"], 3),
            tiny("defects", &["stuckat:0.05,0.02,2", "bitflip:0.005"], 3),
            tiny("pipeline", &["quantize:16+lognormal:0.3"], 9),
        ],
    );
    let store_path = temp_store("restart");

    // First life: run the campaign to completion, then stop.
    let (addr, daemon) = start(config(&store_path, 1));
    let mut client = Client::connect(&addr).unwrap();
    let job = client.submit(campaign.to_json()).unwrap();
    let done = client.watch(&job, |_| {}).unwrap();
    assert_eq!(u64_field(&done, "completed"), 3);
    client.shutdown().unwrap();
    daemon.join().unwrap().unwrap();

    // Reconstruct an abrupt kill: keep the first two scenarios' records
    // plus a truncated partial line, exactly what dying mid-append leaves.
    let full = std::fs::read_to_string(&store_path).unwrap();
    let prefix: Vec<&str> = full.lines().take(2).collect();
    std::fs::write(
        &store_path,
        format!("{}\n{{\"campaign\":\"restart\",\"scena", prefix.join("\n")),
    )
    .unwrap();

    // Second life: resubmitting the same campaign replays the persisted
    // prefix and computes only the missing scenario.
    let (addr, daemon) = start(config(&store_path, 1));
    let mut client = Client::connect(&addr).unwrap();
    let status = client.status(None).unwrap();
    let warnings = status.get("warnings").and_then(Value::as_array).unwrap();
    assert!(
        warnings.iter().any(|w| w
            .as_str()
            .is_some_and(|w| w.contains("partial trailing line"))),
        "the crash artifact must be surfaced at startup: {warnings:?}"
    );
    let job = client.submit(campaign.to_json()).unwrap();
    let done = client.watch(&job, |_| {}).unwrap();
    assert_eq!(done.get("state").and_then(Value::as_str), Some("done"));
    assert_eq!(u64_field(&done, "completed"), 3);
    assert_eq!(
        u64_field(&done, "store_served"),
        2,
        "the persisted prefix must be served, not recomputed"
    );
    assert_eq!(u64_field(&done, "cache_served"), 0);
    client.shutdown().unwrap();
    daemon.join().unwrap().unwrap();

    // The resumed store still compacts byte-identically to a direct run.
    let direct_path = temp_store("restart-direct");
    CampaignRunner::new()
        .run_campaign_report(&campaign, Some(&ResultStore::open(&direct_path)))
        .unwrap();
    ResultStore::open(&store_path).compact().unwrap();
    ResultStore::open(&direct_path).compact().unwrap();
    assert_eq!(
        std::fs::read(&store_path).unwrap(),
        std::fs::read(&direct_path).unwrap(),
        "restart-resumed store diverged from a direct run"
    );
    let _ = std::fs::remove_file(&store_path);
    let _ = std::fs::remove_file(&direct_path);
}

#[test]
fn status_stays_consistent_under_concurrent_submissions() {
    // No workers: every accepted job stays queued, so the status listing
    // is deterministic no matter how the submissions raced.
    let store_path = temp_store("concurrent-status");
    let mut config = config(&store_path, 0);
    config.queue_capacity = 16;
    let (addr, daemon) = start(config);

    const CLIENTS: usize = 6;
    let submitters: Vec<_> = (0..CLIENTS)
        .map(|i| {
            let addr = addr.clone();
            thread::spawn(move || {
                let campaign = Campaign::new(
                    format!("c{i}"),
                    vec![tiny(&format!("s{i}"), &["lognormal:0.4"], i as u64 + 1)],
                );
                let mut client = Client::connect(&addr).unwrap();
                client.submit(campaign.to_json()).unwrap()
            })
        })
        .collect();
    let mut ids: Vec<String> = submitters.into_iter().map(|h| h.join().unwrap()).collect();

    // Every submitter got a distinct job ID from the contiguous range.
    ids.sort();
    ids.dedup();
    assert_eq!(ids.len(), CLIENTS, "job IDs must be unique: {ids:?}");
    for ix in 1..=CLIENTS {
        assert!(
            ids.contains(&format!("job-{ix}")),
            "missing job-{ix}: {ids:?}"
        );
    }

    // One status snapshot sees all of them, each exactly once, all queued.
    let mut client = Client::connect(&addr).unwrap();
    let status = client.status(None).unwrap();
    assert_eq!(u64_field(&status, "queued"), CLIENTS as u64);
    let jobs = status.get("jobs").and_then(Value::as_array).unwrap();
    assert_eq!(jobs.len(), CLIENTS);
    for job in jobs {
        assert_eq!(job.get("state").and_then(Value::as_str), Some("queued"));
    }

    // Per-job status agrees with the listing for every ID.
    for id in &ids {
        let one = client.status(Some(id)).unwrap();
        assert_eq!(
            one.get("job")
                .and_then(|j| j.get("state"))
                .and_then(Value::as_str),
            Some("queued")
        );
    }

    client.shutdown().unwrap();
    daemon.join().unwrap().unwrap();
    let _ = std::fs::remove_file(&store_path);
}

#[test]
fn malformed_requests_get_error_responses_and_the_daemon_survives() {
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpStream;

    let store_path = temp_store("malformed");
    let (addr, daemon) = start(config(&store_path, 1));

    let raw = TcpStream::connect(&addr).unwrap();
    let mut reader = BufReader::new(raw.try_clone().unwrap());
    let mut writer = raw;
    // Each probe must produce exactly one {"ok":false,...} line — never a
    // dropped connection, never a daemon panic.
    let mut expect_error = |payload: &[u8], what: &str| {
        writer.write_all(payload).unwrap();
        writer.flush().unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let response: Value = serde_json::from_str(line.trim())
            .unwrap_or_else(|e| panic!("{what}: unparseable response {line:?}: {e}"));
        assert_eq!(
            response.get("ok").and_then(Value::as_bool),
            Some(false),
            "{what} must be refused, got {line:?}"
        );
        assert!(
            response.get("error").and_then(Value::as_str).is_some(),
            "{what} refusal must carry an error message: {line:?}"
        );
    };

    expect_error(b"this is not json\n", "garbage text");
    expect_error(b"{\"cmd\":\"no-such-cmd\"}\n", "unknown cmd");
    expect_error(b"{\"cmd\":\"submit\"\n", "truncated JSON");
    expect_error(b"{\"cmd\": \xff\xfe\"ping\"}\n", "invalid UTF-8");
    // Oversized: two megabytes of 'x' with no newline until the end.
    let mut huge = vec![b'x'; 2 << 20];
    huge.push(b'\n');
    expect_error(&huge, "oversized line");

    // The abused connection still serves real requests…
    writer.write_all(b"{\"cmd\":\"ping\"}\n").unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    let pong: Value = serde_json::from_str(line.trim()).unwrap();
    assert_eq!(
        pong.get("ok").and_then(Value::as_bool),
        Some(true),
        "ping after abuse must succeed, got {line:?}"
    );

    // …and a connection dying mid-line doesn't wedge the daemon.
    let mut half = TcpStream::connect(&addr).unwrap();
    half.write_all(b"{\"cmd\":\"stat").unwrap();
    drop(half);

    let mut client = Client::connect(&addr).unwrap();
    client.ping().unwrap();
    client.shutdown().unwrap();
    daemon.join().unwrap().unwrap();
    let _ = std::fs::remove_file(&store_path);
}

#[test]
fn metrics_verb_returns_a_prometheus_snapshot() {
    let store_path = temp_store("metrics");
    let (addr, daemon) = start(config(&store_path, 1));
    let campaign = Campaign::new("observed", vec![tiny("only", &["lognormal:0.5"], 11)]);

    let mut client = Client::connect(&addr).unwrap();
    let job = client.submit(campaign.to_json()).unwrap();
    let done = client.watch(&job, |_| {}).unwrap();
    assert_eq!(done.get("state").and_then(Value::as_str), Some("done"));

    let text = client.metrics().unwrap();
    // Counters, gauges, and histograms covering runner, store, and daemon
    // — with their TYPE declarations.
    for family in [
        "campaign_engine_runs_total",
        "store_appends_total",
        "daemon_jobs_submitted_total",
        "daemon_bytes_read_total",
        "daemon_bytes_written_total",
    ] {
        assert!(
            text.contains(&format!("# TYPE {family} counter\n")),
            "missing counter {family} in:\n{text}"
        );
    }
    assert!(text.contains("# TYPE daemon_queue_depth gauge\n"));
    assert!(text.contains("daemon_queue_depth 0\n"), "queue drained");
    for family in [
        "daemon_job_seconds",
        "campaign_scenario_seconds",
        "store_append_seconds",
    ] {
        assert!(
            text.contains(&format!("# TYPE {family} histogram\n")),
            "missing histogram {family} in:\n{text}"
        );
        assert!(text.contains(&format!("{family}_bucket{{le=\"+Inf\"}}")));
        assert!(text.contains(&format!("{family}_sum")));
        assert!(text.contains(&format!("{family}_count")));
    }
    // Per-worker utilization carries a worker label.
    assert!(
        text.contains("daemon_worker_busy_ms_total{worker=\"0\"}"),
        "missing per-worker counter in:\n{text}"
    );

    client.shutdown().unwrap();
    daemon.join().unwrap().unwrap();
    let _ = std::fs::remove_file(&store_path);
}

/// Regression for the lock-discipline pass: one client streams `watch`
/// on a job while a second cancels that same job, and a third submits
/// while the daemon is draining. Every response must arrive inside the
/// wall-clock bound — if any handler writes to a client socket while
/// holding the state mutex, the watcher and the canceller deadlock and
/// the channel recv below times out instead of hanging CI forever.
#[test]
fn watch_cancel_and_submit_while_draining_do_not_deadlock() {
    use std::sync::mpsc;
    use std::time::Duration;

    const BOUND: Duration = Duration::from_secs(60);
    let campaign = Campaign::new(
        "race",
        vec![
            tiny("one", &["lognormal:0.5"], 5),
            tiny("two", &["bitflip:0.005"], 5),
            tiny("three", &["stuckat:0.05,0.02,2"], 5),
        ],
    );
    let store_path = temp_store("race");
    let (addr, daemon) = start(config(&store_path, 1));

    let mut client = Client::connect(&addr).unwrap();
    let job = client.submit(campaign.to_json()).unwrap();

    let (tx, rx) = mpsc::channel::<&'static str>();
    let watcher = {
        let (addr, job, tx) = (addr.clone(), job.clone(), tx.clone());
        thread::spawn(move || {
            let mut c = Client::connect(&addr).unwrap();
            let done = c.watch(&job, |_| {}).unwrap();
            let state = done.get("state").and_then(Value::as_str);
            assert!(
                state == Some("done") || state == Some("cancelled"),
                "unexpected terminal state {state:?}"
            );
            tx.send("watch").unwrap();
        })
    };
    let canceller = {
        let (addr, job, tx) = (addr.clone(), job.clone(), tx);
        thread::spawn(move || {
            let mut c = Client::connect(&addr).unwrap();
            // Whether the cancel lands before or after the job finishes,
            // the daemon must answer it — losing the race is fine,
            // hanging is the regression.
            let _ = c.cancel(&job);
            tx.send("cancel").unwrap();
        })
    };
    for _ in 0..2 {
        rx.recv_timeout(BOUND)
            .expect("deadlock: watcher or canceller got no response inside the bound");
    }
    watcher.join().unwrap();
    canceller.join().unwrap();

    // Submit-while-draining: open the connection first, start shutdown,
    // then submit on the old connection. The drain must refuse the job
    // promptly rather than park the connection on the state lock.
    let mut late = Client::connect(&addr).unwrap();
    client.shutdown().unwrap();
    let (tx2, rx2) = mpsc::channel::<&'static str>();
    let submitter = thread::spawn(move || {
        assert!(
            late.submit(campaign.to_json()).is_err(),
            "submissions during shutdown must be refused"
        );
        tx2.send("submit").unwrap();
    });
    rx2.recv_timeout(BOUND)
        .expect("deadlock: draining daemon never answered the late submit");
    submitter.join().unwrap();

    daemon.join().unwrap().unwrap();
    let _ = std::fs::remove_file(&store_path);
}
