//! Multi-tenant campaign service over the [`scenarios`] subsystem.
//!
//! The rest of the workspace answers one campaign at a time; this crate
//! turns it into a long-running daemon that multiplexes many concurrent
//! campaigns — submitted by many clients — over one consistent, locked
//! [`ResultStore`](scenarios::ResultStore):
//!
//! * [`Daemon`] — `campaign serve`: a TCP server speaking a hand-rolled
//!   line-delimited JSON protocol (the image is offline; no framework
//!   deps), with a bounded FIFO job queue, per-job IDs, and a worker pool
//!   that drives [`CampaignRunner`](scenarios::CampaignRunner) jobs
//!   through one shared memo cache — content-aliased scenarios across
//!   *different* clients still resolve to a single engine run.
//! * [`Client`] — `campaign submit`/`status`/`watch`/`cancel`/`metrics`/
//!   `shutdown`: the same protocol from the other end, streaming
//!   per-scenario progress events for watched jobs and snapshotting the
//!   daemon's [`telemetry`] registry in Prometheus text format.
//! * [`protocol`] — the request/response/event grammar both sides share.
//!
//! Crash-safety is inherited, not reimplemented: jobs persist through the
//! locked store in campaign order, so killing the daemon mid-campaign
//! leaves a resumable prefix, and a restarted daemon
//! ([`ServeConfig::resume`]) serves completed scenarios from the store
//! instead of recomputing them. Graceful shutdown drains in-flight jobs
//! and cancels queued ones for the same reason — whatever is persisted is
//! exactly a campaign-order prefix.
//!
//! Fault tolerance goes one layer further under
//! [`Isolation::Process`]: jobs run in supervised `campaign run` child
//! processes (per shard), so a worker crash — a bug, an OOM kill, a
//! `kill -9` — never takes the daemon down. The supervisor classifies
//! every exit, enforces per-job wall-clock deadlines, retries crashes
//! with exponential backoff and deterministic jitter (resuming from the
//! child's fsynced store prefix), and merges whatever completed back
//! into the daemon store. The [`fault`] module is the matching
//! chaos-injection harness: `SERVE_FAULT=crash_after:3` makes a worker
//! abort mid-campaign so tests (and CI) can prove the recovery path,
//! not just hope for it.

pub mod fault;
pub mod protocol;

mod client;
mod daemon;
mod supervisor;

use std::fmt;

pub use client::{Client, ClientConfig};
pub use daemon::{Daemon, Isolation, JobState, ServeConfig};

/// Everything that can go wrong on the client side of the protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The TCP transport failed (connect, read, write, or peer hangup).
    Io(String),
    /// A connect/read/write exceeded the client's configured timeout.
    Timeout(String),
    /// The peer sent a line that is not valid protocol JSON.
    Protocol(String),
    /// The daemon processed the request and refused it (`"ok": false`).
    Remote(String),
    /// The daemon refused with a back-pressure hint (`retry_after_ms`):
    /// the queue is full or the daemon is draining — retry later, not
    /// immediately. [`Client::submit_with_retry`] honors the hint.
    Busy {
        /// The daemon's human-readable refusal message.
        message: String,
        /// Machine-readable refusal code (`"queue_full"`, `"draining"`).
        reason: String,
        /// The daemon's estimate of how long to wait before retrying.
        retry_after_ms: u64,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io(msg) => write!(f, "connection: {msg}"),
            ServeError::Timeout(msg) => write!(f, "timeout: {msg}"),
            ServeError::Protocol(msg) => write!(f, "protocol: {msg}"),
            ServeError::Remote(msg) => write!(f, "daemon: {msg}"),
            ServeError::Busy {
                message,
                reason,
                retry_after_ms,
            } => write!(
                f,
                "daemon: {message} ({reason}; retry in {retry_after_ms} ms)"
            ),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        match e.kind() {
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => {
                ServeError::Timeout(e.to_string())
            }
            _ => ServeError::Io(e.to_string()),
        }
    }
}
