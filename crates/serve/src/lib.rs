//! Multi-tenant campaign service over the [`scenarios`] subsystem.
//!
//! The rest of the workspace answers one campaign at a time; this crate
//! turns it into a long-running daemon that multiplexes many concurrent
//! campaigns — submitted by many clients — over one consistent, locked
//! [`ResultStore`](scenarios::ResultStore):
//!
//! * [`Daemon`] — `campaign serve`: a TCP server speaking a hand-rolled
//!   line-delimited JSON protocol (the image is offline; no framework
//!   deps), with a bounded FIFO job queue, per-job IDs, and a worker pool
//!   that drives [`CampaignRunner`](scenarios::CampaignRunner) jobs
//!   through one shared memo cache — content-aliased scenarios across
//!   *different* clients still resolve to a single engine run.
//! * [`Client`] — `campaign submit`/`status`/`watch`/`cancel`/`metrics`/
//!   `shutdown`: the same protocol from the other end, streaming
//!   per-scenario progress events for watched jobs and snapshotting the
//!   daemon's [`telemetry`] registry in Prometheus text format.
//! * [`protocol`] — the request/response/event grammar both sides share.
//!
//! Crash-safety is inherited, not reimplemented: jobs persist through the
//! locked store in campaign order, so killing the daemon mid-campaign
//! leaves a resumable prefix, and a restarted daemon
//! ([`ServeConfig::resume`]) serves completed scenarios from the store
//! instead of recomputing them. Graceful shutdown drains in-flight jobs
//! and cancels queued ones for the same reason — whatever is persisted is
//! exactly a campaign-order prefix.

mod client;
mod daemon;
pub mod protocol;

use std::fmt;

pub use client::Client;
pub use daemon::{Daemon, JobState, ServeConfig};

/// Everything that can go wrong on the client side of the protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The TCP transport failed (connect, read, write, or peer hangup).
    Io(String),
    /// The peer sent a line that is not valid protocol JSON.
    Protocol(String),
    /// The daemon processed the request and refused it (`"ok": false`).
    Remote(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io(msg) => write!(f, "connection: {msg}"),
            ServeError::Protocol(msg) => write!(f, "protocol: {msg}"),
            ServeError::Remote(msg) => write!(f, "daemon: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e.to_string())
    }
}
