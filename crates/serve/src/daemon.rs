//! The `campaign serve` daemon: a bounded job queue, a worker pool over
//! one shared [`CampaignRunner`], and a connection loop speaking the
//! [`protocol`](crate::protocol) grammar.

use std::collections::VecDeque;
use std::io::{BufRead, BufReader, ErrorKind};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread;
use std::time::{Duration, Instant};

use scenarios::{
    Campaign, CampaignError, CampaignReport, CampaignRunner, ResultStore, RunControl, ScenarioRun,
};
use serde_json::Value;

use crate::protocol::{backoff_refusal, err_response, ok_response, refusal, Request};
use crate::supervisor;

/// How long idle waits (worker queue, watcher events, accept loop,
/// connection reads) sleep before re-checking the shutdown flag.
pub(crate) const IDLE_TICK: Duration = Duration::from_millis(50);

/// How long a `watch` stream may sit silent before the daemon emits a
/// keepalive `{"event": "ping"}` — well under any sane client read
/// timeout, so a quiet long job is distinguishable from a hung daemon.
const WATCH_KEEPALIVE: Duration = Duration::from_secs(2);

/// Fallback per-job latency estimate for `retry_after_ms` hints before
/// the `daemon_job_seconds` histogram has observed a single job.
const DEFAULT_JOB_MS: f64 = 500.0;

/// Bounds on the `retry_after_ms` back-pressure hint: never so short
/// that honoring it becomes a busy-loop, never so long that a briefly
/// full queue strands clients for minutes.
const MIN_RETRY_AFTER_MS: f64 = 100.0;
const MAX_RETRY_AFTER_MS: f64 = 60_000.0;

/// Hard cap on one request line. Beyond this the rest of the line is
/// drained and discarded and the client gets an error response, so a
/// newline-less (or simply huge) request cannot balloon daemon memory.
const MAX_REQUEST_BYTES: usize = 1 << 20;

/// Where a job's scenarios execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Isolation {
    /// On the worker thread, through the daemon's shared
    /// [`CampaignRunner`] — cheapest, shares the memo cache, but a
    /// wedged or aborting campaign takes the worker (or daemon) with it.
    InProcess,
    /// In supervised `campaign run` child processes (one per shard) —
    /// a crashed, hanging, or garbage-spewing campaign costs a retry,
    /// never the accept loop. See [`crate::supervisor`].
    Process,
}

/// How the daemon runs: store, pool sizes, queue bounds, and the
/// supervision policy for process-isolated jobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Path of the shared result store every job persists through.
    pub store: String,
    /// Worker threads draining the job queue. `0` is accept-only (jobs
    /// queue but never run — useful for deterministic queue tests).
    pub workers: usize,
    /// Work-stealing shards *within* each job (passed to
    /// [`CampaignRunner::shards`]); under [`Isolation::Process`], the
    /// number of child processes the campaign is split across.
    pub shards: usize,
    /// Training parallelism within each scenario.
    pub parallelism: usize,
    /// Maximum queued (not yet running) jobs; submissions beyond this are
    /// refused, never silently dropped.
    pub queue_capacity: usize,
    /// Clamp every scenario to smoke budgets (`BENCH_QUICK=1`).
    pub quick: bool,
    /// Prime the runner from the store at startup so a restarted daemon
    /// serves already-persisted scenarios instead of recomputing them.
    pub resume: bool,
    /// Where jobs execute (default [`Isolation::InProcess`]).
    pub isolation: Isolation,
    /// Binary spawned for [`Isolation::Process`] workers; `None` means
    /// this process's own executable (the `campaign` binary).
    pub worker_exe: Option<String>,
    /// Per-job wall-clock budget under [`Isolation::Process`]: when it
    /// expires the children are killed and the job is marked
    /// [`JobState::TimedOut`]. `None` is unlimited.
    pub deadline: Option<Duration>,
    /// How many times a crashed (not cleanly failed) child is respawned
    /// before the job fails; retries resume from the child's fsynced
    /// store prefix.
    pub max_retries: u32,
    /// First retry backoff; doubles per retry up to
    /// [`ServeConfig::backoff_cap`], with deterministic jitter.
    pub backoff_base: Duration,
    /// Upper bound on a single retry backoff.
    pub backoff_cap: Duration,
    /// Chaos plan handed to child workers (the [`crate::fault`] grammar,
    /// e.g. `crash_after:3`). [`Daemon::bind`] defaults it from the
    /// `SERVE_FAULT` environment variable; `None` scrubs the variable
    /// from children so ambient chaos cannot leak in.
    pub chaos: Option<String>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            store: "campaign_results.jsonl".into(),
            workers: 1,
            shards: 1,
            parallelism: 1,
            queue_capacity: 64,
            quick: false,
            resume: true,
            isolation: Isolation::InProcess,
            worker_exe: None,
            deadline: None,
            max_retries: 2,
            backoff_base: Duration::from_millis(500),
            backoff_cap: Duration::from_secs(10),
            chaos: None,
        }
    }
}

/// Lifecycle of a submitted job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// In the FIFO queue, waiting for a worker.
    Queued,
    /// A worker is executing it.
    Running,
    /// Every scenario produced an outcome.
    Done,
    /// The campaign ran but at least one scenario failed, or persistence
    /// failed, or a crashed worker exhausted its retries.
    Failed,
    /// Cancelled before (or while) running; the store keeps whatever
    /// campaign-order prefix completed.
    Cancelled,
    /// A process-isolated job out-ran its wall-clock deadline; its
    /// children were killed and the store keeps the completed prefix.
    TimedOut,
}

impl JobState {
    /// Wire name of the state.
    pub fn as_str(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
            JobState::TimedOut => "timed_out",
        }
    }

    /// Whether the job can never change state again.
    pub fn terminal(self) -> bool {
        matches!(
            self,
            JobState::Done | JobState::Failed | JobState::Cancelled | JobState::TimedOut
        )
    }
}

/// One submitted campaign and everything observers need to follow it.
pub(crate) struct Job {
    pub(crate) id: String,
    pub(crate) campaign: Campaign,
    pub(crate) state: JobState,
    /// Cooperative cancel flag, checked by the runner between scenarios
    /// (and by the supervisor between child polls).
    ///
    /// Ordering: `SeqCst` both sides — cancel is rare and cold, so the
    /// strongest ordering costs nothing and keeps it trivially correct
    /// against the state-mutex handoff.
    pub(crate) cancel: Arc<AtomicBool>,
    /// Full event history, replayed to watchers that subscribe late.
    pub(crate) events: Vec<Value>,
    pub(crate) error: Option<String>,
    /// Child-process attempts spawned for this job (0 for in-process
    /// jobs); grows past the shard count when the supervisor retries.
    pub(crate) attempts: u64,
    /// PIDs of the job's live worker processes, for `status` and the
    /// chaos harness's aim.
    pub(crate) worker_pids: Vec<u32>,
    /// When `submit` accepted the job; end-to-end latency (submission to
    /// terminal state) lands in the `daemon_job_seconds` histogram.
    pub(crate) submitted: Instant,
}

/// Publish the current queue depth; call after every queue mutation.
fn sync_queue_depth(st: &DaemonState) {
    telemetry::static_gauge!("daemon_queue_depth").set(st.queue.len() as i64);
}

/// Record a job's submission-to-terminal latency. Call exactly once, at
/// the transition into a terminal state.
pub(crate) fn observe_job_terminal(job: &Job) {
    telemetry::duration_histogram!("daemon_job_seconds").observe_duration(job.submitted.elapsed());
}

pub(crate) struct DaemonState {
    pub(crate) jobs: Vec<Job>,
    /// Indices into `jobs`, FIFO.
    pub(crate) queue: VecDeque<usize>,
    /// Warnings from store priming at startup (crash-tail truncation).
    startup_warnings: Vec<String>,
}

/// Lock order: `state` is a leaf — workers release it before entering
/// the runner, so the runner's `in_flight` → `cache` pair and the
/// [`ResultStore`] file lock are only ever taken with `state` free, and
/// nothing held under `state` may block on a client socket or the store.
pub(crate) struct Shared {
    pub(crate) runner: CampaignRunner,
    pub(crate) store: ResultStore,
    pub(crate) config: ServeConfig,
    pub(crate) state: Mutex<DaemonState>,
    /// Wakes workers when the queue grows (or shutdown starts).
    pub(crate) job_cv: Condvar,
    /// Wakes watchers when any job gains events or terminates.
    pub(crate) event_cv: Condvar,
    /// Ordering: `SeqCst` both sides — set once at shutdown, read off
    /// the accept/worker loops; never on a per-request path, so the
    /// fence cost is irrelevant and the strongest ordering wins.
    pub(crate) shutdown: AtomicBool,
}

/// The campaign service: bind once, then [`Daemon::run`] until a client
/// sends `shutdown`.
///
/// All jobs share one [`CampaignRunner`] — and therefore one memo cache
/// and one in-flight reservation set — so two clients submitting
/// content-aliased campaigns cost a single engine run, with both stores'
/// records bit-identical. All jobs persist through one locked
/// [`ResultStore`], in campaign order per job, so an abrupt kill leaves
/// each job's completed prefix resumable.
pub struct Daemon {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Daemon {
    /// Binds the listener and primes the runner from the store.
    ///
    /// With [`ServeConfig::resume`] set (the default), a partial trailing
    /// line left by a killed predecessor is truncated and every persisted
    /// scenario becomes servable without recomputation — the daemon's
    /// restart-recovery path is exactly the campaign CLI's `--resume`.
    ///
    /// # Errors
    ///
    /// Returns [`CampaignError::Io`] if the address cannot be bound or the
    /// store cannot be read, and propagates store lock/parse failures from
    /// resume priming.
    pub fn bind(addr: &str, mut config: ServeConfig) -> Result<Daemon, CampaignError> {
        // An ambient SERVE_FAULT (the CI chaos smoke sets it on the
        // daemon) becomes an explicit plan here; either way the
        // supervisor sets the child environment deliberately instead of
        // letting inheritance decide.
        if config.chaos.is_none() {
            config.chaos = std::env::var(crate::fault::FAULT_ENV)
                .ok()
                .filter(|s| !s.trim().is_empty());
        }
        if let Some(plan) = &config.chaos {
            crate::fault::FaultPlan::parse(plan).map_err(CampaignError::Parse)?;
        }
        let store = ResultStore::open(&config.store);
        let mut startup_warnings = Vec::new();
        let mut runner = CampaignRunner::new()
            .parallelism(config.parallelism)
            .shards(config.shards)
            .quick(config.quick);
        if config.resume {
            if let Some(dropped) = store.drop_partial_tail()? {
                startup_warnings.push(dropped);
            }
            runner = runner.resume_from(&store)?;
        }
        let listener = TcpListener::bind(addr).map_err(CampaignError::from)?;
        // Non-blocking accept: the loop must notice the shutdown flag even
        // when no client ever connects again.
        listener.set_nonblocking(true)?;
        Ok(Daemon {
            listener,
            shared: Arc::new(Shared {
                runner,
                store,
                config,
                state: Mutex::new(DaemonState {
                    jobs: Vec::new(),
                    queue: VecDeque::new(),
                    startup_warnings,
                }),
                job_cv: Condvar::new(),
                event_cv: Condvar::new(),
                shutdown: AtomicBool::new(false),
            }),
        })
    }

    /// The bound address — the way to learn the port after binding `:0`.
    ///
    /// # Errors
    ///
    /// Propagates the OS error if the socket is gone.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// How many scenarios the resume priming can serve without
    /// recomputation.
    pub fn resumable_runs(&self) -> usize {
        self.shared.runner.resumable_runs()
    }

    /// Serves until a client sends `shutdown`, then drains: queued jobs
    /// are already cancelled by the shutdown request, running jobs finish
    /// (their campaign-order prefix discipline makes interrupting them
    /// pointless — finishing is as safe as stopping), watchers receive
    /// their terminal events, and every thread is joined before return.
    ///
    /// # Errors
    ///
    /// Returns [`CampaignError::Io`] only for accept-loop failures other
    /// than `WouldBlock`; per-connection errors just close that
    /// connection.
    pub fn run(self) -> Result<(), CampaignError> {
        let shared = self.shared;
        let workers: Vec<_> = (0..shared.config.workers)
            .map(|w| {
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("campaign-worker-{w}"))
                    .spawn(move || worker_loop(&shared, w))
                    // lint:allow(R3, reason = "startup thread spawn; no client bytes involved and the process cannot serve without its workers")
                    .expect("spawn campaign worker")
            })
            .collect();
        let mut connections: Vec<thread::JoinHandle<()>> = Vec::new();
        while !shared.shutdown.load(Ordering::SeqCst) {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let shared = Arc::clone(&shared);
                    connections.push(thread::spawn(move || {
                        let _ = serve_connection(stream, &shared);
                    }));
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => thread::sleep(IDLE_TICK),
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(e.into()),
            }
            connections.retain(|handle| !handle.is_finished());
        }
        shared.job_cv.notify_all();
        for handle in workers {
            let _ = handle.join();
        }
        shared.event_cv.notify_all();
        for handle in connections {
            let _ = handle.join();
        }
        Ok(())
    }
}

/// Worker: pop jobs FIFO until shutdown empties the queue for good.
fn worker_loop(shared: &Shared, worker: usize) {
    // Labelled per-worker utilization counter; registered once per
    // worker thread, then pure atomics.
    // lint:allow(R4, reason = "per-worker label needs a runtime-formatted name; registered once per worker thread, not per observation")
    let busy_ms = telemetry::counter(&format!(
        "daemon_worker_busy_ms_total{{worker=\"{worker}\"}}"
    ));
    loop {
        let job_ix = {
            let mut st = lock_state(shared);
            loop {
                if let Some(ix) = st.queue.pop_front() {
                    sync_queue_depth(&st);
                    break Some(ix);
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                st = shared
                    .job_cv
                    .wait_timeout(st, IDLE_TICK)
                    // lint:allow(R3, reason = "poison means another thread already panicked mid-update; aborting beats serving torn state")
                    .expect("daemon state poisoned")
                    .0;
            }
        };
        match job_ix {
            Some(ix) => {
                let started = Instant::now();
                match shared.config.isolation {
                    Isolation::InProcess => run_job(shared, ix),
                    Isolation::Process => supervisor::run_job(shared, ix),
                }
                busy_ms.add(started.elapsed().as_millis() as u64);
            }
            None => return,
        }
    }
}

/// Claims a dequeued job: honors a cancel that landed between dequeue
/// and execution (finalizing the job, returning `None`), otherwise marks
/// it [`JobState::Running`], emits the state event, and hands back what
/// the executor needs. Shared by the in-process path and the
/// process-isolation supervisor.
pub(crate) fn begin_job(shared: &Shared, ix: usize) -> Option<(Campaign, Arc<AtomicBool>, String)> {
    let claimed = {
        let mut st = lock_state(shared);
        let job = &mut st.jobs[ix];
        // A cancel can land between dequeue and here; honor it before
        // spending compute.
        if job.cancel.load(Ordering::SeqCst) {
            job.state = JobState::Cancelled;
            observe_job_terminal(job);
            let event = done_event(&job.id, JobState::Cancelled);
            job.events.push(event);
            None
        } else {
            job.state = JobState::Running;
            let mut event = Value::object();
            event.insert("event", "state");
            event.insert("job", job.id.as_str());
            event.insert("state", JobState::Running.as_str());
            event.insert("total", job.campaign.scenarios.len());
            job.events.push(event);
            Some((
                job.campaign.clone(),
                Arc::clone(&job.cancel),
                job.id.clone(),
            ))
        }
    };
    shared.event_cv.notify_all();
    claimed
}

/// Executes one dequeued job through the shared runner, streaming events.
fn run_job(shared: &Shared, ix: usize) {
    let Some((campaign, cancel, id)) = begin_job(shared, ix) else {
        return;
    };

    let observer = |run: &ScenarioRun| {
        let mut event = Value::object();
        event.insert("event", "scenario");
        event.insert("job", id.as_str());
        event.insert("name", run.name.as_str());
        event.insert("index", run.index);
        event.insert("total", run.total);
        match &run.result {
            Ok(outcome) => {
                event.insert("ok", true);
                event.insert("from_cache", outcome.from_cache);
                event.insert("from_store", outcome.from_store);
                event.insert("best_objective", outcome.report.best_objective);
                event.insert("wall_ms", outcome.wall_ms);
            }
            Err(e) => {
                event.insert("ok", false);
                event.insert("error", e.to_string());
            }
        }
        lock_state(shared).jobs[ix].events.push(event);
        shared.event_cv.notify_all();
    };
    let ctl = RunControl {
        cancel: Some(&cancel),
        observer: Some(&observer),
    };
    let result = shared
        .runner
        .run_campaign_report_with(&campaign, Some(&shared.store), ctl);

    let mut st = lock_state(shared);
    let job = &mut st.jobs[ix];
    match result {
        Ok(report) => {
            for warning in &report.warnings {
                let mut event = Value::object();
                event.insert("event", "warning");
                event.insert("job", job.id.as_str());
                event.insert("message", warning.as_str());
                job.events.push(event);
            }
            job.state = if report.cancelled {
                JobState::Cancelled
            } else if report.failed > 0 {
                JobState::Failed
            } else {
                JobState::Done
            };
            let mut event = done_event(&job.id, job.state);
            report_counters(&mut event, &report);
            job.events.push(event);
            observe_job_terminal(job);
        }
        Err(e) => {
            job.state = JobState::Failed;
            job.error = Some(e.to_string());
            let mut event = done_event(&job.id, JobState::Failed);
            event.insert("error", e.to_string());
            job.events.push(event);
            observe_job_terminal(job);
        }
    }
    drop(st);
    shared.event_cv.notify_all();
}

pub(crate) fn lock_state(shared: &Shared) -> MutexGuard<'_, DaemonState> {
    // lint:allow(R3, reason = "poison means another thread already panicked mid-update; aborting beats serving torn state")
    shared.state.lock().expect("daemon state poisoned")
}

pub(crate) fn done_event(id: &str, state: JobState) -> Value {
    let mut event = Value::object();
    event.insert("event", "done");
    event.insert("job", id);
    event.insert("state", state.as_str());
    event
}

/// Flattens the campaign report's accounting into a `done` event.
fn report_counters(event: &mut Value, report: &CampaignReport) {
    event.insert("total", report.total);
    event.insert("completed", report.completed);
    event.insert("failed", report.failed);
    event.insert("cache_served", report.cache_served);
    event.insert("store_served", report.store_served);
    event.insert("skipped", report.skipped);
    event.insert("cancelled", report.cancelled);
    event.insert("wall_ms", report.wall_ms);
    event.insert(
        "shard_wall_ms",
        Value::Array(report.shard_wall_ms.iter().map(|&ms| ms.into()).collect()),
    );
}

/// Outcome of reading one request line from a connection.
enum LineRead {
    /// A complete UTF-8 request line (without the trailing newline).
    Line(String),
    /// The line exceeded [`MAX_REQUEST_BYTES`]; its tail was drained and
    /// discarded, leaving the stream positioned at the next line.
    Oversized,
    /// The line's bytes were not valid UTF-8.
    BadUtf8,
    /// Clean EOF, or shutdown observed mid-connection.
    Closed,
}

/// Reads one newline-terminated request line with a hard size cap.
///
/// Malformed input is a response, not a panic and not a silently dropped
/// connection: oversized lines are drained without buffering them and
/// invalid UTF-8 is reported as such, in both cases leaving the stream
/// at the next line so the client can keep talking.
fn read_request_line(
    reader: &mut BufReader<TcpStream>,
    shared: &Shared,
) -> std::io::Result<LineRead> {
    let mut buf: Vec<u8> = Vec::new();
    let mut oversized = false;
    loop {
        // A timeout mid-line keeps the partial bytes in `buf` and
        // retries, re-checking the shutdown flag each tick.
        let (done, used) = {
            let available = match reader.fill_buf() {
                Ok(bytes) => bytes,
                Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                    if shared.shutdown.load(Ordering::SeqCst) {
                        // A half-received request at shutdown can never
                        // be answered; don't hold the join hostage.
                        return Ok(LineRead::Closed);
                    }
                    continue;
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            };
            if available.is_empty() {
                // EOF — mid-line EOF included: a truncated request line
                // is not a request.
                return Ok(LineRead::Closed);
            }
            match available.iter().position(|&b| b == b'\n') {
                Some(pos) => {
                    if !oversized {
                        buf.extend_from_slice(&available[..pos]);
                    }
                    (true, pos + 1)
                }
                None => {
                    if !oversized {
                        buf.extend_from_slice(available);
                    }
                    (false, available.len())
                }
            }
        };
        reader.consume(used);
        telemetry::static_counter!("daemon_bytes_read_total").add(used as u64);
        if buf.len() > MAX_REQUEST_BYTES {
            oversized = true;
            buf = Vec::new(); // release the memory, not just the length
        }
        if done {
            if oversized {
                return Ok(LineRead::Oversized);
            }
            return Ok(match String::from_utf8(buf) {
                Ok(line) => LineRead::Line(line),
                Err(_) => LineRead::BadUtf8,
            });
        }
    }
}

/// One connection: read request lines, answer each with one line (or an
/// event stream for `watch`), until EOF — or until shutdown finds the
/// connection idle.
fn serve_connection(stream: TcpStream, shared: &Shared) -> std::io::Result<()> {
    // Bounded reads so an idle connection re-checks the shutdown flag.
    stream.set_read_timeout(Some(IDLE_TICK))?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    loop {
        let line = match read_request_line(&mut reader, shared)? {
            LineRead::Line(line) => line,
            LineRead::Oversized => {
                let message = format!("request line exceeds the {MAX_REQUEST_BYTES}-byte limit");
                send(&mut writer, &refusal(&message, "bad_request"))?;
                continue;
            }
            LineRead::BadUtf8 => {
                send(
                    &mut writer,
                    &refusal("request line is not valid UTF-8", "bad_request"),
                )?;
                continue;
            }
            LineRead::Closed => return Ok(()),
        };
        if line.trim().is_empty() {
            continue;
        }
        match Request::parse(&line) {
            Err(message) => send(&mut writer, &refusal(&message, "bad_request"))?,
            Ok(Request::Watch { job }) => watch_job(&mut writer, shared, &job)?,
            Ok(request) => {
                let response = handle_request(shared, request);
                send(&mut writer, &response)?;
            }
        }
    }
}

/// [`crate::protocol::write_line`] with the daemon's bytes-on-wire
/// accounting.
fn send(writer: &mut impl std::io::Write, value: &Value) -> std::io::Result<()> {
    let mut text = serde_json::to_string(value);
    text.push('\n');
    telemetry::static_counter!("daemon_bytes_written_total").add(text.len() as u64);
    writer.write_all(text.as_bytes())
}

/// Everything except `watch`: one response line per request.
fn handle_request(shared: &Shared, request: Request) -> Value {
    match request {
        Request::Ping => {
            let st = lock_state(shared);
            let mut response = ok_response();
            response.insert("service", "campaign");
            response.insert("queued", st.queue.len());
            response.insert(
                "running",
                st.jobs
                    .iter()
                    .filter(|j| j.state == JobState::Running)
                    .count(),
            );
            response
        }
        Request::Submit { campaign } => submit(shared, &campaign),
        Request::Status { job } => status(shared, job.as_deref()),
        Request::Cancel { job } => cancel(shared, &job),
        // Dispatched by serve_connection before reaching here; if a new
        // call site ever forgets that, answer with an error rather than
        // panicking a connection thread over a routing bug.
        Request::Watch { .. } => {
            err_response("'watch' streams events and must be dispatched on its own connection")
        }
        Request::Metrics => {
            let mut response = ok_response();
            response.insert("metrics", Value::String(telemetry::render_prometheus()));
            response
        }
        Request::Shutdown => shutdown(shared),
    }
}

/// Estimate how long a refused client should wait before retrying:
/// the work ahead of it (queued + running + itself), over the worker
/// pool, at the recent average job latency — or a fixed default before
/// the `daemon_job_seconds` histogram has any observations. Clamped so
/// the hint can neither busy-loop clients nor strand them.
fn retry_after_ms(shared: &Shared, st: &DaemonState) -> u64 {
    let hist = telemetry::duration_histogram!("daemon_job_seconds");
    let avg_ms = if hist.count() > 0 {
        hist.sum() * 1e3 / hist.count() as f64
    } else {
        DEFAULT_JOB_MS
    };
    let running = st
        .jobs
        .iter()
        .filter(|j| j.state == JobState::Running)
        .count();
    let ahead = (st.queue.len() + running + 1) as f64;
    let workers = shared.config.workers.max(1) as f64;
    (avg_ms * ahead / workers).clamp(MIN_RETRY_AFTER_MS, MAX_RETRY_AFTER_MS) as u64
}

fn submit(shared: &Shared, campaign: &Value) -> Value {
    if shared.shutdown.load(Ordering::SeqCst) {
        let hint = retry_after_ms(shared, &lock_state(shared));
        return backoff_refusal(
            "daemon is shutting down; not accepting submissions",
            "draining",
            hint,
        );
    }
    let campaign = match Campaign::from_json(campaign) {
        Ok(campaign) => campaign,
        Err(e) => return refusal(&format!("invalid campaign: {e}"), "invalid_campaign"),
    };
    let mut st = lock_state(shared);
    if st.queue.len() >= shared.config.queue_capacity {
        let hint = retry_after_ms(shared, &st);
        return backoff_refusal(
            &format!(
                "queue full ({} queued, capacity {})",
                st.queue.len(),
                shared.config.queue_capacity,
            ),
            "queue_full",
            hint,
        );
    }
    let ix = st.jobs.len();
    let id = format!("job-{}", ix + 1);
    let mut event = Value::object();
    event.insert("event", "state");
    event.insert("job", id.as_str());
    event.insert("state", JobState::Queued.as_str());
    event.insert("total", campaign.scenarios.len());
    let mut response = ok_response();
    response.insert("job", id.as_str());
    response.insert("position", st.queue.len());
    response.insert("scenarios", campaign.scenarios.len());
    st.jobs.push(Job {
        id,
        campaign,
        state: JobState::Queued,
        cancel: Arc::new(AtomicBool::new(false)),
        events: vec![event],
        error: None,
        attempts: 0,
        worker_pids: Vec::new(),
        submitted: Instant::now(),
    });
    st.queue.push_back(ix);
    telemetry::static_counter!("daemon_jobs_submitted_total").inc();
    sync_queue_depth(&st);
    drop(st);
    shared.job_cv.notify_one();
    shared.event_cv.notify_all();
    response
}

fn job_summary(job: &Job) -> Value {
    let mut value = Value::object();
    value.insert("job", job.id.as_str());
    value.insert("state", job.state.as_str());
    value.insert("campaign", job.campaign.name.as_str());
    value.insert("scenarios", job.campaign.scenarios.len());
    value.insert("events", job.events.len());
    value.insert("attempts", job.attempts);
    if !job.worker_pids.is_empty() {
        value.insert(
            "worker_pids",
            Value::Array(job.worker_pids.iter().map(|&pid| pid.into()).collect()),
        );
    }
    if let Some(error) = &job.error {
        value.insert("error", error.as_str());
    }
    value
}

fn status(shared: &Shared, job: Option<&str>) -> Value {
    let st = lock_state(shared);
    match job {
        Some(id) => match st.jobs.iter().find(|j| j.id == id) {
            None => refusal(&format!("unknown job '{id}'"), "unknown_job"),
            Some(job) => {
                let mut response = ok_response();
                response.insert("job", job_summary(job));
                response
            }
        },
        None => {
            let mut response = ok_response();
            response.insert(
                "jobs",
                Value::Array(st.jobs.iter().map(job_summary).collect()),
            );
            response.insert("queued", st.queue.len());
            response.insert(
                "running",
                st.jobs
                    .iter()
                    .filter(|j| j.state == JobState::Running)
                    .count(),
            );
            response.insert(
                "warnings",
                Value::Array(
                    st.startup_warnings
                        .iter()
                        .map(|w| Value::String(w.clone()))
                        .collect(),
                ),
            );
            response
        }
    }
}

fn cancel(shared: &Shared, id: &str) -> Value {
    let mut st = lock_state(shared);
    let Some(ix) = st.jobs.iter().position(|j| j.id == id) else {
        return refusal(&format!("unknown job '{id}'"), "unknown_job");
    };
    let state = st.jobs[ix].state;
    if state.terminal() {
        let mut response = ok_response();
        response.insert("job", id);
        response.insert("state", state.as_str());
        response.insert("already_terminal", true);
        return response;
    }
    st.jobs[ix].cancel.store(true, Ordering::SeqCst);
    if state == JobState::Queued {
        // Never reaches a worker: finalize it here.
        st.queue.retain(|&queued| queued != ix);
        sync_queue_depth(&st);
        let job = &mut st.jobs[ix];
        job.state = JobState::Cancelled;
        observe_job_terminal(job);
        let event = done_event(&job.id, JobState::Cancelled);
        job.events.push(event);
    }
    let new_state = st.jobs[ix].state;
    drop(st);
    shared.event_cv.notify_all();
    let mut response = ok_response();
    response.insert("job", id);
    response.insert("state", new_state.as_str());
    response
}

fn shutdown(shared: &Shared) -> Value {
    shared.shutdown.store(true, Ordering::SeqCst);
    let mut st = lock_state(shared);
    // Queued jobs are cancelled, not silently dropped: their submitters
    // get a terminal event, and a restarted daemon re-running them will
    // resume from whatever prefix older jobs persisted.
    while let Some(ix) = st.queue.pop_front() {
        let job = &mut st.jobs[ix];
        job.cancel.store(true, Ordering::SeqCst);
        job.state = JobState::Cancelled;
        observe_job_terminal(job);
        let event = done_event(&job.id, JobState::Cancelled);
        job.events.push(event);
    }
    sync_queue_depth(&st);
    let draining = st
        .jobs
        .iter()
        .filter(|j| j.state == JobState::Running)
        .count();
    drop(st);
    shared.job_cv.notify_all();
    shared.event_cv.notify_all();
    let mut response = ok_response();
    response.insert("draining", draining);
    // Machine-readable drain marker, mirroring the refusal vocabulary:
    // clients that poll `shutdown` idempotently can branch on it.
    response.insert("reason", "draining");
    response
}

/// The streaming verb: acknowledge, replay the job's event history, then
/// stream live events until the terminal `done`.
fn watch_job(writer: &mut TcpStream, shared: &Shared, id: &str) -> std::io::Result<()> {
    // Resolve the job index with the guard already released: the error
    // response goes to a client socket that may be arbitrarily slow, and
    // nothing written while holding `state` may block on a peer.
    let ix = {
        let st = lock_state(shared);
        st.jobs.iter().position(|j| j.id == id)
    };
    let Some(ix) = ix else {
        return send(writer, &err_response(&format!("unknown job '{id}'")));
    };
    let mut acknowledged = ok_response();
    acknowledged.insert("job", id);
    acknowledged.insert("watching", true);
    send(writer, &acknowledged)?;
    let mut sent = 0;
    // Keepalive clock: a long scenario produces no events, and a silent
    // stream is indistinguishable from a hung daemon under the client's
    // idle timeout — so punctuate silence with `{"event": "ping"}` lines
    // (written outside the state lock, like every other socket write).
    let mut last_write = Instant::now();
    loop {
        let (batch, finished, ping) = {
            let mut st = lock_state(shared);
            loop {
                let job = &st.jobs[ix];
                if job.events.len() > sent {
                    let batch = job.events[sent..].to_vec();
                    sent = job.events.len();
                    break (batch, job.state.terminal(), false);
                }
                if job.state.terminal() {
                    break (Vec::new(), true, false);
                }
                if last_write.elapsed() >= WATCH_KEEPALIVE {
                    break (Vec::new(), false, true);
                }
                st = shared
                    .event_cv
                    .wait_timeout(st, IDLE_TICK)
                    // lint:allow(R3, reason = "poison means another thread already panicked mid-update; aborting beats serving torn state")
                    .expect("daemon state poisoned")
                    .0;
            }
        };
        if ping {
            let mut event = Value::object();
            event.insert("event", "ping");
            event.insert("job", id);
            send(writer, &event)?;
        }
        for event in &batch {
            send(writer, event)?;
        }
        last_write = Instant::now();
        if finished {
            return Ok(());
        }
    }
}
