//! Process-isolated job execution: supervised `campaign run` children.
//!
//! Under [`Isolation::Process`](crate::daemon::Isolation) a dequeued job
//! never runs in the daemon's address space. The supervisor spawns one
//! `campaign run` child per shard, each writing to a private per-job
//! store and streaming line-JSON events (`--events`) back over its
//! stdout pipe; the supervisor forwards scenario/warning events to
//! `watch` subscribers, enforces the per-job wall-clock deadline, and
//! classifies every child exit:
//!
//! | failure class                      | action                        |
//! |------------------------------------|-------------------------------|
//! | exit with final `report` line      | complete (Done/Failed by the  |
//! |   (any exit code)                  |   report's own accounting)    |
//! | exit without a report, or signal   | crash → retry with backoff    |
//! | deadline exceeded                  | kill, mark `timed_out`        |
//! | cancel / daemon shutdown           | kill, reap, mark `cancelled`  |
//! | retry budget exhausted             | mark `failed`, keep prefix    |
//!
//! Retries are bounded (`max_retries`) with exponential backoff and
//! deterministic jitter, and they are cheap: each attempt re-primes from
//! the daemon store *and* the child's own fsynced store prefix, so only
//! the unfinished suffix is recomputed. Whatever prefix exists — from a
//! completed job or a crashed one — is merged through
//! [`ResultStore::merge_from`] and batch-appended into the daemon store,
//! so a failed job is a *failed job with its partial results persisted*,
//! never a vanished one.

use std::collections::VecDeque;
use std::io::{BufRead, BufReader};
use std::os::unix::process::ExitStatusExt;
use std::process::{Child, Command, ExitStatus, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use scenarios::ResultStore;
use serde_json::Value;

use crate::daemon::{
    begin_job, done_event, lock_state, observe_job_terminal, JobState, ServeConfig, Shared,
    IDLE_TICK,
};
use crate::fault;

/// How many trailing stderr lines of a crashed child survive into its
/// crash description (and from there into events and `status` errors).
const STDERR_TAIL_LINES: usize = 12;

/// The per-job files a supervised job leaves beside the daemon store.
struct JobPaths {
    /// The campaign document handed to every child.
    campaign: String,
    /// Scratch store `merge_from` assembles the shard stores into.
    merged: String,
    /// One private store per shard child.
    shards: Vec<String>,
}

fn job_paths(store: &str, id: &str, shard_count: usize) -> JobPaths {
    let base = format!("{store}.{id}");
    JobPaths {
        campaign: format!("{base}.campaign.json"),
        merged: format!("{base}.merged.jsonl"),
        shards: (0..shard_count)
            .map(|shard| format!("{base}.shard{shard}.jsonl"))
            .collect(),
    }
}

/// Everything one shard's supervision loop needs, by reference.
#[derive(Clone, Copy)]
struct ShardCtx<'a> {
    shared: &'a Shared,
    ix: usize,
    id: &'a str,
    /// The job's cancel flag (ordering: `SeqCst` loads, matching the
    /// daemon's stores — cancellation is rare, so total ordering costs
    /// nothing and keeps the kill decision ordered with the state
    /// mutex's release on the cancelling thread).
    cancel: &'a AtomicBool,
    paths: &'a JobPaths,
    shard: usize,
    shard_count: usize,
    deadline: Option<Instant>,
}

/// Terminal outcome of one shard's supervision (after retries).
enum ShardEnd {
    /// The child printed its final `report` line — protocol-complete
    /// whatever the exit code (nonzero means scenario failures, which
    /// the report itself accounts for).
    Reported(Value),
    /// Crashes exhausted the retry budget, or spawning failed outright.
    Exhausted(String),
    TimedOut,
    Cancelled,
}

/// Outcome of a single child attempt.
enum Attempt {
    Reported(Value),
    Crashed(String),
    TimedOut,
    Cancelled,
    SpawnFailed(String),
}

/// Why the backoff sleep ended.
enum Wait {
    Completed,
    Cancelled,
    DeadlineHit,
}

/// Why the supervisor killed a live child.
#[derive(Clone, Copy)]
enum Kill {
    Cancel,
    Deadline,
}

/// Executes one dequeued job in supervised worker processes — the
/// [`Isolation::Process`](crate::daemon::Isolation) counterpart of the
/// daemon's in-process `run_job`.
pub(crate) fn run_job(shared: &Shared, ix: usize) {
    let Some((campaign, cancel, id)) = begin_job(shared, ix) else {
        return;
    };
    let started = Instant::now();
    let shard_count = effective_shards(&shared.config, campaign.scenarios.len());
    let paths = job_paths(&shared.config.store, &id, shard_count);
    // Scrub leftovers a previous daemon's identically-numbered job may
    // have kept (failed jobs keep their shard stores on purpose).
    remove_job_files(&paths, true);
    if let Err(e) = std::fs::write(&paths.campaign, campaign.to_json_string()) {
        let error = format!("writing {}: {e}", paths.campaign);
        finalize(shared, ix, JobState::Failed, Some(error), &[], 0.0);
        return;
    }
    let deadline = shared.config.deadline.map(|d| started + d);

    let ends: Vec<ShardEnd> = thread::scope(|scope| {
        let handles: Vec<_> = (0..shard_count)
            .map(|shard| {
                let ctx = ShardCtx {
                    shared,
                    ix,
                    id: &id,
                    cancel: &cancel,
                    paths: &paths,
                    shard,
                    shard_count,
                    deadline,
                };
                scope.spawn(move || supervise_shard(ctx))
            })
            .collect();
        handles
            .into_iter()
            .map(|handle| {
                handle
                    .join()
                    .unwrap_or_else(|_| ShardEnd::Exhausted("shard supervisor panicked".into()))
            })
            .collect()
    });

    // Aggregate by severity: a cancel outranks a timeout outranks a
    // crash; only an all-Reported job consults the reports themselves.
    let mut state = JobState::Done;
    let mut errors: Vec<String> = Vec::new();
    let mut reports: Vec<Value> = Vec::new();
    for end in ends {
        match end {
            ShardEnd::Reported(report) => reports.push(report),
            ShardEnd::Exhausted(e) => {
                if severity(JobState::Failed) > severity(state) {
                    state = JobState::Failed;
                }
                errors.push(e);
            }
            ShardEnd::TimedOut => {
                if severity(JobState::TimedOut) > severity(state) {
                    state = JobState::TimedOut;
                }
            }
            ShardEnd::Cancelled => state = JobState::Cancelled,
        }
    }
    if state == JobState::Done && sum_u64(&reports, "failed") > 0 {
        state = JobState::Failed;
    }

    // Persist whatever exists — a completed job's full result set or a
    // failed/killed job's fsynced prefix — into the daemon store.
    if let Err(e) = merge_job_stores(shared, ix, &id, &paths) {
        if severity(JobState::Failed) > severity(state) {
            state = JobState::Failed;
        }
        errors.push(e);
    }

    // Success leaves no per-job residue; anything else keeps the shard
    // stores (the job's partial prefix) for forensics and manual resume.
    remove_job_files(&paths, state == JobState::Done);

    let error = if errors.is_empty() {
        None
    } else {
        Some(errors.join("; "))
    };
    finalize(shared, ix, state, error, &reports, ms_since(started));
}

/// Rank for aggregation: higher wins when shards disagree.
fn severity(state: JobState) -> u8 {
    match state {
        JobState::Cancelled => 3,
        JobState::TimedOut => 2,
        JobState::Failed => 1,
        _ => 0,
    }
}

fn ms_since(started: Instant) -> f64 {
    started.elapsed().as_secs_f64() * 1e3
}

fn sum_u64(reports: &[Value], key: &str) -> u64 {
    reports
        .iter()
        .filter_map(|r| r.get(key).and_then(Value::as_u64))
        .sum()
}

/// Shard-process count for one job: `shards == 0` means one per core,
/// and no job spawns more children than it has scenarios.
fn effective_shards(config: &ServeConfig, scenarios: usize) -> usize {
    let n = if config.shards == 0 {
        thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        config.shards
    };
    n.clamp(1, scenarios.max(1))
}

fn worker_exe(shared: &Shared) -> Result<std::path::PathBuf, String> {
    match &shared.config.worker_exe {
        Some(exe) => Ok(std::path::PathBuf::from(exe)),
        None => std::env::current_exe().map_err(|e| format!("resolving worker executable: {e}")),
    }
}

/// Removes a job's scratch files (campaign document, merged store, and —
/// when `including_shards` — the shard stores), plus their lock files.
fn remove_job_files(paths: &JobPaths, including_shards: bool) {
    remove_with_lock(&paths.campaign);
    remove_with_lock(&paths.merged);
    if including_shards {
        for shard in &paths.shards {
            remove_with_lock(shard);
        }
    }
}

fn remove_with_lock(path: &str) {
    let _ = std::fs::remove_file(path);
    let _ = std::fs::remove_file(format!("{path}.lock"));
}

fn push_job_event(shared: &Shared, ix: usize, event: Value) {
    lock_state(shared).jobs[ix].events.push(event);
    shared.event_cv.notify_all();
}

fn warning_event(id: &str, message: &str) -> Value {
    let mut event = Value::object();
    event.insert("event", "warning");
    event.insert("job", id);
    event.insert("message", message);
    event
}

/// One shard's supervision loop: spawn, drive, classify, retry.
fn supervise_shard(ctx: ShardCtx<'_>) -> ShardEnd {
    let store_path = &ctx.paths.shards[ctx.shard];
    let max_attempts = u64::from(ctx.shared.config.max_retries) + 1;
    let mut attempt: u64 = 0;
    loop {
        attempt += 1;
        match run_attempt(ctx, store_path, attempt) {
            Attempt::Reported(report) => return ShardEnd::Reported(report),
            Attempt::TimedOut => return ShardEnd::TimedOut,
            Attempt::Cancelled => return ShardEnd::Cancelled,
            Attempt::SpawnFailed(e) => return ShardEnd::Exhausted(e),
            Attempt::Crashed(desc) => {
                telemetry::static_counter!("daemon_worker_crashes_total").inc();
                if attempt >= max_attempts {
                    return ShardEnd::Exhausted(format!(
                        "worker crashed on all {max_attempts} attempt(s); last: {desc}"
                    ));
                }
                // A SIGKILL mid-append leaves a partial trailing line in
                // the shard store; clear it so the retry appends onto a
                // clean, fully-terminated prefix.
                match ResultStore::open(store_path).drop_partial_tail() {
                    Ok(None) => {}
                    Ok(Some(warning)) => {
                        push_job_event(ctx.shared, ctx.ix, warning_event(ctx.id, &warning));
                    }
                    Err(e) => {
                        let warning = format!("clearing {store_path} crash tail: {e}");
                        push_job_event(ctx.shared, ctx.ix, warning_event(ctx.id, &warning));
                    }
                }
                let backoff = backoff_delay(&ctx.shared.config, ctx.id, ctx.shard, attempt);
                telemetry::static_counter!("daemon_job_retries_total").inc();
                let mut event = Value::object();
                event.insert("event", "retry");
                event.insert("job", ctx.id);
                event.insert("shard", ctx.shard);
                event.insert("attempt", attempt + 1);
                event.insert("backoff_ms", backoff.as_millis() as u64);
                event.insert("error", desc.as_str());
                push_job_event(ctx.shared, ctx.ix, event);
                match sleep_backoff(ctx, backoff) {
                    Wait::Completed => {}
                    Wait::Cancelled => return ShardEnd::Cancelled,
                    Wait::DeadlineHit => return ShardEnd::TimedOut,
                }
            }
        }
    }
}

/// Spawns and drives one child attempt to an [`Attempt`] classification.
fn run_attempt(ctx: ShardCtx<'_>, store_path: &str, attempt: u64) -> Attempt {
    let exe = match worker_exe(ctx.shared) {
        Ok(exe) => exe,
        Err(e) => return Attempt::SpawnFailed(e),
    };
    let mut cmd = Command::new(exe);
    cmd.arg("run")
        .arg(&ctx.paths.campaign)
        .arg("--store")
        .arg(store_path)
        .arg("--events")
        .arg("--parallelism")
        .arg(ctx.shared.config.parallelism.to_string())
        // Two priming sources: the daemon store serves scenarios any
        // earlier job already persisted, and the child's own store
        // serves the prefix a crashed previous attempt fsynced — the
        // retry recomputes only the unfinished suffix.
        .arg("--prime")
        .arg(&ctx.shared.config.store)
        .arg("--prime")
        .arg(store_path);
    if ctx.shard_count > 1 {
        cmd.arg("--shard-index")
            .arg(ctx.shard.to_string())
            .arg("--shard-count")
            .arg(ctx.shard_count.to_string());
    }
    // The child's environment is deliberate, never inherited by
    // accident: the chaos plan (with the attempt number that lets it
    // expire) when configured, scrubbed when not.
    cmd.env_remove(fault::FAULT_ENV)
        .env_remove(fault::FAULT_ATTEMPT_ENV);
    if let Some(plan) = &ctx.shared.config.chaos {
        cmd.env(fault::FAULT_ENV, plan);
        cmd.env(fault::FAULT_ATTEMPT_ENV, attempt.to_string());
    }
    if ctx.shared.config.quick {
        cmd.env("BENCH_QUICK", "1");
    } else {
        cmd.env_remove("BENCH_QUICK");
    }
    cmd.stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped());
    let mut child = match cmd.spawn() {
        Ok(child) => child,
        Err(e) => return Attempt::SpawnFailed(format!("spawning worker: {e}")),
    };
    let pid = child.id();
    {
        let mut st = lock_state(ctx.shared);
        let job = &mut st.jobs[ctx.ix];
        job.attempts += 1;
        job.worker_pids.push(pid);
    }
    let outcome = drive_child(ctx, &mut child);
    {
        let mut st = lock_state(ctx.shared);
        st.jobs[ctx.ix].worker_pids.retain(|&p| p != pid);
    }
    outcome
}

/// Streams a live child's events, enforces cancel/shutdown/deadline by
/// killing it, reaps it, and classifies the exit.
fn drive_child(ctx: ShardCtx<'_>, child: &mut Child) -> Attempt {
    let stdout = child.stdout.take();
    let stderr = child.stderr.take();
    let stderr_tail: Mutex<VecDeque<String>> = Mutex::new(VecDeque::new());
    let mut report: Option<Value> = None;
    let mut garbage: u64 = 0;
    let mut killed: Option<Kill> = None;

    thread::scope(|scope| {
        let (tx, rx) = mpsc::channel::<String>();
        if let Some(out) = stdout {
            scope.spawn(move || {
                for line in BufReader::new(out).lines() {
                    let Ok(line) = line else { break };
                    if line.trim().is_empty() {
                        continue;
                    }
                    if tx.send(line).is_err() {
                        break;
                    }
                }
            });
        } else {
            drop(tx);
        }
        if let Some(err) = stderr {
            let tail = &stderr_tail;
            scope.spawn(move || {
                for line in BufReader::new(err).lines() {
                    let Ok(line) = line else { break };
                    let mut tail = match tail.lock() {
                        Ok(guard) => guard,
                        Err(poisoned) => poisoned.into_inner(),
                    };
                    if tail.len() >= STDERR_TAIL_LINES {
                        tail.pop_front();
                    }
                    tail.push_back(line);
                }
            });
        }
        // The supervision loop proper: it ends when the child's stdout
        // closes (exit, crash, or the kill we just issued).
        loop {
            match rx.recv_timeout(IDLE_TICK) {
                Ok(line) => match serde_json::from_str(&line) {
                    Ok(event) => match event.get("event").and_then(Value::as_str) {
                        Some("report") => report = Some(event),
                        Some("scenario") | Some("warning") => {
                            let mut event = event;
                            event.insert("job", ctx.id);
                            push_job_event(ctx.shared, ctx.ix, event);
                        }
                        _ => garbage += 1,
                    },
                    Err(_) => garbage += 1,
                },
                Err(mpsc::RecvTimeoutError::Timeout) => {}
                Err(mpsc::RecvTimeoutError::Disconnected) => break,
            }
            if killed.is_none() {
                if ctx.cancel.load(Ordering::SeqCst) || ctx.shared.shutdown.load(Ordering::SeqCst) {
                    let _ = child.kill();
                    killed = Some(Kill::Cancel);
                } else if ctx.deadline.is_some_and(|d| Instant::now() >= d) {
                    let _ = child.kill();
                    killed = Some(Kill::Deadline);
                    telemetry::static_counter!("daemon_job_timeouts_total").inc();
                }
            }
        }
    });

    if garbage > 0 {
        telemetry::static_counter!("daemon_worker_garbage_lines_total").add(garbage);
        let warning = format!(
            "worker shard {} emitted {garbage} non-protocol line(s) on its event stream",
            ctx.shard
        );
        push_job_event(ctx.shared, ctx.ix, warning_event(ctx.id, &warning));
    }

    // Reap. A well-behaved child exits promptly once stdout is closed,
    // but never block unboundedly on one that doesn't: poll, and keep
    // enforcing cancel/shutdown/deadline while waiting.
    let status = loop {
        match child.try_wait() {
            Ok(Some(status)) => break status,
            Ok(None) => {
                if killed.is_none() {
                    if ctx.cancel.load(Ordering::SeqCst)
                        || ctx.shared.shutdown.load(Ordering::SeqCst)
                    {
                        let _ = child.kill();
                        killed = Some(Kill::Cancel);
                    } else if ctx.deadline.is_some_and(|d| Instant::now() >= d) {
                        let _ = child.kill();
                        killed = Some(Kill::Deadline);
                        telemetry::static_counter!("daemon_job_timeouts_total").inc();
                    }
                }
                thread::sleep(IDLE_TICK);
            }
            Err(e) => {
                let _ = child.kill();
                return Attempt::Crashed(format!("waiting on worker: {e}"));
            }
        }
    };

    match killed {
        Some(Kill::Cancel) => Attempt::Cancelled,
        Some(Kill::Deadline) => Attempt::TimedOut,
        None => match report {
            Some(report) => Attempt::Reported(report),
            None => {
                let tail = match stderr_tail.lock() {
                    Ok(guard) => guard,
                    Err(poisoned) => poisoned.into_inner(),
                };
                Attempt::Crashed(describe_exit(status, &tail))
            }
        },
    }
}

fn describe_exit(status: ExitStatus, tail: &VecDeque<String>) -> String {
    let how = match (status.code(), status.signal()) {
        (Some(code), _) => format!("exited with code {code} before its final report"),
        (None, Some(signal)) => format!("killed by signal {signal}"),
        _ => "exited without a final report".to_string(),
    };
    if tail.is_empty() {
        how
    } else {
        let lines: Vec<&str> = tail.iter().map(String::as_str).collect();
        format!("{how}; stderr: {}", lines.join(" | "))
    }
}

/// Exponential backoff with deterministic jitter: `base · 2^(attempt−1)`
/// capped at `backoff_cap`, then scaled into `[50%, 100%]` by a
/// splitmix64 hash of `(job, shard, attempt)` — reproducible for tests,
/// decorrelated across shards so respawns don't stampede.
fn backoff_delay(config: &ServeConfig, id: &str, shard: usize, attempt: u64) -> Duration {
    let base_ms = (config.backoff_base.as_millis() as u64).max(1);
    let cap_ms = (config.backoff_cap.as_millis() as u64).max(base_ms);
    let exp_ms = base_ms
        .saturating_mul(1u64 << (attempt - 1).min(20))
        .min(cap_ms);
    let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in id.bytes() {
        seed = (seed ^ u64::from(byte)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    seed ^= (shard as u64)
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(attempt);
    let jitter = splitmix64(seed) >> 11; // 53 uniform bits
    let frac = 0.5 + 0.5 * (jitter as f64 / (1u64 << 53) as f64);
    Duration::from_millis((exp_ms as f64 * frac) as u64)
}

fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Sleeps out a backoff in shutdown-aware ticks.
fn sleep_backoff(ctx: ShardCtx<'_>, backoff: Duration) -> Wait {
    let until = Instant::now() + backoff;
    loop {
        if ctx.cancel.load(Ordering::SeqCst) || ctx.shared.shutdown.load(Ordering::SeqCst) {
            return Wait::Cancelled;
        }
        if ctx.deadline.is_some_and(|d| Instant::now() >= d) {
            return Wait::DeadlineHit;
        }
        let now = Instant::now();
        if now >= until {
            return Wait::Completed;
        }
        thread::sleep((until - now).min(IDLE_TICK));
    }
}

/// Folds the job's shard stores into the daemon store: `merge_from`
/// reconstructs campaign order (and compacts), then the canonical
/// records land in the daemon store as one locked, fsynced batch.
/// Partial prefixes from failed jobs take exactly the same path.
fn merge_job_stores(shared: &Shared, ix: usize, id: &str, paths: &JobPaths) -> Result<(), String> {
    let inputs: Vec<ResultStore> = paths
        .shards
        .iter()
        .filter(|p| std::path::Path::new(p.as_str()).exists())
        .map(ResultStore::open)
        .collect();
    if inputs.is_empty() {
        return Ok(());
    }
    let merged = ResultStore::open(&paths.merged);
    let summary = merged
        .merge_from(&inputs)
        .map_err(|e| format!("merging worker stores: {e}"))?;
    for message in summary.warnings.iter().chain(summary.conflicts.iter()) {
        push_job_event(shared, ix, warning_event(id, message));
    }
    let records = merged
        .load()
        .map_err(|e| format!("reading merged store {}: {e}", paths.merged))?;
    let raws: Vec<Value> = records.into_iter().map(|r| r.raw).collect();
    shared
        .store
        .append_records(&raws)
        .map_err(|e| format!("appending {} worker record(s): {e}", raws.len()))
}

/// Terminal bookkeeping: state, error, aggregated `done` event (counters
/// summed across shard reports), latency observation, watcher wakeup.
fn finalize(
    shared: &Shared,
    ix: usize,
    state: JobState,
    error: Option<String>,
    reports: &[Value],
    wall_ms: f64,
) {
    let mut st = lock_state(shared);
    let job = &mut st.jobs[ix];
    job.state = state;
    job.worker_pids.clear();
    if let Some(error) = error {
        job.error = Some(error);
    }
    let mut event = done_event(&job.id, state);
    event.insert("total", job.campaign.scenarios.len());
    for key in ["completed", "failed", "cache_served", "store_served"] {
        event.insert(key, sum_u64(reports, key));
    }
    event.insert("wall_ms", wall_ms);
    event.insert("attempts", job.attempts);
    if let Some(error) = &job.error {
        event.insert("error", error.as_str());
    }
    job.events.push(event);
    observe_job_terminal(job);
    drop(st);
    shared.event_cv.notify_all();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_exponentially_is_capped_and_deterministic() {
        let config = ServeConfig {
            backoff_base: Duration::from_millis(100),
            backoff_cap: Duration::from_millis(800),
            ..ServeConfig::default()
        };
        let d1 = backoff_delay(&config, "job-1", 0, 1);
        let d2 = backoff_delay(&config, "job-1", 0, 2);
        let d9 = backoff_delay(&config, "job-1", 0, 9);
        // Jitter keeps each delay in [50%, 100%] of its exponential step.
        assert!(d1 >= Duration::from_millis(50) && d1 <= Duration::from_millis(100));
        assert!(d2 >= Duration::from_millis(100) && d2 <= Duration::from_millis(200));
        assert!(d9 <= Duration::from_millis(800), "cap must hold: {d9:?}");
        // Deterministic: same (job, shard, attempt) → same delay.
        assert_eq!(d1, backoff_delay(&config, "job-1", 0, 1));
        // Decorrelated across shards (with these inputs, observably so).
        assert_ne!(
            backoff_delay(&config, "job-1", 0, 1),
            backoff_delay(&config, "job-1", 1, 1),
        );
    }

    #[test]
    fn exit_descriptions_name_code_signal_and_stderr() {
        let mut tail = VecDeque::new();
        let clean: ExitStatus = ExitStatusExt::from_raw(0x0100); // exit 1
        assert_eq!(
            describe_exit(clean, &tail),
            "exited with code 1 before its final report"
        );
        let signalled: ExitStatus = ExitStatusExt::from_raw(9); // SIGKILL
        assert_eq!(describe_exit(signalled, &tail), "killed by signal 9");
        tail.push_back("thread 'main' panicked".to_string());
        assert!(describe_exit(signalled, &tail).contains("stderr: thread 'main' panicked"));
    }

    #[test]
    fn job_paths_are_per_job_and_per_shard() {
        let paths = job_paths("store.jsonl", "job-7", 2);
        assert_eq!(paths.campaign, "store.jsonl.job-7.campaign.json");
        assert_eq!(paths.merged, "store.jsonl.job-7.merged.jsonl");
        assert_eq!(
            paths.shards,
            vec![
                "store.jsonl.job-7.shard0.jsonl".to_string(),
                "store.jsonl.job-7.shard1.jsonl".to_string(),
            ]
        );
    }
}
