//! Env-gated chaos injection for the campaign service's worker processes.
//!
//! A fault plan is a one-line spec carried in the [`FAULT_ENV`]
//! environment variable:
//!
//! ```text
//! SERVE_FAULT=crash_after:3      — abort after the 3rd completed scenario
//! SERVE_FAULT=hang_after:2       — hang (never exit) after the 2nd
//! SERVE_FAULT=garbage_after:1@2  — print garbage to the event stream
//!                                  after the 1st, on attempts 1 and 2
//! ```
//!
//! The optional `@k` suffix bounds the fault to the first `k` supervised
//! attempts (default 1): the supervisor exports the current attempt
//! number in [`FAULT_ATTEMPT_ENV`], so a plan fires on the attempts it
//! covers and the retry that follows runs clean — which is exactly what
//! lets the chaos tests *prove recovery* rather than just provoke
//! failure. The parser is in the linter's R3 (panic-free) scope: a
//! malformed plan is a returned error, never a panic, because the spec
//! crosses a process boundary like any other untrusted input.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Environment variable the fault plan travels in.
pub const FAULT_ENV: &str = "SERVE_FAULT";

/// Environment variable carrying the supervisor's 1-based attempt
/// number; absent (e.g. a hand-launched `campaign run`) means attempt 1.
pub const FAULT_ATTEMPT_ENV: &str = "SERVE_FAULT_ATTEMPT";

/// What the worker does when its plan fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultMode {
    /// Abort the process (`SIGABRT`) — the supervisor sees a
    /// signal-killed child with no final report.
    Crash,
    /// Stop making progress without exiting — only a deadline frees the
    /// supervisor.
    Hang,
    /// Emit non-protocol garbage lines on the event stream, then keep
    /// running normally — the supervisor must tolerate and count them.
    Garbage,
}

impl FaultMode {
    /// The mode's name in the plan grammar (without `_after`).
    pub fn as_str(self) -> &'static str {
        match self {
            FaultMode::Crash => "crash",
            FaultMode::Hang => "hang",
            FaultMode::Garbage => "garbage",
        }
    }
}

/// A parsed `<mode>_after:<n>[@<attempts>]` plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// What happens when the plan fires.
    pub mode: FaultMode,
    /// Fire after this many completed scenarios (1-based, ≥ 1).
    pub after: usize,
    /// Fire only while the supervised attempt number is ≤ this (default
    /// 1, so a single retry already recovers).
    pub attempts: u64,
}

impl FaultPlan {
    /// Parses a plan spec.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for an unknown mode, a missing
    /// or non-numeric scenario count, a zero count (the plan would never
    /// fire a *post*-scenario fault), or a malformed `@attempts` suffix.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let spec = spec.trim();
        let (head, attempts) = match spec.split_once('@') {
            None => (spec, 1),
            Some((head, tail)) => (
                head,
                tail.parse::<u64>()
                    .map_err(|_| format!("fault plan '{spec}': '@{tail}' is not a number"))?,
            ),
        };
        let (mode, count) = head
            .split_once(':')
            .ok_or_else(|| format!("fault plan '{spec}': expected '<mode>_after:<n>'"))?;
        let mode = match mode {
            "crash_after" => FaultMode::Crash,
            "hang_after" => FaultMode::Hang,
            "garbage_after" => FaultMode::Garbage,
            other => {
                return Err(format!(
                    "fault plan '{spec}': unknown mode '{other}' \
                     (crash_after | hang_after | garbage_after)"
                ))
            }
        };
        let after: usize = count
            .parse()
            .map_err(|_| format!("fault plan '{spec}': '{count}' is not a number"))?;
        if after == 0 {
            return Err(format!(
                "fault plan '{spec}': the scenario count must be ≥ 1"
            ));
        }
        if attempts == 0 {
            return Err(format!(
                "fault plan '{spec}': '@0' would never fire; omit the plan instead"
            ));
        }
        Ok(FaultPlan {
            mode,
            after,
            attempts,
        })
    }

    /// Whether the plan fires on the given 1-based attempt.
    pub fn armed(&self, attempt: u64) -> bool {
        attempt <= self.attempts
    }
}

/// A per-process trigger: counts completed scenarios and fires its plan
/// exactly once, on the `after`-th completion.
#[derive(Debug)]
pub struct FaultInjector {
    mode: FaultMode,
    after: usize,
    completed: AtomicUsize,
}

impl FaultInjector {
    /// Builds the injector for `plan` as seen by `attempt`; `None` when
    /// the plan no longer covers this attempt (the recovery attempt runs
    /// clean).
    pub fn new(plan: FaultPlan, attempt: u64) -> Option<FaultInjector> {
        plan.armed(attempt).then_some(FaultInjector {
            mode: plan.mode,
            after: plan.after,
            completed: AtomicUsize::new(0),
        })
    }

    /// Reads [`FAULT_ENV`] / [`FAULT_ATTEMPT_ENV`] and builds the
    /// injector, `Ok(None)` when no plan is set or this attempt is past
    /// the plan's coverage.
    ///
    /// # Errors
    ///
    /// Returns the parse error for a malformed plan or attempt value —
    /// a chaos harness that silently no-ops on a typo proves nothing.
    pub fn from_env() -> Result<Option<FaultInjector>, String> {
        let Ok(spec) = std::env::var(FAULT_ENV) else {
            return Ok(None);
        };
        if spec.trim().is_empty() {
            return Ok(None);
        }
        let plan = FaultPlan::parse(&spec)?;
        let attempt = match std::env::var(FAULT_ATTEMPT_ENV) {
            Err(_) => 1,
            Ok(raw) => raw
                .trim()
                .parse::<u64>()
                .map_err(|_| format!("{FAULT_ATTEMPT_ENV}='{raw}' is not a number"))?,
        };
        Ok(FaultInjector::new(plan, attempt))
    }

    /// Call once per completed scenario; returns the fault to act on
    /// when this completion is the plan's `after`-th (and only then —
    /// the plan fires at most once per process).
    pub fn on_scenario(&self) -> Option<FaultMode> {
        let n = self.completed.fetch_add(1, Ordering::SeqCst) + 1;
        (n == self.after).then_some(self.mode)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_parse_with_defaults_and_attempt_bounds() {
        let plan = FaultPlan::parse("crash_after:3").unwrap();
        assert_eq!(plan.mode, FaultMode::Crash);
        assert_eq!(plan.after, 3);
        assert_eq!(plan.attempts, 1);
        assert!(plan.armed(1));
        assert!(!plan.armed(2));

        let plan = FaultPlan::parse(" garbage_after:1@3 ").unwrap();
        assert_eq!(plan.mode, FaultMode::Garbage);
        assert_eq!(plan.after, 1);
        assert!(plan.armed(3));
        assert!(!plan.armed(4));

        assert_eq!(
            FaultPlan::parse("hang_after:2").unwrap().mode,
            FaultMode::Hang
        );
    }

    #[test]
    fn malformed_plans_are_errors_not_panics() {
        for bad in [
            "",
            "crash_after",
            "crash_after:",
            "crash_after:x",
            "crash_after:0",
            "crash_after:1@",
            "crash_after:1@x",
            "crash_after:1@0",
            "explode_after:1",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "'{bad}' should not parse");
        }
    }

    #[test]
    fn injector_fires_exactly_once_at_the_nth_completion() {
        let plan = FaultPlan::parse("crash_after:2").unwrap();
        let injector = FaultInjector::new(plan, 1).expect("attempt 1 is armed");
        assert_eq!(injector.on_scenario(), None);
        assert_eq!(injector.on_scenario(), Some(FaultMode::Crash));
        assert_eq!(injector.on_scenario(), None);
        assert!(
            FaultInjector::new(plan, 2).is_none(),
            "attempt 2 runs clean"
        );
    }
}
