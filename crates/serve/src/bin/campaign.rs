//! `campaign` — run, serve, inspect, audit, merge, and compact
//! declarative fault campaigns.
//!
//! ```text
//! campaign run <campaign.json> [--store <path>] [--shards <n>]
//!              [--resume <path>] [--parallelism <n>]
//!              [--shard-index <i> --shard-count <n>]
//!              [--trace <file>] [--progress]
//! campaign merge <out> <in...>
//! campaign serve [--listen <addr>] [--store <path>] [--workers <n>]
//!                [--shards <n>] [--parallelism <n>] [--queue <n>]
//! campaign submit <campaign.json> [--addr <addr>] [--watch]
//! campaign status [<job>] [--addr <addr>]
//! campaign watch <job> [--addr <addr>]
//! campaign cancel <job> [--addr <addr>]
//! campaign metrics [--addr <addr>]
//! campaign shutdown [--addr <addr>]
//! campaign list [--store <path>]
//! campaign compare [--store <path>]
//! campaign compact [--store <path>]
//! ```
//!
//! `run` executes every scenario of the file through the BayesFT engine —
//! across `--shards` work-stealing shards, bit-identically to the serial
//! path — and appends one JSONL record per scenario to the store, in
//! campaign order. `--shard-index i --shard-count n` restricts the
//! process to scenarios with `index % n == i` so N independent processes
//! partition one campaign into N stores; `merge` unions such stores back
//! into one, byte-identical (after compaction) to a serial run, and exits
//! non-zero if inputs hold conflicting results for the same
//! `(digest, seed)`. `--resume <path>` replays scenarios already
//! persisted in that store instead of recomputing them. `BENCH_QUICK=1`
//! clamps every scenario to smoke-test budgets.
//!
//! `run --progress` prints one line per finished scenario as it lands
//! (completion order, before the summary table); `run --trace <file>`
//! records every span — per-scenario, engine stages, GP fit/acquisition —
//! as a Chrome-trace-event JSON array loadable in `chrome://tracing` or
//! Perfetto.
//!
//! `serve` runs the campaign service daemon; `submit`/`status`/`watch`/
//! `cancel`/`metrics`/`shutdown` are its client verbs (line-delimited
//! JSON over TCP, `--addr` defaulting to `127.0.0.1:4850`). `metrics`
//! prints the daemon's telemetry snapshot in Prometheus text exposition
//! format.
//!
//! `list` prints the stored records; `compare` groups them by
//! `(scenario-digest, seed)` and verifies that repeated runs reproduced
//! bit-identical best-α vectors, exiting non-zero on any divergence;
//! `compact` atomically rewrites the store into its canonical
//! deduplicated form (byte-identical across shard counts and resumes).

use std::io::Write as _;
use std::process::ExitCode;
use std::time::Duration;

use scenarios::{Campaign, CampaignRunner, ResultStore, RunControl, ScenarioRun};
use serde_json::Value;
use serve::fault::{FaultInjector, FaultMode};
use serve::protocol::DEFAULT_ADDR;
use serve::{Client, Daemon, Isolation, ServeConfig};

const DEFAULT_STORE: &str = "campaign_results.jsonl";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let result = match command.as_str() {
        "run" => cmd_run(&args[1..]),
        "merge" => cmd_merge(&args[1..]),
        "serve" => cmd_serve(&args[1..]),
        "submit" => cmd_submit(&args[1..]),
        "status" => cmd_status(&args[1..]),
        "watch" => cmd_watch(&args[1..]),
        "cancel" => cmd_cancel(&args[1..]),
        "metrics" => cmd_metrics(&args[1..]),
        "shutdown" => cmd_shutdown(&args[1..]),
        "list" => cmd_list(&args[1..]),
        "compare" => cmd_compare(&args[1..]),
        "compact" => cmd_compact(&args[1..]),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        other => Err(format!("unknown subcommand '{other}'\n{USAGE}")),
    };
    match result {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("campaign: {msg}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  campaign run <campaign.json> [--store <path>] [--shards <n>]
               [--resume <path>] [--prime <path>]... [--parallelism <n>]
               [--shard-index <i> --shard-count <n>]
               [--trace <file>] [--progress] [--events]
  campaign merge <out> <in...>
  campaign serve [--listen <addr>] [--store <path>] [--workers <n>]
                 [--shards <n>] [--parallelism <n>] [--queue <n>]
                 [--isolation thread|process] [--deadline <secs>]
                 [--retries <n>] [--backoff-ms <n>]
  campaign submit <campaign.json> [--addr <addr>] [--watch]
  campaign status [<job>] [--addr <addr>]
  campaign watch <job> [--addr <addr>]
  campaign cancel <job> [--addr <addr>]
  campaign metrics [--addr <addr>]
  campaign shutdown [--addr <addr>]
  campaign list [--store <path>]
  campaign compare [--store <path>]
  campaign compact [--store <path>]

--shards n       run scenarios over n work-stealing shards (0 = one per
                 core); results are bit-identical to the serial path
--shard-index i  with --shard-count n: own only scenarios where
                 index % n == i, so n processes partition one campaign;
                 'merge' unions their stores byte-identically
--resume path    serve scenarios already persisted in this store instead
                 of recomputing them (implies --store path)
--prime path     like --resume, but from any store (repeatable) and
                 without binding --store; how a supervised retry replays
                 the crashed attempt's fsynced prefix
--trace file     record telemetry spans as a Chrome trace-event JSON
                 array (load in chrome://tracing or Perfetto)
--progress       print one line per finished scenario, as it lands
--events         machine mode: stream line-JSON scenario/warning events
                 and a final report line on stdout instead of the human
                 output ('campaign serve --isolation process' workers
                 run this way)
--isolation m    'thread' (default) runs daemon jobs in-process;
                 'process' runs each job in supervised 'campaign run'
                 child processes with deadline/retry/backoff
--deadline s     kill a supervised job after s seconds wall clock
--retries n      crashed-worker retries before the job fails (default 2)
--backoff-ms n   base retry backoff, doubled per attempt with jitter
--addr a         daemon address for the client verbs (127.0.0.1:4850)
BENCH_QUICK=1    clamps run budgets to smoke-test scale
SERVE_FAULT=p    chaos plan for workers: crash_after:<n>, hang_after:<n>,
                 or garbage_after:<n>, optionally @<attempts>";

/// `(--flag, value)` pairs plus the remaining positional arguments.
type ParsedArgs = (Vec<(String, String)>, Vec<String>);

/// Pulls `--flag value` (and valueless `--flag` for names in `switches`)
/// out of an argument list, returning the remaining positionals.
fn parse_flags(args: &[String], flags: &[&str], switches: &[&str]) -> Result<ParsedArgs, String> {
    let mut values = Vec::new();
    let mut positional = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let arg = &args[i];
        if let Some(name) = arg.strip_prefix("--") {
            if switches.contains(&name) {
                values.push((name.to_string(), "true".to_string()));
                i += 1;
            } else if flags.contains(&name) {
                let value = args
                    .get(i + 1)
                    .ok_or_else(|| format!("'--{name}' needs a value"))?;
                values.push((name.to_string(), value.clone()));
                i += 2;
            } else {
                return Err(format!("unknown flag '--{name}'"));
            }
        } else {
            positional.push(arg.clone());
            i += 1;
        }
    }
    Ok((values, positional))
}

fn flag<'a>(values: &'a [(String, String)], name: &str) -> Option<&'a str> {
    values
        .iter()
        .rev()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v.as_str())
}

fn count_flag(values: &[(String, String)], name: &str) -> Result<Option<usize>, String> {
    match flag(values, name) {
        None => Ok(None),
        Some(v) => v
            .parse()
            .map(Some)
            .map_err(|_| format!("'--{name} {v}' is not a number")),
    }
}

fn quick_from_env() -> bool {
    std::env::var("BENCH_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false)
}

fn load_campaign(path: &str) -> Result<Campaign, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    Campaign::from_json_str(&text).map_err(|e| format!("{path}: {e}"))
}

fn cmd_run(args: &[String]) -> Result<ExitCode, String> {
    let (flags, positional) = parse_flags(
        args,
        &[
            "store",
            "parallelism",
            "shards",
            "resume",
            "prime",
            "shard-index",
            "shard-count",
            "trace",
        ],
        &["progress", "events"],
    )?;
    let [path] = positional.as_slice() else {
        return Err(format!("'run' takes exactly one campaign file\n{USAGE}"));
    };
    let campaign = load_campaign(path)?;
    let parallelism = count_flag(&flags, "parallelism")?.unwrap_or(1);
    let shards = count_flag(&flags, "shards")?.unwrap_or(1);
    let shard_index = count_flag(&flags, "shard-index")?;
    let shard_count = count_flag(&flags, "shard-count")?;
    let shard_slice = match (shard_index, shard_count) {
        (None, None) => None,
        (Some(index), Some(count)) => Some((index, count)),
        _ => return Err("'--shard-index' and '--shard-count' go together".into()),
    };
    let resume_path = flag(&flags, "resume").map(str::to_string);
    let prime_paths: Vec<String> = flags
        .iter()
        .filter(|(name, _)| name == "prime")
        .map(|(_, value)| value.clone())
        .collect();
    let store_path = flag(&flags, "store")
        .map(str::to_string)
        .or_else(|| resume_path.clone())
        .or_else(|| campaign.store.clone())
        .unwrap_or_else(|| DEFAULT_STORE.to_string());
    if let Some(resume) = &resume_path {
        if *resume != store_path {
            return Err(format!(
                "'--resume {resume}' conflicts with '--store {store_path}': \
                 a resumed campaign continues the store it resumes from"
            ));
        }
    }
    let store = ResultStore::open(&store_path);
    let quick = quick_from_env();
    let trace_path = flag(&flags, "trace").map(str::to_string);
    if let Some(trace) = &trace_path {
        telemetry::install_trace(std::path::Path::new(trace))
            .map_err(|e| format!("cannot open trace file {trace}: {e}"))?;
    }
    let progress = flag(&flags, "progress").is_some();
    let events = flag(&flags, "events").is_some();
    // The env-gated chaos plan: a supervised worker acting out its
    // fault plan, or `Ok(None)` for every normal invocation.
    let injector = FaultInjector::from_env()?;

    if !events {
        println!(
            "campaign '{}': {} scenario(s), {} shard(s){}{}{} -> {}",
            campaign.name,
            campaign.scenarios.len(),
            if shards == 0 {
                "per-core".to_string()
            } else {
                shards.to_string()
            },
            if quick { " [quick budgets]" } else { "" },
            if resume_path.is_some() {
                " [resuming]"
            } else {
                ""
            },
            shard_slice
                .map(|(i, n)| format!(" [process shard {i}/{n}]"))
                .unwrap_or_default(),
            store_path,
        );
    }
    let mut runner = CampaignRunner::new()
        .parallelism(parallelism)
        .shards(shards)
        .quick(quick);
    if let Some((index, count)) = shard_slice {
        runner = runner.shard_of(index, count).map_err(|e| e.to_string())?;
    }
    if resume_path.is_some() {
        runner = runner.resume_from(&store).map_err(|e| e.to_string())?;
        if !events {
            println!(
                "resume: {} replayable record(s) in {store_path}",
                runner.resumable_runs()
            );
        }
    }
    for prime in &prime_paths {
        runner = runner
            .resume_from(&ResultStore::open(prime))
            .map_err(|e| format!("priming from {prime}: {e}"))?;
    }
    // Completion-order progress lines via the same observer hook the
    // daemon streams to `watch` subscribers; under `--events` the same
    // hook emits machine-readable lines (and acts out the chaos plan).
    let observer = |run: &ScenarioRun| {
        if events {
            emit_event(&scenario_event(run));
        } else if progress {
            print_progress_line(run);
        }
        if let Some(injector) = &injector {
            if let Some(mode) = injector.on_scenario() {
                act_on_fault(mode, events);
            }
        }
    };
    let ctl = RunControl {
        cancel: None,
        observer: (events || progress || injector.is_some())
            .then_some(&observer as &(dyn Fn(&ScenarioRun) + Sync)),
    };
    let report = runner
        .run_campaign_report_with(&campaign, Some(&store), ctl)
        .map_err(|e| e.to_string())?;
    if trace_path.is_some() {
        telemetry::finish_trace().map_err(|e| format!("finishing trace: {e}"))?;
    }
    if events {
        for warning in &report.warnings {
            let mut event = Value::object();
            event.insert("event", "warning");
            event.insert("message", warning.as_str());
            emit_event(&event);
        }
        // The terminal report line is the supervisor's completion
        // marker: its presence distinguishes "finished (with or without
        // scenario failures)" from "crashed mid-campaign".
        let mut event = Value::object();
        event.insert("event", "report");
        event.insert("total", report.total);
        event.insert("completed", report.completed);
        event.insert("failed", report.failed);
        event.insert("cache_served", report.cache_served);
        event.insert("store_served", report.store_served);
        event.insert("skipped", report.skipped);
        event.insert("cancelled", report.cancelled);
        event.insert("wall_ms", report.wall_ms);
        emit_event(&event);
        return Ok(if report.failed > 0 {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        });
    }
    for warning in &report.warnings {
        eprintln!("warning: {warning}");
    }
    println!(
        "{:<18} {:<16} {:>9} {:>9} {:>24}",
        "scenario", "digest", "best obj", "wall ms", "faults"
    );
    for run in &report.runs {
        match &run.result {
            Err(e) => eprintln!("  {:<18} FAILED: {e}", run.name),
            Ok(outcome) => {
                let faults: Vec<String> = outcome
                    .scenario
                    .faults
                    .iter()
                    .map(ToString::to_string)
                    .collect();
                let served = if outcome.from_store {
                    "+" // replayed from the resume store
                } else if outcome.from_cache {
                    "*" // served by the in-process memo cache
                } else {
                    " "
                };
                println!(
                    "{:<18} {:<16} {:>9.4} {:>9.0}{} {:>24}",
                    outcome.scenario.name,
                    outcome.digest,
                    outcome.report.best_objective,
                    outcome.compute_wall_ms,
                    served,
                    faults.join(" "),
                );
                println!("{:<18} best alpha = {:?}", "", outcome.report.best_alpha);
            }
        }
    }
    let shard_walls: Vec<String> = report
        .shard_wall_ms
        .iter()
        .enumerate()
        .map(|(i, ms)| format!("shard{i} {ms:.0}ms"))
        .collect();
    println!(
        "progress: {}/{} completed ({} cache-served, {} store-served, {} failed{}) in {:.0} ms [{}]",
        report.completed,
        report.total,
        report.cache_served,
        report.store_served,
        report.failed,
        if report.skipped > 0 {
            format!(", {} owned by sibling shards", report.skipped)
        } else {
            String::new()
        },
        report.wall_ms,
        shard_walls.join(", "),
    );
    if let Some(trace) = &trace_path {
        println!("trace: {trace} (load in chrome://tracing or Perfetto)");
    }
    if report.failed > 0 {
        eprintln!("{} scenario(s) failed", report.failed);
        return Ok(ExitCode::FAILURE);
    }
    Ok(ExitCode::SUCCESS)
}

/// Writes one event line, flushed immediately: the reader is a pipe (the
/// daemon's supervisor), and a buffered line would arrive only at exit —
/// or never, if the chaos plan aborts the process first.
fn emit_event(event: &Value) {
    let mut line = serde_json::to_string(event);
    line.push('\n');
    // One write_all per line: stdout's own lock makes it atomic across
    // shard threads without holding a guard over the I/O.
    let mut out = std::io::stdout();
    let _ = out.write_all(line.as_bytes());
    let _ = out.flush();
}

/// One finished scenario in the daemon's `watch` event shape (minus the
/// `job` field, which the supervisor adds when forwarding).
fn scenario_event(run: &ScenarioRun) -> Value {
    let mut event = Value::object();
    event.insert("event", "scenario");
    event.insert("name", run.name.as_str());
    event.insert("index", run.index);
    event.insert("total", run.total);
    match &run.result {
        Ok(outcome) => {
            event.insert("ok", true);
            event.insert("from_cache", outcome.from_cache);
            event.insert("from_store", outcome.from_store);
            event.insert("best_objective", outcome.report.best_objective);
            event.insert("wall_ms", outcome.wall_ms);
        }
        Err(e) => {
            event.insert("ok", false);
            event.insert("error", e.to_string());
        }
    }
    event
}

fn print_progress_line(run: &ScenarioRun) {
    match &run.result {
        Ok(outcome) => {
            let served = if outcome.from_store {
                " [store]"
            } else if outcome.from_cache {
                " [cache]"
            } else {
                ""
            };
            println!(
                "[{}/{}] {}: best obj {:.4} in {:.0} ms{}",
                run.index + 1,
                run.total,
                run.name,
                outcome.report.best_objective,
                outcome.compute_wall_ms,
                served,
            );
        }
        Err(e) => println!(
            "[{}/{}] {}: FAILED: {e}",
            run.index + 1,
            run.total,
            run.name
        ),
    }
}

/// Acts out a fired fault plan. `Crash` and `Hang` never return.
fn act_on_fault(mode: FaultMode, events: bool) {
    match mode {
        FaultMode::Crash => {
            eprintln!("chaos: SERVE_FAULT aborting the worker");
            std::process::abort();
        }
        FaultMode::Hang => {
            eprintln!("chaos: SERVE_FAULT hanging the worker");
            loop {
                std::thread::sleep(Duration::from_secs(3600));
            }
        }
        FaultMode::Garbage => {
            // One non-JSON line and one well-formed-but-unknown event
            // (a single write keeps them contiguous): the supervisor
            // must shrug off both kinds.
            if events {
                let mut out = std::io::stdout();
                let _ = out.write_all(
                    b"%%% chaos garbage, not protocol %%%\n\
                      {\"event\": \"chaos_noise\", \"bogus\": true}\n",
                );
                let _ = out.flush();
            }
        }
    }
}

fn cmd_merge(args: &[String]) -> Result<ExitCode, String> {
    let (_, positional) = parse_flags(args, &[], &[])?;
    let [out, inputs @ ..] = positional.as_slice() else {
        return Err(format!("'merge' takes an output store and inputs\n{USAGE}"));
    };
    if inputs.is_empty() {
        return Err(format!("'merge' needs at least one input store\n{USAGE}"));
    }
    let stores: Vec<ResultStore> = inputs.iter().map(ResultStore::open).collect();
    let summary = ResultStore::open(out)
        .merge_from(&stores)
        .map_err(|e| e.to_string())?;
    for warning in &summary.warnings {
        eprintln!("warning: {warning}");
    }
    println!(
        "merged {} input store(s), {} record(s) -> {out}: {} kept, {} duplicate(s) folded",
        summary.inputs, summary.records, summary.kept, summary.dropped_duplicates,
    );
    if !summary.conflicts.is_empty() {
        for conflict in &summary.conflicts {
            eprintln!("conflict: {conflict}");
        }
        eprintln!(
            "{} (digest, seed) group(s) had conflicting payloads across inputs",
            summary.conflicts.len(),
        );
        return Ok(ExitCode::FAILURE);
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_serve(args: &[String]) -> Result<ExitCode, String> {
    let (flags, positional) = parse_flags(
        args,
        &[
            "listen",
            "store",
            "workers",
            "shards",
            "parallelism",
            "queue",
            "isolation",
            "deadline",
            "retries",
            "backoff-ms",
        ],
        &[],
    )?;
    if !positional.is_empty() {
        return Err(format!("'serve' takes no positional arguments\n{USAGE}"));
    }
    let addr = flag(&flags, "listen").unwrap_or(DEFAULT_ADDR);
    let defaults = ServeConfig::default();
    let isolation = match flag(&flags, "isolation") {
        None | Some("thread") => Isolation::InProcess,
        Some("process") => Isolation::Process,
        Some(other) => {
            return Err(format!(
                "'--isolation {other}' is not 'thread' or 'process'"
            ))
        }
    };
    let config = ServeConfig {
        store: flag(&flags, "store").unwrap_or(DEFAULT_STORE).to_string(),
        workers: count_flag(&flags, "workers")?.unwrap_or(defaults.workers),
        shards: count_flag(&flags, "shards")?.unwrap_or(defaults.shards),
        parallelism: count_flag(&flags, "parallelism")?.unwrap_or(defaults.parallelism),
        queue_capacity: count_flag(&flags, "queue")?.unwrap_or(defaults.queue_capacity),
        quick: quick_from_env(),
        resume: true,
        isolation,
        deadline: count_flag(&flags, "deadline")?.map(|secs| Duration::from_secs(secs as u64)),
        max_retries: count_flag(&flags, "retries")?
            .map(|n| n as u32)
            .unwrap_or(defaults.max_retries),
        backoff_base: count_flag(&flags, "backoff-ms")?
            .map(|ms| Duration::from_millis(ms as u64))
            .unwrap_or(defaults.backoff_base),
        ..defaults
    };
    let store = config.store.clone();
    let daemon = Daemon::bind(addr, config).map_err(|e| e.to_string())?;
    println!(
        "campaign service listening on {} (store {store}, {} resumable record(s))",
        daemon.local_addr().map_err(|e| e.to_string())?,
        daemon.resumable_runs(),
    );
    // Smoke scripts poll for this line before submitting.
    std::io::stdout().flush().map_err(|e| e.to_string())?;
    daemon.run().map_err(|e| e.to_string())?;
    println!("campaign service drained and stopped");
    Ok(ExitCode::SUCCESS)
}

fn connect(flags: &[(String, String)]) -> Result<Client, String> {
    let addr = flag(flags, "addr").unwrap_or(DEFAULT_ADDR);
    Client::connect(addr).map_err(|e| e.to_string())
}

fn cmd_submit(args: &[String]) -> Result<ExitCode, String> {
    let (flags, positional) = parse_flags(args, &["addr"], &["watch"])?;
    let [path] = positional.as_slice() else {
        return Err(format!("'submit' takes exactly one campaign file\n{USAGE}"));
    };
    // Parse locally first: a malformed file should fail client-side with
    // the file's path in the message, not round-trip to the daemon.
    let campaign = load_campaign(path)?;
    let mut client = connect(&flags)?;
    let job = client
        .submit(campaign.to_json())
        .map_err(|e| e.to_string())?;
    println!(
        "submitted '{}' ({} scenario(s)) as {job}",
        campaign.name,
        campaign.scenarios.len(),
    );
    if flag(&flags, "watch").is_some() {
        return watch_to_exit(&mut client, &job);
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_status(args: &[String]) -> Result<ExitCode, String> {
    let (flags, positional) = parse_flags(args, &["addr"], &[])?;
    let mut client = connect(&flags)?;
    match positional.as_slice() {
        [] => {
            let response = client.status(None).map_err(|e| e.to_string())?;
            for warning in response
                .get("warnings")
                .and_then(Value::as_array)
                .unwrap_or(&[])
            {
                if let Some(w) = warning.as_str() {
                    eprintln!("warning: {w}");
                }
            }
            let jobs = response
                .get("jobs")
                .and_then(Value::as_array)
                .unwrap_or(&[]);
            if jobs.is_empty() {
                println!("no jobs");
                return Ok(ExitCode::SUCCESS);
            }
            println!(
                "{:<10} {:<10} {:<20} {:>9}",
                "job", "state", "campaign", "scenarios"
            );
            for job in jobs {
                println!(
                    "{:<10} {:<10} {:<20} {:>9}",
                    job.get("job").and_then(Value::as_str).unwrap_or("?"),
                    job.get("state").and_then(Value::as_str).unwrap_or("?"),
                    job.get("campaign").and_then(Value::as_str).unwrap_or("?"),
                    job.get("scenarios").and_then(Value::as_u64).unwrap_or(0),
                );
            }
            Ok(ExitCode::SUCCESS)
        }
        [job] => {
            let response = client.status(Some(job)).map_err(|e| e.to_string())?;
            let detail = response.get("job").cloned().unwrap_or(Value::Null);
            println!("{}", serde_json::to_string_pretty(&detail));
            Ok(ExitCode::SUCCESS)
        }
        _ => Err(format!("'status' takes at most one job id\n{USAGE}")),
    }
}

fn cmd_watch(args: &[String]) -> Result<ExitCode, String> {
    let (flags, positional) = parse_flags(args, &["addr"], &[])?;
    let [job] = positional.as_slice() else {
        return Err(format!("'watch' takes exactly one job id\n{USAGE}"));
    };
    let mut client = connect(&flags)?;
    watch_to_exit(&mut client, job)
}

/// Streams a job's events to stdout; the exit code is the job's fate.
fn watch_to_exit(client: &mut Client, job: &str) -> Result<ExitCode, String> {
    let done = client.watch(job, print_event).map_err(|e| e.to_string())?;
    let state = done.get("state").and_then(Value::as_str).unwrap_or("?");
    if state == "done" {
        Ok(ExitCode::SUCCESS)
    } else {
        eprintln!("{job} finished as '{state}'");
        Ok(ExitCode::FAILURE)
    }
}

fn print_event(event: &Value) {
    let kind = event.get("event").and_then(Value::as_str).unwrap_or("?");
    let job = event.get("job").and_then(Value::as_str).unwrap_or("?");
    match kind {
        "state" => println!(
            "{job}: {} ({} scenario(s))",
            event.get("state").and_then(Value::as_str).unwrap_or("?"),
            event.get("total").and_then(Value::as_u64).unwrap_or(0),
        ),
        "scenario" => {
            let index = event.get("index").and_then(Value::as_u64).unwrap_or(0);
            let total = event.get("total").and_then(Value::as_u64).unwrap_or(0);
            let name = event.get("name").and_then(Value::as_str).unwrap_or("?");
            if event.get("ok").and_then(Value::as_bool) == Some(true) {
                let provenance = if event.get("from_store").and_then(Value::as_bool) == Some(true) {
                    " [store]"
                } else if event.get("from_cache").and_then(Value::as_bool) == Some(true) {
                    " [cache]"
                } else {
                    ""
                };
                println!(
                    "{job}: [{}/{total}] {name} obj={:.4}{provenance}",
                    index + 1,
                    event
                        .get("best_objective")
                        .and_then(Value::as_f64)
                        .unwrap_or(f64::NAN),
                );
            } else {
                println!(
                    "{job}: [{}/{total}] {name} FAILED: {}",
                    index + 1,
                    event.get("error").and_then(Value::as_str).unwrap_or("?"),
                );
            }
        }
        "warning" => eprintln!(
            "warning: {}",
            event.get("message").and_then(Value::as_str).unwrap_or("?"),
        ),
        "done" => println!(
            "{job}: {} — {}/{} completed ({} cache-served, {} store-served, {} failed) in {:.0} ms",
            event.get("state").and_then(Value::as_str).unwrap_or("?"),
            event.get("completed").and_then(Value::as_u64).unwrap_or(0),
            event.get("total").and_then(Value::as_u64).unwrap_or(0),
            event
                .get("cache_served")
                .and_then(Value::as_u64)
                .unwrap_or(0),
            event
                .get("store_served")
                .and_then(Value::as_u64)
                .unwrap_or(0),
            event.get("failed").and_then(Value::as_u64).unwrap_or(0),
            event.get("wall_ms").and_then(Value::as_f64).unwrap_or(0.0),
        ),
        _ => println!("{}", serde_json::to_string(event)),
    }
}

fn cmd_cancel(args: &[String]) -> Result<ExitCode, String> {
    let (flags, positional) = parse_flags(args, &["addr"], &[])?;
    let [job] = positional.as_slice() else {
        return Err(format!("'cancel' takes exactly one job id\n{USAGE}"));
    };
    let mut client = connect(&flags)?;
    let response = client.cancel(job).map_err(|e| e.to_string())?;
    println!(
        "{job}: {}",
        response.get("state").and_then(Value::as_str).unwrap_or("?"),
    );
    Ok(ExitCode::SUCCESS)
}

fn cmd_metrics(args: &[String]) -> Result<ExitCode, String> {
    let (flags, positional) = parse_flags(args, &["addr"], &[])?;
    if !positional.is_empty() {
        return Err(format!("'metrics' takes no positional arguments\n{USAGE}"));
    }
    let mut client = connect(&flags)?;
    let snapshot = client.metrics().map_err(|e| e.to_string())?;
    print!("{snapshot}");
    Ok(ExitCode::SUCCESS)
}

fn cmd_shutdown(args: &[String]) -> Result<ExitCode, String> {
    let (flags, positional) = parse_flags(args, &["addr"], &[])?;
    if !positional.is_empty() {
        return Err(format!("'shutdown' takes no positional arguments\n{USAGE}"));
    }
    let mut client = connect(&flags)?;
    let response = client.shutdown().map_err(|e| e.to_string())?;
    println!(
        "daemon draining {} running job(s) and stopping",
        response
            .get("draining")
            .and_then(Value::as_u64)
            .unwrap_or(0),
    );
    Ok(ExitCode::SUCCESS)
}

fn cmd_list(args: &[String]) -> Result<ExitCode, String> {
    let (flags, positional) = parse_flags(args, &["store"], &[])?;
    if !positional.is_empty() {
        return Err(format!("'list' takes no positional arguments\n{USAGE}"));
    }
    let store_path = flag(&flags, "store").unwrap_or(DEFAULT_STORE);
    let (records, warnings) = ResultStore::open(store_path)
        .load_lenient()
        .map_err(|e| e.to_string())?;
    for warning in &warnings {
        eprintln!("warning: {warning}");
    }
    if records.is_empty() {
        println!("no results in {store_path}");
        return Ok(ExitCode::SUCCESS);
    }
    println!(
        "{:<14} {:<18} {:<16} {:>20} {:>9}  faults",
        "campaign", "scenario", "digest", "seed", "best obj"
    );
    for r in &records {
        println!(
            "{:<14} {:<18} {:<16} {:>20} {:>9.4}  {}",
            r.campaign,
            r.scenario,
            r.digest,
            r.seed,
            r.best_objective,
            r.faults.join(" "),
        );
    }
    println!("{} record(s) in {store_path}", records.len());
    Ok(ExitCode::SUCCESS)
}

fn cmd_compare(args: &[String]) -> Result<ExitCode, String> {
    let (flags, positional) = parse_flags(args, &["store"], &[])?;
    if !positional.is_empty() {
        return Err(format!("'compare' takes no positional arguments\n{USAGE}"));
    }
    let store_path = flag(&flags, "store").unwrap_or(DEFAULT_STORE);
    let groups = ResultStore::open(store_path)
        .compare()
        .map_err(|e| e.to_string())?;
    if groups.is_empty() {
        println!("no results in {store_path}");
        return Ok(ExitCode::SUCCESS);
    }
    let mut diverged = 0usize;
    let mut repeated = 0usize;
    println!(
        "{:<18} {:<16} {:>20} {:>5} {:>11}  {:<10} best alpha",
        "scenario", "digest", "seed", "runs", "compute ms", "verdict"
    );
    for g in &groups {
        let verdict = if g.runs < 2 {
            "single"
        } else if g.identical {
            repeated += 1;
            "IDENTICAL"
        } else {
            diverged += 1;
            "DIVERGED"
        };
        println!(
            "{:<18} {:<16} {:>20} {:>5} {:>11.0}  {:<10} {:?}",
            g.scenario, g.digest, g.seed, g.runs, g.compute_wall_ms, verdict, g.best_alpha,
        );
    }
    if diverged > 0 {
        eprintln!("{diverged} group(s) failed to reproduce bit-identical best alpha");
        return Ok(ExitCode::FAILURE);
    }
    if repeated == 0 {
        println!("note: no (digest, seed) pair has multiple runs yet; run the campaign again to audit reproducibility");
    } else {
        println!("{repeated} repeated group(s), all bit-identical");
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_compact(args: &[String]) -> Result<ExitCode, String> {
    let (flags, positional) = parse_flags(args, &["store"], &[])?;
    if !positional.is_empty() {
        return Err(format!("'compact' takes no positional arguments\n{USAGE}"));
    }
    let store_path = flag(&flags, "store").unwrap_or(DEFAULT_STORE);
    let summary = ResultStore::open(store_path)
        .compact()
        .map_err(|e| e.to_string())?;
    println!(
        "compacted {store_path}: {} record(s) kept, {} duplicate(s) folded{}",
        summary.kept,
        summary.dropped_duplicates,
        if summary.dropped_truncated {
            ", 1 truncated trailing line dropped"
        } else {
            ""
        },
    );
    Ok(ExitCode::SUCCESS)
}
