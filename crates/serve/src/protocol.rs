//! The campaign service's wire protocol.
//!
//! One JSON object per `\n`-terminated line, in both directions — the
//! same grammar as the result store, so the whole system stays greppable
//! with standard line tools.
//!
//! **Requests** carry a `"cmd"` field:
//!
//! ```text
//! {"cmd": "ping"}
//! {"cmd": "submit", "campaign": {…campaign.json document…}}
//! {"cmd": "status"}                 — all jobs
//! {"cmd": "status", "job": "job-1"} — one job
//! {"cmd": "watch",  "job": "job-1"}
//! {"cmd": "cancel", "job": "job-1"}
//! {"cmd": "metrics"}                — telemetry snapshot (Prometheus text)
//! {"cmd": "shutdown"}
//! ```
//!
//! **Responses** are exactly one line per request: `{"ok": true, …}` on
//! success, `{"ok": false, "error": "…"}` on refusal. `watch` is the one
//! streaming verb: after its `{"ok": true}` acknowledgement the daemon
//! replays the job's full event history and then streams live events —
//! `{"event": "state" | "scenario" | "warning" | "done", "job": …, …}` —
//! until the terminal `"done"` event, after which the connection is ready
//! for the next request.

use serde_json::Value;

/// Where the daemon listens (and clients connect) unless told otherwise.
pub const DEFAULT_ADDR: &str = "127.0.0.1:4850";

/// A parsed client request.
#[derive(Debug, Clone)]
pub enum Request {
    /// Liveness probe; also returns queue depth.
    Ping,
    /// Enqueue a campaign (the `campaign.json` document, inline).
    Submit {
        /// The campaign document, unparsed.
        campaign: Value,
    },
    /// Report one job (by ID) or every job the daemon knows.
    Status {
        /// Job ID, or `None` for the full listing.
        job: Option<String>,
    },
    /// Subscribe to a job's event stream until it terminates.
    Watch {
        /// Job ID.
        job: String,
    },
    /// Cancel a queued job outright, or ask a running one to stop at the
    /// next scenario boundary.
    Cancel {
        /// Job ID.
        job: String,
    },
    /// Snapshot every process-wide telemetry metric; the response carries
    /// the Prometheus text exposition in its `"metrics"` field.
    Metrics,
    /// Stop accepting work, cancel the queue, drain running jobs, exit.
    Shutdown,
}

impl Request {
    /// Parses one request line.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message (sent back as the `"error"`
    /// field) for malformed JSON, a missing/unknown `"cmd"`, or missing
    /// operands.
    pub fn parse(line: &str) -> Result<Request, String> {
        let value: Value =
            serde_json::from_str(line.trim()).map_err(|e| format!("bad request JSON: {e}"))?;
        let cmd = value
            .get("cmd")
            .and_then(Value::as_str)
            .ok_or_else(|| "request is missing 'cmd'".to_string())?;
        let job = |value: &Value| -> Result<String, String> {
            value
                .get("job")
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("'{cmd}' needs a 'job' id"))
        };
        match cmd {
            "ping" => Ok(Request::Ping),
            "submit" => Ok(Request::Submit {
                campaign: value
                    .get("campaign")
                    .cloned()
                    .ok_or_else(|| "'submit' needs a 'campaign' document".to_string())?,
            }),
            "status" => Ok(Request::Status {
                job: value.get("job").and_then(Value::as_str).map(str::to_string),
            }),
            "watch" => Ok(Request::Watch { job: job(&value)? }),
            "cancel" => Ok(Request::Cancel { job: job(&value)? }),
            "metrics" => Ok(Request::Metrics),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(format!("unknown cmd '{other}'")),
        }
    }

    /// Serializes the request to its wire form (without the newline).
    pub fn to_value(&self) -> Value {
        let mut value = Value::object();
        match self {
            Request::Ping => {
                value.insert("cmd", "ping");
            }
            Request::Submit { campaign } => {
                value.insert("cmd", "submit");
                value.insert("campaign", campaign.clone());
            }
            Request::Status { job } => {
                value.insert("cmd", "status");
                if let Some(job) = job {
                    value.insert("job", job.as_str());
                }
            }
            Request::Watch { job } => {
                value.insert("cmd", "watch");
                value.insert("job", job.as_str());
            }
            Request::Cancel { job } => {
                value.insert("cmd", "cancel");
                value.insert("job", job.as_str());
            }
            Request::Metrics => {
                value.insert("cmd", "metrics");
            }
            Request::Shutdown => {
                value.insert("cmd", "shutdown");
            }
        }
        value
    }
}

/// A fresh `{"ok": true}` response to extend with fields.
pub fn ok_response() -> Value {
    let mut value = Value::object();
    value.insert("ok", true);
    value
}

/// A complete `{"ok": false, "error": …}` refusal.
pub fn err_response(message: &str) -> Value {
    let mut value = Value::object();
    value.insert("ok", false);
    value.insert("error", message);
    value
}

/// A refusal carrying a machine-readable `reason` code (`"queue_full"`,
/// `"draining"`, `"unknown_job"`, `"invalid_campaign"`, `"bad_request"`)
/// alongside the human-readable `error` — clients branch on the code,
/// humans read the message. Older clients that only know `ok`/`error`
/// ignore the extra field (see the backward-compat tests below).
pub fn refusal(message: &str, reason: &str) -> Value {
    let mut value = err_response(message);
    value.insert("reason", reason);
    value
}

/// A [`refusal`] with a back-pressure hint: the daemon's estimate (from
/// queue depth and recent job latency) of how long the client should
/// wait before retrying — the line protocol's 429-plus-`Retry-After`.
pub fn backoff_refusal(message: &str, reason: &str, retry_after_ms: u64) -> Value {
    let mut value = refusal(message, reason);
    value.insert("retry_after_ms", retry_after_ms);
    value
}

/// Writes `value` as one `\n`-terminated line.
///
/// # Errors
///
/// Propagates the underlying write error.
pub fn write_line(writer: &mut impl std::io::Write, value: &Value) -> std::io::Result<()> {
    let mut text = serde_json::to_string(value);
    text.push('\n');
    writer.write_all(text.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The forward-compat contract both sides rely on: a peer speaking a
    /// *newer* protocol may attach fields this side has never heard of,
    /// and parsing must ignore them rather than refuse the request.
    /// `reason`/`retry_after_ms` shipped exactly this way.
    #[test]
    fn requests_tolerate_unknown_fields() {
        assert!(matches!(
            Request::parse(r#"{"cmd": "ping", "future_field": 1, "nested": {"x": []}}"#),
            Ok(Request::Ping)
        ));
        let parsed = Request::parse(
            r#"{"cmd": "submit", "campaign": {"name": "c", "scenarios": []}, "priority": "high"}"#,
        );
        assert!(matches!(parsed, Ok(Request::Submit { .. })));
        assert!(matches!(
            Request::parse(r#"{"cmd": "cancel", "job": "job-1", "force": true}"#),
            Ok(Request::Cancel { job }) if job == "job-1"
        ));
    }

    /// The response side of the same contract: a client that only knows
    /// `ok`/`error` reads a `backoff_refusal` exactly as it read the old
    /// bare refusal, while a hint-aware client finds the new fields.
    #[test]
    fn refusals_stay_readable_by_hint_unaware_clients() {
        let refusal = backoff_refusal("queue full (4 queued, capacity 4)", "queue_full", 1500);
        let line = serde_json::to_string(&refusal);
        let reparsed: Value = serde_json::from_str(&line).expect("refusal line parses");
        assert_eq!(reparsed.get("ok").and_then(Value::as_bool), Some(false));
        assert_eq!(
            reparsed.get("error").and_then(Value::as_str),
            Some("queue full (4 queued, capacity 4)")
        );
        assert_eq!(
            reparsed.get("reason").and_then(Value::as_str),
            Some("queue_full")
        );
        assert_eq!(
            reparsed.get("retry_after_ms").and_then(Value::as_u64),
            Some(1500)
        );
    }
}
