//! The client half of the campaign service protocol: one TCP connection,
//! blocking request/response, plus the streaming `watch` verb.

use std::io::{BufRead, BufReader};
use std::net::TcpStream;

use serde_json::Value;

use crate::protocol::{write_line, Request};
use crate::ServeError;

/// A connected campaign-service client. One connection serves any number
/// of sequential requests; `watch` occupies it until the job terminates.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a daemon at `addr` (e.g. `127.0.0.1:4850`).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Io`] if the connection fails.
    pub fn connect(addr: &str) -> Result<Client, ServeError> {
        let stream = TcpStream::connect(addr)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Sends one request line and reads one response line, surfacing a
    /// daemon refusal (`"ok": false`) as [`ServeError::Remote`].
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] on transport failure (including the daemon
    /// closing the connection), [`ServeError::Protocol`] on a malformed
    /// response line, [`ServeError::Remote`] on refusal.
    pub fn request(&mut self, request: &Request) -> Result<Value, ServeError> {
        write_line(&mut self.writer, &request.to_value())?;
        let response = self.read_value()?;
        Self::require_ok(response)
    }

    fn read_value(&mut self) -> Result<Value, ServeError> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(ServeError::Io("daemon closed the connection".into()));
        }
        serde_json::from_str(line.trim())
            .map_err(|e| ServeError::Protocol(format!("bad response line: {e}")))
    }

    fn require_ok(response: Value) -> Result<Value, ServeError> {
        if response.get("ok").and_then(Value::as_bool) == Some(true) {
            Ok(response)
        } else {
            let message = response
                .get("error")
                .and_then(Value::as_str)
                .unwrap_or("request refused")
                .to_string();
            Err(ServeError::Remote(message))
        }
    }

    /// Liveness probe; the response carries queue depth.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn ping(&mut self) -> Result<Value, ServeError> {
        self.request(&Request::Ping)
    }

    /// Submits a campaign document and returns the assigned job ID.
    ///
    /// # Errors
    ///
    /// See [`Client::request`]; a full queue or invalid campaign comes
    /// back as [`ServeError::Remote`].
    pub fn submit(&mut self, campaign: Value) -> Result<String, ServeError> {
        let response = self.request(&Request::Submit { campaign })?;
        response
            .get("job")
            .and_then(Value::as_str)
            .map(str::to_string)
            .ok_or_else(|| ServeError::Protocol("submit response is missing 'job'".into()))
    }

    /// One job's status (by ID) or the full job listing (`None`).
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn status(&mut self, job: Option<&str>) -> Result<Value, ServeError> {
        self.request(&Request::Status {
            job: job.map(str::to_string),
        })
    }

    /// Cancels a job; the response carries its new state.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn cancel(&mut self, job: &str) -> Result<Value, ServeError> {
        self.request(&Request::Cancel {
            job: job.to_string(),
        })
    }

    /// Fetches the daemon's telemetry snapshot in Prometheus text
    /// exposition format.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn metrics(&mut self) -> Result<String, ServeError> {
        let response = self.request(&Request::Metrics)?;
        response
            .get("metrics")
            .and_then(Value::as_str)
            .map(str::to_string)
            .ok_or_else(|| ServeError::Protocol("metrics response is missing 'metrics'".into()))
    }

    /// Asks the daemon to drain and exit.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn shutdown(&mut self) -> Result<Value, ServeError> {
        self.request(&Request::Shutdown)
    }

    /// Subscribes to a job's event stream: replays its history, then
    /// streams live events into `on_event` until the terminal `"done"`
    /// event, which is also returned.
    ///
    /// # Errors
    ///
    /// See [`Client::request`]; additionally [`ServeError::Io`] if the
    /// stream ends before a terminal event arrives.
    pub fn watch(
        &mut self,
        job: &str,
        mut on_event: impl FnMut(&Value),
    ) -> Result<Value, ServeError> {
        write_line(
            &mut self.writer,
            &Request::Watch {
                job: job.to_string(),
            }
            .to_value(),
        )?;
        Self::require_ok(self.read_value()?)?;
        loop {
            let event = self.read_value()?;
            on_event(&event);
            if event.get("event").and_then(Value::as_str) == Some("done") {
                return Ok(event);
            }
        }
    }
}
