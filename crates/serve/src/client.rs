//! The client half of the campaign service protocol: one TCP connection,
//! blocking request/response, plus the streaming `watch` verb.
//!
//! Every socket operation is bounded: connects race a connect timeout,
//! request/response rounds a read/write timeout, and `watch` a longer
//! idle timeout that the daemon's keepalive pings reset — a hung or
//! half-dead daemon surfaces as [`ServeError::Timeout`] instead of a
//! client that blocks forever. Back-pressure refusals surface as
//! [`ServeError::Busy`] with the daemon's `retry_after_ms` hint, which
//! [`Client::submit_with_retry`] turns into a bounded, capped retry loop.

use std::io::{BufRead, BufReader};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use serde_json::Value;

use crate::protocol::{write_line, Request};
use crate::ServeError;

/// Smallest sleep [`Client::submit_with_retry`] accepts from a hint —
/// tighter would busy-spin against a draining daemon.
const MIN_RETRY_SLEEP: Duration = Duration::from_millis(10);

/// Largest sleep [`Client::submit_with_retry`] accepts from a hint — a
/// daemon estimating minutes of queue delay should not pin the client.
const MAX_RETRY_SLEEP: Duration = Duration::from_millis(5_000);

/// Client-side socket timeouts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClientConfig {
    /// Ceiling on establishing the TCP connection.
    pub connect_timeout: Duration,
    /// Ceiling on each read/write in a request/response round.
    pub io_timeout: Duration,
    /// Ceiling on silence during `watch` — must exceed the daemon's
    /// keepalive ping interval, so only a dead daemon trips it.
    pub watch_idle_timeout: Duration,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            connect_timeout: Duration::from_secs(5),
            io_timeout: Duration::from_secs(10),
            watch_idle_timeout: Duration::from_secs(30),
        }
    }
}

/// A connected campaign-service client. One connection serves any number
/// of sequential requests; `watch` occupies it until the job terminates.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    config: ClientConfig,
}

impl Client {
    /// Connects to a daemon at `addr` (e.g. `127.0.0.1:4850`) with
    /// default timeouts ([`ClientConfig::default`]).
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] if the connection fails, [`ServeError::Timeout`]
    /// if it fails to establish within the connect timeout.
    pub fn connect(addr: &str) -> Result<Client, ServeError> {
        Self::connect_with(addr, ClientConfig::default())
    }

    /// Connects with explicit timeouts.
    ///
    /// # Errors
    ///
    /// See [`Client::connect`].
    pub fn connect_with(addr: &str, config: ClientConfig) -> Result<Client, ServeError> {
        let mut addrs = addr.to_socket_addrs()?;
        let addr = addrs
            .next()
            .ok_or_else(|| ServeError::Io(format!("'{addr}' resolves to no address")))?;
        let stream = TcpStream::connect_timeout(&addr, config.connect_timeout)?;
        stream.set_read_timeout(Some(config.io_timeout))?;
        stream.set_write_timeout(Some(config.io_timeout))?;
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
            config,
        })
    }

    /// Sends one request line and reads one response line, surfacing a
    /// daemon refusal (`"ok": false`) as [`ServeError::Remote`] — or
    /// [`ServeError::Busy`] when the refusal carries a back-pressure
    /// hint (`retry_after_ms`).
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] on transport failure (including the daemon
    /// closing the connection), [`ServeError::Timeout`] when the round
    /// outlasts the configured io timeout, [`ServeError::Protocol`] on a
    /// malformed response line, [`ServeError::Remote`]/[`ServeError::Busy`]
    /// on refusal.
    pub fn request(&mut self, request: &Request) -> Result<Value, ServeError> {
        write_line(&mut self.writer, &request.to_value())?;
        let response = self.read_value()?;
        Self::require_ok(response)
    }

    fn read_value(&mut self) -> Result<Value, ServeError> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(ServeError::Io("daemon closed the connection".into()));
        }
        serde_json::from_str(line.trim())
            .map_err(|e| ServeError::Protocol(format!("bad response line: {e}")))
    }

    fn require_ok(response: Value) -> Result<Value, ServeError> {
        if response.get("ok").and_then(Value::as_bool) == Some(true) {
            return Ok(response);
        }
        let message = response
            .get("error")
            .and_then(Value::as_str)
            .unwrap_or("request refused")
            .to_string();
        match response.get("retry_after_ms").and_then(Value::as_u64) {
            Some(retry_after_ms) => Err(ServeError::Busy {
                message,
                reason: response
                    .get("reason")
                    .and_then(Value::as_str)
                    .unwrap_or("busy")
                    .to_string(),
                retry_after_ms,
            }),
            None => Err(ServeError::Remote(message)),
        }
    }

    /// Liveness probe; the response carries queue depth.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn ping(&mut self) -> Result<Value, ServeError> {
        self.request(&Request::Ping)
    }

    /// Submits a campaign document and returns the assigned job ID.
    ///
    /// # Errors
    ///
    /// See [`Client::request`]; an invalid campaign comes back as
    /// [`ServeError::Remote`], a full queue or draining daemon as
    /// [`ServeError::Busy`].
    pub fn submit(&mut self, campaign: Value) -> Result<String, ServeError> {
        let response = self.request(&Request::Submit { campaign })?;
        response
            .get("job")
            .and_then(Value::as_str)
            .map(str::to_string)
            .ok_or_else(|| ServeError::Protocol("submit response is missing 'job'".into()))
    }

    /// Submits with bounded retries on [`ServeError::Busy`], sleeping
    /// the daemon's `retry_after_ms` hint (clamped to
    /// [10 ms, 5 s]) between attempts. Returns the job ID and the number
    /// of attempts it took.
    ///
    /// # Errors
    ///
    /// The final [`ServeError::Busy`] once `max_attempts` submissions
    /// have been refused; any other error immediately (a hard refusal or
    /// transport failure won't improve with patience).
    pub fn submit_with_retry(
        &mut self,
        campaign: &Value,
        max_attempts: u32,
    ) -> Result<(String, u32), ServeError> {
        let max_attempts = max_attempts.max(1);
        let mut attempt = 0;
        loop {
            attempt += 1;
            match self.submit(campaign.clone()) {
                Ok(job) => return Ok((job, attempt)),
                Err(ServeError::Busy {
                    message,
                    reason,
                    retry_after_ms,
                }) => {
                    if attempt >= max_attempts {
                        return Err(ServeError::Busy {
                            message,
                            reason,
                            retry_after_ms,
                        });
                    }
                    let hint = Duration::from_millis(retry_after_ms);
                    std::thread::sleep(hint.clamp(MIN_RETRY_SLEEP, MAX_RETRY_SLEEP));
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// One job's status (by ID) or the full job listing (`None`).
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn status(&mut self, job: Option<&str>) -> Result<Value, ServeError> {
        self.request(&Request::Status {
            job: job.map(str::to_string),
        })
    }

    /// Cancels a job; the response carries its new state.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn cancel(&mut self, job: &str) -> Result<Value, ServeError> {
        self.request(&Request::Cancel {
            job: job.to_string(),
        })
    }

    /// Fetches the daemon's telemetry snapshot in Prometheus text
    /// exposition format.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn metrics(&mut self) -> Result<String, ServeError> {
        let response = self.request(&Request::Metrics)?;
        response
            .get("metrics")
            .and_then(Value::as_str)
            .map(str::to_string)
            .ok_or_else(|| ServeError::Protocol("metrics response is missing 'metrics'".into()))
    }

    /// Asks the daemon to drain and exit.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn shutdown(&mut self) -> Result<Value, ServeError> {
        self.request(&Request::Shutdown)
    }

    /// Subscribes to a job's event stream: replays its history, then
    /// streams live events into `on_event` until the terminal `"done"`
    /// event, which is also returned.
    ///
    /// A long-running job can be legitimately silent for minutes, so the
    /// watch runs under the longer `watch_idle_timeout`; the daemon's
    /// periodic `"ping"` keepalives (swallowed here, never passed to
    /// `on_event`) reset it, so the timeout only fires when the daemon
    /// is actually gone.
    ///
    /// # Errors
    ///
    /// See [`Client::request`]; additionally [`ServeError::Io`] if the
    /// stream ends, or [`ServeError::Timeout`] if it goes silent, before
    /// a terminal event arrives.
    pub fn watch(
        &mut self,
        job: &str,
        mut on_event: impl FnMut(&Value),
    ) -> Result<Value, ServeError> {
        write_line(
            &mut self.writer,
            &Request::Watch {
                job: job.to_string(),
            }
            .to_value(),
        )?;
        Self::require_ok(self.read_value()?)?;
        let stream = self.reader.get_ref();
        stream.set_read_timeout(Some(self.config.watch_idle_timeout))?;
        let outcome = loop {
            let event = match self.read_value() {
                Ok(event) => event,
                Err(e) => break Err(e),
            };
            match event.get("event").and_then(Value::as_str) {
                Some("ping") => continue,
                Some("done") => {
                    on_event(&event);
                    break Ok(event);
                }
                _ => on_event(&event),
            }
        };
        // Restore the request/response timeout for whatever comes next
        // on this connection, even when the watch itself failed.
        self.reader
            .get_ref()
            .set_read_timeout(Some(self.config.io_timeout))?;
        outcome
    }
}
