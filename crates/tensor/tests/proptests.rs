//! Property-based tests for tensor invariants.

use proptest::prelude::*;
use tensor::{im2col, outer, Conv2dSpec, Matmul, Shape, Tensor};

fn small_matrix() -> impl Strategy<Value = Tensor> {
    (1usize..6, 1usize..6).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-10.0f32..10.0, r * c)
            .prop_map(move |data| Tensor::from_vec(data, &[r, c]).expect("length matches"))
    })
}

proptest! {
    #[test]
    fn shape_len_is_product(dims in proptest::collection::vec(1usize..6, 1..4)) {
        let s = Shape::new(&dims);
        prop_assert_eq!(s.len(), dims.iter().product::<usize>());
        prop_assert_eq!(s.rank(), dims.len());
    }

    #[test]
    fn strides_decrease_row_major(dims in proptest::collection::vec(1usize..6, 1..4)) {
        let strides = Shape::new(&dims).strides();
        for w in strides.windows(2) {
            prop_assert!(w[0] >= w[1]);
        }
        prop_assert_eq!(*strides.last().unwrap(), 1);
    }

    #[test]
    fn add_commutes(a in small_matrix()) {
        let b = a.map(|v| v * 0.5 - 1.0);
        let ab = a.add(&b);
        let ba = b.add(&a);
        prop_assert_eq!(ab.as_slice(), ba.as_slice());
    }

    #[test]
    fn sub_self_is_zero(a in small_matrix()) {
        prop_assert!(a.sub(&a).as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn scale_is_linear_in_sum(a in small_matrix(), k in -4.0f32..4.0) {
        let scaled_sum = a.scale(k).sum();
        prop_assert!((scaled_sum - k * a.sum()).abs() < 1e-2 * (1.0 + a.sum().abs() * k.abs()));
    }

    #[test]
    fn transpose_is_involution(a in small_matrix()) {
        let tt = a.transposed().transposed();
        prop_assert_eq!(tt.as_slice(), a.as_slice());
        prop_assert_eq!(tt.dims(), a.dims());
    }

    #[test]
    fn matmul_identity_right(a in small_matrix()) {
        let i = Tensor::eye(a.dims()[1]);
        let out = a.matmul(&i);
        for (x, y) in out.as_slice().iter().zip(a.as_slice()) {
            prop_assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn matmul_tn_matches_transpose(a in small_matrix(), seed in 0u64..100) {
        // b with compatible leading dim.
        let k = a.dims()[0];
        let n = 1 + (seed as usize % 4);
        let b = Tensor::from_vec(
            (0..k * n).map(|i| ((i as f32) + seed as f32).sin()).collect(),
            &[k, n],
        ).unwrap();
        let tn = a.matmul_tn(&b);
        let explicit = a.transposed().matmul(&b);
        for (x, y) in tn.as_slice().iter().zip(explicit.as_slice()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn softmax_rows_are_distributions(a in small_matrix()) {
        let s = a.softmax_rows();
        for r in 0..s.dims()[0] {
            let row = s.row(r);
            prop_assert!(row.iter().all(|&v| (0.0..=1.0).contains(&v)));
            let sum: f32 = row.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn outer_rank_one_structure(u in proptest::collection::vec(-5.0f32..5.0, 1..5),
                                v in proptest::collection::vec(-5.0f32..5.0, 1..5)) {
        let o = outer(&Tensor::from_slice(&u), &Tensor::from_slice(&v));
        prop_assert_eq!(o.dims(), &[u.len(), v.len()]);
        for (i, &ui) in u.iter().enumerate() {
            for (j, &vj) in v.iter().enumerate() {
                prop_assert!((o.at(&[i, j]) - ui * vj).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn im2col_preserves_energy_without_padding_stride_kernel1(
        vals in proptest::collection::vec(-3.0f32..3.0, 9)
    ) {
        // 1x1 kernel im2col is a bijection on elements.
        let img = Tensor::from_vec(vals.clone(), &[1, 3, 3]).unwrap();
        let spec = Conv2dSpec::new(1, 1, 1, 1, 0);
        let col = im2col(&img, &spec, 3, 3);
        prop_assert_eq!(col.as_slice(), img.as_slice());
    }

    #[test]
    fn argmax_rows_is_row_maximum(a in small_matrix()) {
        let idx = a.argmax_rows();
        for (r, &i) in idx.iter().enumerate() {
            let row = a.row(r);
            prop_assert!(row.iter().all(|&v| v <= row[i]));
        }
    }
}
