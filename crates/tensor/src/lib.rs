//! Dense `f32` N-dimensional tensors for the BayesFT reproduction.
//!
//! This crate is the numerical substrate under [`nn`](https://docs.rs)-style
//! neural-network layers: a row-major, always-contiguous tensor with the
//! handful of operations deep-learning training actually needs — elementwise
//! arithmetic with scalar and same-shape operands, 2-D matrix products (plus
//! the transposed variants backpropagation wants), `im2col`-based 2-D
//! convolution, max/average pooling, and axis reductions.
//!
//! The design intentionally trades generality for predictability:
//!
//! * storage is a contiguous `Vec<f32>` in row-major order — no strides, no
//!   views, no copy-on-write;
//! * shape errors are programming errors and panic with a descriptive
//!   message (the pattern used by `ndarray`), while fallible constructors
//!   return [`TensorError`];
//! * randomness is always injected through an explicit [`rand::Rng`] so every
//!   experiment in the workspace is reproducible from a seed.
//!
//! # Example
//!
//! ```
//! use tensor::{Matmul, Tensor};
//!
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
//! let b = Tensor::eye(2);
//! let c = a.matmul(&b);
//! assert_eq!(c.as_slice(), a.as_slice());
//! # Ok::<(), tensor::TensorError>(())
//! ```

mod conv;
mod error;
mod init;
mod linalg;
mod ops;
mod pool;
mod shape;
mod tensor;

pub use conv::{col2im, col2im_into, im2col, im2col_into, Conv2dSpec};
pub use error::TensorError;
pub use linalg::{gemm_into, gemm_nt_into, gemm_tn_into, outer, Matmul};
pub use ops::nan_low_cmp;
pub use pool::{
    avg_pool2d, avg_pool2d_backward, avg_pool2d_backward_into, avg_pool2d_into, max_pool2d,
    max_pool2d_backward, max_pool2d_into, Pool2dSpec,
};
pub use shape::{Shape, MAX_RANK};
pub use tensor::Tensor;

/// Convenience result alias for fallible tensor construction.
pub type Result<T> = std::result::Result<T, TensorError>;
