//! Rank-2 matrix products, including the transposed variants used by
//! backpropagation.

use crate::Tensor;

/// Matrix-product operations on rank-2 tensors.
///
/// Implemented for [`Tensor`]; the trait exists so downstream crates can
/// write generic code over alternative matrix backends in tests.
pub trait Matmul {
    /// `self @ other` for `[m, k] x [k, n] -> [m, n]`.
    fn matmul(&self, other: &Self) -> Self;
    /// `selfᵀ @ other` for `[k, m] x [k, n] -> [m, n]` without materializing
    /// the transpose.
    fn matmul_tn(&self, other: &Self) -> Self;
    /// `self @ otherᵀ` for `[m, k] x [n, k] -> [m, n]` without materializing
    /// the transpose.
    fn matmul_nt(&self, other: &Self) -> Self;
}

impl Matmul for Tensor {
    /// # Panics
    ///
    /// Panics if either operand is not rank 2 or the inner dimensions differ.
    fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 2, "matmul lhs must be rank 2");
        assert_eq!(other.rank(), 2, "matmul rhs must be rank 2");
        let (m, k) = (self.dims()[0], self.dims()[1]);
        let (k2, n) = (other.dims()[0], other.dims()[1]);
        assert_eq!(
            k,
            k2,
            "matmul inner dimension mismatch: {} vs {}",
            self.shape(),
            other.shape()
        );
        let mut out = Tensor::zeros(&[m, n]);
        let a = self.as_slice();
        let b = other.as_slice();
        let c = out.as_mut_slice();
        // i-k-j ordering keeps the inner loop streaming over contiguous rows.
        for i in 0..m {
            for kk in 0..k {
                let aik = a[i * k + kk];
                if aik == 0.0 {
                    continue;
                }
                let brow = &b[kk * n..(kk + 1) * n];
                let crow = &mut c[i * n..(i + 1) * n];
                for (cv, &bv) in crow.iter_mut().zip(brow) {
                    *cv += aik * bv;
                }
            }
        }
        out
    }

    /// # Panics
    ///
    /// Panics if either operand is not rank 2 or the shared leading
    /// dimensions differ.
    fn matmul_tn(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 2, "matmul_tn lhs must be rank 2");
        assert_eq!(other.rank(), 2, "matmul_tn rhs must be rank 2");
        let (k, m) = (self.dims()[0], self.dims()[1]);
        let (k2, n) = (other.dims()[0], other.dims()[1]);
        assert_eq!(k, k2, "matmul_tn leading dimension mismatch");
        let mut out = Tensor::zeros(&[m, n]);
        let a = self.as_slice();
        let b = other.as_slice();
        let c = out.as_mut_slice();
        for kk in 0..k {
            let arow = &a[kk * m..(kk + 1) * m];
            let brow = &b[kk * n..(kk + 1) * n];
            for (i, &av) in arow.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let crow = &mut c[i * n..(i + 1) * n];
                for (cv, &bv) in crow.iter_mut().zip(brow) {
                    *cv += av * bv;
                }
            }
        }
        out
    }

    /// # Panics
    ///
    /// Panics if either operand is not rank 2 or the trailing dimensions
    /// differ.
    fn matmul_nt(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 2, "matmul_nt lhs must be rank 2");
        assert_eq!(other.rank(), 2, "matmul_nt rhs must be rank 2");
        let (m, k) = (self.dims()[0], self.dims()[1]);
        let (n, k2) = (other.dims()[0], other.dims()[1]);
        assert_eq!(k, k2, "matmul_nt trailing dimension mismatch");
        let mut out = Tensor::zeros(&[m, n]);
        let a = self.as_slice();
        let b = other.as_slice();
        let c = out.as_mut_slice();
        for i in 0..m {
            let arow = &a[i * k..(i + 1) * k];
            for j in 0..n {
                let brow = &b[j * k..(j + 1) * k];
                let mut acc = 0.0;
                for (&av, &bv) in arow.iter().zip(brow) {
                    acc += av * bv;
                }
                c[i * n + j] = acc;
            }
        }
        out
    }
}

/// Outer product of two rank-1 tensors: `[m] x [n] -> [m, n]`.
///
/// # Panics
///
/// Panics if either operand is not rank 1.
///
/// # Example
///
/// ```
/// use tensor::{outer, Tensor};
///
/// let u = Tensor::from_slice(&[1.0, 2.0]);
/// let v = Tensor::from_slice(&[3.0, 4.0]);
/// assert_eq!(outer(&u, &v).as_slice(), &[3.0, 4.0, 6.0, 8.0]);
/// ```
pub fn outer(u: &Tensor, v: &Tensor) -> Tensor {
    assert_eq!(u.rank(), 1, "outer lhs must be rank 1");
    assert_eq!(v.rank(), 1, "outer rhs must be rank 1");
    let (m, n) = (u.len(), v.len());
    let mut out = Tensor::zeros(&[m, n]);
    for i in 0..m {
        let ui = u.as_slice()[i];
        let row = &mut out.as_mut_slice()[i * n..(i + 1) * n];
        for (o, &vv) in row.iter_mut().zip(v.as_slice()) {
            *o = ui * vv;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let b = Tensor::from_vec(vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]).unwrap();
        let c = a.matmul(&b);
        assert_eq!(c.dims(), &[2, 2]);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn identity_is_neutral() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        assert_eq!(a.matmul(&Tensor::eye(2)).as_slice(), a.as_slice());
        assert_eq!(Tensor::eye(2).matmul(&a).as_slice(), a.as_slice());
    }

    #[test]
    fn transposed_variants_agree_with_explicit_transpose() {
        let a = Tensor::from_vec(vec![1.0, -2.0, 0.5, 3.0, 4.0, -1.0], &[3, 2]).unwrap();
        let b = Tensor::from_vec(vec![2.0, 1.0, 0.0, -1.0, 1.5, 2.5], &[3, 2]).unwrap();
        let tn = a.matmul_tn(&b);
        let expected = a.transposed().matmul(&b);
        for (x, y) in tn.as_slice().iter().zip(expected.as_slice()) {
            assert!((x - y).abs() < 1e-6);
        }

        let c = Tensor::from_vec(vec![1.0, 0.0, 2.0, -1.0], &[2, 2]).unwrap();
        let d = Tensor::from_vec(vec![2.0, 1.0, 0.0, -1.0, 1.5, 2.5], &[3, 2]).unwrap();
        let nt = c.matmul_nt(&d);
        let expected = c.matmul(&d.transposed());
        for (x, y) in nt.as_slice().iter().zip(expected.as_slice()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn matmul_rejects_mismatched_inner_dims() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[2, 2]);
        let _ = a.matmul(&b);
    }

    #[test]
    fn outer_product() {
        let u = Tensor::from_slice(&[1.0, 2.0, 3.0]);
        let v = Tensor::from_slice(&[4.0, 5.0]);
        let o = outer(&u, &v);
        assert_eq!(o.dims(), &[3, 2]);
        assert_eq!(o.at(&[2, 1]), 15.0);
    }
}
