//! Rank-2 matrix products, including the transposed variants used by
//! backpropagation and the allocation-free `_into` variants used by the
//! Monte-Carlo evaluation hot path.
//!
//! All variants share the same blocked microkernels, so an `_into` product
//! is bit-identical to its allocating twin. Each output element accumulates
//! its `k` terms in the same (sequential) order in every variant and in the
//! unrolled and scalar tails alike — blocking only changes *which* elements
//! are in flight, never the order of additions within one element — so
//! results are reproducible down to the last ULP regardless of entry point.

use crate::Tensor;

/// Inner-loop unroll width of the matmul microkernels.
const UNROLL: usize = 8;

/// Whether skipping `a == 0.0` terms is numerically transparent.
///
/// IEEE-754 addition of `±0.0 · b` to a partial sum is a no-op only when
/// `b` is finite (and the partial sum is not `-0.0`, which row-major
/// accumulation from a `+0.0` start never produces). When `b` contains a
/// NaN or ±∞, `0.0 · b` is NaN and **must** be propagated — a zeroed
/// weight or activation would otherwise mask a non-finite operand, hiding
/// e.g. an overflowing activation under stuck-at-zero faults. The skip is
/// therefore enabled only when every element of `b` is finite.
///
/// The O(len) scan is evaluated lazily via [`ZeroSkip`] — a product with
/// a zero-free left operand never pays for it.
#[inline]
fn zero_skip_is_safe(b: &[f32]) -> bool {
    b.iter().all(|v| v.is_finite())
}

/// Lazily memoized [`zero_skip_is_safe`] verdict for one kernel call.
#[derive(Default)]
struct ZeroSkip(Option<bool>);

impl ZeroSkip {
    /// Whether the zero-skip may fire, scanning `b` on first use only.
    #[inline]
    fn allowed(&mut self, b: &[f32]) -> bool {
        *self.0.get_or_insert_with(|| zero_skip_is_safe(b))
    }
}

/// `c[i·n + j] += s · b[j]`, 8-wide unrolled.
///
/// Each `c[j]` receives exactly one fused term per call, so per-element
/// accumulation order is identical to the scalar loop.
#[inline]
fn axpy_row(s: f32, b: &[f32], c: &mut [f32]) {
    let mut cc = c.chunks_exact_mut(UNROLL);
    let mut bc = b.chunks_exact(UNROLL);
    for (cv, bv) in (&mut cc).zip(&mut bc) {
        cv[0] += s * bv[0];
        cv[1] += s * bv[1];
        cv[2] += s * bv[2];
        cv[3] += s * bv[3];
        cv[4] += s * bv[4];
        cv[5] += s * bv[5];
        cv[6] += s * bv[6];
        cv[7] += s * bv[7];
    }
    for (cv, &bv) in cc.into_remainder().iter_mut().zip(bc.remainder()) {
        *cv += s * bv;
    }
}

/// `C = A·B` on raw row-major slices: `[m, k] x [k, n] -> [m, n]`.
///
/// `c` is zeroed before accumulation, so recycled scratch buffers can be
/// passed directly. This is the kernel behind both [`Matmul::matmul`] and
/// [`Matmul::matmul_into`]; layers that need to run on reshaped views
/// (e.g. a dense layer folding `[N, ...]` input to `[N, features]`) can
/// call it without materializing a rank-2 tensor.
///
/// # Panics
///
/// Panics if slice lengths disagree with `m`, `k`, `n`.
pub fn gemm_into(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    let _t = telemetry::Timer::start(telemetry::duration_histogram!("tensor_gemm_seconds"));
    assert_eq!(a.len(), m * k, "gemm_into lhs length mismatch");
    assert_eq!(b.len(), k * n, "gemm_into rhs length mismatch");
    assert_eq!(c.len(), m * n, "gemm_into output length mismatch");
    c.fill(0.0);
    let mut skip = ZeroSkip::default();
    // i-k-j ordering keeps the inner loop streaming over contiguous rows.
    for i in 0..m {
        for kk in 0..k {
            let aik = a[i * k + kk];
            if aik == 0.0 && skip.allowed(b) {
                continue;
            }
            axpy_row(aik, &b[kk * n..(kk + 1) * n], &mut c[i * n..(i + 1) * n]);
        }
    }
}

/// `C = Aᵀ·B` on raw row-major slices: `[k, m] x [k, n] -> [m, n]`.
///
/// See [`gemm_into`] for zeroing and panic behaviour.
pub fn gemm_tn_into(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    let _t = telemetry::Timer::start(telemetry::duration_histogram!("tensor_gemm_seconds"));
    assert_eq!(a.len(), k * m, "gemm_tn_into lhs length mismatch");
    assert_eq!(b.len(), k * n, "gemm_tn_into rhs length mismatch");
    assert_eq!(c.len(), m * n, "gemm_tn_into output length mismatch");
    c.fill(0.0);
    let mut skip = ZeroSkip::default();
    for kk in 0..k {
        let arow = &a[kk * m..(kk + 1) * m];
        let brow = &b[kk * n..(kk + 1) * n];
        for (i, &av) in arow.iter().enumerate() {
            if av == 0.0 && skip.allowed(b) {
                continue;
            }
            axpy_row(av, brow, &mut c[i * n..(i + 1) * n]);
        }
    }
}

/// `C = A·Bᵀ` on raw row-major slices: `[m, k] x [n, k] -> [m, n]`.
///
/// See [`gemm_into`] for zeroing and panic behaviour. Output elements are
/// independent dot products, each with a single sequential accumulator,
/// preserving bit-exact summation order.
///
/// Unlike the `nn`/`tn` kernels there is no zero-skip here: in this
/// layout a skip would save one fused multiply-add (not a whole row) at
/// the price of a compare in the innermost loop of every dense product.
/// The variants still agree bitwise — the `nn`/`tn` skip only fires when
/// it is numerically transparent.
pub fn gemm_nt_into(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    let _t = telemetry::Timer::start(telemetry::duration_histogram!("tensor_gemm_seconds"));
    assert_eq!(a.len(), m * k, "gemm_nt_into lhs length mismatch");
    assert_eq!(b.len(), n * k, "gemm_nt_into rhs length mismatch");
    assert_eq!(c.len(), m * n, "gemm_nt_into output length mismatch");
    c.fill(0.0);
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        let crow = &mut c[i * n..(i + 1) * n];
        for j in 0..n {
            let brow = &b[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (&av, &bv) in arow.iter().zip(brow) {
                acc += av * bv;
            }
            crow[j] = acc;
        }
    }
}

/// Matrix-product operations on rank-2 tensors.
///
/// Implemented for [`Tensor`]; the trait exists so downstream crates can
/// write generic code over alternative matrix backends in tests. The
/// `_into` variants write into a caller-provided output tensor of the
/// correct shape, allowing scratch buffers to be reused across calls; they
/// are bit-identical to the allocating variants.
pub trait Matmul {
    /// `self @ other` for `[m, k] x [k, n] -> [m, n]`.
    fn matmul(&self, other: &Self) -> Self;
    /// `selfᵀ @ other` for `[k, m] x [k, n] -> [m, n]` without materializing
    /// the transpose.
    fn matmul_tn(&self, other: &Self) -> Self;
    /// `self @ otherᵀ` for `[m, k] x [n, k] -> [m, n]` without materializing
    /// the transpose.
    fn matmul_nt(&self, other: &Self) -> Self;
    /// [`Matmul::matmul`] writing into `out` (shape `[m, n]`), overwriting
    /// its contents without allocating.
    fn matmul_into(&self, other: &Self, out: &mut Self);
    /// [`Matmul::matmul_tn`] writing into `out` (shape `[m, n]`).
    fn matmul_tn_into(&self, other: &Self, out: &mut Self);
    /// [`Matmul::matmul_nt`] writing into `out` (shape `[m, n]`).
    fn matmul_nt_into(&self, other: &Self, out: &mut Self);
}

/// Validates rank-2 operands and returns `(m, k, n)` for the `nn` product.
fn nn_dims(a: &Tensor, b: &Tensor) -> (usize, usize, usize) {
    assert_eq!(a.rank(), 2, "matmul lhs must be rank 2");
    assert_eq!(b.rank(), 2, "matmul rhs must be rank 2");
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let (k2, n) = (b.dims()[0], b.dims()[1]);
    assert_eq!(
        k,
        k2,
        "matmul inner dimension mismatch: {} vs {}",
        a.shape(),
        b.shape()
    );
    (m, k, n)
}

fn tn_dims(a: &Tensor, b: &Tensor) -> (usize, usize, usize) {
    assert_eq!(a.rank(), 2, "matmul_tn lhs must be rank 2");
    assert_eq!(b.rank(), 2, "matmul_tn rhs must be rank 2");
    let (k, m) = (a.dims()[0], a.dims()[1]);
    let (k2, n) = (b.dims()[0], b.dims()[1]);
    assert_eq!(k, k2, "matmul_tn leading dimension mismatch");
    (m, k, n)
}

fn nt_dims(a: &Tensor, b: &Tensor) -> (usize, usize, usize) {
    assert_eq!(a.rank(), 2, "matmul_nt lhs must be rank 2");
    assert_eq!(b.rank(), 2, "matmul_nt rhs must be rank 2");
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let (n, k2) = (b.dims()[0], b.dims()[1]);
    assert_eq!(k, k2, "matmul_nt trailing dimension mismatch");
    (m, k, n)
}

fn check_out(out: &Tensor, m: usize, n: usize) {
    assert_eq!(
        out.dims(),
        &[m, n],
        "matmul output shape mismatch: {} vs [{m}, {n}]",
        out.shape()
    );
}

impl Matmul for Tensor {
    /// # Panics
    ///
    /// Panics if either operand is not rank 2 or the inner dimensions differ.
    fn matmul(&self, other: &Tensor) -> Tensor {
        let (m, k, n) = nn_dims(self, other);
        let mut out = Tensor::zeros(&[m, n]);
        gemm_into(
            self.as_slice(),
            other.as_slice(),
            out.as_mut_slice(),
            m,
            k,
            n,
        );
        out
    }

    /// # Panics
    ///
    /// Panics if either operand is not rank 2 or the shared leading
    /// dimensions differ.
    fn matmul_tn(&self, other: &Tensor) -> Tensor {
        let (m, k, n) = tn_dims(self, other);
        let mut out = Tensor::zeros(&[m, n]);
        gemm_tn_into(
            self.as_slice(),
            other.as_slice(),
            out.as_mut_slice(),
            m,
            k,
            n,
        );
        out
    }

    /// # Panics
    ///
    /// Panics if either operand is not rank 2 or the trailing dimensions
    /// differ.
    fn matmul_nt(&self, other: &Tensor) -> Tensor {
        let (m, k, n) = nt_dims(self, other);
        let mut out = Tensor::zeros(&[m, n]);
        gemm_nt_into(
            self.as_slice(),
            other.as_slice(),
            out.as_mut_slice(),
            m,
            k,
            n,
        );
        out
    }

    /// # Panics
    ///
    /// Panics like [`Matmul::matmul`], plus if `out` is not `[m, n]`.
    fn matmul_into(&self, other: &Tensor, out: &mut Tensor) {
        let (m, k, n) = nn_dims(self, other);
        check_out(out, m, n);
        gemm_into(
            self.as_slice(),
            other.as_slice(),
            out.as_mut_slice(),
            m,
            k,
            n,
        );
    }

    /// # Panics
    ///
    /// Panics like [`Matmul::matmul_tn`], plus if `out` is not `[m, n]`.
    fn matmul_tn_into(&self, other: &Tensor, out: &mut Tensor) {
        let (m, k, n) = tn_dims(self, other);
        check_out(out, m, n);
        gemm_tn_into(
            self.as_slice(),
            other.as_slice(),
            out.as_mut_slice(),
            m,
            k,
            n,
        );
    }

    /// # Panics
    ///
    /// Panics like [`Matmul::matmul_nt`], plus if `out` is not `[m, n]`.
    fn matmul_nt_into(&self, other: &Tensor, out: &mut Tensor) {
        let (m, k, n) = nt_dims(self, other);
        check_out(out, m, n);
        gemm_nt_into(
            self.as_slice(),
            other.as_slice(),
            out.as_mut_slice(),
            m,
            k,
            n,
        );
    }
}

/// Outer product of two rank-1 tensors: `[m] x [n] -> [m, n]`.
///
/// # Panics
///
/// Panics if either operand is not rank 1.
///
/// # Example
///
/// ```
/// use tensor::{outer, Tensor};
///
/// let u = Tensor::from_slice(&[1.0, 2.0]);
/// let v = Tensor::from_slice(&[3.0, 4.0]);
/// assert_eq!(outer(&u, &v).as_slice(), &[3.0, 4.0, 6.0, 8.0]);
/// ```
pub fn outer(u: &Tensor, v: &Tensor) -> Tensor {
    assert_eq!(u.rank(), 1, "outer lhs must be rank 1");
    assert_eq!(v.rank(), 1, "outer rhs must be rank 1");
    let (m, n) = (u.len(), v.len());
    let mut out = Tensor::zeros(&[m, n]);
    for i in 0..m {
        let ui = u.as_slice()[i];
        let row = &mut out.as_mut_slice()[i * n..(i + 1) * n];
        for (o, &vv) in row.iter_mut().zip(v.as_slice()) {
            *o = ui * vv;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let b = Tensor::from_vec(vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]).unwrap();
        let c = a.matmul(&b);
        assert_eq!(c.dims(), &[2, 2]);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn identity_is_neutral() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        assert_eq!(a.matmul(&Tensor::eye(2)).as_slice(), a.as_slice());
        assert_eq!(Tensor::eye(2).matmul(&a).as_slice(), a.as_slice());
    }

    #[test]
    fn transposed_variants_agree_with_explicit_transpose() {
        let a = Tensor::from_vec(vec![1.0, -2.0, 0.5, 3.0, 4.0, -1.0], &[3, 2]).unwrap();
        let b = Tensor::from_vec(vec![2.0, 1.0, 0.0, -1.0, 1.5, 2.5], &[3, 2]).unwrap();
        let tn = a.matmul_tn(&b);
        let expected = a.transposed().matmul(&b);
        for (x, y) in tn.as_slice().iter().zip(expected.as_slice()) {
            assert!((x - y).abs() < 1e-6);
        }

        let c = Tensor::from_vec(vec![1.0, 0.0, 2.0, -1.0], &[2, 2]).unwrap();
        let d = Tensor::from_vec(vec![2.0, 1.0, 0.0, -1.0, 1.5, 2.5], &[3, 2]).unwrap();
        let nt = c.matmul_nt(&d);
        let expected = c.matmul(&d.transposed());
        for (x, y) in nt.as_slice().iter().zip(expected.as_slice()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn matmul_rejects_mismatched_inner_dims() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[2, 2]);
        let _ = a.matmul(&b);
    }

    #[test]
    fn into_variants_are_bit_identical_to_allocating_ones() {
        // Dimensions straddling the unroll width exercise main + tail loops.
        for (m, k, n) in [(1, 1, 1), (3, 5, 9), (8, 8, 8), (7, 17, 13)] {
            let a = Tensor::from_vec(
                (0..m * k)
                    .map(|i| ((i * 37 % 19) as f32 - 9.0) * 0.37)
                    .collect(),
                &[m, k],
            )
            .unwrap();
            let b = Tensor::from_vec(
                (0..k * n)
                    .map(|i| ((i * 23 % 17) as f32 - 8.0) * 0.59)
                    .collect(),
                &[k, n],
            )
            .unwrap();
            let mut out = Tensor::full(&[m, n], f32::NAN); // into() must fully overwrite
            a.matmul_into(&b, &mut out);
            assert_eq!(out.as_slice(), a.matmul(&b).as_slice(), "nn {m}x{k}x{n}");

            let at = a.transposed(); // [k, m] stored transposed
            at.matmul_tn_into(&b, &mut out);
            assert_eq!(
                out.as_slice(),
                at.matmul_tn(&b).as_slice(),
                "tn {m}x{k}x{n}"
            );

            let bt = b.transposed(); // [n, k]
            a.matmul_nt_into(&bt, &mut out);
            assert_eq!(
                out.as_slice(),
                a.matmul_nt(&bt).as_slice(),
                "nt {m}x{k}x{n}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "output shape mismatch")]
    fn matmul_into_rejects_wrong_output_shape() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[3, 4]);
        let mut out = Tensor::zeros(&[2, 3]);
        a.matmul_into(&b, &mut out);
    }

    /// The three variants must agree on non-finite propagation: a zero in
    /// the left operand multiplied by NaN/±∞ in the right is NaN and must
    /// not be skipped away (IEEE `0.0 · NaN = NaN`).
    #[test]
    fn zero_times_non_finite_propagates_in_all_variants() {
        for bad in [f32::NAN, f32::INFINITY, f32::NEG_INFINITY] {
            // a has an exact zero in the position that meets the bad value.
            let a = Tensor::from_vec(vec![0.0, 1.0], &[1, 2]).unwrap();
            let b = Tensor::from_vec(vec![bad, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
            let nn = a.matmul(&b);
            assert!(nn.as_slice()[0].is_nan(), "matmul masked 0·{bad}");

            let at = a.transposed();
            let tn = at.matmul_tn(&b);
            assert!(tn.as_slice()[0].is_nan(), "matmul_tn masked 0·{bad}");

            let bt = b.transposed();
            let nt = a.matmul_nt(&bt);
            assert!(nt.as_slice()[0].is_nan(), "matmul_nt masked 0·{bad}");
        }
    }

    /// With a non-finite right operand the variants must agree elementwise
    /// (NaN positions included) — previously `matmul`/`matmul_tn` skipped
    /// zero terms unconditionally while `matmul_nt` did not.
    #[test]
    fn variants_agree_elementwise_under_non_finite_inputs() {
        let a = Tensor::from_vec(vec![0.0, 1.0, -2.0, 0.0, 0.5, 0.0], &[2, 3]).unwrap();
        let b =
            Tensor::from_vec(vec![f32::NAN, 2.0, f32::INFINITY, -1.0, 0.0, 3.0], &[3, 2]).unwrap();
        let nn = a.matmul(&b);
        let tn = a.transposed().matmul_tn(&b);
        let nt = a.matmul_nt(&b.transposed());
        for ((&x, &y), &z) in nn.as_slice().iter().zip(tn.as_slice()).zip(nt.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits(), "nn vs tn disagree");
            assert_eq!(x.to_bits(), z.to_bits(), "nn vs nt disagree");
        }
    }

    /// NaN/±∞ in the *left* operand flows through the product too (no skip
    /// triggers: NaN ≠ 0.0).
    #[test]
    fn non_finite_lhs_propagates() {
        let a = Tensor::from_vec(vec![f32::NAN, 0.0], &[1, 2]).unwrap();
        let b = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        assert!(a.matmul(&b).as_slice().iter().all(|v| v.is_nan()));
    }

    /// The zero-skip stays active for finite inputs, and skipping is
    /// bit-transparent: a sparse product equals its dense recomputation.
    #[test]
    fn zero_skip_is_bit_transparent_for_finite_inputs() {
        let a = Tensor::from_vec(
            (0..6 * 9)
                .map(|i| {
                    if i % 3 == 0 {
                        0.0
                    } else {
                        (i as f32 * 0.31).sin()
                    }
                })
                .collect(),
            &[6, 9],
        )
        .unwrap();
        let b = Tensor::from_vec(
            (0..9 * 11).map(|i| (i as f32 * 0.17).cos()).collect(),
            &[9, 11],
        )
        .unwrap();
        let fast = a.matmul(&b);
        // Dense reference: same loop order, no skip.
        let (m, k, n) = (6, 9, 11);
        let mut dense = vec![0.0f32; m * n];
        for i in 0..m {
            for kk in 0..k {
                let aik = a.as_slice()[i * k + kk];
                for j in 0..n {
                    dense[i * n + j] += aik * b.as_slice()[kk * n + j];
                }
            }
        }
        for (x, y) in fast.as_slice().iter().zip(&dense) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn gemm_slices_handle_non_rank2_views() {
        // A [2, 2, 2] batch folded to [4, 2] without reshaping.
        let a: Vec<f32> = (0..8).map(|i| i as f32).collect();
        let b = [1.0f32, 0.0, 0.0, 1.0];
        let mut c = vec![f32::NAN; 8];
        gemm_into(&a, &b, &mut c, 4, 2, 2);
        assert_eq!(c, a);
    }

    #[test]
    fn outer_product() {
        let u = Tensor::from_slice(&[1.0, 2.0, 3.0]);
        let v = Tensor::from_slice(&[4.0, 5.0]);
        let o = outer(&u, &v);
        assert_eq!(o.dims(), &[3, 2]);
        assert_eq!(o.at(&[2, 1]), 15.0);
    }
}
