//! Random tensor fills. All randomness flows through an explicit
//! [`rand::Rng`] so experiments are reproducible from a seed.

use rand::Rng;

use crate::Tensor;

impl Tensor {
    /// Tensor with elements drawn uniformly from `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn rand_uniform(dims: &[usize], lo: f32, hi: f32, rng: &mut impl Rng) -> Tensor {
        assert!(lo < hi, "uniform bounds must satisfy lo < hi");
        let mut t = Tensor::zeros(dims);
        t.as_mut_slice()
            .iter_mut()
            .for_each(|v| *v = rng.gen_range(lo..hi));
        t
    }

    /// Tensor with standard-normal elements scaled by `std` around `mean`
    /// (Box–Muller).
    pub fn randn(dims: &[usize], mean: f32, std: f32, rng: &mut impl Rng) -> Tensor {
        let mut t = Tensor::zeros(dims);
        t.as_mut_slice()
            .iter_mut()
            .for_each(|v| *v = mean + std * standard_normal(rng));
        t
    }

    /// Xavier/Glorot uniform initialization for a weight tensor with the
    /// given fan-in and fan-out (the paper's initialization, ref. [17]).
    pub fn xavier_uniform(
        dims: &[usize],
        fan_in: usize,
        fan_out: usize,
        rng: &mut impl Rng,
    ) -> Tensor {
        let bound = (6.0 / (fan_in + fan_out) as f32).sqrt();
        Tensor::rand_uniform(dims, -bound, bound, rng)
    }

    /// He/Kaiming normal initialization (preferred for ReLU-family nets).
    pub fn he_normal(dims: &[usize], fan_in: usize, rng: &mut impl Rng) -> Tensor {
        let std = (2.0 / fan_in.max(1) as f32).sqrt();
        Tensor::randn(dims, 0.0, std, rng)
    }
}

/// One standard-normal sample via Box–Muller.
pub(crate) fn standard_normal(rng: &mut impl Rng) -> f32 {
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let t = Tensor::rand_uniform(&[1000], -0.5, 0.5, &mut rng);
        assert!(t.as_slice().iter().all(|&v| (-0.5..0.5).contains(&v)));
    }

    #[test]
    fn randn_moments_are_plausible() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let t = Tensor::randn(&[20_000], 1.0, 2.0, &mut rng);
        let mean = t.mean();
        let var = t.as_slice().iter().map(|v| (v - mean).powi(2)).sum::<f32>() / t.len() as f32;
        assert!((mean - 1.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn xavier_bound_matches_formula() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let t = Tensor::xavier_uniform(&[64, 32], 32, 64, &mut rng);
        let bound = (6.0f32 / 96.0).sqrt();
        assert!(t.as_slice().iter().all(|&v| v.abs() <= bound));
        // Should not all be tiny — spread fills the range.
        assert!(t.max() > bound * 0.5);
    }

    #[test]
    fn seeded_fills_are_reproducible() {
        let a = Tensor::randn(&[16], 0.0, 1.0, &mut ChaCha8Rng::seed_from_u64(7));
        let b = Tensor::randn(&[16], 0.0, 1.0, &mut ChaCha8Rng::seed_from_u64(7));
        assert_eq!(a.as_slice(), b.as_slice());
    }
}
