//! Elementwise arithmetic, scalar ops, broadcasting helpers and reductions.

use crate::Tensor;

/// A NaN-total order for `f32` that ranks NaN *below* every other value
/// (NaN < −∞ < finite < +∞), so "pick the best" selections never crown a
/// poisoned value and "sort descending" rankings push NaN to the end.
///
/// The f32 sibling of `bayesopt::nan_low_cmp`; the workspace linter's R2
/// rule points NaN-unsafe orderings here.
///
/// # Example
///
/// ```
/// use tensor::nan_low_cmp;
///
/// let mut v = vec![0.3_f32, f32::NAN, f32::NEG_INFINITY, 0.7];
/// v.sort_by(|a, b| nan_low_cmp(*a, *b));
/// assert!(v[0].is_nan());
/// assert_eq!(v[1..], [f32::NEG_INFINITY, 0.3, 0.7]);
/// ```
pub fn nan_low_cmp(a: f32, b: f32) -> std::cmp::Ordering {
    match (a.is_nan(), b.is_nan()) {
        (true, true) => std::cmp::Ordering::Equal,
        (true, false) => std::cmp::Ordering::Less,
        (false, true) => std::cmp::Ordering::Greater,
        (false, false) => a.total_cmp(&b),
    }
}

impl Tensor {
    /// Applies `f` to every element, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        let mut out = self.clone();
        out.as_mut_slice().iter_mut().for_each(|v| *v = f(*v));
        out
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        self.as_mut_slice().iter_mut().for_each(|v| *v = f(*v));
    }

    /// Combines two same-shape tensors elementwise with `f`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn zip_map(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(
            self.dims(),
            other.dims(),
            "zip_map shape mismatch: {} vs {}",
            self.shape(),
            other.shape()
        );
        let mut out = self.clone();
        out.as_mut_slice()
            .iter_mut()
            .zip(other.as_slice())
            .for_each(|(a, &b)| *a = f(*a, b));
        out
    }

    /// Elementwise sum. See [`Tensor::zip_map`] for panic conditions.
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.zip_map(other, |a, b| a + b)
    }

    /// Elementwise difference. See [`Tensor::zip_map`] for panic conditions.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.zip_map(other, |a, b| a - b)
    }

    /// Elementwise (Hadamard) product. See [`Tensor::zip_map`] for panic conditions.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        self.zip_map(other, |a, b| a * b)
    }

    /// Elementwise quotient. See [`Tensor::zip_map`] for panic conditions.
    pub fn div(&self, other: &Tensor) -> Tensor {
        self.zip_map(other, |a, b| a / b)
    }

    /// Adds `other` into `self` in place.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.dims(), other.dims(), "add_assign shape mismatch");
        self.as_mut_slice()
            .iter_mut()
            .zip(other.as_slice())
            .for_each(|(a, &b)| *a += b);
    }

    /// Accumulates `scale * other` into `self` (`axpy`).
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn add_scaled(&mut self, other: &Tensor, scale: f32) {
        assert_eq!(self.dims(), other.dims(), "add_scaled shape mismatch");
        self.as_mut_slice()
            .iter_mut()
            .zip(other.as_slice())
            .for_each(|(a, &b)| *a += scale * b);
    }

    /// Adds a scalar to every element.
    pub fn add_scalar(&self, s: f32) -> Tensor {
        self.map(|v| v + s)
    }

    /// Multiplies every element by a scalar.
    pub fn scale(&self, s: f32) -> Tensor {
        self.map(|v| v * s)
    }

    /// Multiplies every element by a scalar in place.
    pub fn scale_inplace(&mut self, s: f32) {
        self.map_inplace(|v| v * s);
    }

    /// Adds a length-`cols` bias row to every row of a rank-2 tensor.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not rank 2 or `bias` length differs from the
    /// column count.
    pub fn add_row_broadcast(&self, bias: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 2, "add_row_broadcast requires a rank-2 tensor");
        let cols = self.dims()[1];
        assert_eq!(bias.len(), cols, "bias length must equal column count");
        let mut out = self.clone();
        for r in 0..self.dims()[0] {
            let row = out.row_mut(r);
            for (v, &b) in row.iter_mut().zip(bias.as_slice()) {
                *v += b;
            }
        }
        out
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.as_slice().iter().sum()
    }

    /// Arithmetic mean of all elements (0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.is_empty() {
            0.0
        } else {
            self.sum() / self.len() as f32
        }
    }

    /// Maximum element (negative infinity for an empty tensor; NaN
    /// elements are skipped, matching `f32::max`).
    pub fn max(&self) -> f32 {
        self.as_slice()
            .iter()
            .copied()
            // lint:allow(R2, reason = "documented IEEE maxNum semantics: NaN elements are skipped, not ranked")
            .fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element (positive infinity for an empty tensor; NaN
    /// elements are skipped, matching `f32::min`).
    pub fn min(&self) -> f32 {
        self.as_slice()
            .iter()
            .copied()
            // lint:allow(R2, reason = "documented IEEE minNum semantics: NaN elements are skipped, not ranked")
            .fold(f32::INFINITY, f32::min)
    }

    /// Sum over axis 0 of a rank-2 tensor, producing a length-`cols` tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2.
    pub fn sum_axis0(&self) -> Tensor {
        assert_eq!(self.rank(), 2, "sum_axis0 requires a rank-2 tensor");
        let (rows, cols) = (self.dims()[0], self.dims()[1]);
        let mut out = Tensor::zeros(&[cols]);
        for r in 0..rows {
            for (o, &v) in out.as_mut_slice().iter_mut().zip(self.row(r)) {
                *o += v;
            }
        }
        out
    }

    /// Index of the maximum element of each row of a rank-2 tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2 or has zero columns.
    pub fn argmax_rows(&self) -> Vec<usize> {
        assert_eq!(self.rank(), 2, "argmax_rows requires a rank-2 tensor");
        assert!(
            self.dims()[1] > 0,
            "argmax_rows requires at least one column"
        );
        (0..self.dims()[0])
            .map(|r| {
                let row = self.row(r);
                row.iter()
                    .enumerate()
                    // NaN-low: a NaN logit never wins the argmax (unless
                    // the whole row is NaN), and can't tie-poison the
                    // comparator the way partial_cmp's Equal fallback did.
                    .max_by(|a, b| nan_low_cmp(*a.1, *b.1))
                    .map(|(i, _)| i)
                    .unwrap_or(0)
            })
            .collect()
    }

    /// Squared L2 norm of all elements.
    pub fn norm_sq(&self) -> f32 {
        self.as_slice().iter().map(|v| v * v).sum()
    }

    /// L2 norm of all elements.
    pub fn norm(&self) -> f32 {
        self.norm_sq().sqrt()
    }

    /// Row-wise softmax of a rank-2 tensor (numerically stabilized).
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2.
    pub fn softmax_rows(&self) -> Tensor {
        assert_eq!(self.rank(), 2, "softmax_rows requires a rank-2 tensor");
        let mut out = self.clone();
        for r in 0..self.dims()[0] {
            let row = out.row_mut(r);
            // lint:allow(R2, reason = "stability shift only: a NaN logit still poisons the row through exp(NaN), so ranking is not load-bearing")
            let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut z = 0.0;
            for v in row.iter_mut() {
                *v = (*v - m).exp();
                z += *v;
            }
            if z > 0.0 {
                for v in row.iter_mut() {
                    *v /= z;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t22(v: [f32; 4]) -> Tensor {
        Tensor::from_vec(v.to_vec(), &[2, 2]).unwrap()
    }

    #[test]
    fn elementwise_arithmetic() {
        let a = t22([1.0, 2.0, 3.0, 4.0]);
        let b = t22([4.0, 3.0, 2.0, 1.0]);
        assert_eq!(a.add(&b).as_slice(), &[5.0, 5.0, 5.0, 5.0]);
        assert_eq!(a.sub(&b).as_slice(), &[-3.0, -1.0, 1.0, 3.0]);
        assert_eq!(a.mul(&b).as_slice(), &[4.0, 6.0, 6.0, 4.0]);
        assert_eq!(a.div(&b).as_slice(), &[0.25, 2.0 / 3.0, 1.5, 4.0]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn add_rejects_shape_mismatch() {
        let a = Tensor::zeros(&[2, 2]);
        let b = Tensor::zeros(&[4]);
        let _ = a.add(&b);
    }

    #[test]
    fn scalar_ops() {
        let a = t22([1.0, 2.0, 3.0, 4.0]);
        assert_eq!(a.add_scalar(1.0).as_slice(), &[2.0, 3.0, 4.0, 5.0]);
        assert_eq!(a.scale(2.0).as_slice(), &[2.0, 4.0, 6.0, 8.0]);
    }

    #[test]
    fn add_scaled_is_axpy() {
        let mut a = t22([1.0, 1.0, 1.0, 1.0]);
        let b = t22([1.0, 2.0, 3.0, 4.0]);
        a.add_scaled(&b, 0.5);
        assert_eq!(a.as_slice(), &[1.5, 2.0, 2.5, 3.0]);
    }

    #[test]
    fn reductions() {
        let a = t22([1.0, 2.0, 3.0, 4.0]);
        assert_eq!(a.sum(), 10.0);
        assert_eq!(a.mean(), 2.5);
        assert_eq!(a.max(), 4.0);
        assert_eq!(a.min(), 1.0);
        assert_eq!(a.norm_sq(), 30.0);
    }

    #[test]
    fn sum_axis0_collapses_rows() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        assert_eq!(a.sum_axis0().as_slice(), &[5.0, 7.0, 9.0]);
    }

    #[test]
    fn row_broadcast_adds_bias() {
        let a = Tensor::from_vec(vec![0.0; 6], &[2, 3]).unwrap();
        let b = Tensor::from_slice(&[1.0, 2.0, 3.0]);
        let c = a.add_row_broadcast(&b);
        assert_eq!(c.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(c.row(1), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn argmax_rows_picks_largest() {
        let a = Tensor::from_vec(vec![0.1, 0.9, 0.0, 0.7, 0.2, 0.1], &[2, 3]).unwrap();
        assert_eq!(a.argmax_rows(), vec![1, 0]);
    }

    #[test]
    fn argmax_rows_never_crowns_nan() {
        // Regression: the partial_cmp(..).unwrap_or(Equal) ranking let a
        // NaN logit tie with everything, making the winner depend on
        // element order. NaN-low ranking picks the best finite logit at
        // every NaN position…
        let a = Tensor::from_vec(
            vec![f32::NAN, 0.9, 0.0, 0.7, f32::NAN, 0.1, 0.2, 0.1, f32::NAN],
            &[3, 3],
        )
        .unwrap();
        assert_eq!(a.argmax_rows(), vec![1, 0, 0]);
        // …and an all-NaN row still answers deterministically (max_by
        // keeps the last of all-equal elements).
        let nan_row = Tensor::from_vec(vec![f32::NAN; 3], &[1, 3]).unwrap();
        assert_eq!(nan_row.argmax_rows(), vec![2]);
    }

    #[test]
    fn nan_low_cmp_is_a_total_order_with_nan_lowest() {
        let mut v = [0.3_f32, f32::NAN, f32::NEG_INFINITY, 0.7, f32::INFINITY];
        v.sort_by(|a, b| nan_low_cmp(*a, *b));
        assert!(v[0].is_nan());
        assert_eq!(v[1..], [f32::NEG_INFINITY, 0.3, 0.7, f32::INFINITY]);
        // Descending with NaN last: the idiom the detector NMS and mAP
        // ranking use.
        let mut d = [0.3_f32, f32::NAN, 0.7];
        d.sort_by(|a, b| nan_low_cmp(*b, *a));
        assert_eq!(d[0], 0.7);
        assert_eq!(d[1], 0.3);
        assert!(d[2].is_nan());
    }

    #[test]
    fn softmax_rows_normalizes() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 1000.0, 1000.0, 1000.0], &[2, 3]).unwrap();
        let s = a.softmax_rows();
        for r in 0..2 {
            let sum: f32 = s.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5, "row {r} sums to {sum}");
        }
        // Large equal logits must not overflow to NaN.
        assert!((s.at(&[1, 0]) - 1.0 / 3.0).abs() < 1e-5);
    }

    #[test]
    fn map_applies_function() {
        let a = t22([1.0, 4.0, 9.0, 16.0]);
        assert_eq!(a.map(f32::sqrt).as_slice(), &[1.0, 2.0, 3.0, 4.0]);
    }
}
