//! Max and average 2-D pooling with the index bookkeeping needed for
//! backpropagation.

use serde::{Deserialize, Serialize};

use crate::Tensor;

/// Geometry of a 2-D pooling window.
///
/// # Example
///
/// ```
/// use tensor::Pool2dSpec;
///
/// let spec = Pool2dSpec::new(2, 2);
/// assert_eq!(spec.output_hw(8, 8), (4, 4));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Pool2dSpec {
    /// Square window side length.
    pub window: usize,
    /// Stride in both spatial dimensions.
    pub stride: usize,
}

impl Pool2dSpec {
    /// Creates a pooling spec.
    ///
    /// # Panics
    ///
    /// Panics if `window` or `stride` is zero.
    pub fn new(window: usize, stride: usize) -> Self {
        assert!(window > 0, "window must be positive");
        assert!(stride > 0, "stride must be positive");
        Pool2dSpec { window, stride }
    }

    /// Output spatial size for an `h`×`w` input.
    ///
    /// # Panics
    ///
    /// Panics if the input is smaller than the window.
    pub fn output_hw(&self, h: usize, w: usize) -> (usize, usize) {
        assert!(
            h >= self.window && w >= self.window,
            "input {h}x{w} smaller than pooling window {}",
            self.window
        );
        (
            (h - self.window) / self.stride + 1,
            (w - self.window) / self.stride + 1,
        )
    }
}

/// Max-pools a `[C, H, W]` image; returns the pooled image and the flat
/// argmax index of each output cell (for the backward pass).
///
/// # Panics
///
/// Panics if `image` is not rank 3.
pub fn max_pool2d(image: &Tensor, spec: &Pool2dSpec) -> (Tensor, Vec<usize>) {
    assert_eq!(image.rank(), 3, "max_pool2d expects a [C, H, W] tensor");
    let (c, h, w) = (image.dims()[0], image.dims()[1], image.dims()[2]);
    let (oh, ow) = spec.output_hw(h, w);
    let mut out = Tensor::zeros(&[c, oh, ow]);
    let mut argmax = vec![0usize; c * oh * ow];
    max_pool2d_into(
        image.as_slice(),
        out.as_mut_slice(),
        spec,
        c,
        h,
        w,
        Some(&mut argmax),
    );
    (out, argmax)
}

/// [`max_pool2d`] on raw slices, writing into a caller-provided buffer.
///
/// `src` is one `[C, H, W]` image; `dst` (`C·OH·OW` elements) is fully
/// overwritten, so recycled scratch buffers can be passed directly. Flat
/// argmax indices are recorded when `argmax` is provided (the backward
/// pass needs them; eval-mode pooling passes `None`). This is the single
/// window-scan implementation behind both the allocating wrapper and the
/// allocation-free eval path, so the two stay bit-identical by
/// construction.
///
/// # Panics
///
/// Panics if any slice length disagrees with the geometry.
pub fn max_pool2d_into(
    src: &[f32],
    dst: &mut [f32],
    spec: &Pool2dSpec,
    c: usize,
    h: usize,
    w: usize,
    mut argmax: Option<&mut [usize]>,
) {
    let (oh, ow) = spec.output_hw(h, w);
    assert_eq!(
        src.len(),
        c * h * w,
        "max_pool2d_into image length mismatch"
    );
    assert_eq!(
        dst.len(),
        c * oh * ow,
        "max_pool2d_into output length mismatch"
    );
    if let Some(a) = &argmax {
        assert_eq!(a.len(), dst.len(), "max_pool2d_into argmax length mismatch");
    }
    for ch in 0..c {
        for oy in 0..oh {
            for ox in 0..ow {
                let mut best = f32::NEG_INFINITY;
                let mut best_idx = 0usize;
                for ky in 0..spec.window {
                    for kx in 0..spec.window {
                        let iy = oy * spec.stride + ky;
                        let ix = ox * spec.stride + kx;
                        let idx = (ch * h + iy) * w + ix;
                        if src[idx] > best {
                            best = src[idx];
                            best_idx = idx;
                        }
                    }
                }
                let o = (ch * oh + oy) * ow + ox;
                dst[o] = best;
                if let Some(a) = argmax.as_deref_mut() {
                    a[o] = best_idx;
                }
            }
        }
    }
}

/// Scatters output gradients back through a recorded max-pool.
///
/// `argmax` must come from the matching [`max_pool2d`] call.
///
/// # Panics
///
/// Panics if `grad_out.len() != argmax.len()`.
pub fn max_pool2d_backward(grad_out: &Tensor, argmax: &[usize], input_dims: &[usize]) -> Tensor {
    assert_eq!(
        grad_out.len(),
        argmax.len(),
        "gradient / argmax length mismatch"
    );
    let mut grad_in = Tensor::zeros(input_dims);
    let gi = grad_in.as_mut_slice();
    for (&g, &idx) in grad_out.as_slice().iter().zip(argmax) {
        gi[idx] += g;
    }
    grad_in
}

/// Average-pools a `[C, H, W]` image.
///
/// # Panics
///
/// Panics if `image` is not rank 3.
pub fn avg_pool2d(image: &Tensor, spec: &Pool2dSpec) -> Tensor {
    assert_eq!(image.rank(), 3, "avg_pool2d expects a [C, H, W] tensor");
    let (c, h, w) = (image.dims()[0], image.dims()[1], image.dims()[2]);
    let (oh, ow) = spec.output_hw(h, w);
    let mut out = Tensor::zeros(&[c, oh, ow]);
    avg_pool2d_into(image.as_slice(), out.as_mut_slice(), spec, c, h, w);
    out
}

/// [`avg_pool2d`] on raw slices, writing into a caller-provided buffer.
///
/// `src` is one `[C, H, W]` image; `dst` (`C·OH·OW` elements) is fully
/// overwritten. Single window-scan implementation shared with the
/// allocating wrapper — see [`max_pool2d_into`].
///
/// # Panics
///
/// Panics if either slice length disagrees with the geometry.
pub fn avg_pool2d_into(
    src: &[f32],
    dst: &mut [f32],
    spec: &Pool2dSpec,
    c: usize,
    h: usize,
    w: usize,
) {
    let (oh, ow) = spec.output_hw(h, w);
    assert_eq!(
        src.len(),
        c * h * w,
        "avg_pool2d_into image length mismatch"
    );
    assert_eq!(
        dst.len(),
        c * oh * ow,
        "avg_pool2d_into output length mismatch"
    );
    let norm = 1.0 / (spec.window * spec.window) as f32;
    for ch in 0..c {
        for oy in 0..oh {
            for ox in 0..ow {
                let mut acc = 0.0;
                for ky in 0..spec.window {
                    for kx in 0..spec.window {
                        let iy = oy * spec.stride + ky;
                        let ix = ox * spec.stride + kx;
                        acc += src[(ch * h + iy) * w + ix];
                    }
                }
                dst[(ch * oh + oy) * ow + ox] = acc * norm;
            }
        }
    }
}

/// Backward pass of [`avg_pool2d`]: spreads each output gradient uniformly
/// over its window.
///
/// # Panics
///
/// Panics if `grad_out` is not rank 3 or inconsistent with `input_dims`.
pub fn avg_pool2d_backward(grad_out: &Tensor, spec: &Pool2dSpec, input_dims: &[usize]) -> Tensor {
    assert_eq!(grad_out.rank(), 3, "avg_pool2d_backward expects rank 3");
    let (c, h, w) = (input_dims[0], input_dims[1], input_dims[2]);
    let (oh, ow) = spec.output_hw(h, w);
    assert_eq!(grad_out.dims(), &[c, oh, ow], "gradient shape mismatch");
    let mut grad_in = Tensor::zeros(input_dims);
    avg_pool2d_backward_into(grad_out.as_slice(), grad_in.as_mut_slice(), spec, c, h, w);
    grad_in
}

/// [`avg_pool2d_backward`] on raw slices, writing into a caller-provided
/// buffer.
///
/// `src` is one `[C, OH, OW]` output gradient; `dst` (`C·h·w` elements) is
/// zeroed and then accumulated into, so recycled scratch buffers can be
/// passed directly. Single spread implementation shared with the allocating
/// wrapper — see [`max_pool2d_into`] for the rationale.
///
/// # Panics
///
/// Panics if either slice length disagrees with the geometry.
pub fn avg_pool2d_backward_into(
    src: &[f32],
    dst: &mut [f32],
    spec: &Pool2dSpec,
    c: usize,
    h: usize,
    w: usize,
) {
    let (oh, ow) = spec.output_hw(h, w);
    assert_eq!(
        src.len(),
        c * oh * ow,
        "avg_pool2d_backward_into gradient length mismatch"
    );
    assert_eq!(
        dst.len(),
        c * h * w,
        "avg_pool2d_backward_into output length mismatch"
    );
    dst.fill(0.0);
    let norm = 1.0 / (spec.window * spec.window) as f32;
    for ch in 0..c {
        for oy in 0..oh {
            for ox in 0..ow {
                let g = src[(ch * oh + oy) * ow + ox] * norm;
                for ky in 0..spec.window {
                    for kx in 0..spec.window {
                        let iy = oy * spec.stride + ky;
                        let ix = ox * spec.stride + kx;
                        dst[(ch * h + iy) * w + ix] += g;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_pool_picks_window_maxima() {
        let img = Tensor::from_vec(
            vec![
                1.0, 2.0, 5.0, 3.0, 4.0, 0.0, 1.0, 2.0, 8.0, 7.0, 0.0, 1.0, 6.0, 5.0, 2.0, 3.0,
            ],
            &[1, 4, 4],
        )
        .unwrap();
        let (out, argmax) = max_pool2d(&img, &Pool2dSpec::new(2, 2));
        assert_eq!(out.dims(), &[1, 2, 2]);
        assert_eq!(out.as_slice(), &[4.0, 5.0, 8.0, 3.0]);
        assert_eq!(argmax[0], 4); // position of 4.0 in the flat input
    }

    #[test]
    fn max_pool_backward_routes_to_argmax() {
        let img = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 2, 2]).unwrap();
        let (_, argmax) = max_pool2d(&img, &Pool2dSpec::new(2, 2));
        let grad_out = Tensor::from_vec(vec![10.0], &[1, 1, 1]).unwrap();
        let grad_in = max_pool2d_backward(&grad_out, &argmax, &[1, 2, 2]);
        assert_eq!(grad_in.as_slice(), &[0.0, 0.0, 0.0, 10.0]);
    }

    #[test]
    fn avg_pool_averages() {
        let img = Tensor::from_vec(vec![1.0, 3.0, 5.0, 7.0], &[1, 2, 2]).unwrap();
        let out = avg_pool2d(&img, &Pool2dSpec::new(2, 2));
        assert_eq!(out.as_slice(), &[4.0]);
    }

    #[test]
    fn avg_pool_backward_spreads_uniformly() {
        let grad_out = Tensor::from_vec(vec![8.0], &[1, 1, 1]).unwrap();
        let grad_in = avg_pool2d_backward(&grad_out, &Pool2dSpec::new(2, 2), &[1, 2, 2]);
        assert_eq!(grad_in.as_slice(), &[2.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    fn avg_pool_backward_into_fully_overwrites_recycled_buffers() {
        let spec = Pool2dSpec::new(2, 2);
        let go = Tensor::from_vec((0..8).map(|v| v as f32 * 0.5).collect(), &[2, 2, 2]).unwrap();
        let reference = avg_pool2d_backward(&go, &spec, &[2, 4, 4]);
        let mut dst = vec![f32::NAN; 2 * 4 * 4]; // stale garbage must vanish
        avg_pool2d_backward_into(go.as_slice(), &mut dst, &spec, 2, 4, 4);
        assert_eq!(dst, reference.as_slice());
    }

    #[test]
    fn pooling_gradient_conservation() {
        // Sum of input gradients equals sum of output gradients for both pools.
        let img = Tensor::from_vec((0..16).map(|v| v as f32).collect(), &[1, 4, 4]).unwrap();
        let spec = Pool2dSpec::new(2, 2);
        let (out, argmax) = max_pool2d(&img, &spec);
        let go = Tensor::ones(out.dims());
        assert!((max_pool2d_backward(&go, &argmax, &[1, 4, 4]).sum() - go.sum()).abs() < 1e-6);
        assert!((avg_pool2d_backward(&go, &spec, &[1, 4, 4]).sum() - go.sum()).abs() < 1e-6);
    }
}
