use std::fmt;

use serde::{Deserialize, Serialize};

/// A tensor shape: the extent of each dimension, outermost first.
///
/// `Shape` is a thin newtype over `Vec<usize>` that centralizes the
/// element-count and row-major stride arithmetic used throughout the
/// workspace.
///
/// # Example
///
/// ```
/// use tensor::Shape;
///
/// let s = Shape::new(&[2, 3, 4]);
/// assert_eq!(s.len(), 24);
/// assert_eq!(s.strides(), vec![12, 4, 1]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// Creates a shape from a slice of dimension extents.
    pub fn new(dims: &[usize]) -> Self {
        Shape(dims.to_vec())
    }

    /// The dimension extents, outermost first.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Number of dimensions (rank).
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Total number of elements (product of extents; 1 for rank 0).
    pub fn len(&self) -> usize {
        self.0.iter().product()
    }

    /// Whether the shape contains zero elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Row-major strides, in elements.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.0.len()];
        for i in (0..self.0.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.0[i + 1];
        }
        strides
    }

    /// Flat row-major offset for a multi-index.
    ///
    /// # Panics
    ///
    /// Panics if `index` has a different rank or any coordinate is out of
    /// bounds.
    pub fn offset(&self, index: &[usize]) -> usize {
        assert_eq!(
            index.len(),
            self.0.len(),
            "index rank {} does not match shape rank {}",
            index.len(),
            self.0.len()
        );
        let strides = self.strides();
        let mut off = 0usize;
        for (d, (&i, &n)) in index.iter().zip(self.0.iter()).enumerate() {
            assert!(
                i < n,
                "index {i} out of bounds for dimension {d} of extent {n}"
            );
            off += i * strides[d];
        }
        off
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape(dims)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl AsRef<[usize]> for Shape {
    fn as_ref(&self) -> &[usize] {
        &self.0
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn len_is_product_of_dims() {
        assert_eq!(Shape::new(&[2, 3, 4]).len(), 24);
        assert_eq!(Shape::new(&[7]).len(), 7);
        assert_eq!(Shape::new(&[]).len(), 1);
    }

    #[test]
    fn strides_are_row_major() {
        assert_eq!(Shape::new(&[2, 3, 4]).strides(), vec![12, 4, 1]);
        assert_eq!(Shape::new(&[5]).strides(), vec![1]);
    }

    #[test]
    fn offset_walks_row_major() {
        let s = Shape::new(&[2, 3]);
        assert_eq!(s.offset(&[0, 0]), 0);
        assert_eq!(s.offset(&[0, 2]), 2);
        assert_eq!(s.offset(&[1, 0]), 3);
        assert_eq!(s.offset(&[1, 2]), 5);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn offset_rejects_out_of_bounds() {
        Shape::new(&[2, 3]).offset(&[0, 3]);
    }

    #[test]
    fn display_lists_dims() {
        assert_eq!(Shape::new(&[2, 3]).to_string(), "[2, 3]");
    }

    #[test]
    fn zero_extent_shape_is_empty() {
        assert!(Shape::new(&[2, 0, 3]).is_empty());
        assert!(!Shape::new(&[2, 3]).is_empty());
    }
}
