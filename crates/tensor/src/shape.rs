use std::fmt;

use serde::{Deserialize, Serialize};

/// Maximum tensor rank supported by [`Shape`].
///
/// Shapes are stored inline (no heap allocation) so that tensors can be
/// built from recycled buffers on allocation-free hot paths; 8 comfortably
/// covers every rank used in the workspace (≤ 4 today) and matches the
/// sanity cap enforced by the weight-snapshot reader.
pub const MAX_RANK: usize = 8;

/// A tensor shape: the extent of each dimension, outermost first.
///
/// `Shape` stores its extents inline (up to [`MAX_RANK`] dimensions) and
/// centralizes the element-count and row-major stride arithmetic used
/// throughout the workspace. Constructing, cloning, or dropping a `Shape`
/// never touches the heap — this is what keeps `Tensor` creation from
/// recycled workspace buffers allocation-free.
///
/// # Example
///
/// ```
/// use tensor::Shape;
///
/// let s = Shape::new(&[2, 3, 4]);
/// assert_eq!(s.len(), 24);
/// assert_eq!(s.strides(), vec![12, 4, 1]);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape {
    // Trailing slots beyond `rank` are always zero so the derived
    // PartialEq/Eq/Hash agree with slice equality of `dims()`.
    dims: [usize; MAX_RANK],
    rank: usize,
}

impl Shape {
    /// Creates a shape from a slice of dimension extents.
    ///
    /// # Panics
    ///
    /// Panics if `dims` has more than [`MAX_RANK`] entries.
    pub fn new(dims: &[usize]) -> Self {
        assert!(
            dims.len() <= MAX_RANK,
            "tensor rank {} exceeds the supported maximum {MAX_RANK}",
            dims.len()
        );
        let mut inline = [0usize; MAX_RANK];
        inline[..dims.len()].copy_from_slice(dims);
        Shape {
            dims: inline,
            rank: dims.len(),
        }
    }

    /// The dimension extents, outermost first.
    pub fn dims(&self) -> &[usize] {
        &self.dims[..self.rank]
    }

    /// Number of dimensions (rank).
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Total number of elements (product of extents; 1 for rank 0).
    pub fn len(&self) -> usize {
        self.dims().iter().product()
    }

    /// Whether the shape contains zero elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Row-major strides, in elements.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.rank];
        for i in (0..self.rank.saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims[i + 1];
        }
        strides
    }

    /// Flat row-major offset for a multi-index.
    ///
    /// # Panics
    ///
    /// Panics if `index` has a different rank or any coordinate is out of
    /// bounds.
    pub fn offset(&self, index: &[usize]) -> usize {
        assert_eq!(
            index.len(),
            self.rank,
            "index rank {} does not match shape rank {}",
            index.len(),
            self.rank
        );
        let mut off = 0usize;
        for (d, (&i, &n)) in index.iter().zip(self.dims()).enumerate() {
            assert!(
                i < n,
                "index {i} out of bounds for dimension {d} of extent {n}"
            );
            off = off * n + i;
        }
        off
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape::new(&dims)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl AsRef<[usize]> for Shape {
    fn as_ref(&self) -> &[usize] {
        self.dims()
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("Shape").field(&self.dims()).finish()
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.dims().iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn len_is_product_of_dims() {
        assert_eq!(Shape::new(&[2, 3, 4]).len(), 24);
        assert_eq!(Shape::new(&[7]).len(), 7);
        assert_eq!(Shape::new(&[]).len(), 1);
    }

    #[test]
    fn strides_are_row_major() {
        assert_eq!(Shape::new(&[2, 3, 4]).strides(), vec![12, 4, 1]);
        assert_eq!(Shape::new(&[5]).strides(), vec![1]);
    }

    #[test]
    fn offset_walks_row_major() {
        let s = Shape::new(&[2, 3]);
        assert_eq!(s.offset(&[0, 0]), 0);
        assert_eq!(s.offset(&[0, 2]), 2);
        assert_eq!(s.offset(&[1, 0]), 3);
        assert_eq!(s.offset(&[1, 2]), 5);
    }

    #[test]
    fn offset_matches_stride_arithmetic_at_higher_rank() {
        let s = Shape::new(&[2, 3, 4, 5]);
        let strides = s.strides();
        for idx in [[0, 0, 0, 0], [1, 2, 3, 4], [1, 0, 2, 1]] {
            let by_strides: usize = idx.iter().zip(&strides).map(|(i, st)| i * st).sum();
            assert_eq!(s.offset(&idx), by_strides);
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn offset_rejects_out_of_bounds() {
        Shape::new(&[2, 3]).offset(&[0, 3]);
    }

    #[test]
    fn display_lists_dims() {
        assert_eq!(Shape::new(&[2, 3]).to_string(), "[2, 3]");
    }

    #[test]
    fn zero_extent_shape_is_empty() {
        assert!(Shape::new(&[2, 0, 3]).is_empty());
        assert!(!Shape::new(&[2, 3]).is_empty());
    }

    #[test]
    fn equality_ignores_inline_padding() {
        assert_eq!(Shape::new(&[2, 3]), Shape::new(&[2, 3]));
        assert_ne!(Shape::new(&[2, 3]), Shape::new(&[2, 3, 1]));
        assert_ne!(Shape::new(&[2, 3]), Shape::new(&[3, 2]));
    }

    #[test]
    #[should_panic(expected = "exceeds the supported maximum")]
    fn over_max_rank_panics() {
        let _ = Shape::new(&[1; MAX_RANK + 1]);
    }
}
