//! `im2col`/`col2im` lowering for 2-D convolution.
//!
//! Convolution is lowered to a matrix product: a `[C, H, W]` image patch
//! matrix of shape `[C·kh·kw, OH·OW]` is built by [`im2col`], multiplied by a
//! `[OC, C·kh·kw]` weight matrix, and the backward pass scatters gradients
//! back with [`col2im`].

use serde::{Deserialize, Serialize};

use crate::Tensor;

/// Static description of a 2-D convolution (or pooling) geometry.
///
/// # Example
///
/// ```
/// use tensor::Conv2dSpec;
///
/// let spec = Conv2dSpec::new(3, 16, 3, 1, 1);
/// assert_eq!(spec.output_hw(32, 32), (32, 32));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Conv2dSpec {
    /// Input channel count.
    pub in_channels: usize,
    /// Output channel count.
    pub out_channels: usize,
    /// Square kernel side length.
    pub kernel: usize,
    /// Stride in both spatial dimensions.
    pub stride: usize,
    /// Zero padding in both spatial dimensions.
    pub padding: usize,
}

impl Conv2dSpec {
    /// Creates a convolution spec with a square kernel.
    ///
    /// # Panics
    ///
    /// Panics if `kernel` or `stride` is zero.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
    ) -> Self {
        assert!(kernel > 0, "kernel must be positive");
        assert!(stride > 0, "stride must be positive");
        Conv2dSpec {
            in_channels,
            out_channels,
            kernel,
            stride,
            padding,
        }
    }

    /// Output spatial size for an `h`×`w` input.
    ///
    /// # Panics
    ///
    /// Panics if the padded input is smaller than the kernel.
    pub fn output_hw(&self, h: usize, w: usize) -> (usize, usize) {
        let ph = h + 2 * self.padding;
        let pw = w + 2 * self.padding;
        assert!(
            ph >= self.kernel && pw >= self.kernel,
            "padded input {ph}x{pw} smaller than kernel {}",
            self.kernel
        );
        (
            (ph - self.kernel) / self.stride + 1,
            (pw - self.kernel) / self.stride + 1,
        )
    }

    /// Rows of the patch matrix: `C·kh·kw`.
    pub fn patch_len(&self) -> usize {
        self.in_channels * self.kernel * self.kernel
    }
}

/// Lowers one `[C, H, W]` image to a `[C·kh·kw, OH·OW]` patch matrix.
///
/// # Panics
///
/// Panics if `image` is not rank 3 or its channel count differs from the
/// spec.
pub fn im2col(image: &Tensor, spec: &Conv2dSpec, h: usize, w: usize) -> Tensor {
    assert_eq!(image.rank(), 3, "im2col expects a [C, H, W] tensor");
    assert_eq!(image.dims()[0], spec.in_channels, "im2col channel mismatch");
    let (oh, ow) = spec.output_hw(h, w);
    let mut col = Tensor::zeros(&[spec.patch_len(), oh * ow]);
    im2col_into(image.as_slice(), col.as_mut_slice(), spec, h, w);
    col
}

/// [`im2col`] on raw slices, writing into a caller-provided buffer.
///
/// `src` is one `[C, H, W]` image (`C·h·w` elements); `dst` must hold
/// `patch_len() · OH·OW` elements and is fully overwritten (zero padding
/// included), so recycled scratch buffers can be passed directly. The
/// eval-mode convolution hot path uses this to lower images without
/// allocating a fresh patch matrix per sample per trial.
///
/// # Panics
///
/// Panics if either slice length disagrees with the geometry.
pub fn im2col_into(src: &[f32], dst: &mut [f32], spec: &Conv2dSpec, h: usize, w: usize) {
    let _t = telemetry::Timer::start(telemetry::duration_histogram!("tensor_im2col_seconds"));
    let (oh, ow) = spec.output_hw(h, w);
    let k = spec.kernel;
    assert_eq!(
        src.len(),
        spec.in_channels * h * w,
        "im2col_into image length mismatch"
    );
    assert_eq!(
        dst.len(),
        spec.patch_len() * oh * ow,
        "im2col_into output length mismatch"
    );
    dst.fill(0.0);
    let ncols = oh * ow;
    for c in 0..spec.in_channels {
        for ky in 0..k {
            for kx in 0..k {
                let row = (c * k + ky) * k + kx;
                for oy in 0..oh {
                    let iy = (oy * spec.stride + ky) as isize - spec.padding as isize;
                    if iy < 0 || iy as usize >= h {
                        continue;
                    }
                    for ox in 0..ow {
                        let ix = (ox * spec.stride + kx) as isize - spec.padding as isize;
                        if ix < 0 || ix as usize >= w {
                            continue;
                        }
                        dst[row * ncols + oy * ow + ox] =
                            src[(c * h + iy as usize) * w + ix as usize];
                    }
                }
            }
        }
    }
}

/// Scatters a `[C·kh·kw, OH·OW]` patch-gradient matrix back to a `[C, H, W]`
/// image gradient (the adjoint of [`im2col`]).
///
/// # Panics
///
/// Panics if `col` does not have the shape implied by `spec` and the spatial
/// size.
pub fn col2im(col: &Tensor, spec: &Conv2dSpec, h: usize, w: usize) -> Tensor {
    let (oh, ow) = spec.output_hw(h, w);
    assert_eq!(
        col.dims(),
        &[spec.patch_len(), oh * ow],
        "col2im shape mismatch"
    );
    let mut image = Tensor::zeros(&[spec.in_channels, h, w]);
    col2im_into(col.as_slice(), image.as_mut_slice(), spec, h, w);
    image
}

/// [`col2im`] on raw slices, writing into a caller-provided buffer.
///
/// `src` is one `[C·kh·kw, OH·OW]` patch-gradient matrix; `dst` (`C·h·w`
/// elements) is zeroed and then scatter-accumulated into, so recycled
/// scratch buffers can be passed directly. This is the single scatter
/// implementation behind the allocating wrapper, so the two stay
/// bit-identical by construction — the convolution backward hot path uses
/// it to write each sample's image gradient straight into its segment of
/// the batch gradient tensor.
///
/// # Panics
///
/// Panics if either slice length disagrees with the geometry.
pub fn col2im_into(src: &[f32], dst: &mut [f32], spec: &Conv2dSpec, h: usize, w: usize) {
    let _t = telemetry::Timer::start(telemetry::duration_histogram!("tensor_col2im_seconds"));
    let (oh, ow) = spec.output_hw(h, w);
    let k = spec.kernel;
    assert_eq!(
        src.len(),
        spec.patch_len() * oh * ow,
        "col2im_into patch matrix length mismatch"
    );
    assert_eq!(
        dst.len(),
        spec.in_channels * h * w,
        "col2im_into image length mismatch"
    );
    dst.fill(0.0);
    let ncols = oh * ow;
    for c in 0..spec.in_channels {
        for ky in 0..k {
            for kx in 0..k {
                let row = (c * k + ky) * k + kx;
                for oy in 0..oh {
                    let iy = (oy * spec.stride + ky) as isize - spec.padding as isize;
                    if iy < 0 || iy as usize >= h {
                        continue;
                    }
                    for ox in 0..ow {
                        let ix = (ox * spec.stride + kx) as isize - spec.padding as isize;
                        if ix < 0 || ix as usize >= w {
                            continue;
                        }
                        dst[(c * h + iy as usize) * w + ix as usize] +=
                            src[row * ncols + oy * ow + ox];
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_hw_formula() {
        let spec = Conv2dSpec::new(1, 1, 3, 1, 0);
        assert_eq!(spec.output_hw(5, 5), (3, 3));
        let spec = Conv2dSpec::new(1, 1, 3, 1, 1);
        assert_eq!(spec.output_hw(5, 5), (5, 5));
        let spec = Conv2dSpec::new(1, 1, 2, 2, 0);
        assert_eq!(spec.output_hw(4, 4), (2, 2));
    }

    #[test]
    fn im2col_identity_kernel() {
        // A 1x1 kernel with stride 1 should reproduce the image as one row.
        let img = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 2, 2]).unwrap();
        let spec = Conv2dSpec::new(1, 1, 1, 1, 0);
        let col = im2col(&img, &spec, 2, 2);
        assert_eq!(col.dims(), &[1, 4]);
        assert_eq!(col.as_slice(), img.as_slice());
    }

    #[test]
    fn im2col_extracts_patches() {
        // 3x3 image, 2x2 kernel, stride 1: 4 patches.
        let img = Tensor::from_vec((1..=9).map(|v| v as f32).collect(), &[1, 3, 3]).unwrap();
        let spec = Conv2dSpec::new(1, 1, 2, 1, 0);
        let col = im2col(&img, &spec, 3, 3);
        assert_eq!(col.dims(), &[4, 4]);
        // First patch (top-left) down the first column: 1, 2, 4, 5.
        assert_eq!(col.at(&[0, 0]), 1.0);
        assert_eq!(col.at(&[1, 0]), 2.0);
        assert_eq!(col.at(&[2, 0]), 4.0);
        assert_eq!(col.at(&[3, 0]), 5.0);
        // Last patch (bottom-right): 5, 6, 8, 9.
        assert_eq!(col.at(&[0, 3]), 5.0);
        assert_eq!(col.at(&[3, 3]), 9.0);
    }

    #[test]
    fn im2col_zero_pads() {
        let img = Tensor::from_vec(vec![1.0], &[1, 1, 1]).unwrap();
        let spec = Conv2dSpec::new(1, 1, 3, 1, 1);
        let col = im2col(&img, &spec, 1, 1);
        assert_eq!(col.dims(), &[9, 1]);
        // Only the center tap sees the pixel.
        assert_eq!(col.at(&[4, 0]), 1.0);
        assert_eq!(col.sum(), 1.0);
    }

    #[test]
    fn col2im_into_fully_overwrites_recycled_buffers() {
        let spec = Conv2dSpec::new(2, 1, 3, 2, 1);
        let (h, w) = (5, 4);
        let (oh, ow) = spec.output_hw(h, w);
        let col = Tensor::from_vec(
            (0..spec.patch_len() * oh * ow)
                .map(|i| (i as f32 * 0.23).sin())
                .collect(),
            &[spec.patch_len(), oh * ow],
        )
        .unwrap();
        let reference = col2im(&col, &spec, h, w);
        let mut dst = vec![f32::NAN; 2 * h * w]; // stale garbage must vanish
        col2im_into(col.as_slice(), &mut dst, &spec, h, w);
        assert_eq!(dst, reference.as_slice());
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for random-ish x, y.
        let spec = Conv2dSpec::new(2, 1, 3, 2, 1);
        let (h, w) = (5, 4);
        let x = Tensor::from_vec(
            (0..2 * h * w).map(|i| (i as f32 * 0.37).sin()).collect(),
            &[2, h, w],
        )
        .unwrap();
        let (oh, ow) = spec.output_hw(h, w);
        let y = Tensor::from_vec(
            (0..spec.patch_len() * oh * ow)
                .map(|i| (i as f32 * 0.11).cos())
                .collect(),
            &[spec.patch_len(), oh * ow],
        )
        .unwrap();
        let lhs: f32 = im2col(&x, &spec, h, w)
            .as_slice()
            .iter()
            .zip(y.as_slice())
            .map(|(a, b)| a * b)
            .sum();
        let rhs: f32 = x
            .as_slice()
            .iter()
            .zip(col2im(&y, &spec, h, w).as_slice())
            .map(|(a, b)| a * b)
            .sum();
        assert!((lhs - rhs).abs() < 1e-3, "adjoint mismatch: {lhs} vs {rhs}");
    }
}
