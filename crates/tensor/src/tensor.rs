use serde::{Deserialize, Serialize};

use crate::{Shape, TensorError};

/// A dense, row-major, always-contiguous `f32` tensor.
///
/// `Tensor` is the single numerical container used by every crate in the
/// BayesFT workspace: network weights and activations, dataset images,
/// Gaussian-process kernel matrices, and drifted ReRAM conductances are all
/// `Tensor`s.
///
/// # Example
///
/// ```
/// use tensor::Tensor;
///
/// let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3])?;
/// assert_eq!(t.shape().dims(), &[2, 3]);
/// assert_eq!(t.at(&[1, 2]), 6.0);
/// assert_eq!(t.sum(), 21.0);
/// # Ok::<(), tensor::TensorError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    data: Vec<f32>,
    shape: Shape,
}

impl Tensor {
    /// Creates a tensor filled with zeros.
    pub fn zeros(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        Tensor {
            data: vec![0.0; shape.len()],
            shape,
        }
    }

    /// Creates a tensor filled with ones.
    pub fn ones(dims: &[usize]) -> Self {
        Tensor::full(dims, 1.0)
    }

    /// Creates a tensor with every element set to `value`.
    pub fn full(dims: &[usize], value: f32) -> Self {
        let shape = Shape::new(dims);
        Tensor {
            data: vec![value; shape.len()],
            shape,
        }
    }

    /// Creates the `n`×`n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut t = Tensor::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Wraps an existing buffer as a tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if `data.len()` differs from
    /// the element count implied by `dims`.
    pub fn from_vec(data: Vec<f32>, dims: &[usize]) -> Result<Self, TensorError> {
        let shape = Shape::new(dims);
        if data.len() != shape.len() {
            return Err(TensorError::LengthMismatch {
                expected: shape.len(),
                actual: data.len(),
            });
        }
        Ok(Tensor { data, shape })
    }

    /// Creates a rank-1 tensor from a slice.
    pub fn from_slice(data: &[f32]) -> Self {
        Tensor {
            shape: Shape::new(&[data.len()]),
            data: data.to_vec(),
        }
    }

    /// Creates a rank-0-like scalar tensor (shape `[1]`).
    pub fn scalar(value: f32) -> Self {
        Tensor {
            data: vec![value],
            shape: Shape::new(&[1]),
        }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Dimension extents, outermost first.
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Rank (number of dimensions).
    pub fn rank(&self) -> usize {
        self.shape.rank()
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying row-major buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning the underlying buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at a multi-index.
    ///
    /// # Panics
    ///
    /// Panics if the index rank or any coordinate is out of bounds.
    pub fn at(&self, index: &[usize]) -> f32 {
        self.data[self.shape.offset(index)]
    }

    /// Mutable element at a multi-index.
    ///
    /// # Panics
    ///
    /// Panics if the index rank or any coordinate is out of bounds.
    pub fn at_mut(&mut self, index: &[usize]) -> &mut f32 {
        let off = self.shape.offset(index);
        &mut self.data[off]
    }

    /// Returns a copy reshaped to `dims` (same element count).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ReshapeMismatch`] if element counts differ.
    pub fn reshaped(&self, dims: &[usize]) -> Result<Self, TensorError> {
        let new_shape = Shape::new(dims);
        if new_shape.len() != self.len() {
            return Err(TensorError::ReshapeMismatch {
                from: self.len(),
                to: new_shape.len(),
            });
        }
        Ok(Tensor {
            data: self.data.clone(),
            shape: new_shape,
        })
    }

    /// Re-purposes the tensor as a buffer of shape `dims`, resizing the
    /// underlying storage in place. Existing capacity is reused: shrinking
    /// never deallocates and growing back within capacity never allocates,
    /// so a tensor serving as a persistent cache (e.g. a layer's activation
    /// buffer) grows once to its high-water mark and then stays
    /// allocation-free across steps. Grown elements are zero; retained
    /// elements keep their previous values — callers that need defined
    /// contents must overwrite them.
    pub fn reuse_as(&mut self, dims: &[usize]) {
        let shape = Shape::new(dims);
        self.data.resize(shape.len(), 0.0);
        self.shape = shape;
    }

    /// Reshapes in place (same element count).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ReshapeMismatch`] if element counts differ.
    pub fn reshape(&mut self, dims: &[usize]) -> Result<(), TensorError> {
        let new_shape = Shape::new(dims);
        if new_shape.len() != self.len() {
            return Err(TensorError::ReshapeMismatch {
                from: self.len(),
                to: new_shape.len(),
            });
        }
        self.shape = new_shape;
        Ok(())
    }

    /// One row of a rank-2 tensor, as a slice.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2 or `row` is out of bounds.
    pub fn row(&self, row: usize) -> &[f32] {
        assert_eq!(self.rank(), 2, "row() requires a rank-2 tensor");
        let cols = self.dims()[1];
        &self.data[row * cols..(row + 1) * cols]
    }

    /// Mutable row of a rank-2 tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2 or `row` is out of bounds.
    pub fn row_mut(&mut self, row: usize) -> &mut [f32] {
        assert_eq!(self.rank(), 2, "row_mut() requires a rank-2 tensor");
        let cols = self.dims()[1];
        &mut self.data[row * cols..(row + 1) * cols]
    }

    /// Transpose of a rank-2 tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2.
    pub fn transposed(&self) -> Tensor {
        assert_eq!(self.rank(), 2, "transposed() requires a rank-2 tensor");
        let (r, c) = (self.dims()[0], self.dims()[1]);
        let mut out = Tensor::zeros(&[c, r]);
        for i in 0..r {
            for j in 0..c {
                out.data[j * r + i] = self.data[i * c + j];
            }
        }
        out
    }
}

impl Default for Tensor {
    fn default() -> Self {
        Tensor::zeros(&[0])
    }
}

impl std::fmt::Display for Tensor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Tensor{} ", self.shape)?;
        let preview: Vec<String> = self
            .data
            .iter()
            .take(8)
            .map(|v| format!("{v:.4}"))
            .collect();
        write!(
            f,
            "[{}{}]",
            preview.join(", "),
            if self.len() > 8 { ", …" } else { "" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_ones_full() {
        assert!(Tensor::zeros(&[3, 2]).as_slice().iter().all(|&v| v == 0.0));
        assert!(Tensor::ones(&[4]).as_slice().iter().all(|&v| v == 1.0));
        assert!(Tensor::full(&[2, 2], 3.5)
            .as_slice()
            .iter()
            .all(|&v| v == 3.5));
    }

    #[test]
    fn eye_has_unit_diagonal() {
        let i = Tensor::eye(3);
        for r in 0..3 {
            for c in 0..3 {
                assert_eq!(i.at(&[r, c]), if r == c { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Tensor::from_vec(vec![1.0; 6], &[2, 3]).is_ok());
        assert_eq!(
            Tensor::from_vec(vec![1.0; 5], &[2, 3]).unwrap_err(),
            TensorError::LengthMismatch {
                expected: 6,
                actual: 5
            }
        );
    }

    #[test]
    fn reuse_as_keeps_capacity() {
        let mut t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        t.reuse_as(&[2, 2]); // shrink: capacity retained, prefix kept
        assert_eq!(t.dims(), &[2, 2]);
        assert_eq!(t.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
        t.reuse_as(&[6]); // grow back within capacity: prefix kept, rest zero
        assert_eq!(t.as_slice(), &[1.0, 2.0, 3.0, 4.0, 0.0, 0.0]);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let r = t.reshaped(&[4]).unwrap();
        assert_eq!(r.as_slice(), t.as_slice());
        assert!(t.reshaped(&[3]).is_err());
    }

    #[test]
    fn at_and_at_mut_round_trip() {
        let mut t = Tensor::zeros(&[2, 3]);
        *t.at_mut(&[1, 2]) = 9.0;
        assert_eq!(t.at(&[1, 2]), 9.0);
        assert_eq!(t.as_slice()[5], 9.0);
    }

    #[test]
    fn transpose_swaps_axes() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let tt = t.transposed();
        assert_eq!(tt.dims(), &[3, 2]);
        assert_eq!(tt.at(&[2, 1]), t.at(&[1, 2]));
    }

    #[test]
    fn rows_expose_contiguous_slices() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        assert_eq!(t.row(0), &[1.0, 2.0]);
        assert_eq!(t.row(1), &[3.0, 4.0]);
    }

    #[test]
    fn display_previews_elements() {
        let t = Tensor::from_slice(&[1.0, 2.0]);
        let s = t.to_string();
        assert!(s.contains("1.0000") && s.contains("[2]"));
    }
}
