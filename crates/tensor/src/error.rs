use std::fmt;

/// Error returned by fallible tensor constructors and converters.
///
/// Hot-path operations (arithmetic, matmul, convolution) treat shape
/// mismatches as programming errors and panic instead; see the `# Panics`
/// sections on those methods.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TensorError {
    /// The provided buffer length does not match the product of the shape.
    LengthMismatch {
        /// Number of elements implied by the requested shape.
        expected: usize,
        /// Number of elements actually provided.
        actual: usize,
    },
    /// A shape with zero dimensions (or an otherwise unusable shape) was given
    /// where a non-empty one is required.
    EmptyShape,
    /// A reshape was requested whose element count differs from the source.
    ReshapeMismatch {
        /// Element count of the source tensor.
        from: usize,
        /// Element count implied by the requested shape.
        to: usize,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::LengthMismatch { expected, actual } => write!(
                f,
                "buffer length {actual} does not match shape element count {expected}"
            ),
            TensorError::EmptyShape => write!(f, "shape must have at least one dimension"),
            TensorError::ReshapeMismatch { from, to } => write!(
                f,
                "cannot reshape tensor of {from} elements into shape of {to} elements"
            ),
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let err = TensorError::LengthMismatch {
            expected: 4,
            actual: 3,
        };
        let text = err.to_string();
        assert!(text.contains('3') && text.contains('4'));
        assert!(text.chars().next().unwrap().is_lowercase());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}
