//! Shared harness for the figure-regeneration binaries.
//!
//! Every `fig*` binary in `src/bin/` reproduces one table/figure of the
//! paper (see DESIGN.md's experiment index). This library holds the pieces
//! they share: task construction, the five-method comparison runner, and
//! ASCII rendering helpers.
//!
//! Budgets: set the environment variable `BENCH_QUICK=1` to shrink every
//! experiment to a smoke-test budget (useful in CI); the default budget is
//! sized for minutes-per-figure on a laptop CPU.

pub mod detection;

use baselines::{
    drift_accuracy, reram_v_accuracy, train_awp, train_erm, train_ftna, AwpConfig, Codebook,
    ReRamVConfig, TrainConfig, TrainedModel,
};
use bayesft::{accuracy_vs_sigma, Engine, MethodCurve, SweepTable, SIGMA_GRID};
use datasets::ClassificationDataset;
use models::ModelKind;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use reram::LogNormalDrift;

/// Experiment scale, controlled by `BENCH_QUICK` / `BENCH_MEDIUM`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Full figure budget.
    Full,
    /// Reduced budget for the deep-CNN panels on slow machines.
    Medium,
    /// Smoke-test budget.
    Quick,
}

impl Scale {
    /// Reads the scale from the environment (`BENCH_QUICK=1` wins over
    /// `BENCH_MEDIUM=1`; default is full).
    pub fn from_env() -> Self {
        let flag = |k: &str| std::env::var(k).map(|v| v == "1").unwrap_or(false);
        if flag("BENCH_QUICK") {
            Scale::Quick
        } else if flag("BENCH_MEDIUM") {
            Scale::Medium
        } else {
            Scale::Full
        }
    }

    /// Samples per class for classification tasks.
    pub fn per_class(&self, classes: usize) -> usize {
        match self {
            // Keep total dataset size roughly constant across class counts.
            Scale::Full => (600 / classes).max(8),
            Scale::Medium => (300 / classes).max(6),
            Scale::Quick => (120 / classes).max(4),
        }
    }

    /// ERM/AWP/FTNA training epochs.
    pub fn epochs(&self) -> usize {
        match self {
            Scale::Full => 14,
            Scale::Medium => 8,
            Scale::Quick => 3,
        }
    }

    /// Monte-Carlo trials per sweep point.
    pub fn mc_trials(&self) -> usize {
        match self {
            Scale::Full => 6,
            Scale::Medium => 4,
            Scale::Quick => 2,
        }
    }

    /// BayesFT search trials.
    pub fn bo_trials(&self) -> usize {
        match self {
            Scale::Full => 8,
            Scale::Medium => 5,
            Scale::Quick => 3,
        }
    }
}

/// A classification task instance: generated data plus its geometry.
pub struct Task {
    /// Task label used in figure titles.
    pub name: &'static str,
    /// Training split.
    pub train: ClassificationDataset,
    /// Held-out split.
    pub test: ClassificationDataset,
    /// Image channels (0 ⇒ tabular features).
    pub in_channels: usize,
    /// Image side length (0 ⇒ tabular features).
    pub hw: usize,
    /// Class count.
    pub classes: usize,
}

/// Builds one of the named tasks (`digits`, `shapes`, `signs`) at a scale.
///
/// # Panics
///
/// Panics on an unknown task name.
pub fn make_task(name: &str, scale: Scale, seed: u64) -> Task {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    match name {
        "digits" => {
            let data = datasets::digits(scale.per_class(10), &mut rng);
            let (train, test) = data.split(0.8, &mut rng);
            Task {
                name: "digits",
                train,
                test,
                in_channels: 1,
                hw: 14,
                classes: 10,
            }
        }
        "shapes" => {
            let data = datasets::shapes(scale.per_class(10), &mut rng);
            let (train, test) = data.split(0.8, &mut rng);
            Task {
                name: "shapes",
                train,
                test,
                in_channels: 3,
                hw: 16,
                classes: 10,
            }
        }
        "signs" => {
            let data = datasets::signs(scale.per_class(43).max(6), &mut rng);
            let (train, test) = data.split(0.8, &mut rng);
            Task {
                name: "signs",
                train,
                test,
                in_channels: 3,
                hw: 16,
                classes: 43,
            }
        }
        other => panic!("unknown task {other:?} (expected digits|shapes|signs)"),
    }
}

/// Training configuration for a scale.
pub fn train_config(scale: Scale, seed: u64) -> TrainConfig {
    TrainConfig {
        epochs: scale.epochs(),
        batch_size: 32,
        lr: 0.05,
        momentum: 0.9,
        seed,
    }
}

/// Runs the full five-method comparison of Fig. 3 for one model/task pair
/// and returns the printable sweep table.
///
/// `include_ftna` is false for the traffic-sign task (Fig. 3(i) omits FTNA,
/// mirroring the paper).
pub fn compare_methods(
    kind: ModelKind,
    task: &Task,
    scale: Scale,
    include_ftna: bool,
) -> SweepTable {
    let seed = 42u64;
    let cfg = train_config(scale, seed);
    let trials = scale.mc_trials();
    let mut table = SweepTable::new(format!("{} on {}", kind.label(), task.name));

    // ERM
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let net = kind.build(task.in_channels, task.hw, task.classes, &mut rng);
    let mut erm = train_erm(net, &task.train, &cfg);
    let sweep = accuracy_vs_sigma(&mut erm, &task.test, &SIGMA_GRID, trials, seed);
    table.push(MethodCurve::from_sweep("ERM", &sweep));
    eprintln!("  [done] ERM");

    // FTNA
    if include_ftna {
        let cb = Codebook::hadamard(task.classes);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let net = kind.build(task.in_channels, task.hw, cb.bits(), &mut rng);
        let mut ftna = train_ftna(net, &task.train, &cfg, cb);
        let sweep = accuracy_vs_sigma(&mut ftna, &task.test, &SIGMA_GRID, trials, seed);
        table.push(MethodCurve::from_sweep("FTNA", &sweep));
        eprintln!("  [done] FTNA");
    }

    // ReRAM-V: ERM training, calibrated deployment.
    let reram_cfg = ReRamVConfig::default();
    let points: Vec<(f32, f32, f32)> = SIGMA_GRID
        .iter()
        .map(|&s| {
            let stats = reram_v_accuracy(&mut erm, &task.test, s, trials, seed, &reram_cfg);
            (s, stats.mean, stats.std)
        })
        .collect();
    table.push(MethodCurve {
        method: "ReRAM-V".into(),
        points,
    });
    eprintln!("  [done] ReRAM-V");

    // AWP
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let net = kind.build(task.in_channels, task.hw, task.classes, &mut rng);
    let mut awp = train_awp(net, &task.train, &cfg, &AwpConfig::default());
    let sweep = accuracy_vs_sigma(&mut awp, &task.test, &SIGMA_GRID, trials, seed);
    table.push(MethodCurve::from_sweep("AWP", &sweep));
    eprintln!("  [done] AWP");

    // BayesFT, through the engine: Monte-Carlo drift samples fan out over
    // all cores (bit-identical to a serial run), and the run record keeps
    // per-stage timings for the log.
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let net = kind.build(task.in_channels, task.hw, task.classes, &mut rng);
    let result = Engine::builder()
        .trials(scale.bo_trials())
        .epochs_per_trial((scale.epochs() / 3).max(1))
        .mc_samples(trials)
        .sigma(0.9)
        .train(cfg.clone())
        .seed(seed)
        .parallelism(0)
        .run(net, &task.train, &task.test)
        .expect("engine run");
    let report = result.report;
    let mut bft = result.model;
    let sweep = accuracy_vs_sigma(&mut bft, &task.test, &SIGMA_GRID, trials, seed);
    table.push(MethodCurve::from_sweep("BayesFT", &sweep));
    eprintln!(
        "  [done] BayesFT (alpha = {:?}; train {:.0} ms, eval {:.0} ms over {} workers)",
        report.best_alpha, report.timings.train_ms, report.timings.eval_ms, report.parallelism
    );

    table
}

/// Prints the robustness-gain footer (the "10–100×" headline numbers).
pub fn print_gains(table: &SweepTable, classes: usize) {
    let curves = table.curves();
    let (Some(bft), Some(erm)) = (
        curves.iter().find(|c| c.method == "BayesFT"),
        curves.iter().find(|c| c.method == "ERM"),
    ) else {
        return;
    };
    print!("robustness gain vs ERM (chance-adjusted):");
    for sigma in [0.9f32, 1.2, 1.5] {
        match bayesft::robustness_gain(bft, erm, sigma, classes) {
            Some(g) => print!("  σ={sigma}: {g:.1}x"),
            None => print!("  σ={sigma}: >100x (ERM at chance)"),
        }
    }
    println!();
}

/// Convenience: ERM-trained model for a model/task pair (used by ablation
/// binaries).
pub fn erm_model(kind: ModelKind, task: &Task, scale: Scale, seed: u64) -> TrainedModel {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let net = kind.build(task.in_channels, task.hw, task.classes, &mut rng);
    train_erm(net, &task.train, &train_config(scale, seed))
}

/// Single-σ drift accuracy shortcut.
pub fn drift_point(
    model: &mut TrainedModel,
    data: &ClassificationDataset,
    sigma: f32,
    trials: usize,
) -> f32 {
    drift_accuracy(model, data, &LogNormalDrift::new(sigma), trials, 7).mean
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tasks_build_at_quick_scale() {
        for name in ["digits", "shapes", "signs"] {
            let task = make_task(name, Scale::Quick, 0);
            assert!(!task.train.is_empty() && !task.test.is_empty(), "{name}");
            assert_eq!(task.train.classes(), task.classes);
        }
    }

    #[test]
    fn scale_budgets_are_ordered() {
        assert!(Scale::Full.epochs() > Scale::Quick.epochs());
        assert!(Scale::Full.per_class(10) > Scale::Quick.per_class(10));
    }

    #[test]
    #[should_panic(expected = "unknown task")]
    fn unknown_task_panics() {
        let _ = make_task("imagenet", Scale::Quick, 0);
    }
}
