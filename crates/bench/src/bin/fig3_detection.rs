//! Fig. 3(j): object-detection mAP vs resistance variation, ERM vs BayesFT
//! (the paper finds no direct way to apply ReRAM-V/AWP/FTNA here and
//! compares only these two).
//!
//! Run: `cargo run --release -p bench --bin fig3_detection`

use bayesft::{DropoutSearchSpace, SearchSpace};
use bayesopt::{Acquisition, BayesOpt, SquaredExponential};
use bench::detection::{drift_map, train_detector};
use bench::Scale;
use datasets::ped_scenes;
use models::TinyDetector;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let scale = Scale::from_env();
    let (n_scenes, epochs, bo_trials, mc) = match scale {
        Scale::Full => (40, 60, 6, 4),
        Scale::Medium => (20, 30, 4, 3),
        Scale::Quick => (8, 10, 2, 2),
    };
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let data = ped_scenes(n_scenes, 24, 2, &mut rng);
    let (train, test) = data.split(0.8);

    // ERM detector.
    let mut erm = TinyDetector::new(24, &mut rng);
    train_detector(&mut erm, &train, epochs, 0.01);
    eprintln!("  [done] ERM detector");

    // BayesFT detector: the Algorithm-1 alternation with the drift-mAP
    // objective. (The detector's typed decode methods keep this loop
    // inline rather than going through `bayesft::optimize_dropout`, whose
    // closures see only `&mut dyn Layer`.)
    let mut bft = TinyDetector::new(24, &mut rng);
    let space = DropoutSearchSpace::probe(&mut bft);
    let epochs_per_trial = (epochs / bo_trials).max(1);
    let mut bo = BayesOpt::new(space.dim(), SquaredExponential::isotropic(1.0, 0.3))
        .acquisition(Acquisition::PosteriorMean);
    let mut bo_rng = ChaCha8Rng::seed_from_u64(6);
    for t in 0..bo_trials {
        let alpha = bo.suggest(&mut bo_rng).expect("GP fit");
        space
            .apply(&mut bft, &alpha)
            .expect("alpha matches probed dimension");
        train_detector(&mut bft, &train, epochs_per_trial, 0.01);
        let objective = drift_map(&mut bft, &test, 0.3, mc, 60 + t as u64).mean;
        bo.tell(alpha, objective as f64);
    }
    let (alpha_star, _) = bo.best_observed().expect("trials ran");
    space
        .apply(&mut bft, &alpha_star)
        .expect("alpha matches probed dimension");
    train_detector(&mut bft, &train, epochs_per_trial, 0.01);
    eprintln!("  [done] BayesFT detector (alpha = {alpha_star:?})");

    // Sweep: mAP vs σ on the paper's 0–0.8 axis.
    println!("Fig. 3(j) — detection mAP vs resistance variation (PennFudan-like scenes)");
    println!(
        "{:<10}{:>8}{:>8}{:>8}{:>8}{:>8}",
        "method", 0.0, 0.2, 0.4, 0.6, 0.8
    );
    for (label, det) in [("ERM", &mut erm), ("BayesFT", &mut bft)] {
        print!("{label:<10}");
        for sigma in [0.0f32, 0.2, 0.4, 0.6, 0.8] {
            let stats = drift_map(det, &test, sigma, mc, 99);
            print!("{:>8.1}", stats.mean * 100.0);
        }
        println!();
    }
    println!("expected shape: both fall with σ; BayesFT dominates ERM increasingly");
}
