//! Fig. 3(a–i): five-method comparison (ERM, FTNA, ReRAM-V, AWP, BayesFT)
//! across models and tasks.
//!
//! Run: `cargo run --release -p bench --bin fig3_compare -- <panel>` where
//! `<panel>` is one of:
//! `mlp-digits` (3a), `lenet-digits` (3b), `alexnet-shapes` (3c),
//! `resnet18-shapes` (3d), `vgg11-shapes` (3e), `preact18-shapes` (3f),
//! `preact50-shapes` (3g), `preact152-shapes` (3h), `stn-signs` (3i),
//! or `all`.

use bench::{compare_methods, make_task, print_gains, Scale};
use models::ModelKind;

fn panel(name: &str) -> Option<(ModelKind, &'static str, bool)> {
    // (model, task, include_ftna)
    Some(match name {
        "mlp-digits" => (ModelKind::Mlp, "digits", true),
        "lenet-digits" => (ModelKind::LeNet5, "digits", true),
        "alexnet-shapes" => (ModelKind::AlexNet, "shapes", true),
        "resnet18-shapes" => (ModelKind::ResNet18, "shapes", true),
        "vgg11-shapes" => (ModelKind::Vgg11, "shapes", true),
        "preact18-shapes" => (ModelKind::PreAct18, "shapes", true),
        "preact50-shapes" => (ModelKind::PreAct50, "shapes", true),
        "preact152-shapes" => (ModelKind::PreAct152, "shapes", true),
        // Fig. 3(i): the paper omits FTNA on GTSRB.
        "stn-signs" => (ModelKind::Stn, "signs", false),
        _ => return None,
    })
}

const ALL: [&str; 9] = [
    "mlp-digits",
    "lenet-digits",
    "alexnet-shapes",
    "resnet18-shapes",
    "vgg11-shapes",
    "preact18-shapes",
    "preact50-shapes",
    "preact152-shapes",
    "stn-signs",
];

fn run(name: &str, scale: Scale) {
    let Some((kind, task_name, include_ftna)) = panel(name) else {
        eprintln!("unknown panel {name:?}; options: {ALL:?} or all");
        std::process::exit(2);
    };
    eprintln!("== {name} ==");
    let task = make_task(task_name, scale, 11);
    let table = compare_methods(kind, &task, scale, include_ftna);
    println!("{table}");
    print_gains(&table, task.classes);
    println!();
}

fn main() {
    let scale = Scale::from_env();
    let which = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "mlp-digits".into());
    if which == "all" {
        for name in ALL {
            run(name, scale);
        }
    } else {
        run(&which, scale);
    }
}
