//! Ablation (beyond the paper): acquisition-function choice in the BayesFT
//! search — the paper's posterior-mean rule vs expected improvement, UCB,
//! and pure random search, on the same trial budget.
//!
//! Run: `cargo run --release -p bench --bin ablate_acquisition`

use baselines::TrainConfig;
use bayesft::{Engine, SearchSpace};
use bayesopt::Acquisition;
use bench::{drift_point, make_task, Scale};
use models::{Mlp, MlpConfig};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn main() {
    let scale = Scale::from_env();
    let task = make_task("digits", scale, 21);
    let input_dim = task.in_channels * task.hw * task.hw;
    let eval_sigma = 0.9f32;
    let trials = scale.mc_trials().max(4);

    println!("Acquisition ablation — MLP on digits, drift accuracy at σ = {eval_sigma}");
    println!("{:<20}{:>12}{:>14}", "acquisition", "acc@σ=0", "acc@σ=0.9");

    let variants: [(&str, Option<Acquisition>); 4] = [
        ("posterior_mean", Some(Acquisition::PosteriorMean)),
        (
            "expected_improv",
            Some(Acquisition::ExpectedImprovement { xi: 0.01 }),
        ),
        (
            "ucb_k2",
            Some(Acquisition::UpperConfidenceBound { kappa: 2.0 }),
        ),
        ("random_search", None),
    ];

    for (label, acq) in variants {
        let mut rng = ChaCha8Rng::seed_from_u64(31);
        let net = Box::new(Mlp::new(
            &MlpConfig::new(input_dim, task.classes).hidden(48),
            &mut rng,
        ));
        let mut model = match acq {
            Some(acquisition) => {
                Engine::builder()
                    .trials(scale.bo_trials())
                    .epochs_per_trial((scale.epochs() / 3).max(1))
                    .mc_samples(trials)
                    .sigma(0.6)
                    .acquisition(acquisition)
                    .train(bench::train_config(scale, 31))
                    .seed(31)
                    .parallelism(0) // one MC worker per core; results match serial
                    .run(net, &task.train, &task.test)
                    .expect("engine run")
                    .model
            }
            None => random_search(net, &task, scale, trials),
        };
        let clean = drift_point(&mut model, &task.test, 0.0, trials);
        let drifted = drift_point(&mut model, &task.test, eval_sigma, trials);
        println!(
            "{label:<20}{:>11.1}%{:>13.1}%",
            clean * 100.0,
            drifted * 100.0
        );
    }
    println!(
        "expected shape: all BO rules ≥ random search; posterior-mean competitive (paper's choice)"
    );
}

/// Random-search control: same alternation as Algorithm 1 but α is sampled
/// uniformly instead of via the GP posterior.
fn random_search(
    mut net: Box<dyn nn::Layer>,
    task: &bench::Task,
    scale: Scale,
    mc: usize,
) -> baselines::TrainedModel {
    let space = bayesft::DropoutSearchSpace::probe(net.as_mut());
    let objective = bayesft::DriftObjective::new(0.6, mc);
    let cfg = TrainConfig {
        epochs: (scale.epochs() / 3).max(1),
        ..bench::train_config(scale, 31)
    };
    let mut rng = ChaCha8Rng::seed_from_u64(77);
    let mut best = (Vec::new(), f32::NEG_INFINITY);
    for t in 0..scale.bo_trials() {
        let alpha: Vec<f64> = (0..space.dim()).map(|_| rng.gen::<f64>()).collect();
        space
            .apply(net.as_mut(), &alpha)
            .expect("alpha matches probed dimension");
        let _ = baselines::train_epochs(net.as_mut(), &task.train, &cfg);
        let score = objective.evaluate(net.as_mut(), &task.test, t as u64).mean;
        if score > best.1 {
            best = (alpha, score);
        }
    }
    space
        .apply(net.as_mut(), &best.0)
        .expect("alpha matches probed dimension");
    let _ = baselines::train_epochs(net.as_mut(), &task.train, &cfg);
    baselines::TrainedModel {
        net,
        decoder: baselines::OutputDecoder::Softmax,
        method: "random_search",
    }
}
