//! Ablation (beyond the paper): does an architecture searched under
//! log-normal drift stay robust under *other* fault distributions
//! (additive Gaussian, uniform multiplicative, stuck-at defects)?
//! The paper claims its methodology "can be seamlessly extended to other
//! weight drifting distributions" — this bench quantifies the transfer.
//!
//! Run: `cargo run --release -p bench --bin ablate_drift_models`

use baselines::{drift_accuracy, train_erm};
use bayesft::{BayesFt, BayesFtConfig};
use bench::{make_task, Scale};
use models::{Mlp, MlpConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use reram::{DriftModel, GaussianAdditive, LogNormalDrift, StuckAtFault, UniformDrift};

fn main() {
    let scale = Scale::from_env();
    let task = make_task("digits", scale, 29);
    let input_dim = task.in_channels * task.hw * task.hw;
    let trials = scale.mc_trials().max(4);

    // ERM control.
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let net = Box::new(Mlp::new(
        &MlpConfig::new(input_dim, task.classes).hidden(48),
        &mut rng,
    ));
    let mut erm = train_erm(net, &task.train, &bench::train_config(scale, 1));

    // BayesFT searched under the paper's log-normal model only.
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let net = Box::new(Mlp::new(
        &MlpConfig::new(input_dim, task.classes).hidden(48),
        &mut rng,
    ));
    let cfg = BayesFtConfig {
        trials: scale.bo_trials(),
        epochs_per_trial: (scale.epochs() / 3).max(1),
        mc_samples: trials,
        sigma: 0.6,
        train: bench::train_config(scale, 1),
        seed: 1,
        ..BayesFtConfig::default()
    };
    let mut bft = BayesFt::new(cfg)
        .run(net, &task.train, &task.test)
        .expect("GP fit")
        .model;

    let faults: Vec<(&str, Box<dyn DriftModel>)> = vec![
        ("lognormal σ=0.9", Box::new(LogNormalDrift::new(0.9))),
        ("gaussian σ=0.3", Box::new(GaussianAdditive::new(0.3))),
        ("uniform δ=0.8", Box::new(UniformDrift::new(0.8))),
        (
            "stuck-at 10%/2%",
            Box::new(StuckAtFault::new(0.10, 0.02, 2.0)),
        ),
    ];

    println!("Drift-model transfer — architecture searched under log-normal only");
    println!("{:<20}{:>10}{:>10}", "fault model", "ERM", "BayesFT");
    for (label, fault) in &faults {
        let e = drift_accuracy(&mut erm, &task.test, fault.as_ref(), trials, 44).mean;
        let b = drift_accuracy(&mut bft, &task.test, fault.as_ref(), trials, 44).mean;
        println!("{label:<20}{:>9.1}%{:>9.1}%", e * 100.0, b * 100.0);
    }
    println!("expected shape: BayesFT's margin transfers to unseen fault distributions");
}
