//! Ablation (beyond the paper): does an architecture searched under
//! log-normal drift stay robust under *other* fault distributions
//! (additive Gaussian, uniform multiplicative, stuck-at defects, quantized
//! analog pipelines)? The paper claims its methodology "can be seamlessly
//! extended to other weight drifting distributions" — this bench
//! quantifies the transfer, and adds a third arm that takes the claim
//! literally: a search whose objective averages over a *mixture* of fault
//! models (`DriftObjective::from_specs`), which the engine accepts like
//! any other objective.
//!
//! Fault models are given in the shared [`reram::FaultSpec`] grammar —
//! the same strings campaign files use — and the transfer list can be
//! overridden from the command line:
//!
//! Run: `cargo run --release -p bench --bin ablate_drift_models`
//!   or: `... --bin ablate_drift_models -- lognormal:0.9 quantize:8+devvar:0.2`

use baselines::{drift_accuracy, train_erm};
use bayesft::{DriftObjective, Engine};
use bench::{make_task, Scale};
use models::{Mlp, MlpConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use reram::{DriftModel, FaultSpec};

/// Fault mix the third search arm optimizes for.
const MIXTURE_SPECS: [&str; 3] = ["lognormal:0.6", "gaussian:0.2", "stuckat:0.05,0.01,2"];

/// Default off-distribution transfer suite.
const TRANSFER_SPECS: [&str; 5] = [
    "lognormal:0.9",
    "gaussian:0.3",
    "uniform:0.8",
    "stuckat:0.1,0.02,2",
    "quantize:16+lognormal:0.4",
];

fn parse_specs(specs: &[String]) -> Vec<FaultSpec> {
    specs
        .iter()
        .map(|s| {
            s.parse::<FaultSpec>()
                .unwrap_or_else(|e| panic!("bad fault spec: {e}"))
        })
        .collect()
}

fn main() {
    let scale = Scale::from_env();
    let task = make_task("digits", scale, 29);
    let input_dim = task.in_channels * task.hw * task.hw;
    let trials = scale.mc_trials().max(4);

    let fresh_net = |seed: u64| {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        Box::new(Mlp::new(
            &MlpConfig::new(input_dim, task.classes).hidden(48),
            &mut rng,
        ))
    };

    // ERM control.
    let mut erm = train_erm(fresh_net(1), &task.train, &bench::train_config(scale, 1));

    let search = || {
        Engine::builder()
            .trials(scale.bo_trials())
            .epochs_per_trial((scale.epochs() / 3).max(1))
            .train(bench::train_config(scale, 1))
            .seed(1)
            .parallelism(0)
    };

    // BayesFT searched under the paper's log-normal model only.
    let mut bft = search()
        .objective(DriftObjective::with_sigmas(vec![0.0, 0.3, 0.6], trials))
        .run(fresh_net(1), &task.train, &task.test)
        .expect("engine run")
        .model;

    // BayesFT searched under a mixture of fault distributions, built from
    // the same spec strings a campaign file would use.
    let mixture_specs = parse_specs(&MIXTURE_SPECS.map(String::from));
    let mixture = DriftObjective::from_specs(&mixture_specs, trials).expect("mixture objective");
    let mixed = search()
        .objective(mixture)
        .run(fresh_net(1), &task.train, &task.test)
        .expect("engine run");
    eprintln!(
        "  mixture search: {} trials, eval {:.0} ms total",
        mixed.report.trials.len(),
        mixed.report.timings.eval_ms
    );
    let mut mixed = mixed.model;

    // Transfer suite: CLI args override the default list.
    let args: Vec<String> = std::env::args().skip(1).collect();
    let transfer_specs = if args.is_empty() {
        parse_specs(&TRANSFER_SPECS.map(String::from))
    } else {
        parse_specs(&args)
    };
    let faults: Vec<(String, Box<dyn DriftModel>)> = transfer_specs
        .iter()
        .map(|spec| (spec.to_string(), spec.build().expect("validated spec")))
        .collect();

    println!("Drift-model transfer — searched under log-normal vs fault mixture");
    println!(
        "{:<28}{:>10}{:>12}{:>12}",
        "fault model", "ERM", "BayesFT-LN", "BayesFT-mix"
    );
    for (label, fault) in &faults {
        let e = drift_accuracy(&mut erm, &task.test, fault.as_ref(), trials, 44).mean;
        let b = drift_accuracy(&mut bft, &task.test, fault.as_ref(), trials, 44).mean;
        let m = drift_accuracy(&mut mixed, &task.test, fault.as_ref(), trials, 44).mean;
        println!(
            "{label:<28}{:>9.1}%{:>11.1}%{:>11.1}%",
            e * 100.0,
            b * 100.0,
            m * 100.0
        );
    }
    println!("expected shape: BayesFT's margin transfers; the mixture arm holds up best off-distribution");
}
