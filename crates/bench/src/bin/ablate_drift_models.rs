//! Ablation (beyond the paper): does an architecture searched under
//! log-normal drift stay robust under *other* fault distributions
//! (additive Gaussian, uniform multiplicative, stuck-at defects)?
//! The paper claims its methodology "can be seamlessly extended to other
//! weight drifting distributions" — this bench quantifies the transfer,
//! and adds a third arm that takes the claim literally: a search whose
//! objective averages over a *mixture* of fault models
//! (`DriftObjective::with_models`), which the engine accepts like any
//! other objective.
//!
//! Run: `cargo run --release -p bench --bin ablate_drift_models`

use std::sync::Arc;

use baselines::{drift_accuracy, train_erm};
use bayesft::{DriftObjective, Engine};
use bench::{make_task, Scale};
use models::{Mlp, MlpConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use reram::{DriftModel, GaussianAdditive, LogNormalDrift, StuckAtFault, UniformDrift};

fn main() {
    let scale = Scale::from_env();
    let task = make_task("digits", scale, 29);
    let input_dim = task.in_channels * task.hw * task.hw;
    let trials = scale.mc_trials().max(4);

    let fresh_net = |seed: u64| {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        Box::new(Mlp::new(
            &MlpConfig::new(input_dim, task.classes).hidden(48),
            &mut rng,
        ))
    };

    // ERM control.
    let mut erm = train_erm(fresh_net(1), &task.train, &bench::train_config(scale, 1));

    let search = || {
        Engine::builder()
            .trials(scale.bo_trials())
            .epochs_per_trial((scale.epochs() / 3).max(1))
            .train(bench::train_config(scale, 1))
            .seed(1)
            .parallelism(0)
    };

    // BayesFT searched under the paper's log-normal model only.
    let mut bft = search()
        .objective(DriftObjective::with_sigmas(vec![0.0, 0.3, 0.6], trials))
        .run(fresh_net(1), &task.train, &task.test)
        .expect("engine run")
        .model;

    // BayesFT searched under a mixture of fault distributions.
    let mixture = DriftObjective::with_models(
        vec![
            Arc::new(LogNormalDrift::new(0.6)),
            Arc::new(GaussianAdditive::new(0.2)),
            Arc::new(StuckAtFault::new(0.05, 0.01, 2.0)),
        ],
        trials,
    );
    let mixed = search()
        .objective(mixture)
        .run(fresh_net(1), &task.train, &task.test)
        .expect("engine run");
    eprintln!(
        "  mixture search: {} trials, eval {:.0} ms total",
        mixed.report.trials.len(),
        mixed.report.timings.eval_ms
    );
    let mut mixed = mixed.model;

    let faults: Vec<(&str, Box<dyn DriftModel>)> = vec![
        ("lognormal σ=0.9", Box::new(LogNormalDrift::new(0.9))),
        ("gaussian σ=0.3", Box::new(GaussianAdditive::new(0.3))),
        ("uniform δ=0.8", Box::new(UniformDrift::new(0.8))),
        (
            "stuck-at 10%/2%",
            Box::new(StuckAtFault::new(0.10, 0.02, 2.0)),
        ),
    ];

    println!("Drift-model transfer — searched under log-normal vs fault mixture");
    println!(
        "{:<20}{:>10}{:>12}{:>12}",
        "fault model", "ERM", "BayesFT-LN", "BayesFT-mix"
    );
    for (label, fault) in &faults {
        let e = drift_accuracy(&mut erm, &task.test, fault.as_ref(), trials, 44).mean;
        let b = drift_accuracy(&mut bft, &task.test, fault.as_ref(), trials, 44).mean;
        let m = drift_accuracy(&mut mixed, &task.test, fault.as_ref(), trials, 44).mean;
        println!(
            "{label:<20}{:>9.1}%{:>11.1}%{:>11.1}%",
            e * 100.0,
            b * 100.0,
            m * 100.0
        );
    }
    println!("expected shape: BayesFT's margin transfers; the mixture arm holds up best off-distribution");
}
