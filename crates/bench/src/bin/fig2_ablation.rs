//! Fig. 2: ablation of architectural factors for drift tolerance, MLP on
//! the digit task.
//!
//! Panels: (a) dropout vs alpha-dropout vs none, (b) normalization
//! schemes, (c) model depth 3/6/9, (d) activation functions.
//!
//! Run: `cargo run --release -p bench --bin fig2_ablation -- [dropout|norm|depth|activation|all]`

use baselines::train_erm;
use bayesft::{accuracy_vs_sigma, MethodCurve, SweepTable, SIGMA_GRID};
use bench::{make_task, train_config, Scale, Task};
use models::{DropoutKind, Mlp, MlpConfig};
use nn::{Activation, NormKind};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn sweep_variant(label: &str, cfg: &MlpConfig, task: &Task, scale: Scale) -> MethodCurve {
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let net = Box::new(Mlp::new(cfg, &mut rng));
    let mut model = train_erm(net, &task.train, &train_config(scale, 7));
    let sweep = accuracy_vs_sigma(&mut model, &task.test, &SIGMA_GRID, scale.mc_trials(), 7);
    eprintln!("  [done] {label}");
    MethodCurve::from_sweep(label, &sweep)
}

fn base_config(task: &Task) -> MlpConfig {
    MlpConfig::new(task.in_channels * task.hw * task.hw, task.classes).hidden(48)
}

fn panel_dropout(task: &Task, scale: Scale) -> SweepTable {
    let mut table = SweepTable::new("Fig. 2(a) — dropout ablation (MLP, digits)");
    table.push(sweep_variant(
        "original",
        &base_config(task).dropout(DropoutKind::None),
        task,
        scale,
    ));
    table.push(sweep_variant(
        "dropout-0.3",
        &base_config(task).initial_rate(0.3),
        task,
        scale,
    ));
    table.push(sweep_variant(
        "alpha-drop-0.15",
        &base_config(task).dropout(DropoutKind::Alpha(0.15)),
        task,
        scale,
    ));
    table
}

fn panel_norm(task: &Task, scale: Scale) -> SweepTable {
    let mut table = SweepTable::new("Fig. 2(b) — normalization ablation (MLP, digits)");
    for norm in NormKind::all() {
        table.push(sweep_variant(
            &norm.to_string(),
            &base_config(task).norm(norm).dropout(DropoutKind::None),
            task,
            scale,
        ));
    }
    table
}

fn panel_depth(task: &Task, scale: Scale) -> SweepTable {
    let mut table = SweepTable::new("Fig. 2(c) — depth ablation (MLP, digits)");
    for depth in [3usize, 6, 9] {
        table.push(sweep_variant(
            &format!("{depth}-layer"),
            &base_config(task).depth(depth).dropout(DropoutKind::None),
            task,
            scale,
        ));
    }
    table
}

fn panel_activation(task: &Task, scale: Scale) -> SweepTable {
    let mut table = SweepTable::new("Fig. 2(d) — activation ablation (MLP, digits)");
    for act in Activation::all() {
        table.push(sweep_variant(
            &act.to_string(),
            &base_config(task).activation(act).dropout(DropoutKind::None),
            task,
            scale,
        ));
    }
    table
}

fn main() {
    let scale = Scale::from_env();
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".into());
    let task = make_task("digits", scale, 3);
    let panels: Vec<SweepTable> = match which.as_str() {
        "dropout" => vec![panel_dropout(&task, scale)],
        "norm" => vec![panel_norm(&task, scale)],
        "depth" => vec![panel_depth(&task, scale)],
        "activation" => vec![panel_activation(&task, scale)],
        "all" => vec![
            panel_dropout(&task, scale),
            panel_norm(&task, scale),
            panel_depth(&task, scale),
            panel_activation(&task, scale),
        ],
        other => {
            eprintln!("unknown panel {other:?}; expected dropout|norm|depth|activation|all");
            std::process::exit(2);
        }
    };
    for table in panels {
        println!("{table}");
    }
    println!("expected shapes: dropout >> none; every norm ≤ none; deeper falls faster; activations ≈ tied");
}
