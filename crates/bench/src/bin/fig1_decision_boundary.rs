//! Fig. 1: decision-boundary shift on a 2-D binary dataset as memristance
//! drift grows.
//!
//! Trains an MLP on two-moons, then renders the decision regions (ASCII)
//! and accuracy for one drift sample at each σ — the paper's three panels.
//!
//! Run: `cargo run --release -p bench --bin fig1_decision_boundary`

use baselines::{train_erm, TrainConfig};
use bench::Scale;
use datasets::moons;
use models::{Mlp, MlpConfig};
use nn::{Layer, Mode};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use reram::{FaultInjector, LogNormalDrift};
use tensor::Tensor;

const GRID_W: usize = 48;
const GRID_H: usize = 20;

fn render_boundary(net: &mut dyn Layer, data: &datasets::ClassificationDataset) -> (String, f32) {
    let (x_min, x_max, y_min, y_max) = (-1.8f32, 2.8, -1.5, 2.0);
    let mut canvas = String::new();
    for gy in 0..GRID_H {
        for gx in 0..GRID_W {
            let x = x_min + (x_max - x_min) * gx as f32 / (GRID_W - 1) as f32;
            let y = y_max - (y_max - y_min) * gy as f32 / (GRID_H - 1) as f32;
            let logits = net.forward(
                &Tensor::from_vec(vec![x, y], &[1, 2]).expect("2 features"),
                Mode::Eval,
            );
            canvas.push(if logits.at(&[0, 0]) > logits.at(&[0, 1]) {
                '.'
            } else {
                '#'
            });
        }
        canvas.push('\n');
    }
    // Accuracy on the dataset under the same (drifted) weights.
    let logits = net.forward(data.images(), Mode::Eval);
    let acc = metrics::accuracy_from_logits(&logits, data.labels());
    (canvas, acc)
}

fn main() {
    let scale = Scale::from_env();
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let n = if scale == Scale::Quick { 120 } else { 400 };
    let data = moons(n, 0.12, &mut rng);

    let net = Box::new(Mlp::new(&MlpConfig::new(2, 2).hidden(32), &mut rng));
    let cfg = TrainConfig {
        epochs: if scale == Scale::Quick { 10 } else { 40 },
        lr: 0.1,
        ..TrainConfig::default()
    };
    let mut model = train_erm(net, &data, &cfg);

    println!("Fig. 1 — decision boundary shift under memristance drift (two-moons)");
    println!("legend: '.' = class 0 region, '#' = class 1 region\n");
    for sigma in [0.0f32, 0.5, 1.0] {
        let snapshot = FaultInjector::snapshot(model.net.as_mut());
        let mut drift_rng = ChaCha8Rng::seed_from_u64(17);
        FaultInjector::inject(
            model.net.as_mut(),
            &LogNormalDrift::new(sigma),
            &mut drift_rng,
        );
        let (canvas, acc) = render_boundary(model.net.as_mut(), &data);
        snapshot
            .restore(model.net.as_mut())
            .expect("snapshot was taken from this network");
        println!("--- σ = {sigma} (accuracy {:.1}%) ---", acc * 100.0);
        println!("{canvas}");
    }
}
