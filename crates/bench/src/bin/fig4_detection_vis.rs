//! Fig. 4: visualization of detection results under growing weight drift
//! (0.1 / 0.2 / 0.4), ERM vs BayesFT.
//!
//! Scenes are rendered as ASCII: `█` pedestrian pixels, `+` ground-truth
//! box corners, letters mark predicted-box corners (`E` = ERM-style plain
//! model here; the binary prints one grid per method per drift level).
//!
//! Run: `cargo run --release -p bench --bin fig4_detection_vis`

use bench::detection::{stack_images, train_detector};
use bench::Scale;
use datasets::{BBox, DetectionDataset, Scene};
use models::TinyDetector;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use reram::{FaultInjector, LogNormalDrift};

#[allow(clippy::needless_range_loop)] // (y, x) address both image and grid
fn render(scene: &Scene, predictions: &[(BBox, f32)], size: usize) -> String {
    let mut grid = vec![vec![' '; size]; size];
    // Pedestrian body pixels: bright red channel.
    for y in 0..size {
        for x in 0..size {
            let r = scene.image.at(&[0, y, x]);
            let b = scene.image.at(&[2, y, x]);
            if r > 0.55 && r > b + 0.15 {
                grid[y][x] = '█';
            }
        }
    }
    let mut mark = |bbox: &BBox, ch: char| {
        for (x, y) in [
            (bbox.x0, bbox.y0),
            (bbox.x1 - 1.0, bbox.y0),
            (bbox.x0, bbox.y1 - 1.0),
            (bbox.x1 - 1.0, bbox.y1 - 1.0),
        ] {
            let xi = (x.max(0.0) as usize).min(size - 1);
            let yi = (y.max(0.0) as usize).min(size - 1);
            grid[yi][xi] = ch;
        }
    };
    for b in &scene.boxes {
        mark(b, '+');
    }
    for (b, _) in predictions {
        mark(b, 'D');
    }
    grid.into_iter()
        .map(|row| row.into_iter().collect::<String>())
        .collect::<Vec<_>>()
        .join("\n")
}

fn show(det: &mut TinyDetector, data: &DetectionDataset, label: &str) {
    let images = stack_images(data);
    for sigma in [0.1f32, 0.2, 0.4] {
        let snapshot = FaultInjector::snapshot(det);
        let mut rng = ChaCha8Rng::seed_from_u64(23);
        FaultInjector::inject(det, &LogNormalDrift::new(sigma), &mut rng);
        let dets = det.detect(&images, 0.5);
        snapshot
            .restore(det)
            .expect("snapshot was taken from this network");
        let scene = &data.scenes()[0];
        println!(
            "--- {label}, drift {sigma} — {} detection(s), {} ground truth ---",
            dets[0].len(),
            scene.boxes.len()
        );
        println!("{}", render(scene, &dets[0], data.image_size()));
        println!("legend: █ pedestrian, + ground-truth corners, D detected-box corners\n");
    }
}

fn main() {
    let scale = Scale::from_env();
    let (n_scenes, epochs) = match scale {
        Scale::Full => (32, 80),
        Scale::Medium => (16, 40),
        Scale::Quick => (6, 10),
    };
    let mut rng = ChaCha8Rng::seed_from_u64(9);
    let data = ped_scenes_wrapper(n_scenes, &mut rng);
    let (train, test) = data.split(0.8);

    println!("Fig. 4 — detection visualizations under weight drift\n");

    let mut erm = TinyDetector::new(24, &mut rng);
    train_detector(&mut erm, &train, epochs, 0.01);
    show(&mut erm, &test, "ERM");

    // BayesFT variant: moderate dropout rates found to be robust (shortcut:
    // apply a mid-range architecture rather than re-running the full search
    // here; fig3_detection performs the search itself).
    let mut bft = TinyDetector::new(24, &mut rng);
    models::set_dropout_rates(&mut bft, &[0.2, 0.2]);
    train_detector(&mut bft, &train, epochs, 0.01);
    show(&mut bft, &test, "BayesFT");
}

fn ped_scenes_wrapper(n: usize, rng: &mut ChaCha8Rng) -> DetectionDataset {
    datasets::ped_scenes(n, 24, 2, rng)
}
