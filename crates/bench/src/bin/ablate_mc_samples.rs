//! Ablation (beyond the paper): Monte-Carlo sample count `T` in the Eq. (4)
//! objective estimator — estimator noise vs search quality.
//!
//! Run: `cargo run --release -p bench --bin ablate_mc_samples`

use baselines::train_erm;
use bayesft::{BayesFt, BayesFtConfig, DriftObjective};
use bench::{drift_point, make_task, Scale};
use models::{Mlp, MlpConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let scale = Scale::from_env();
    let task = make_task("digits", scale, 13);
    let input_dim = task.in_channels * task.hw * task.hw;

    // Part 1: estimator standard deviation vs T on a fixed trained model.
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let net = Box::new(Mlp::new(
        &MlpConfig::new(input_dim, task.classes).hidden(48),
        &mut rng,
    ));
    let mut model = train_erm(net, &task.train, &bench::train_config(scale, 3));
    println!("Objective-estimator noise vs Monte-Carlo samples T (σ = 0.6)");
    println!("{:<8}{:>12}{:>12}", "T", "mean", "std");
    for t in [1usize, 2, 4, 8, 16] {
        let stats = DriftObjective::new(0.6, t).evaluate(model.net.as_mut(), &task.test, 5);
        println!("{t:<8}{:>11.1}%{:>11.3}", stats.mean * 100.0, stats.std);
    }

    // Part 2: end-to-end search quality vs T.
    println!("\nSearch quality vs T (drift accuracy of the found architecture at σ = 0.9)");
    println!("{:<8}{:>14}", "T", "acc@σ=0.9");
    for t in [1usize, 4, 8] {
        let mut rng = ChaCha8Rng::seed_from_u64(17);
        let net = Box::new(Mlp::new(
            &MlpConfig::new(input_dim, task.classes).hidden(48),
            &mut rng,
        ));
        let cfg = BayesFtConfig {
            trials: scale.bo_trials(),
            epochs_per_trial: (scale.epochs() / 3).max(1),
            mc_samples: t,
            sigma: 0.6,
            train: bench::train_config(scale, 17),
            seed: 17,
            ..BayesFtConfig::default()
        };
        let mut model = BayesFt::new(cfg)
            .run(net, &task.train, &task.test)
            .expect("GP fit")
            .model;
        let acc = drift_point(&mut model, &task.test, 0.9, scale.mc_trials().max(4));
        println!("{t:<8}{:>13.1}%", acc * 100.0);
    }
    println!("expected shape: std shrinks ~1/√T; search quality saturates after moderate T");
}
