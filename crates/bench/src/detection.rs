//! Shared pieces of the object-detection experiments (Fig. 3(j), Fig. 4).

use datasets::DetectionDataset;
use metrics::{mean_average_precision, Detection};
use models::{DetectionLoss, TinyDetector};
use nn::{Layer, Mode, Optimizer};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use reram::{LogNormalDrift, McStats};
use tensor::Tensor;

/// Stacks all scene images of a dataset into one `[N, 3, H, W]` batch.
pub fn stack_images(data: &DetectionDataset) -> Tensor {
    let size = data.image_size();
    let mut buf = Vec::with_capacity(data.len() * 3 * size * size);
    for scene in data.scenes() {
        buf.extend_from_slice(scene.image.as_slice());
    }
    Tensor::from_vec(buf, &[data.len(), 3, size, size]).expect("scene sizes are uniform")
}

/// Trains a detector with plain ERM for `epochs` full-batch Adam steps.
///
/// Runs on the workspace train path (`forward_ws`/`backward_ws` + in-place
/// Adam), so the per-step layer allocations are gone; the detection loss
/// itself still builds its gradient tensor per step.
pub fn train_detector(det: &mut TinyDetector, data: &DetectionDataset, epochs: usize, lr: f32) {
    let images = stack_images(data);
    let loss_fn = DetectionLoss::default();
    let hw = data.image_size();
    let mut opt = nn::Adam::new(lr);
    let mut ws = nn::Workspace::new();
    for _ in 0..epochs {
        let raw = det.forward_ws(&images, Mode::Train, &mut ws);
        let (_, grad) = loss_fn.loss_and_grad(&raw, data.scenes(), hw);
        ws.recycle(raw);
        let grad_in = det.backward_ws(&grad, &mut ws);
        ws.recycle(grad_in);
        opt.step(det);
    }
}

/// mAP@0.5 of a detector on a dataset at its current weights.
pub fn detector_map(det: &mut TinyDetector, data: &DetectionDataset, threshold: f32) -> f32 {
    let images = stack_images(data);
    let per_image = det.detect(&images, threshold);
    let mut detections = Vec::new();
    for (image, dets) in per_image.into_iter().enumerate() {
        for (bbox, score) in dets {
            detections.push(Detection { image, bbox, score });
        }
    }
    let ground_truth: Vec<_> = data.scenes().iter().map(|s| s.boxes.clone()).collect();
    mean_average_precision(&detections, &ground_truth)
}

/// Monte-Carlo mAP under log-normal drift at `sigma`.
pub fn drift_map(
    det: &mut TinyDetector,
    data: &DetectionDataset,
    sigma: f32,
    trials: usize,
    seed: u64,
) -> McStats {
    // `reram::monte_carlo` passes the network as `&mut dyn Layer`, which
    // cannot reach TinyDetector's typed decode methods, so the
    // snapshot/inject/restore loop is inlined here.
    let snapshot = reram::FaultInjector::snapshot(det);
    let mut values = Vec::with_capacity(trials);
    for t in 0..trials {
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ (0x9E37_79B9u64.wrapping_mul(t as u64 + 1)));
        reram::FaultInjector::inject(det, &LogNormalDrift::new(sigma), &mut rng);
        values.push(detector_map(det, data, 0.5));
        snapshot
            .restore(det)
            .expect("snapshot was taken from this network");
    }
    McStats::from_values(values)
}
