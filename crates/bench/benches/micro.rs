//! Criterion micro-benchmarks for the performance-critical kernels under
//! every figure: drift injection, Monte-Carlo objective evaluation, GP
//! fit + suggest, convolution forward/backward, and full training steps.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use models::{LeNet5, Mlp, MlpConfig};
use nn::{Layer, Mode};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use reram::{FaultInjector, LogNormalDrift};
use tensor::{Matmul, Tensor};

fn bench_drift_injection(c: &mut Criterion) {
    let mut group = c.benchmark_group("drift_injection");
    group.sample_size(20);
    for depth in [3usize, 9] {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut net = Mlp::new(&MlpConfig::new(196, 10).depth(depth).hidden(64), &mut rng);
        let snapshot = FaultInjector::snapshot(&mut net);
        let drift = LogNormalDrift::new(0.6);
        group.bench_with_input(BenchmarkId::new("mlp_depth", depth), &depth, |b, _| {
            b.iter(|| {
                let mut rng = ChaCha8Rng::seed_from_u64(1);
                FaultInjector::inject(&mut net, &drift, &mut rng);
                snapshot.restore(&mut net).unwrap();
            })
        });
    }
    group.finish();
}

fn bench_mc_objective(c: &mut Criterion) {
    let mut group = c.benchmark_group("mc_objective");
    group.sample_size(10);
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let data = datasets::digits(8, &mut rng);
    let mut net = Mlp::new(&MlpConfig::new(196, 10).hidden(48), &mut rng);
    for t in [1usize, 4] {
        let obj = bayesft::DriftObjective::new(0.6, t);
        group.bench_with_input(BenchmarkId::new("samples", t), &t, |b, _| {
            b.iter(|| obj.evaluate(&mut net, &data, 3))
        });
    }
    // The engine's hot path: the same marginalization fanned out over
    // worker threads (results are bit-identical to serial).
    let obj = bayesft::DriftObjective::new(0.6, 16);
    for workers in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("samples16_workers", workers),
            &workers,
            |b, &w| b.iter(|| obj.evaluate_parallel(&mut net, &data, 3, w)),
        );
    }
    group.finish();
}

fn bench_gp(c: &mut Criterion) {
    let mut group = c.benchmark_group("gaussian_process");
    group.sample_size(30);
    for n in [8usize, 32] {
        let x: Vec<Vec<f64>> = (0..n)
            .map(|i| vec![(i as f64 * 0.37).sin().abs(), (i as f64 * 0.73).cos().abs()])
            .collect();
        let y: Vec<f64> = (0..n).map(|i| (i as f64 * 0.21).sin()).collect();
        group.bench_with_input(BenchmarkId::new("fit", n), &n, |b, _| {
            b.iter(|| {
                let mut gp = bayesopt::GaussianProcess::new(
                    bayesopt::SquaredExponential::isotropic(1.0, 0.3),
                    1e-6,
                );
                gp.fit(x.clone(), y.clone()).unwrap();
                gp.posterior(&[0.5, 0.5]).unwrap()
            })
        });
    }
    // Full suggest cycle.
    let mut bo = bayesopt::BayesOpt::new(4, bayesopt::SquaredExponential::isotropic(1.0, 0.3));
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    for i in 0..16 {
        let x: Vec<f64> = (0..4).map(|d| ((i * 7 + d) as f64 * 0.13) % 1.0).collect();
        bo.tell(x, (i as f64 * 0.3).sin());
    }
    group.bench_function("suggest_16obs_4d", |b| {
        b.iter(|| bo.suggest(&mut rng).unwrap())
    });
    group.finish();
}

fn bench_conv(c: &mut Criterion) {
    let mut group = c.benchmark_group("conv_forward_backward");
    group.sample_size(20);
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let mut net = LeNet5::new(1, 14, 10, &mut rng);
    let x = Tensor::randn(&[8, 1, 14, 14], 0.0, 1.0, &mut rng);
    group.bench_function("lenet_fwd_batch8", |b| {
        b.iter(|| net.forward(&x, Mode::Eval))
    });
    group.bench_function("lenet_fwd_bwd_batch8", |b| {
        b.iter(|| {
            let y = net.forward(&x, Mode::Train);
            net.backward(&Tensor::ones(y.dims()))
        })
    });
    group.finish();
}

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    group.sample_size(30);
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    for n in [32usize, 128] {
        let a = Tensor::randn(&[n, n], 0.0, 1.0, &mut rng);
        let b_mat = Tensor::randn(&[n, n], 0.0, 1.0, &mut rng);
        group.bench_with_input(BenchmarkId::new("square", n), &n, |b, _| {
            b.iter(|| a.matmul(&b_mat))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_drift_injection,
    bench_mc_objective,
    bench_gp,
    bench_conv,
    bench_matmul
);
criterion_main!(benches);
