//! Criterion micro-benchmarks for the performance-critical kernels under
//! every figure: drift injection, the fused Monte-Carlo trial hot path
//! (latency *and* bytes allocated), Monte-Carlo objective evaluation,
//! GP fit + suggest, convolution forward/backward, and matmul kernels.
//!
//! Set `BENCH_QUICK=1` for CI-sized sample counts, and `CRITERION_JSON=
//! path.json` to dump every measurement (including the bytes-allocated
//! gauges) as a JSON artifact.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use baselines::train_step;
use criterion::{criterion_group, criterion_main, record_metric, BenchmarkId, Criterion};
use models::{LeNet5, Mlp, MlpConfig};
use nn::{softmax_cross_entropy, Layer, Mode, Optimizer, Sgd, Workspace};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use reram::{FaultInjector, LogNormalDrift};
use tensor::{Matmul, Tensor};

/// Counts allocator traffic so benches can report bytes per trial.
struct CountingAllocator;

static BYTES: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn quick() -> bool {
    std::env::var("BENCH_QUICK").is_ok_and(|v| v == "1")
}

fn samples(full: usize) -> usize {
    if quick() {
        (full / 4).max(3)
    } else {
        full
    }
}

fn bench_drift_injection(c: &mut Criterion) {
    let mut group = c.benchmark_group("drift_injection");
    group.sample_size(samples(20));
    for depth in [3usize, 9] {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut net = Mlp::new(&MlpConfig::new(196, 10).depth(depth).hidden(64), &mut rng);
        let snapshot = FaultInjector::snapshot(&mut net);
        let drift = LogNormalDrift::new(0.6);
        // Pre-refactor shape of the loop: separate inject + full restore.
        group.bench_with_input(
            BenchmarkId::new("inject_restore_mlp_depth", depth),
            &depth,
            |b, _| {
                b.iter(|| {
                    let mut rng = ChaCha8Rng::seed_from_u64(1);
                    FaultInjector::inject(&mut net, &drift, &mut rng);
                    snapshot.restore(&mut net).unwrap();
                })
            },
        );
        // Fused hot path: one pass, straight from the snapshot.
        group.bench_with_input(
            BenchmarkId::new("inject_from_mlp_depth", depth),
            &depth,
            |b, _| {
                b.iter(|| {
                    let mut rng = ChaCha8Rng::seed_from_u64(1);
                    FaultInjector::inject_from(&snapshot, &mut net, &drift, &mut rng).unwrap();
                })
            },
        );
        snapshot.restore_into(&mut net).unwrap();
    }
    group.finish();
}

/// The steady-state Monte-Carlo trial (the paper's Eq. 4 inner loop):
/// latency and allocator traffic, legacy vs fused/workspace form.
fn bench_mc_trial(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let mut net = Mlp::new(&MlpConfig::new(196, 10).depth(3).hidden(64), &mut rng);
    let x = Tensor::randn(&[16, 196], 0.0, 1.0, &mut rng);
    let snapshot = FaultInjector::snapshot(&mut net);
    let drift = LogNormalDrift::new(0.6);

    let mut group = c.benchmark_group("mc_trial");
    group.sample_size(samples(40));
    group.bench_function("legacy_restore_inject_forward", |b| {
        b.iter(|| {
            let mut rng = ChaCha8Rng::seed_from_u64(7);
            FaultInjector::inject(&mut net, &drift, &mut rng);
            let v = net.forward(&x, Mode::Eval).sum();
            snapshot.restore(&mut net).unwrap();
            v
        })
    });
    let mut ws = Workspace::new();
    group.bench_function("fused_inject_forward_ws", |b| {
        b.iter(|| {
            let mut rng = ChaCha8Rng::seed_from_u64(7);
            FaultInjector::inject_from(&snapshot, &mut net, &drift, &mut rng).unwrap();
            let y = net.forward_ws(&x, Mode::Eval, &mut ws);
            let v = y.sum();
            ws.recycle(y);
            v
        })
    });
    group.finish();

    // Allocator traffic per steady-state trial, outside the timing loops.
    let trials = 32u64;
    snapshot.restore_into(&mut net).unwrap();
    let before = BYTES.load(Ordering::SeqCst);
    for t in 0..trials {
        let mut rng = ChaCha8Rng::seed_from_u64(t);
        FaultInjector::inject(&mut net, &drift, &mut rng);
        let _ = net.forward(&x, Mode::Eval).sum();
        snapshot.restore(&mut net).unwrap();
    }
    let legacy_bytes = BYTES.load(Ordering::SeqCst) - before;
    record_metric(
        "mc_trial/legacy_bytes_per_trial",
        legacy_bytes as f64 / trials as f64,
        "bytes/iter",
    );

    // Warm the workspace, then measure the steady state.
    let mut ws = Workspace::new();
    for t in 0..2 {
        let mut rng = ChaCha8Rng::seed_from_u64(t);
        FaultInjector::inject_from(&snapshot, &mut net, &drift, &mut rng).unwrap();
        let y = net.forward_ws(&x, Mode::Eval, &mut ws);
        ws.recycle(y);
    }
    let before = BYTES.load(Ordering::SeqCst);
    for t in 0..trials {
        let mut rng = ChaCha8Rng::seed_from_u64(t);
        FaultInjector::inject_from(&snapshot, &mut net, &drift, &mut rng).unwrap();
        let y = net.forward_ws(&x, Mode::Eval, &mut ws);
        let _ = y.sum();
        ws.recycle(y);
    }
    let fused_bytes = BYTES.load(Ordering::SeqCst) - before;
    record_metric(
        "mc_trial/fused_bytes_per_trial",
        fused_bytes as f64 / trials as f64,
        "bytes/iter",
    );
    snapshot.restore_into(&mut net).unwrap();
}

/// The steady-state SGD training step (the loop dominating every BayesOpt
/// trial's wall-clock): latency and allocator traffic, legacy
/// (`forward`/allocating loss/`backward`) vs workspace
/// (`forward_ws`/pooled loss/`backward_ws` + in-place optimizer) form —
/// bit-identical weights either way.
fn bench_train_step(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let mut net = Mlp::new(&MlpConfig::new(196, 10).depth(3).hidden(64), &mut rng);
    let x = Tensor::randn(&[16, 196], 0.0, 1.0, &mut rng);
    let labels: Vec<usize> = (0..16).map(|i| i % 10).collect();

    let mut group = c.benchmark_group("train_step");
    group.sample_size(samples(40));
    let mut opt = Sgd::new(0.01).momentum(0.9).clip_norm(5.0);
    group.bench_function("legacy_forward_backward", |b| {
        b.iter(|| {
            let logits = net.forward(&x, Mode::Train);
            let out = softmax_cross_entropy(&logits, &labels);
            let _ = net.backward(&out.grad);
            opt.step(&mut net);
            out.loss
        })
    });
    let mut ws = Workspace::new();
    group.bench_function("workspace_forward_backward", |b| {
        b.iter(|| train_step(&mut net, &x, &labels, &mut opt, &mut ws))
    });
    group.finish();

    // Allocator traffic per steady-state step, outside the timing loops.
    let steps = 32u64;
    for _ in 0..steps {
        let logits = net.forward(&x, Mode::Train);
        let out = softmax_cross_entropy(&logits, &labels);
        let _ = net.backward(&out.grad);
        opt.step(&mut net);
    }
    let before = BYTES.load(Ordering::SeqCst);
    for _ in 0..steps {
        let logits = net.forward(&x, Mode::Train);
        let out = softmax_cross_entropy(&logits, &labels);
        let _ = net.backward(&out.grad);
        opt.step(&mut net);
    }
    let legacy_bytes = BYTES.load(Ordering::SeqCst) - before;
    record_metric(
        "train_step/legacy_bytes_per_step",
        legacy_bytes as f64 / steps as f64,
        "bytes/iter",
    );

    // Warm the workspace and caches, then measure the steady state.
    let mut ws = Workspace::new();
    for _ in 0..3 {
        let _ = train_step(&mut net, &x, &labels, &mut opt, &mut ws);
    }
    let before = BYTES.load(Ordering::SeqCst);
    for _ in 0..steps {
        let _ = train_step(&mut net, &x, &labels, &mut opt, &mut ws);
    }
    let ws_bytes = BYTES.load(Ordering::SeqCst) - before;
    record_metric(
        "train_step/workspace_bytes_per_step",
        ws_bytes as f64 / steps as f64,
        "bytes/iter",
    );

    // Conv training step: LeNet through the same pair of loops.
    let mut lenet = LeNet5::new(1, 14, 10, &mut rng);
    let img = Tensor::randn(&[8, 1, 14, 14], 0.0, 1.0, &mut rng);
    let img_labels: Vec<usize> = (0..8).map(|i| i % 10).collect();
    let mut group = c.benchmark_group("train_step_lenet");
    group.sample_size(samples(20));
    let mut opt = Sgd::new(0.01).momentum(0.9).clip_norm(5.0);
    group.bench_function("legacy_forward_backward", |b| {
        b.iter(|| {
            let logits = lenet.forward(&img, Mode::Train);
            let out = softmax_cross_entropy(&logits, &img_labels);
            let _ = lenet.backward(&out.grad);
            opt.step(&mut lenet);
            out.loss
        })
    });
    let mut ws = Workspace::new();
    group.bench_function("workspace_forward_backward", |b| {
        b.iter(|| train_step(&mut lenet, &img, &img_labels, &mut opt, &mut ws))
    });
    group.finish();
}

fn bench_mc_objective(c: &mut Criterion) {
    let mut group = c.benchmark_group("mc_objective");
    group.sample_size(samples(10));
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let data = datasets::digits(8, &mut rng);
    let mut net = Mlp::new(&MlpConfig::new(196, 10).hidden(48), &mut rng);
    for t in [1usize, 4] {
        let obj = bayesft::DriftObjective::new(0.6, t);
        group.bench_with_input(BenchmarkId::new("samples", t), &t, |b, _| {
            b.iter(|| obj.evaluate(&mut net, &data, 3))
        });
    }
    // The engine's hot path: the same marginalization fanned out over
    // worker threads (results are bit-identical to serial).
    let obj = bayesft::DriftObjective::new(0.6, 16);
    for workers in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("samples16_workers", workers),
            &workers,
            |b, &w| b.iter(|| obj.evaluate_parallel(&mut net, &data, 3, w)),
        );
    }
    group.finish();
}

fn bench_gp(c: &mut Criterion) {
    let mut group = c.benchmark_group("gaussian_process");
    group.sample_size(samples(30));
    for n in [8usize, 32] {
        let x: Vec<Vec<f64>> = (0..n)
            .map(|i| vec![(i as f64 * 0.37).sin().abs(), (i as f64 * 0.73).cos().abs()])
            .collect();
        let y: Vec<f64> = (0..n).map(|i| (i as f64 * 0.21).sin()).collect();
        group.bench_with_input(BenchmarkId::new("fit", n), &n, |b, _| {
            b.iter(|| {
                let mut gp = bayesopt::GaussianProcess::new(
                    bayesopt::SquaredExponential::isotropic(1.0, 0.3),
                    1e-6,
                );
                gp.fit(x.clone(), y.clone()).unwrap();
                gp.posterior(&[0.5, 0.5]).unwrap()
            })
        });
    }
    // Full suggest cycle.
    let mut bo = bayesopt::BayesOpt::new(4, bayesopt::SquaredExponential::isotropic(1.0, 0.3));
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    for i in 0..16 {
        let x: Vec<f64> = (0..4).map(|d| ((i * 7 + d) as f64 * 0.13) % 1.0).collect();
        bo.tell(x, (i as f64 * 0.3).sin());
    }
    group.bench_function("suggest_16obs_4d", |b| {
        b.iter(|| bo.suggest(&mut rng).unwrap())
    });
    group.finish();
}

fn bench_conv(c: &mut Criterion) {
    let mut group = c.benchmark_group("conv_forward_backward");
    group.sample_size(samples(20));
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let mut net = LeNet5::new(1, 14, 10, &mut rng);
    let x = Tensor::randn(&[8, 1, 14, 14], 0.0, 1.0, &mut rng);
    group.bench_function("lenet_fwd_batch8", |b| {
        b.iter(|| net.forward(&x, Mode::Eval))
    });
    let mut ws = Workspace::new();
    group.bench_function("lenet_fwd_ws_batch8", |b| {
        b.iter(|| {
            let y = net.forward_ws(&x, Mode::Eval, &mut ws);
            let v = y.sum();
            ws.recycle(y);
            v
        })
    });
    group.bench_function("lenet_fwd_bwd_batch8", |b| {
        b.iter(|| {
            let y = net.forward(&x, Mode::Train);
            net.backward(&Tensor::ones(y.dims()))
        })
    });
    group.finish();
}

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    group.sample_size(samples(30));
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    for n in [32usize, 128] {
        let a = Tensor::randn(&[n, n], 0.0, 1.0, &mut rng);
        let b_mat = Tensor::randn(&[n, n], 0.0, 1.0, &mut rng);
        group.bench_with_input(BenchmarkId::new("square", n), &n, |b, _| {
            b.iter(|| a.matmul(&b_mat))
        });
        let mut out = Tensor::zeros(&[n, n]);
        group.bench_with_input(BenchmarkId::new("square_into", n), &n, |b, _| {
            b.iter(|| a.matmul_into(&b_mat, &mut out))
        });
    }
    // Sparse lhs: the finite-gated zero-skip at work (stuck-at-0 faults
    // and post-ReLU activations look like this).
    let n = 128;
    let a_sparse = Tensor::from_vec(
        (0..n * n)
            .map(|i| {
                if i % 4 == 0 {
                    (i as f32 * 0.13).sin()
                } else {
                    0.0
                }
            })
            .collect(),
        &[n, n],
    )
    .unwrap();
    let b_mat = Tensor::randn(&[n, n], 0.0, 1.0, &mut rng);
    let mut out = Tensor::zeros(&[n, n]);
    group.bench_function("square_into_sparse75", |b| {
        b.iter(|| a_sparse.matmul_into(&b_mat, &mut out))
    });
    group.finish();
}

/// Campaign scheduling overhead: the same four-scenario campaign through
/// the work-stealing shard pool at 1 and 2 shards (outcomes are
/// bit-identical; only wall-clock may differ), plus the result-store
/// persistence round-trip (fsync'd appends + tolerant load + atomic
/// compaction).
fn bench_campaign(c: &mut Criterion) {
    use scenarios::{Campaign, CampaignRunner, ResultStore, Scenario, TaskKind};

    let campaign = Campaign::new(
        "bench",
        (0..4u64)
            .map(|i| {
                Scenario::new(format!("s{i}"), vec!["lognormal:0.4".parse().unwrap()])
                    .seed(i)
                    .budgets(2, 2, 1, 1)
                    .task(TaskKind::Moons {
                        samples: 80,
                        noise: 0.1,
                    })
            })
            .collect(),
    );
    let mut group = c.benchmark_group("campaign");
    group.sample_size(samples(10));
    for shards in [1usize, 2] {
        group.bench_with_input(BenchmarkId::new("shards", shards), &shards, |b, &n| {
            // A fresh runner per iteration: the memo cache would otherwise
            // turn every iteration after the first into pure cache hits.
            b.iter(|| CampaignRunner::new().shards(n).run_campaign(&campaign))
        });
    }
    group.finish();

    // Store round-trip on precomputed outcomes, measured once: fsync'd
    // appends + tolerant load + atomic compaction, no engine time.
    let outcomes: Vec<_> = CampaignRunner::new()
        .run_campaign(&campaign)
        .into_iter()
        .map(|r| r.result.expect("bench scenarios run"))
        .collect();
    let path = std::env::temp_dir().join(format!("bayesft-bench-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let store = ResultStore::open(&path);
    let start = std::time::Instant::now();
    for outcome in &outcomes {
        store.append("bench", outcome).expect("bench store appends");
    }
    let records = store.load().expect("bench store loads");
    store.compact().expect("bench store compacts");
    record_metric(
        "campaign/persist_load_compact_ms",
        start.elapsed().as_secs_f64() * 1e3,
        "ms",
    );
    record_metric(
        "campaign/records_persisted",
        records.len() as f64,
        "records",
    );
    let _ = std::fs::remove_file(&path);
}

/// Cost of the telemetry primitives the instrumented kernels pay per
/// call — a counter bump, a histogram observation, and the full
/// `Timer`/`Span` enter+drop pairs — against the bare `Instant::now()`
/// pair a hand-rolled timer would cost anyway. No trace sink is
/// installed, so spans take the cheap path (the production default).
fn bench_telemetry(c: &mut Criterion) {
    let counter = telemetry::static_counter!("bench_telemetry_ops_total");
    let hist = telemetry::duration_histogram!("bench_telemetry_seconds");

    let mut group = c.benchmark_group("telemetry");
    group.sample_size(samples(40));
    group.bench_function("counter_inc", |b| b.iter(|| counter.inc()));
    group.bench_function("histogram_observe", |b| b.iter(|| hist.observe(1.25e-4)));
    group.bench_function("timer_start_drop", |b| {
        b.iter(|| telemetry::Timer::start(hist))
    });
    group.bench_function("span_enter_drop_no_sink", |b| {
        b.iter(|| telemetry::Span::enter("bench.span", hist))
    });
    // The stripped baseline: what the same timing window costs with the
    // telemetry layer deleted (two clock reads, nothing recorded).
    group.bench_function("bare_instant_pair", |b| {
        b.iter(|| std::time::Instant::now().elapsed())
    });
    group.finish();

    // Steady-state allocator traffic: recording must be allocation-free
    // (registration above was the only allocating step).
    let iters = 4096u64;
    let before = BYTES.load(Ordering::SeqCst);
    for _ in 0..iters {
        counter.inc();
        let _t = telemetry::Timer::start(hist);
        let _s = telemetry::Span::enter("bench.span", hist);
    }
    let bytes = BYTES.load(Ordering::SeqCst) - before;
    record_metric(
        "telemetry/bytes_per_instrumented_op",
        bytes as f64 / iters as f64,
        "bytes/iter",
    );
}

criterion_group!(
    benches,
    bench_drift_injection,
    bench_mc_trial,
    bench_train_step,
    bench_mc_objective,
    bench_gp,
    bench_conv,
    bench_matmul,
    bench_campaign,
    bench_telemetry
);
criterion_main!(benches);
