//! Dependency-free process-wide telemetry: counters, gauges, fixed-bucket
//! histograms, and lightweight spans.
//!
//! Design constraints, in order:
//!
//! 1. **Zero-cost on the hot path.** Recording into a registered metric is
//!    a few relaxed atomic operations — no locks, no allocation, no
//!    formatting. The counting-allocator tests in `tests/train_zero_alloc.rs`
//!    and `crates/reram/tests/zero_alloc.rs` run with the gemm kernels
//!    instrumented and still assert zero steady-state allocations.
//!    Registration (the only allocating step) happens once per metric and
//!    is cached by call sites behind `OnceLock` statics — see the
//!    [`static_counter!`] / [`duration_histogram!`] macros.
//! 2. **No dependencies.** The image is offline; everything here is `std`.
//! 3. **One process-wide registry.** Metrics are identified by name (with
//!    optional hand-rolled `{label="value"}` suffixes) and live for the
//!    life of the process (`Box::leak`), so handles are `&'static` and
//!    freely shareable across threads. Counters are monotonic; consumers
//!    that want per-operation numbers take deltas.
//!
//! # Spans and tracing
//!
//! [`Timer`] is the histogram-only RAII timer for high-frequency sites
//! (kernels). [`Span`] additionally emits a Chrome-trace-event when a
//! trace sink is installed ([`install_trace`]); without a sink a span is
//! exactly a timer. Hierarchy is implicit: Chrome's trace viewer nests
//! `"ph": "X"` (complete) events by `ts`/`dur` per thread, so an
//! `engine.train` span inside a `campaign.scenario` span renders as a
//! child without either knowing about the other.
//!
//! The trace file is the Chrome **JSON array format**, one event object
//! per line: `chrome://tracing` / Perfetto load it directly, and each
//! event line is independently greppable. [`finish_trace`] terminates the
//! array with a metadata event so the whole file is also strict JSON.
//!
//! # Exposition
//!
//! [`render_prometheus`] snapshots every registered metric in the
//! Prometheus text exposition format (`# TYPE` comments, `_bucket{le=…}`
//! / `_sum` / `_count` histogram series). The `campaign metrics` CLI and
//! the daemon's `metrics` protocol verb are thin wrappers around it.

use std::collections::BTreeMap;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Monotonic event counter. Prometheus convention: name it `*_total`.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Instantaneous signed level (queue depths, in-flight jobs).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Overwrite the level.
    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Move the level by `delta` (negative to decrease).
    #[inline]
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current level.
    #[inline]
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Cumulative fixed-bucket histogram.
///
/// Bucket upper bounds are a `&'static` slice fixed at registration; an
/// implicit `+Inf` bucket catches the tail. `observe` is a linear scan
/// over the (few) bounds plus three relaxed atomic updates — the sum is
/// an `f64` maintained with a compare-exchange loop on its bit pattern.
#[derive(Debug)]
pub struct Histogram {
    bounds: &'static [f64],
    /// One slot per bound plus the `+Inf` overflow slot.
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum_bits: AtomicU64,
}

/// Decade buckets for durations in seconds: 1µs … 1000s, ×10 steps.
///
/// Every duration histogram in the workspace uses this scheme unless it
/// registers its own bounds, so dashboards can assume a common `le` set.
pub const DURATION_SECONDS_BUCKETS: &[f64] =
    &[1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0, 100.0, 1000.0];

impl Histogram {
    fn new(bounds: &'static [f64]) -> Self {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing",
        );
        let buckets = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            bounds,
            buckets,
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    /// Record one observation.
    #[inline]
    pub fn observe(&self, v: f64) {
        let mut slot = self.bounds.len();
        for (i, b) in self.bounds.iter().enumerate() {
            if v <= *b {
                slot = i;
                break;
            }
        }
        self.buckets[slot].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Record a duration in seconds.
    #[inline]
    pub fn observe_duration(&self, d: std::time::Duration) {
        self.observe(d.as_secs_f64());
    }

    /// Total number of observations.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    #[inline]
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// Cumulative count at each bound (Prometheus `le` semantics), ending
    /// with the `+Inf` total.
    pub fn cumulative_buckets(&self) -> Vec<(f64, u64)> {
        let mut acc = 0u64;
        let mut out = Vec::with_capacity(self.buckets.len());
        for (i, b) in self.buckets.iter().enumerate() {
            acc += b.load(Ordering::Relaxed);
            let bound = self.bounds.get(i).copied().unwrap_or(f64::INFINITY);
            out.push((bound, acc));
        }
        out
    }
}

enum Metric {
    Counter(&'static Counter),
    Gauge(&'static Gauge),
    Histogram(&'static Histogram),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

fn registry() -> &'static Mutex<BTreeMap<String, Metric>> {
    static REGISTRY: OnceLock<Mutex<BTreeMap<String, Metric>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// Look up or create the counter `name`. Allocates only on first
/// registration; cache the returned handle (see [`static_counter!`]).
///
/// Names may carry hand-written label suffixes (`jobs_total{state="done"}`);
/// the part before `{` is the metric family for `# TYPE` purposes.
///
/// # Panics
/// If `name` is already registered as a different metric kind.
pub fn counter(name: &str) -> &'static Counter {
    let mut reg = registry().lock().unwrap();
    match reg
        .entry(name.to_string())
        .or_insert_with(|| Metric::Counter(Box::leak(Box::default())))
    {
        Metric::Counter(c) => c,
        other => panic!("telemetry: {name} already registered as a {}", other.kind()),
    }
}

/// Look up or create the gauge `name`. See [`counter`] for naming rules.
///
/// # Panics
/// If `name` is already registered as a different metric kind.
pub fn gauge(name: &str) -> &'static Gauge {
    let mut reg = registry().lock().unwrap();
    match reg
        .entry(name.to_string())
        .or_insert_with(|| Metric::Gauge(Box::leak(Box::default())))
    {
        Metric::Gauge(g) => g,
        other => panic!("telemetry: {name} already registered as a {}", other.kind()),
    }
}

/// Look up or create the histogram `name` with the given bucket bounds.
/// The bounds of the first registration win; later calls get the existing
/// histogram regardless of the bounds they pass.
///
/// # Panics
/// If `name` is already registered as a different metric kind, or if
/// `bounds` is not strictly increasing.
pub fn histogram(name: &str, bounds: &'static [f64]) -> &'static Histogram {
    let mut reg = registry().lock().unwrap();
    match reg
        .entry(name.to_string())
        .or_insert_with(|| Metric::Histogram(Box::leak(Box::new(Histogram::new(bounds)))))
    {
        Metric::Histogram(h) => h,
        other => panic!("telemetry: {name} already registered as a {}", other.kind()),
    }
}

/// Cache a `&'static Counter` behind a `OnceLock` so the hot path pays a
/// single atomic load after the first call.
#[macro_export]
macro_rules! static_counter {
    ($name:expr) => {{
        static HANDLE: std::sync::OnceLock<&'static $crate::Counter> = std::sync::OnceLock::new();
        *HANDLE.get_or_init(|| $crate::counter($name))
    }};
}

/// Cache a `&'static Gauge` behind a `OnceLock`.
#[macro_export]
macro_rules! static_gauge {
    ($name:expr) => {{
        static HANDLE: std::sync::OnceLock<&'static $crate::Gauge> = std::sync::OnceLock::new();
        *HANDLE.get_or_init(|| $crate::gauge($name))
    }};
}

/// Cache a `&'static Histogram` with [`DURATION_SECONDS_BUCKETS`] behind
/// a `OnceLock`.
#[macro_export]
macro_rules! duration_histogram {
    ($name:expr) => {{
        static HANDLE: std::sync::OnceLock<&'static $crate::Histogram> = std::sync::OnceLock::new();
        *HANDLE.get_or_init(|| $crate::histogram($name, $crate::DURATION_SECONDS_BUCKETS))
    }};
}

/// Histogram-only RAII timer for high-frequency sites (tensor kernels).
/// Never emits trace events, so instrumenting a kernel cannot explode a
/// trace file. Drop cost: one `Instant::now` plus [`Histogram::observe`].
#[must_use = "the timer records on drop; binding to _ drops immediately"]
pub struct Timer {
    hist: &'static Histogram,
    start: Instant,
}

impl Timer {
    /// Start timing into `hist`.
    #[inline]
    pub fn start(hist: &'static Histogram) -> Timer {
        Timer {
            hist,
            start: Instant::now(),
        }
    }
}

impl Drop for Timer {
    #[inline]
    fn drop(&mut self) {
        self.hist.observe_duration(self.start.elapsed());
    }
}

/// RAII span: records its duration into a histogram like [`Timer`], and —
/// only when a trace sink is installed — also emits one Chrome trace
/// event on drop. Without a sink, entering and dropping a span performs
/// no allocation and touches no locks.
#[must_use = "the span records on drop; binding to _ drops immediately"]
pub struct Span {
    name: &'static str,
    hist: &'static Histogram,
    start: Instant,
}

impl Span {
    /// Enter a span named `name`, recording its duration into `hist`.
    #[inline]
    pub fn enter(name: &'static str, hist: &'static Histogram) -> Span {
        Span {
            name,
            hist,
            start: Instant::now(),
        }
    }
}

impl Drop for Span {
    #[inline]
    fn drop(&mut self) {
        let elapsed = self.start.elapsed();
        self.hist.observe_duration(elapsed);
        if TRACE_ACTIVE.load(Ordering::Relaxed) {
            emit_trace_event(self.name, self.start, elapsed);
        }
    }
}

struct TraceSink {
    writer: BufWriter<File>,
    epoch: Instant,
}

// Ordering: `Relaxed` — the flag only gates best-effort span emission
// on the hot path; a stale read drops or admits at most one event, and
// the sink mutex orders everything that actually reaches the file.
static TRACE_ACTIVE: AtomicBool = AtomicBool::new(false);

fn trace_sink() -> &'static Mutex<Option<TraceSink>> {
    static SINK: OnceLock<Mutex<Option<TraceSink>>> = OnceLock::new();
    SINK.get_or_init(|| Mutex::new(None))
}

fn trace_tid() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static TID: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    TID.with(|t| *t)
}

fn emit_trace_event(name: &str, start: Instant, elapsed: std::time::Duration) {
    let tid = trace_tid();
    let mut guard = trace_sink().lock().unwrap();
    if let Some(sink) = guard.as_mut() {
        let ts = start
            .checked_duration_since(sink.epoch)
            .unwrap_or_default()
            .as_secs_f64()
            * 1e6;
        let dur = elapsed.as_secs_f64() * 1e6;
        let _ = writeln!(
            sink.writer,
            "{{\"name\":\"{name}\",\"ph\":\"X\",\"ts\":{ts:.3},\"dur\":{dur:.3},\"pid\":1,\"tid\":{tid}}},"
        );
    }
}

/// Install a Chrome-trace sink at `path`. Until [`finish_trace`] runs,
/// every dropped [`Span`] appends one trace event line. Installing a new
/// sink finishes any previous one.
pub fn install_trace(path: &Path) -> std::io::Result<()> {
    let file = File::create(path)?;
    let mut writer = BufWriter::new(file);
    writeln!(writer, "[")?;
    let mut guard = trace_sink().lock().unwrap();
    if let Some(old) = guard.take() {
        let _ = close_sink(old);
    }
    *guard = Some(TraceSink {
        writer,
        epoch: Instant::now(),
    });
    TRACE_ACTIVE.store(true, Ordering::Relaxed);
    Ok(())
}

fn close_sink(mut sink: TraceSink) -> std::io::Result<()> {
    // A metadata event (no trailing comma) terminates the element list so
    // the file is strict JSON; Chrome treats it as process naming.
    writeln!(
        sink.writer,
        "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"args\":{{\"name\":\"campaign\"}}}}"
    )?;
    writeln!(sink.writer, "]")?;
    sink.writer.flush()
}

/// Close the active trace sink, terminating the JSON array so the file
/// parses as strict JSON. No-op if no sink is installed.
pub fn finish_trace() -> std::io::Result<()> {
    let mut guard = trace_sink().lock().unwrap();
    TRACE_ACTIVE.store(false, Ordering::Relaxed);
    match guard.take() {
        Some(sink) => close_sink(sink),
        None => Ok(()),
    }
}

/// Whether a trace sink is currently installed.
pub fn trace_active() -> bool {
    TRACE_ACTIVE.load(Ordering::Relaxed)
}

/// Format a bound the way Prometheus expects (`+Inf` for infinity).
fn fmt_bound(b: f64) -> String {
    if b.is_infinite() {
        "+Inf".to_string()
    } else {
        format!("{b}")
    }
}

/// The metric family (name before any `{label}` suffix).
fn family(name: &str) -> &str {
    name.split('{').next().unwrap_or(name)
}

/// Splice extra labels into a possibly-labelled metric name:
/// `x{a="1"}` + `le="2"` → `x{a="1",le="2"}`.
fn with_label(name: &str, label: &str) -> String {
    match name.strip_suffix('}') {
        Some(prefix) => format!("{prefix},{label}}}"),
        None => format!("{name}{{{label}}}"),
    }
}

/// Snapshot every registered metric in Prometheus text exposition format.
/// Families are sorted by name; `# TYPE` is emitted once per family.
pub fn render_prometheus() -> String {
    let reg = registry().lock().unwrap();
    let mut out = String::new();
    let mut last_family = String::new();
    for (name, metric) in reg.iter() {
        let fam = family(name);
        if fam != last_family {
            out.push_str(&format!("# TYPE {fam} {}\n", metric.kind()));
            last_family = fam.to_string();
        }
        match metric {
            Metric::Counter(c) => out.push_str(&format!("{name} {}\n", c.get())),
            Metric::Gauge(g) => out.push_str(&format!("{name} {}\n", g.get())),
            Metric::Histogram(h) => {
                // Histogram series take the conventional `_bucket` /
                // `_sum` / `_count` suffixes on the family name.
                let bucket_name = match name.split_once('{') {
                    Some((base, labels)) => format!("{base}_bucket{{{labels}"),
                    None => format!("{name}_bucket"),
                };
                for (bound, cum) in h.cumulative_buckets() {
                    let series = with_label(&bucket_name, &format!("le=\"{}\"", fmt_bound(bound)));
                    out.push_str(&format!("{series} {cum}\n"));
                }
                out.push_str(&format!("{name}_sum {}\n", h.sum()));
                out.push_str(&format!("{name}_count {}\n", h.count()));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let c = counter("test_roundtrip_total");
        let base = c.get();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), base + 5);
        // Same name returns the same handle.
        assert!(std::ptr::eq(c, counter("test_roundtrip_total")));

        let g = gauge("test_level");
        g.set(7);
        g.add(-3);
        assert_eq!(g.get(), 4);
    }

    #[test]
    fn histogram_buckets_count_and_sum() {
        static BOUNDS: &[f64] = &[1.0, 10.0];
        let h = histogram("test_hist", BOUNDS);
        h.observe(0.5);
        h.observe(5.0);
        h.observe(50.0);
        assert_eq!(h.count(), 3);
        assert!((h.sum() - 55.5).abs() < 1e-9);
        let cum = h.cumulative_buckets();
        assert_eq!(cum, vec![(1.0, 1), (10.0, 2), (f64::INFINITY, 3)]);
    }

    #[test]
    fn timers_and_spans_record() {
        static BOUNDS: &[f64] = &[1.0];
        let h = histogram("test_span_seconds", BOUNDS);
        let before = h.count();
        {
            let _t = Timer::start(h);
        }
        {
            let _s = Span::enter("test.span", h);
        }
        assert_eq!(h.count(), before + 2);
    }

    #[test]
    fn prometheus_rendering_shapes() {
        counter("render_a_total").add(2);
        counter("render_labeled_total{worker=\"0\"}").add(1);
        counter("render_labeled_total{worker=\"1\"}").add(3);
        gauge("render_depth").set(-2);
        static BOUNDS: &[f64] = &[0.5];
        let h = histogram("render_seconds", BOUNDS);
        h.observe(0.25);
        h.observe(2.0);

        let text = render_prometheus();
        assert!(text.contains("# TYPE render_a_total counter\n"));
        assert!(text.contains("render_a_total 2\n"));
        // One TYPE line for the labelled family, two series.
        assert_eq!(
            text.matches("# TYPE render_labeled_total counter").count(),
            1
        );
        assert!(text.contains("render_labeled_total{worker=\"0\"} 1\n"));
        assert!(text.contains("render_labeled_total{worker=\"1\"} 3\n"));
        assert!(text.contains("# TYPE render_depth gauge\n"));
        assert!(text.contains("render_depth -2\n"));
        assert!(text.contains("# TYPE render_seconds histogram\n"));
        assert!(text.contains("render_seconds_bucket{le=\"0.5\"} 1\n"));
        assert!(text.contains("render_seconds_bucket{le=\"+Inf\"} 2\n"));
        assert!(text.contains("render_seconds_sum 2.25\n"));
        assert!(text.contains("render_seconds_count 2\n"));
    }

    #[test]
    fn trace_sink_writes_strict_json_array() {
        let path =
            std::env::temp_dir().join(format!("telemetry_trace_{}.json", std::process::id()));
        install_trace(&path).unwrap();
        assert!(trace_active());
        static BOUNDS: &[f64] = &[1.0];
        let h = histogram("trace_test_seconds", BOUNDS);
        {
            let _outer = Span::enter("outer", h);
            let _inner = Span::enter("inner", h);
        }
        finish_trace().unwrap();
        assert!(!trace_active());

        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(text.starts_with("[\n"));
        assert!(text.trim_end().ends_with(']'));
        assert!(text.contains("\"name\":\"outer\""));
        assert!(text.contains("\"name\":\"inner\""));
        // Every event line is a complete JSON object (strip the trailing
        // comma separator) with the Chrome complete-event shape.
        let events: Vec<&str> = text
            .lines()
            .filter(|l| l.contains("\"ph\":\"X\""))
            .collect();
        assert_eq!(events.len(), 2);
        for line in events {
            let obj = line.trim_end_matches(',');
            assert!(obj.starts_with('{') && obj.ends_with('}'));
            assert!(obj.contains("\"ts\":") && obj.contains("\"dur\":"));
        }
    }

    #[test]
    fn label_splicing() {
        assert_eq!(with_label("x", "le=\"1\""), "x{le=\"1\"}");
        assert_eq!(
            with_label("x{worker=\"0\"}", "le=\"1\""),
            "x{worker=\"0\",le=\"1\"}"
        );
        assert_eq!(family("x{worker=\"0\"}"), "x");
        assert_eq!(family("x"), "x");
    }
}
