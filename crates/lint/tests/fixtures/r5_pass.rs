//! R5 must stay quiet: one consistent lock order, guards dropped
//! before blocking work, and condvar waits (which release their guard
//! by design).

use std::sync::{Condvar, Mutex};

pub struct Pipeline {
    pending: Mutex<u32>,
    finished: Mutex<u32>,
    cv: Condvar,
}

impl Pipeline {
    pub fn shift(&self) -> u32 {
        let p = self.pending.lock().unwrap();
        let f = self.finished.lock().unwrap(); // always pending -> finished
        *p + *f
    }

    pub fn snapshot(&self) -> u32 {
        let p = self.pending.lock().unwrap();
        let n = *p;
        drop(p);
        std::thread::sleep(std::time::Duration::from_millis(1)); // no guard held
        n
    }

    pub fn wait_done(&self) -> u32 {
        let mut f = self.finished.lock().unwrap();
        while *f == 0 {
            f = self.cv.wait(f).unwrap(); // wait gives `f` back: exempt
        }
        *f
    }
}
