//! R6 must stay quiet: Relaxed-only hot-path atomics, a CAS with both
//! orderings spelled at the call site, and a flag whose declaration
//! documents its ordering choice.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

// Ordering: Relaxed everywhere — the flag only gates best-effort trace
// emission, and a stale read costs at most one dropped event.
pub static TRACING: AtomicBool = AtomicBool::new(false);

pub fn bump(counter: &AtomicU64) {
    counter.fetch_add(1, Ordering::Relaxed);
}

pub fn publish(bits: &AtomicU64, next: u64) {
    let mut cur = bits.load(Ordering::Relaxed);
    while let Err(now) =
        bits.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
    {
        cur = now;
    }
}
