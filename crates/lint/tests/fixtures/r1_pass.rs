//! R1 must stay quiet: hot-path bodies write into caller-provided
//! buffers, and allocation stays in functions outside the hot graph.

pub fn gemm_into(a: &[f32], b: &[f32], c: &mut [f32], n: usize) {
    for i in 0..n {
        for j in 0..n {
            let mut acc = 0.0;
            for k in 0..n {
                acc += a[i * n + k] * b[k * n + j];
            }
            c[i * n + j] = acc;
        }
    }
}

pub fn forward_ws(input: &[f32], out: &mut [f32]) {
    inner_kernel(input, out);
}

// Hot through the call graph, but clean: only slice writes.
fn inner_kernel(input: &[f32], out: &mut [f32]) {
    for (o, i) in out.iter_mut().zip(input) {
        *o = i.max(0.0);
    }
}

// Allocates freely — but nothing hot calls it, so R1 ignores it.
pub fn build_report(values: &[f32]) -> String {
    let doubled: Vec<f32> = values.iter().map(|v| v * 2.0).collect();
    format!("{} values, first {:?}", doubled.len(), doubled.first())
}
