//! R7 must stay quiet: scoped threads, a handle returned to the
//! caller, and handles collected for a later join.

use std::thread;

pub fn scoped_sum(values: &[u32]) -> u32 {
    let mut total = 0;
    thread::scope(|s| {
        let h = s.spawn(|| values.iter().sum::<u32>());
        total = h.join().unwrap_or(0);
    });
    total
}

pub fn start_worker() -> thread::JoinHandle<u32> {
    thread::spawn(|| 7)
}

pub fn start_pool(n: u32) -> Vec<thread::JoinHandle<u32>> {
    let mut handles = Vec::new();
    for i in 0..n {
        handles.push(thread::spawn(move || i));
    }
    handles
}
