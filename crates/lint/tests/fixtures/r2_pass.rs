//! R2 must stay quiet: NaN-total orderings throughout.

use std::cmp::Ordering;

pub fn nan_low_cmp(a: f32, b: f32) -> Ordering {
    match (a.is_nan(), b.is_nan()) {
        (true, true) => Ordering::Equal,
        (true, false) => Ordering::Less,
        (false, true) => Ordering::Greater,
        (false, false) => a.total_cmp(&b),
    }
}

pub fn rank(mut scores: Vec<f32>) -> Vec<f32> {
    scores.sort_by(|a, b| a.total_cmp(b));
    scores
}

pub fn best(scores: &[(usize, f32)]) -> Option<usize> {
    scores
        .iter()
        .max_by(|a, b| nan_low_cmp(a.1, b.1))
        .map(|(i, _)| *i)
}

pub fn count_max(values: &[u64]) -> Option<u64> {
    // Integer max_by is NaN-free by construction: `cmp` is total.
    values.iter().copied().max_by(|a, b| a.cmp(b))
}
