//! R4 must stay quiet: conventional names through the static macros.

pub fn record(n: u64, bytes: u64) {
    telemetry::static_counter!("daemon_jobs_submitted_total").inc();
    telemetry::static_counter!("daemon_bytes_read_total").add(bytes);
    telemetry::static_gauge!("daemon_queue_depth").set(n as i64);
    telemetry::duration_histogram!("daemon_job_seconds").observe(0.5);
    telemetry::static_counter!(r#"daemon_worker_busy_ms_total{worker="0"}"#).add(n);
}
