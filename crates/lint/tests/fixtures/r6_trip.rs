//! R6 must fire: a SeqCst counter bump on the relaxed-only path, a CAS
//! whose orderings hide in variables, and an undocumented cross-thread
//! flag.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

pub static SHUTDOWN: AtomicBool = AtomicBool::new(false);

pub fn bump(counter: &AtomicU64) {
    counter.fetch_add(1, Ordering::SeqCst);
}

pub fn publish(bits: &AtomicU64, next: u64, success: Ordering, failure: Ordering) {
    let mut cur = bits.load(Ordering::Relaxed);
    while let Err(now) = bits.compare_exchange_weak(cur, next, success, failure) {
        cur = now;
    }
}
