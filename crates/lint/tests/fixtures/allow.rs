//! Suppression mechanics: a reasoned allow silences its finding and
//! lands in the summary table; a reason-less allow is itself reported.

pub fn median(mut values: Vec<f32>) -> f32 {
    // lint:allow(R2, reason = "inputs validated finite at the API boundary")
    values.sort_by(|a, b| a.partial_cmp(b).unwrap());
    values[values.len() / 2]
}

pub fn worst(values: &[f32]) -> f32 {
    values.iter().copied().fold(f32::INFINITY, f32::min) // lint:allow(R2)
}
