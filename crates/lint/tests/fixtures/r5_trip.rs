//! R5 must fire: double-acquisition of one mutex, a guard held across
//! a blocking call, and a lock-order cycle between two mutex fields.

use std::sync::Mutex;

pub struct Scheduler {
    queue: Mutex<u32>,
    done: Mutex<u32>,
}

impl Scheduler {
    pub fn double(&self) -> u32 {
        let a = self.queue.lock().unwrap();
        let b = self.queue.lock().unwrap(); // same lock, still held: deadlock
        *a + *b
    }

    pub fn forward(&self) -> u32 {
        let q = self.queue.lock().unwrap();
        let d = self.done.lock().unwrap(); // order: queue -> done
        *q + *d
    }

    pub fn backward(&self) -> u32 {
        let d = self.done.lock().unwrap();
        let q = self.queue.lock().unwrap(); // order: done -> queue (cycle!)
        *q + *d
    }

    pub fn sleepy(&self) -> u32 {
        let q = self.queue.lock().unwrap();
        std::thread::sleep(std::time::Duration::from_millis(1)); // guard live
        *q
    }
}
