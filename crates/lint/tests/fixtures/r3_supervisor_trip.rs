//! R3 must fire: supervisor-shaped code that panics on what a child
//! process feeds it — exit statuses, event-stream lines, fault plans.

pub fn classify_exit(raw_status: Option<i32>) -> String {
    // unwrap on a child that was killed by a signal (no exit code).
    let code = raw_status.unwrap();
    format!("exited with {code}")
}

pub fn parse_event(line: &str) -> (String, u64) {
    let parts: Vec<&str> = line.splitn(2, ':').collect();
    // Literal indexing: a garbage line without ':' aborts the
    // supervision thread mid-job.
    let kind = parts[0].to_string();
    let attempt: u64 = parts[1].parse().expect("attempt number");
    (kind, attempt)
}

pub fn parse_plan(spec: &str) -> usize {
    let Some((_, after)) = spec.split_once(':') else {
        panic!("malformed fault plan '{spec}'");
    };
    after.parse().expect("scenario count")
}
