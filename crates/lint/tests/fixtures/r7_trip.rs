//! R7 must fire: spawns whose `JoinHandle` is dropped (bare statement
//! and `let _ =`), and a spawn+join pair that should be a scoped
//! thread.

use std::thread;

pub fn fire_and_forget() {
    thread::spawn(|| {
        let _ = 1 + 1;
    });
}

pub fn discard_named() {
    let _ = thread::spawn(|| 2);
}

pub fn spawn_then_join() -> u32 {
    let h = thread::spawn(|| 3);
    h.join().unwrap_or(0)
}
