//! R2 must fire: every NaN-unsafe ranking idiom the workspace has
//! historically grown.

pub fn rank(mut scores: Vec<f32>) -> Vec<f32> {
    // Panics outright on NaN.
    scores.sort_by(|a, b| a.partial_cmp(b).unwrap());
    scores
}

pub fn best(scores: &[(usize, f32)]) -> Option<usize> {
    // Tie-poisons: NaN compares Equal to everything.
    scores
        .iter()
        .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
        .map(|(i, _)| *i)
}

pub fn spread(values: &[f32]) -> f32 {
    // Silently drops NaN operands.
    values.iter().copied().fold(f32::NEG_INFINITY, f32::max)
}

pub fn closest(values: &[(f32, f32)], target: f32) -> Option<f32> {
    // Comparator not visibly NaN-total.
    values
        .iter()
        .min_by(|a, b| {
            if (a.0 - target).abs() < (b.0 - target).abs() {
                std::cmp::Ordering::Less
            } else {
                std::cmp::Ordering::Greater
            }
        })
        .map(|v| v.1)
}
