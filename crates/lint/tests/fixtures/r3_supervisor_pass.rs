//! R3 must stay quiet: the same supervisor surface with every
//! child-process input handled as a value, never a panic.

pub fn classify_exit(raw_status: Option<i32>) -> String {
    match raw_status {
        Some(code) => format!("exited with {code}"),
        None => "killed by a signal".to_string(),
    }
}

pub fn parse_event(line: &str) -> Result<(String, u64), String> {
    let (kind, attempt) = line
        .split_once(':')
        .ok_or_else(|| format!("non-protocol line: {line}"))?;
    let attempt: u64 = attempt
        .parse()
        .map_err(|e| format!("bad attempt number: {e}"))?;
    Ok((kind.to_string(), attempt))
}

pub fn parse_plan(spec: &str) -> Result<usize, String> {
    let (_, after) = spec
        .split_once(':')
        .ok_or_else(|| format!("malformed fault plan '{spec}'"))?;
    after
        .parse()
        .map_err(|e| format!("fault plan '{spec}': {e}"))
}

#[cfg(test)]
mod tests {
    // Panics in test code are fine: tests *should* assert hard.
    #[test]
    fn signal_death_is_a_value() {
        assert_eq!(super::classify_exit(None), "killed by a signal");
        assert!(super::parse_event("garbage").is_err());
        assert_eq!(super::parse_plan("crash_after:3").unwrap(), 3);
    }
}
