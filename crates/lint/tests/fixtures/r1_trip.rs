//! R1 must fire: allocations inside hot-path functions and in a
//! same-crate callee reachable from a hot root.

pub fn scale_into(src: &[f32], out: &mut Vec<f32>) {
    let tmp = Vec::new(); // direct allocation in a `_into` fn
    let _ = tmp.len();
    let copied = src.to_vec(); // `.to_vec()` in a hot body
    out.extend_from_slice(&copied);
    stage(src, out);
}

// Not hot by name, but called (bare) from `scale_into`, so it inherits
// the zero-alloc contract through the call graph.
fn stage(src: &[f32], out: &mut Vec<f32>) {
    let staged: Vec<f32> = src.iter().map(|v| v * 2.0).collect();
    out.extend_from_slice(&staged);
    let label = format!("staged {} values", staged.len());
    let _ = label;
}

pub fn forward_ws(input: &[f32]) -> Vec<f32> {
    let mut out = Vec::with_capacity(input.len());
    out.extend_from_slice(input);
    out.clone()
}
