//! R3 must fire: request handling that panics on malformed input.

pub fn handle(line: &str) -> String {
    let fields: Vec<&str> = line.split(',').collect();
    // Literal indexing: one-field request aborts the worker.
    let cmd = fields[0];
    // unwrap/expect on client-controlled content.
    let arg: u64 = fields.get(1).unwrap().parse().expect("numeric arg");
    if cmd.is_empty() {
        panic!("empty command");
    }
    match cmd {
        "ping" => "pong".to_string(),
        "echo" => arg.to_string(),
        _ => unreachable!("unknown command"),
    }
}
