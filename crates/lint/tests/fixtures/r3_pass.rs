//! R3 must stay quiet: every malformed input becomes an error value.

pub fn handle(line: &str) -> Result<String, String> {
    let mut fields = line.split(',');
    let cmd = fields.next().ok_or("missing command")?;
    match cmd {
        "ping" => Ok("pong".to_string()),
        "echo" => {
            let arg = fields.next().ok_or("'echo' needs an argument")?;
            let arg: u64 = arg.parse().map_err(|e| format!("bad argument: {e}"))?;
            Ok(arg.to_string())
        }
        other => Err(format!("unknown command '{other}'")),
    }
}

#[cfg(test)]
mod tests {
    // Panics in test code are fine: tests *should* assert hard.
    #[test]
    fn echo_roundtrip() {
        let out = super::handle("echo,7").unwrap();
        assert_eq!(out, "7");
    }
}
