//! R4 must fire: malformed metric names and ad-hoc registration.

pub fn record(worker: usize, n: u64) {
    // Not snake-case.
    telemetry::static_counter!("DaemonJobs").inc();
    // Counter without the `_total` suffix.
    telemetry::static_counter!("daemon_jobs").add(n);
    // Duration histogram without `_seconds`/`_ms`.
    telemetry::duration_histogram!("job_latency").observe(0.5);
    // Ad-hoc registration with a runtime-formatted name.
    telemetry::counter(&format!("worker_{worker}_busy_total")).add(n);
}
