//! Fixture-driven integration tests: each rule has a fixture that must
//! trip it and one that must pass clean, plus the suppression fixture
//! exercising `lint:allow` and the allow-summary output.

use std::path::{Path, PathBuf};

use lint::rules::Config;
use lint::Report;

fn fixtures_root() -> (PathBuf, PathBuf) {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let root = manifest
        .parent()
        .and_then(Path::parent)
        .expect("workspace root")
        .to_path_buf();
    (root, manifest.join("tests/fixtures"))
}

fn fixture_cfg() -> Config {
    Config {
        r3_paths: vec!["fixtures/r3".into()],
        r4_exempt: Vec::new(),
    }
}

fn lint_fixture(name: &str) -> Report {
    let (root, fixtures) = fixtures_root();
    lint::lint_paths(&root, &[fixtures.join(name)], &fixture_cfg()).expect("fixture readable")
}

fn rules_of(report: &Report) -> Vec<&'static str> {
    report.findings.iter().map(|f| f.rule).collect()
}

#[test]
fn r1_trip_fires_on_direct_and_call_graph_allocations() {
    let report = lint_fixture("r1_trip.rs");
    assert!(
        report.findings.iter().all(|f| f.rule == "R1"),
        "{:?}",
        rules_of(&report)
    );
    // Direct hits in scale_into (Vec::new, to_vec) and forward_ws
    // (with_capacity, clone), plus `stage`'s collect/format! via the
    // call graph.
    assert!(report.findings.len() >= 6, "{:#?}", report.findings);
    let via_graph: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.message.contains("reachable from hot root `scale_into`"))
        .collect();
    assert!(
        via_graph.len() >= 2,
        "call-graph propagation missing: {:#?}",
        report.findings
    );
    assert!(report
        .findings
        .iter()
        .any(|f| f.message.contains("`Vec::new`") && f.message.contains("`scale_into`")));
}

#[test]
fn r1_pass_is_clean() {
    let report = lint_fixture("r1_pass.rs");
    assert!(report.clean(), "{:#?}", report.findings);
}

#[test]
fn r2_trip_fires_on_every_nan_unsafe_idiom() {
    let report = lint_fixture("r2_trip.rs");
    assert!(report.findings.iter().all(|f| f.rule == "R2"));
    // Two partial_cmp, one f32::max fold, one comparator-less min_by.
    assert_eq!(report.findings.len(), 4, "{:#?}", report.findings);
    assert!(report
        .findings
        .iter()
        .any(|f| f.message.contains("`f32::max`")));
    assert!(report
        .findings
        .iter()
        .any(|f| f.message.contains("`min_by`")));
}

#[test]
fn r2_pass_is_clean() {
    let report = lint_fixture("r2_pass.rs");
    assert!(report.clean(), "{:#?}", report.findings);
}

#[test]
fn r3_trip_fires_on_panics_and_literal_indexing() {
    let report = lint_fixture("r3_trip.rs");
    assert!(report.findings.iter().all(|f| f.rule == "R3"));
    let msgs: Vec<_> = report.findings.iter().map(|f| f.message.as_str()).collect();
    assert!(msgs.iter().any(|m| m.contains(".unwrap()")), "{msgs:?}");
    assert!(msgs.iter().any(|m| m.contains(".expect()")), "{msgs:?}");
    assert!(msgs.iter().any(|m| m.contains("`panic!`")), "{msgs:?}");
    assert!(
        msgs.iter().any(|m| m.contains("`unreachable!`")),
        "{msgs:?}"
    );
    assert!(
        msgs.iter().any(|m| m.contains("indexing by literal")),
        "{msgs:?}"
    );
}

#[test]
fn r3_pass_is_clean_including_its_test_module() {
    let report = lint_fixture("r3_pass.rs");
    assert!(report.clean(), "{:#?}", report.findings);
}

#[test]
fn r3_does_not_apply_outside_its_scoped_paths() {
    // The same panicking source under a path R3 is not scoped to.
    let (_, fixtures) = fixtures_root();
    let src = std::fs::read_to_string(fixtures.join("r3_trip.rs")).unwrap();
    let report = lint::lint_sources(
        &[("crates/models/src/whatever.rs".into(), src, false)],
        &fixture_cfg(),
    );
    assert!(
        report.findings.iter().all(|f| f.rule != "R3"),
        "{:#?}",
        report.findings
    );
}

#[test]
fn r4_trip_fires_on_names_and_adhoc_registration() {
    let report = lint_fixture("r4_trip.rs");
    assert!(report.findings.iter().all(|f| f.rule == "R4"));
    let msgs: Vec<_> = report.findings.iter().map(|f| f.message.as_str()).collect();
    assert!(msgs.iter().any(|m| m.contains("`DaemonJobs`")), "{msgs:?}");
    assert!(
        msgs.iter()
            .any(|m| m.contains("`daemon_jobs` must end in `_total`")),
        "{msgs:?}"
    );
    assert!(
        msgs.iter()
            .any(|m| m.contains("`job_latency` must end in `_seconds`")),
        "{msgs:?}"
    );
    assert!(
        msgs.iter()
            .any(|m| m.contains("ad-hoc `telemetry::counter()`")),
        "{msgs:?}"
    );
}

#[test]
fn r4_pass_is_clean_including_labeled_raw_string_names() {
    let report = lint_fixture("r4_pass.rs");
    assert!(report.clean(), "{:#?}", report.findings);
}

#[test]
fn allow_suppresses_with_reason_and_reports_reasonless() {
    let report = lint_fixture("allow.rs");
    // The reasoned allow suppresses its partial_cmp finding…
    assert!(
        report
            .allows_in_force
            .iter()
            .any(|a| a.rule == "R2" && a.reason.contains("validated finite")),
        "{:#?}",
        report.allows_in_force
    );
    // …and nothing R2 leaks through.
    assert!(
        report.findings.iter().all(|f| f.rule != "R2"),
        "{:#?}",
        report.findings
    );
    // The reason-less allow is itself a finding.
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.rule == "R0" && f.message.contains("suppression-missing-reason")),
        "{:#?}",
        report.findings
    );
    // The summary table renders one row per suppression in force.
    let summary = lint::render_allow_summary(&report);
    assert!(summary.contains("validated finite"), "{summary}");
    assert!(summary.starts_with("suppressions in force:"), "{summary}");
}

#[test]
fn unused_allow_is_reported() {
    let report = lint::lint_sources(
        &[(
            "crates/x/src/lib.rs".into(),
            "pub fn fine() -> u32 {\n    // lint:allow(R2, reason = \"nothing here\")\n    1\n}\n"
                .into(),
            false,
        )],
        &fixture_cfg(),
    );
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.rule == "R0" && f.message.contains("unused-suppression")),
        "{:#?}",
        report.findings
    );
}

#[test]
fn hot_roots_in_test_code_do_not_propagate() {
    // A `_into` helper defined inside #[cfg(test)] may allocate.
    let src = "#[cfg(test)]\nmod tests {\n    fn build_into(out: &mut Vec<f32>) {\n        let v: Vec<f32> = (0..4).map(|i| i as f32).collect();\n        out.extend(v);\n    }\n}\n";
    let report = lint::lint_sources(
        &[("crates/x/src/lib.rs".into(), src.into(), false)],
        &fixture_cfg(),
    );
    assert!(report.clean(), "{:#?}", report.findings);
}

#[test]
fn findings_carry_file_line_col() {
    let report = lint_fixture("r2_trip.rs");
    let f = &report.findings[0];
    assert!(f.path.ends_with("fixtures/r2_trip.rs"), "{}", f.path);
    assert!(f.line > 0 && f.col > 0);
    let rendered = f.render();
    assert!(
        rendered.contains(&format!("{}:{}:{}: R2", f.path, f.line, f.col)),
        "{rendered}"
    );
}
