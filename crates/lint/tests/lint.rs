//! Fixture-driven integration tests: each rule has a fixture that must
//! trip it and one that must pass clean, plus the suppression fixture
//! exercising `lint:allow` and the allow-summary output.

use std::path::{Path, PathBuf};

use lint::rules::Config;
use lint::Report;

fn fixtures_root() -> (PathBuf, PathBuf) {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let root = manifest
        .parent()
        .and_then(Path::parent)
        .expect("workspace root")
        .to_path_buf();
    (root, manifest.join("tests/fixtures"))
}

fn fixture_cfg() -> Config {
    Config {
        r3_paths: vec!["fixtures/r3".into()],
        r4_exempt: Vec::new(),
        r6_relaxed_paths: vec!["fixtures/r6".into()],
        ..Config::default()
    }
}

fn lint_fixture(name: &str) -> Report {
    let (root, fixtures) = fixtures_root();
    lint::lint_paths(&root, &[fixtures.join(name)], &fixture_cfg()).expect("fixture readable")
}

fn rules_of(report: &Report) -> Vec<&'static str> {
    report.findings.iter().map(|f| f.rule).collect()
}

#[test]
fn r1_trip_fires_on_direct_and_call_graph_allocations() {
    let report = lint_fixture("r1_trip.rs");
    assert!(
        report.findings.iter().all(|f| f.rule == "R1"),
        "{:?}",
        rules_of(&report)
    );
    // Direct hits in scale_into (Vec::new, to_vec) and forward_ws
    // (with_capacity, clone), plus `stage`'s collect/format! via the
    // call graph.
    assert!(report.findings.len() >= 6, "{:#?}", report.findings);
    let via_graph: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.message.contains("reachable from hot root `scale_into`"))
        .collect();
    assert!(
        via_graph.len() >= 2,
        "call-graph propagation missing: {:#?}",
        report.findings
    );
    assert!(report
        .findings
        .iter()
        .any(|f| f.message.contains("`Vec::new`") && f.message.contains("`scale_into`")));
}

#[test]
fn r1_pass_is_clean() {
    let report = lint_fixture("r1_pass.rs");
    assert!(report.clean(), "{:#?}", report.findings);
}

#[test]
fn r2_trip_fires_on_every_nan_unsafe_idiom() {
    let report = lint_fixture("r2_trip.rs");
    assert!(report.findings.iter().all(|f| f.rule == "R2"));
    // Two partial_cmp, one f32::max fold, one comparator-less min_by.
    assert_eq!(report.findings.len(), 4, "{:#?}", report.findings);
    assert!(report
        .findings
        .iter()
        .any(|f| f.message.contains("`f32::max`")));
    assert!(report
        .findings
        .iter()
        .any(|f| f.message.contains("`min_by`")));
}

#[test]
fn r2_pass_is_clean() {
    let report = lint_fixture("r2_pass.rs");
    assert!(report.clean(), "{:#?}", report.findings);
}

#[test]
fn r3_trip_fires_on_panics_and_literal_indexing() {
    let report = lint_fixture("r3_trip.rs");
    assert!(report.findings.iter().all(|f| f.rule == "R3"));
    let msgs: Vec<_> = report.findings.iter().map(|f| f.message.as_str()).collect();
    assert!(msgs.iter().any(|m| m.contains(".unwrap()")), "{msgs:?}");
    assert!(msgs.iter().any(|m| m.contains(".expect()")), "{msgs:?}");
    assert!(msgs.iter().any(|m| m.contains("`panic!`")), "{msgs:?}");
    assert!(
        msgs.iter().any(|m| m.contains("`unreachable!`")),
        "{msgs:?}"
    );
    assert!(
        msgs.iter().any(|m| m.contains("indexing by literal")),
        "{msgs:?}"
    );
}

#[test]
fn r3_pass_is_clean_including_its_test_module() {
    let report = lint_fixture("r3_pass.rs");
    assert!(report.clean(), "{:#?}", report.findings);
}

#[test]
fn r3_does_not_apply_outside_its_scoped_paths() {
    // The same panicking source under a path R3 is not scoped to.
    let (_, fixtures) = fixtures_root();
    let src = std::fs::read_to_string(fixtures.join("r3_trip.rs")).unwrap();
    let report = lint::lint_sources(
        &[("crates/models/src/whatever.rs".into(), src, false)],
        &fixture_cfg(),
    );
    assert!(
        report.findings.iter().all(|f| f.rule != "R3"),
        "{:#?}",
        report.findings
    );
}

#[test]
fn r3_supervisor_fixtures_trip_and_pass() {
    let report = lint_fixture("r3_supervisor_trip.rs");
    assert!(!report.findings.is_empty());
    assert!(report.findings.iter().all(|f| f.rule == "R3"));
    let msgs: Vec<_> = report.findings.iter().map(|f| f.message.as_str()).collect();
    assert!(msgs.iter().any(|m| m.contains(".unwrap()")), "{msgs:?}");
    assert!(
        msgs.iter().any(|m| m.contains("indexing by literal")),
        "{msgs:?}"
    );
    let report = lint_fixture("r3_supervisor_pass.rs");
    assert!(report.clean(), "{:#?}", report.findings);
}

#[test]
fn r3_default_scope_covers_the_fault_tolerant_service_surface() {
    // The supervisor and the fault-plan parser both consume bytes from
    // across a process boundary; losing them from R3's default scope
    // would quietly re-admit panics on untrusted input.
    let scope = Config::default().r3_paths;
    for path in [
        "crates/serve/src/protocol.rs",
        "crates/serve/src/daemon.rs",
        "crates/serve/src/supervisor.rs",
        "crates/serve/src/fault.rs",
        "crates/scenarios/src/store.rs",
    ] {
        assert!(
            scope.iter().any(|p| p == path),
            "R3 default scope lost {path}: {scope:?}"
        );
    }
}

#[test]
fn r4_trip_fires_on_names_and_adhoc_registration() {
    let report = lint_fixture("r4_trip.rs");
    assert!(report.findings.iter().all(|f| f.rule == "R4"));
    let msgs: Vec<_> = report.findings.iter().map(|f| f.message.as_str()).collect();
    assert!(msgs.iter().any(|m| m.contains("`DaemonJobs`")), "{msgs:?}");
    assert!(
        msgs.iter()
            .any(|m| m.contains("`daemon_jobs` must end in `_total`")),
        "{msgs:?}"
    );
    assert!(
        msgs.iter()
            .any(|m| m.contains("`job_latency` must end in `_seconds`")),
        "{msgs:?}"
    );
    assert!(
        msgs.iter()
            .any(|m| m.contains("ad-hoc `telemetry::counter()`")),
        "{msgs:?}"
    );
}

#[test]
fn r4_pass_is_clean_including_labeled_raw_string_names() {
    let report = lint_fixture("r4_pass.rs");
    assert!(report.clean(), "{:#?}", report.findings);
}

#[test]
fn allow_suppresses_with_reason_and_reports_reasonless() {
    let report = lint_fixture("allow.rs");
    // The reasoned allow suppresses its partial_cmp finding…
    assert!(
        report
            .allows_in_force
            .iter()
            .any(|a| a.rule == "R2" && a.reason.contains("validated finite")),
        "{:#?}",
        report.allows_in_force
    );
    // …and nothing R2 leaks through.
    assert!(
        report.findings.iter().all(|f| f.rule != "R2"),
        "{:#?}",
        report.findings
    );
    // The reason-less allow is itself a finding.
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.rule == "R0" && f.message.contains("suppression-missing-reason")),
        "{:#?}",
        report.findings
    );
    // The summary table renders one row per suppression in force.
    let summary = lint::render_allow_summary(&report);
    assert!(summary.contains("validated finite"), "{summary}");
    assert!(summary.starts_with("suppressions in force:"), "{summary}");
}

#[test]
fn unused_allow_is_reported() {
    let report = lint::lint_sources(
        &[(
            "crates/x/src/lib.rs".into(),
            "pub fn fine() -> u32 {\n    // lint:allow(R2, reason = \"nothing here\")\n    1\n}\n"
                .into(),
            false,
        )],
        &fixture_cfg(),
    );
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.rule == "R0" && f.message.contains("unused-suppression")),
        "{:#?}",
        report.findings
    );
}

#[test]
fn hot_roots_in_test_code_do_not_propagate() {
    // A `_into` helper defined inside #[cfg(test)] may allocate.
    let src = "#[cfg(test)]\nmod tests {\n    fn build_into(out: &mut Vec<f32>) {\n        let v: Vec<f32> = (0..4).map(|i| i as f32).collect();\n        out.extend(v);\n    }\n}\n";
    let report = lint::lint_sources(
        &[("crates/x/src/lib.rs".into(), src.into(), false)],
        &fixture_cfg(),
    );
    assert!(report.clean(), "{:#?}", report.findings);
}

#[test]
fn r5_trip_fires_on_cycle_double_acquisition_and_blocking() {
    let report = lint_fixture("r5_trip.rs");
    assert!(
        report.findings.iter().all(|f| f.rule == "R5"),
        "{:#?}",
        report.findings
    );
    let msgs: Vec<_> = report.findings.iter().map(|f| f.message.as_str()).collect();
    assert!(
        msgs.iter().any(|m| m.contains("double-acquisition")),
        "{msgs:?}"
    );
    assert!(
        msgs.iter().any(|m| m.contains("lock-order cycle")),
        "{msgs:?}"
    );
    assert!(
        msgs.iter().any(|m| m.contains("live across blocking")),
        "{msgs:?}"
    );
    // The analysis also reports the recovered acquisition-order edges.
    let edges: Vec<_> = report
        .lock_edges
        .iter()
        .map(|e| (e.from.as_str(), e.to.as_str()))
        .collect();
    assert!(edges.contains(&("queue", "done")), "{edges:?}");
    assert!(edges.contains(&("done", "queue")), "{edges:?}");
}

#[test]
fn r5_pass_is_clean() {
    let report = lint_fixture("r5_pass.rs");
    assert!(report.clean(), "{:#?}", report.findings);
}

#[test]
fn r6_trip_fires_on_strong_ordering_hidden_cas_and_undocumented_flag() {
    let report = lint_fixture("r6_trip.rs");
    assert!(
        report.findings.iter().all(|f| f.rule == "R6"),
        "{:#?}",
        report.findings
    );
    let msgs: Vec<_> = report.findings.iter().map(|f| f.message.as_str()).collect();
    assert!(msgs.iter().any(|m| m.contains("SeqCst")), "{msgs:?}");
    assert!(
        msgs.iter()
            .any(|m| m.contains("success *and* failure orderings")),
        "{msgs:?}"
    );
    assert!(
        msgs.iter().any(|m| m.contains("`SHUTDOWN` must document")),
        "{msgs:?}"
    );
}

#[test]
fn r6_pass_is_clean() {
    let report = lint_fixture("r6_pass.rs");
    assert!(report.clean(), "{:#?}", report.findings);
}

#[test]
fn r7_trip_fires_on_dropped_handles_and_spawn_join_pairs() {
    let report = lint_fixture("r7_trip.rs");
    assert!(
        report.findings.iter().all(|f| f.rule == "R7"),
        "{:#?}",
        report.findings
    );
    let msgs: Vec<_> = report.findings.iter().map(|f| f.message.as_str()).collect();
    assert_eq!(
        msgs.iter().filter(|m| m.contains("result dropped")).count(),
        2,
        "{msgs:?}"
    );
    assert!(
        msgs.iter().any(|m| m.contains("prefer `thread::scope`")),
        "{msgs:?}"
    );
}

#[test]
fn r7_pass_is_clean() {
    let report = lint_fixture("r7_pass.rs");
    assert!(report.clean(), "{:#?}", report.findings);
}

#[test]
fn call_graph_follows_self_method_and_cross_crate_edges() {
    let a = "use b_crate::helper2;\n\
             pub struct Engine;\n\
             impl Engine {\n\
                 pub fn step_ws(&self) {\n\
                     self.stage();\n\
                     helper2();\n\
                 }\n\
                 fn stage(&self) {\n\
                     let v: Vec<f32> = Vec::new();\n\
                     let _ = v.len();\n\
                 }\n\
             }\n";
    let b = "pub fn helper2() {\n    let s = String::new();\n    let _ = s.len();\n}\n";
    let report = lint::lint_sources(
        &[
            ("crates/a_crate/src/lib.rs".into(), a.into(), false),
            ("crates/b_crate/src/helper.rs".into(), b.into(), false),
        ],
        &fixture_cfg(),
    );
    // `self.stage()` resolves through the impl block…
    assert!(
        report.findings.iter().any(|f| f.path.contains("a_crate")
            && f.message.contains("`Vec::new`")
            && f.message.contains("reachable from hot root `step_ws`")),
        "{:#?}",
        report.findings
    );
    // …and `helper2()` resolves cross-crate through the use import.
    assert!(
        report.findings.iter().any(|f| f.path.contains("b_crate")
            && f.message.contains("`String::new`")
            && f.message.contains("reachable from hot root `step_ws`")),
        "{:#?}",
        report.findings
    );
}

#[test]
fn json_rendering_has_stable_schema_and_marks_suppressed() {
    let report = lint_fixture("allow.rs");
    let json = lint::render_json(&report);
    for key in [
        "\"clean\": false",
        "\"findings\": [",
        "\"file\": ",
        "\"line\": ",
        "\"col\": ",
        "\"rule\": \"R0\"",
        "\"message\": ",
        "\"suppressed\": true",
        "\"suppressed\": false",
        "\"suppressions\": [",
        "\"reason\": ",
    ] {
        assert!(json.contains(key), "missing {key} in:\n{json}");
    }
    // The R2 finding the reasoned allow silenced is published, marked.
    assert!(
        json.contains("\"rule\": \"R2\""),
        "suppressed finding absent:\n{json}"
    );
}

/// Satellite check: the runner's documented lock order holds on the
/// real sources — `in_flight` before `cache`, the store's file lock
/// only ever under the persist-state mutex, never under `cache`, and
/// no acquisition-order cycle anywhere in the service code.
#[test]
fn workspace_lock_order_is_acyclic_and_store_lock_is_a_leaf() {
    let (root, _) = fixtures_root();
    let files: Vec<PathBuf> = [
        "crates/scenarios/src/runner.rs",
        "crates/scenarios/src/store.rs",
        "crates/serve/src/daemon.rs",
        "crates/telemetry/src/lib.rs",
    ]
    .iter()
    .map(|p| root.join(p))
    .collect();
    let report = lint::lint_paths(&root, &files, &Config::default()).expect("sources readable");
    assert!(
        report
            .findings
            .iter()
            .all(|f| !f.message.contains("lock-order cycle")),
        "{:#?}",
        report.findings
    );
    let edges: Vec<_> = report
        .lock_edges
        .iter()
        .map(|e| (e.from.as_str(), e.to.as_str()))
        .collect();
    assert!(edges.contains(&("in_flight", "cache")), "{edges:?}");
    assert!(
        edges.contains(&("state", "ResultStore file lock")),
        "{edges:?}"
    );
    assert!(
        edges.iter().all(|(from, _)| *from != "cache"),
        "the cache mutex must be a leaf — something acquires a lock \
         while holding it: {edges:?}"
    );
}

#[test]
fn findings_carry_file_line_col() {
    let report = lint_fixture("r2_trip.rs");
    let f = &report.findings[0];
    assert!(f.path.ends_with("fixtures/r2_trip.rs"), "{}", f.path);
    assert!(f.line > 0 && f.col > 0);
    let rendered = f.render();
    assert!(
        rendered.contains(&format!("{}:{}:{}: R2", f.path, f.line, f.col)),
        "{rendered}"
    );
}
