//! The four rule families, run over scanned files.
//!
//! - **R1 alloc-in-hot-path** — allocation calls inside `*_ws` /
//!   `*_into` / `*_into_ws` functions and their same-crate callees.
//! - **R2 nan-unsafe-ordering** — `partial_cmp`, comparator-less
//!   `max_by`/`min_by`, and `f32::max`-style folds on floats.
//! - **R3 panic-on-input** — `unwrap`/`expect`/`panic!`/literal
//!   indexing in service code that handles client requests or
//!   persisted records.
//! - **R4 telemetry-hygiene** — metric names must be lowercase
//!   snake-case with conventional suffixes and registered through the
//!   `static_*!` / `duration_histogram!` macros, never ad-hoc.
//!
//! Plus **R0**: a malformed suppression (`lint:allow` without a
//! written reason, or one that matches nothing) is itself a finding —
//! the escape hatch must never rot silently.

use std::collections::{HashMap, HashSet, VecDeque};

use crate::scan::{is_keyword, FileScan};
use crate::tokenizer::{Tok, TokKind};

/// How the linter is scoped to a workspace.
pub struct Config {
    /// Path substrings where R3 (panic-on-input) applies.
    pub r3_paths: Vec<String>,
    /// Path substrings where R4 is off (the telemetry registry itself).
    pub r4_exempt: Vec<String>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            // The daemon's request-handling surface and the persisted
            // record store: exactly the code a malicious or corrupt
            // input reaches.
            r3_paths: vec![
                "crates/serve/src/protocol.rs".into(),
                "crates/serve/src/daemon.rs".into(),
                "crates/scenarios/src/store.rs".into(),
            ],
            r4_exempt: vec!["crates/telemetry/".into()],
        }
    }
}

/// One diagnostic.
#[derive(Debug)]
pub struct Finding {
    /// Rule ID (`R0`–`R4`).
    pub rule: &'static str,
    pub path: String,
    pub line: u32,
    pub col: u32,
    pub message: String,
}

impl Finding {
    /// The canonical one-line rendering.
    pub fn render(&self) -> String {
        format!(
            "{}:{}:{}: {} {}",
            self.path, self.line, self.col, self.rule, self.message
        )
    }
}

/// A suppression that matched at least one finding — surfaced in the
/// summary table so the allow inventory stays auditable.
#[derive(Debug)]
pub struct AllowRecord {
    pub path: String,
    pub line: u32,
    pub rule: &'static str,
    pub reason: String,
}

/// Everything one lint run produced.
#[derive(Default)]
pub struct Report {
    pub findings: Vec<Finding>,
    pub allows_in_force: Vec<AllowRecord>,
}

impl Report {
    /// True when the run should exit zero.
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }
}

const RULES: [&str; 4] = ["R1", "R2", "R3", "R4"];

/// Is this function a zero-alloc hot-path root by naming convention?
fn is_hot_root(name: &str) -> bool {
    name.ends_with("_ws") || name.ends_with("_into") || name.ends_with("_into_ws")
}

/// Runs every rule over the scanned files and resolves suppressions.
pub fn run(files: &[FileScan], cfg: &Config) -> Report {
    let mut raw: Vec<Finding> = Vec::new();
    rule_r1(files, &mut raw);
    for file in files {
        rule_r2(file, &mut raw);
        if cfg.r3_paths.iter().any(|p| file.path.contains(p.as_str())) {
            rule_r3(file, &mut raw);
        }
        if !cfg.r4_exempt.iter().any(|p| file.path.contains(p.as_str())) {
            rule_r4(file, &mut raw);
        }
    }
    apply_allows(files, raw)
}

/// Matches findings against `lint:allow` directives, producing the
/// final report: suppressed findings become allow records, reason-less
/// or unused directives become R0 findings.
fn apply_allows(files: &[FileScan], raw: Vec<Finding>) -> Report {
    let mut report = Report::default();
    // (path, applies_line, rule) -> directive bookkeeping.
    let mut used: HashMap<(String, u32), Vec<bool>> = HashMap::new();
    for file in files {
        for (ai, allow) in file.allows.iter().enumerate() {
            used.entry((file.path.clone(), allow.applies_line))
                .or_insert_with(|| vec![false; file.allows.len()])
                .resize(file.allows.len().max(ai + 1), false);
        }
    }
    for finding in raw {
        let mut suppressed = false;
        if let Some(file) = files.iter().find(|f| f.path == finding.path) {
            for (ai, allow) in file.allows.iter().enumerate() {
                if allow.applies_line == finding.line
                    && allow.rules.iter().any(|r| r == finding.rule)
                {
                    if let Some(flags) = used.get_mut(&(file.path.clone(), allow.applies_line)) {
                        flags[ai] = true;
                    }
                    report.allows_in_force.push(AllowRecord {
                        path: file.path.clone(),
                        line: allow.line,
                        rule: RULES
                            .iter()
                            .find(|r| **r == finding.rule)
                            .copied()
                            .unwrap_or("R?"),
                        reason: allow.reason.clone().unwrap_or_default(),
                    });
                    suppressed = true;
                    break;
                }
            }
        }
        if !suppressed {
            report.findings.push(finding);
        }
    }
    // Directive hygiene: every allow needs a reason, and must suppress
    // something.
    for file in files {
        for (ai, allow) in file.allows.iter().enumerate() {
            let was_used = used
                .get(&(file.path.clone(), allow.applies_line))
                .and_then(|flags| flags.get(ai))
                .copied()
                .unwrap_or(false);
            if allow.reason.is_none() {
                report.findings.push(Finding {
                    rule: "R0",
                    path: file.path.clone(),
                    line: allow.line,
                    col: 1,
                    message: "suppression-missing-reason: every `lint:allow` must carry \
                              `reason = \"…\"` explaining why the rule does not apply"
                        .into(),
                });
            } else if !was_used {
                report.findings.push(Finding {
                    rule: "R0",
                    path: file.path.clone(),
                    line: allow.line,
                    col: 1,
                    message: format!(
                        "unused-suppression: `lint:allow({})` matched no finding — delete it \
                         or move it next to the code it excuses",
                        allow.rules.join(", ")
                    ),
                });
            }
        }
    }
    report
        .findings
        .sort_by(|a, b| (&a.path, a.line, a.col).cmp(&(&b.path, b.line, b.col)));
    report
        .allows_in_force
        .sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    report.allows_in_force.dedup_by(|a, b| {
        a.path == b.path && a.line == b.line && a.rule == b.rule && a.reason == b.reason
    });
    report
}

/// The crate a file belongs to, for intra-crate call resolution:
/// `crates/<name>/…` → `<name>`, everything else → the root package.
fn crate_of(path: &str) -> &str {
    path.strip_prefix("crates/")
        .and_then(|rest| rest.split('/').next())
        .unwrap_or("root")
}

// ---------------------------------------------------------------------
// R1: alloc-in-hot-path
// ---------------------------------------------------------------------

/// A bare `name(` call site (not `.name(`, not `path::name(`, not
/// `name!`): the only calls the intra-crate graph can resolve without
/// type information. Method and cross-crate calls are out of scope by
/// design — documented in the README.
fn bare_calls(code: &[Tok], body: std::ops::Range<usize>) -> Vec<String> {
    let mut out = Vec::new();
    for i in body.clone() {
        let t = &code[i];
        if t.kind != TokKind::Ident || is_keyword(&t.text) {
            continue;
        }
        if !code.get(i + 1).is_some_and(|n| n.is_punct('(')) {
            continue;
        }
        if i > 0 && (code[i - 1].is_punct('.') || code[i - 1].is_punct(':')) {
            continue;
        }
        out.push(t.text.clone());
    }
    out
}

/// Function name → definition sites (file index, fn index) in one crate.
type FnIndex<'a> = HashMap<&'a str, Vec<(usize, usize)>>;

fn rule_r1(files: &[FileScan], out: &mut Vec<Finding>) {
    // name -> (file index, fn index) per crate, for call resolution.
    let mut by_crate: HashMap<&str, FnIndex> = HashMap::new();
    for (fi, file) in files.iter().enumerate() {
        let map = by_crate.entry(crate_of(&file.path)).or_default();
        for (ni, f) in file.fns.iter().enumerate() {
            map.entry(f.name.as_str()).or_default().push((fi, ni));
        }
    }
    // BFS from hot roots through bare intra-crate calls. `hot` maps a
    // function to the root whose zero-alloc contract it inherits.
    let mut hot: HashMap<(usize, usize), String> = HashMap::new();
    let mut queue: VecDeque<(usize, usize)> = VecDeque::new();
    for (fi, file) in files.iter().enumerate() {
        for (ni, f) in file.fns.iter().enumerate() {
            if is_hot_root(&f.name) && !f.in_test_code {
                hot.insert((fi, ni), f.name.clone());
                queue.push_back((fi, ni));
            }
        }
    }
    while let Some((fi, ni)) = queue.pop_front() {
        let root = hot[&(fi, ni)].clone();
        let file = &files[fi];
        let f = &file.fns[ni];
        let krate = crate_of(&file.path);
        for callee in bare_calls(&file.code, f.body.clone()) {
            if let Some(defs) = by_crate.get(krate).and_then(|m| m.get(callee.as_str())) {
                for &(cfi, cni) in defs {
                    if files[cfi].fns[cni].in_test_code {
                        continue;
                    }
                    if let std::collections::hash_map::Entry::Vacant(e) = hot.entry((cfi, cni)) {
                        e.insert(root.clone());
                        queue.push_back((cfi, cni));
                    }
                }
            }
        }
    }
    // Scan every hot body for allocation tokens.
    let mut seen: HashSet<(usize, u32, u32)> = HashSet::new();
    for (&(fi, ni), root) in &hot {
        let file = &files[fi];
        let f = &file.fns[ni];
        let code = &file.code;
        for i in f.body.clone() {
            let t = &code[i];
            if t.kind != TokKind::Ident {
                continue;
            }
            let path_head = |name: &str| {
                i >= 2
                    && code[i - 1].is_punct(':')
                    && code[i - 2].is_punct(':')
                    && i >= 3
                    && code[i - 3].is_ident(name)
            };
            let method = || i > 0 && code[i - 1].is_punct('.');
            let what: Option<String> = match t.text.as_str() {
                "new" if path_head("Vec") => Some("Vec::new".into()),
                "new" if path_head("Box") => Some("Box::new".into()),
                "new" if path_head("String") => Some("String::new".into()),
                "from" if path_head("String") => Some("String::from".into()),
                "with_capacity" => Some("with_capacity".into()),
                "vec" | "format" if code.get(i + 1).is_some_and(|n| n.is_punct('!')) => {
                    Some(format!("{}!", t.text))
                }
                "to_vec" | "to_string" if method() => Some(format!(".{}()", t.text)),
                "clone" | "collect"
                    if method()
                        && code
                            .get(i + 1)
                            .is_some_and(|n| n.is_punct('(') || n.is_punct(':')) =>
                {
                    Some(format!(".{}()", t.text))
                }
                _ => None,
            };
            if let Some(what) = what {
                if seen.insert((fi, t.line, t.col)) {
                    let via = if is_hot_root(&f.name) {
                        String::new()
                    } else {
                        format!(" (reachable from hot root `{root}`)")
                    };
                    out.push(Finding {
                        rule: "R1",
                        path: file.path.clone(),
                        line: t.line,
                        col: t.col,
                        message: format!(
                            "alloc-in-hot-path: `{what}` inside `{}`{via} — hot-path \
                             functions must take buffers from the `Workspace` pool",
                            f.name
                        ),
                    });
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// R2: nan-unsafe-ordering
// ---------------------------------------------------------------------

fn rule_r2(file: &FileScan, out: &mut Vec<Finding>) {
    let code = &file.code;
    for (i, t) in code.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        match t.text.as_str() {
            "partial_cmp" => out.push(Finding {
                rule: "R2",
                path: file.path.clone(),
                line: t.line,
                col: t.col,
                message: "nan-unsafe-ordering: `partial_cmp` on floats panics or \
                          tie-poisons on NaN — use `total_cmp`, `tensor::nan_low_cmp` \
                          (f32), or `bayesopt::nan_low_cmp` (f64)"
                    .into(),
            }),
            "max" | "min"
                if i >= 3
                    && code[i - 1].is_punct(':')
                    && code[i - 2].is_punct(':')
                    && (code[i - 3].is_ident("f32") || code[i - 3].is_ident("f64")) =>
            {
                out.push(Finding {
                    rule: "R2",
                    path: file.path.clone(),
                    line: t.line,
                    col: t.col,
                    message: format!(
                        "nan-unsafe-ordering: `{}::{}` silently drops NaN operands — \
                         if NaN must not vanish, compare via `total_cmp`/`nan_low_cmp`; \
                         if dropping NaN is intended, say so in a `lint:allow` reason",
                        code[i - 3].text,
                        t.text
                    ),
                });
            }
            "max_by" | "min_by" if code.get(i + 1).is_some_and(|n| n.is_punct('(')) => {
                // Only flag when the comparator is not visibly
                // NaN-total; a `partial_cmp` inside fires on its own.
                let mut depth = 0u32;
                let mut j = i + 1;
                let mut safe = false;
                while j < code.len() {
                    let a = &code[j];
                    if a.is_punct('(') {
                        depth += 1;
                    } else if a.is_punct(')') {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    } else if a.is_ident("total_cmp")
                        || a.is_ident("nan_low_cmp")
                        || a.is_ident("partial_cmp")
                        // `.cmp(` is Ord::cmp — total by definition. A
                        // path segment like `std::cmp::Ordering` is not.
                        || (a.is_ident("cmp") && j > 0 && code[j - 1].is_punct('.'))
                    {
                        safe = true;
                    }
                    j += 1;
                }
                if !safe {
                    out.push(Finding {
                        rule: "R2",
                        path: file.path.clone(),
                        line: t.line,
                        col: t.col,
                        message: format!(
                            "nan-unsafe-ordering: `{}` with a comparator that is not \
                             visibly NaN-total — rank through `total_cmp` or `nan_low_cmp`",
                            t.text
                        ),
                    });
                }
            }
            _ => {}
        }
    }
}

// ---------------------------------------------------------------------
// R3: panic-on-input
// ---------------------------------------------------------------------

fn rule_r3(file: &FileScan, out: &mut Vec<Finding>) {
    let code = &file.code;
    // Token index -> enclosing test-ness: skip findings inside
    // #[cfg(test)] code; service-path tests may unwrap freely.
    let in_test = |i: usize| {
        file.fns
            .iter()
            .filter(|f| f.body.contains(&i))
            .any(|f| f.in_test_code)
    };
    for (i, t) in code.iter().enumerate() {
        let finding = match t.kind {
            TokKind::Ident => match t.text.as_str() {
                "unwrap" | "expect"
                    if i > 0
                        && code[i - 1].is_punct('.')
                        && code.get(i + 1).is_some_and(|n| n.is_punct('(')) =>
                {
                    Some(format!(
                        ".{}() can panic on malformed input — return a protocol error \
                         response (`{{\"ok\":false,…}}`) or propagate a Result",
                        t.text
                    ))
                }
                "panic" | "unreachable" | "todo" | "unimplemented"
                    if code.get(i + 1).is_some_and(|n| n.is_punct('!')) =>
                {
                    Some(format!(
                        "`{}!` in service code aborts the worker on unexpected input — \
                         convert to an error response",
                        t.text
                    ))
                }
                _ => None,
            },
            TokKind::Punct if t.is_punct('[') => {
                // Literal indexing `x[0]` panics when the shape
                // assumption breaks; array literals `[0; 4]`/`[0]` on
                // the value side are rare enough to allow explicitly.
                if code.get(i + 1).is_some_and(|n| n.kind == TokKind::Num)
                    && code.get(i + 2).is_some_and(|n| n.is_punct(']'))
                    && i > 0
                    && (code[i - 1].kind == TokKind::Ident && !is_keyword(&code[i - 1].text)
                        || code[i - 1].is_punct(')')
                        || code[i - 1].is_punct(']'))
                {
                    Some(format!(
                        "indexing by literal `[{}]` panics when the input is shorter \
                         than assumed — use `.get({})` and answer with an error",
                        code[i + 1].text,
                        code[i + 1].text
                    ))
                } else {
                    None
                }
            }
            _ => None,
        };
        if let Some(message) = finding {
            if !in_test(i) {
                out.push(Finding {
                    rule: "R3",
                    path: file.path.clone(),
                    line: t.line,
                    col: t.col,
                    message: format!("panic-on-input: {message}"),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------
// R4: telemetry hygiene
// ---------------------------------------------------------------------

/// Validates a metric name literal against the house conventions.
/// Returns a complaint, or `None` when the name conforms.
fn metric_name_problem(kind: &str, name: &str) -> Option<String> {
    let (base, label) = match name.find('{') {
        Some(b) => (&name[..b], Some(&name[b..])),
        None => (name, None),
    };
    if base.is_empty()
        || !base.as_bytes()[0].is_ascii_lowercase()
        || !base
            .bytes()
            .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_')
    {
        return Some(format!(
            "metric name `{base}` must match [a-z][a-z0-9_]* — lowercase snake-case only"
        ));
    }
    if let Some(label) = label {
        if !label.ends_with('}') || !label.contains("=\"") {
            return Some(format!(
                "label block `{label}` must look like {{key=\"value\"}}"
            ));
        }
    }
    match kind {
        "counter" if !(base.ends_with("_total") || base.ends_with("_bytes")) => Some(format!(
            "counter `{base}` must end in `_total` (or `_bytes` for byte counters)"
        )),
        "histogram" if !(base.ends_with("_seconds") || base.ends_with("_ms")) => Some(format!(
            "duration histogram `{base}` must end in `_seconds` or `_ms`"
        )),
        _ => None,
    }
}

fn rule_r4(file: &FileScan, out: &mut Vec<Finding>) {
    let code = &file.code;
    for (i, t) in code.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        let kind = match t.text.as_str() {
            "static_counter" => "counter",
            "static_gauge" => "gauge",
            "duration_histogram" => "histogram",
            "counter" | "gauge" | "histogram"
                if i >= 3
                    && code[i - 1].is_punct(':')
                    && code[i - 2].is_punct(':')
                    && code[i - 3].is_ident("telemetry")
                    && code.get(i + 1).is_some_and(|n| n.is_punct('(')) =>
            {
                // Ad-hoc registration bypasses the once-cached static
                // handle and invites runtime-formatted names.
                let arg = code.get(i + 2);
                let name_note = match arg.map(|a| (&a.kind, a.text.as_str())) {
                    Some((TokKind::Str | TokKind::RawStr, name)) => {
                        metric_name_problem(&t.text, name)
                            .map(|p| format!("; additionally: {p}"))
                            .unwrap_or_default()
                    }
                    _ => "; the name is not even a literal, so the registry \
                          cannot be audited statically"
                        .to_string(),
                };
                out.push(Finding {
                    rule: "R4",
                    path: file.path.clone(),
                    line: t.line,
                    col: t.col,
                    message: format!(
                        "telemetry-hygiene: ad-hoc `telemetry::{}()` registration — use \
                         `static_{}!`/`duration_histogram!` so the handle is cached and \
                         the name is a static literal{name_note}",
                        t.text,
                        if t.text == "histogram" {
                            "counter".to_string()
                        } else {
                            t.text.clone()
                        },
                    ),
                });
                continue;
            }
            _ => continue,
        };
        // Macro form: `static_counter!("name")`.
        if !(code.get(i + 1).is_some_and(|n| n.is_punct('!'))
            && code.get(i + 2).is_some_and(|n| n.is_punct('(')))
        {
            continue;
        }
        match code.get(i + 3) {
            Some(arg) if matches!(arg.kind, TokKind::Str | TokKind::RawStr) => {
                if let Some(problem) = metric_name_problem(kind, &arg.text) {
                    out.push(Finding {
                        rule: "R4",
                        path: file.path.clone(),
                        line: arg.line,
                        col: arg.col,
                        message: format!("telemetry-hygiene: {problem}"),
                    });
                }
            }
            Some(arg) => out.push(Finding {
                rule: "R4",
                path: file.path.clone(),
                line: arg.line,
                col: arg.col,
                message: "telemetry-hygiene: metric name must be a string literal so the \
                          registry is statically auditable"
                    .into(),
            }),
            None => {}
        }
    }
}
