//! The rule families, run over scanned files.
//!
//! - **R1 alloc-in-hot-path** — allocation calls inside `*_ws` /
//!   `*_into` / `*_into_ws` functions and their callees, resolved over
//!   the workspace call graph (bare, `self.method`, `Type::assoc`, and
//!   `path::fn` edges, cross-crate).
//! - **R2 nan-unsafe-ordering** — `partial_cmp`, comparator-less
//!   `max_by`/`min_by`, and `f32::max`-style folds on floats.
//! - **R3 panic-on-input** — `unwrap`/`expect`/`panic!`/literal
//!   indexing in service code that handles client requests or
//!   persisted records.
//! - **R4 telemetry-hygiene** — metric names must be lowercase
//!   snake-case with conventional suffixes and registered through the
//!   `static_*!` / `duration_histogram!` macros, never ad-hoc.
//! - **R5 lock-discipline** — lock-order cycles, double-acquisition,
//!   and guards live across blocking ops (see [`crate::locks`]).
//! - **R6 atomic-ordering** — telemetry/hot-path atomics stay
//!   `Relaxed`, CAS calls carry two literal orderings, and cross-thread
//!   `AtomicBool` flags document their ordering where they are
//!   declared.
//! - **R7 thread-hygiene** — dropped `JoinHandle`s, and spawn+join
//!   pairs that should be `thread::scope`.
//!
//! Plus **R0**: a malformed suppression (`lint:allow` without a
//! written reason, or one that matches nothing) is itself a finding —
//! the escape hatch must never rot silently.

use std::collections::{HashMap, HashSet, VecDeque};

use crate::graph::{FnRef, Graph};
use crate::locks::{self, LockEdge};
use crate::scan::{is_keyword, FileScan};
use crate::tokenizer::{Tok, TokKind};

/// How the linter is scoped to a workspace.
pub struct Config {
    /// Path substrings where R3 (panic-on-input) applies.
    pub r3_paths: Vec<String>,
    /// Path substrings where R4 is off (the telemetry registry itself).
    pub r4_exempt: Vec<String>,
    /// Package-name → crate-dir aliases for cross-crate resolution
    /// (the `core` dir builds the `bayesft` package).
    pub crate_aliases: Vec<(String, String)>,
    /// Types whose `lock`/`try_lock`/`lock_waiting` methods hand out an
    /// advisory *file* lock rather than an in-process mutex guard.
    pub file_lock_types: Vec<String>,
    /// Path substrings where every atomic op must stay `Relaxed` (the
    /// telemetry hot path).
    pub r6_relaxed_paths: Vec<String>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            // The daemon's request-handling surface, the worker
            // supervisor (child exit statuses, event-stream bytes, and
            // fault plans all cross a process boundary), and the
            // record store: exactly the code a malicious or corrupt
            // input reaches.
            r3_paths: vec![
                "crates/serve/src/protocol.rs".into(),
                "crates/serve/src/daemon.rs".into(),
                "crates/serve/src/supervisor.rs".into(),
                "crates/serve/src/fault.rs".into(),
                "crates/scenarios/src/store.rs".into(),
            ],
            r4_exempt: vec!["crates/telemetry/".into()],
            crate_aliases: vec![
                ("bayesft".into(), "core".into()),
                ("bayesft_repro".into(), "root".into()),
            ],
            file_lock_types: vec!["ResultStore".into()],
            r6_relaxed_paths: vec!["crates/telemetry/".into()],
        }
    }
}

/// One diagnostic.
#[derive(Debug)]
pub struct Finding {
    /// Rule ID (`R0`–`R7`).
    pub rule: &'static str,
    pub path: String,
    pub line: u32,
    pub col: u32,
    pub message: String,
}

impl Finding {
    /// The canonical one-line rendering.
    pub fn render(&self) -> String {
        format!(
            "{}:{}:{}: {} {}",
            self.path, self.line, self.col, self.rule, self.message
        )
    }
}

/// A suppression that matched at least one finding — surfaced in the
/// summary table so the allow inventory stays auditable.
#[derive(Debug)]
pub struct AllowRecord {
    pub path: String,
    pub line: u32,
    pub rule: &'static str,
    pub reason: String,
}

/// Everything one lint run produced.
#[derive(Default)]
pub struct Report {
    pub findings: Vec<Finding>,
    /// Findings silenced by a reasoned `lint:allow` — kept so `--format
    /// json` can publish them with `"suppressed": true`.
    pub suppressed: Vec<Finding>,
    pub allows_in_force: Vec<AllowRecord>,
    /// The lock-acquisition order graph R5 recovered (deduped edges).
    pub lock_edges: Vec<LockEdge>,
}

impl Report {
    /// True when the run should exit zero.
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }
}

const RULES: [&str; 7] = ["R1", "R2", "R3", "R4", "R5", "R6", "R7"];

/// Is this function a zero-alloc hot-path root by naming convention?
fn is_hot_root(name: &str) -> bool {
    name.ends_with("_ws") || name.ends_with("_into") || name.ends_with("_into_ws")
}

/// Runs every rule over the scanned files and resolves suppressions.
pub fn run(files: &[FileScan], cfg: &Config) -> Report {
    let graph = Graph::build(files, &cfg.crate_aliases);
    let mut raw: Vec<Finding> = Vec::new();
    let mut edge_allows: Vec<(usize, u32)> = Vec::new();
    let hot = rule_r1(&graph, &mut raw, &mut edge_allows);
    let lock = locks::analyze(&graph, cfg);
    raw.extend(lock.findings);
    for (fi, file) in files.iter().enumerate() {
        rule_r2(file, &mut raw);
        if cfg.r3_paths.iter().any(|p| file.path.contains(p.as_str())) {
            rule_r3(file, &mut raw);
        }
        if !cfg.r4_exempt.iter().any(|p| file.path.contains(p.as_str())) {
            rule_r4(file, &mut raw);
        }
        rule_r6(fi, file, &hot, cfg, &mut raw);
        rule_r7(file, &mut raw);
    }
    let mut report = apply_allows(files, raw, &edge_allows);
    report.lock_edges = lock.edges;
    report
}

/// Matches findings against `lint:allow` directives, producing the
/// final report: suppressed findings become allow records, reason-less
/// or unused directives become R0 findings.
fn apply_allows(files: &[FileScan], raw: Vec<Finding>, edge_allows: &[(usize, u32)]) -> Report {
    let mut report = Report::default();
    // (path, applies_line, rule) -> directive bookkeeping.
    let mut used: HashMap<(String, u32), Vec<bool>> = HashMap::new();
    for file in files {
        for (ai, allow) in file.allows.iter().enumerate() {
            used.entry((file.path.clone(), allow.applies_line))
                .or_insert_with(|| vec![false; file.allows.len()])
                .resize(file.allows.len().max(ai + 1), false);
        }
    }
    for finding in raw {
        let mut suppressed = false;
        if let Some(file) = files.iter().find(|f| f.path == finding.path) {
            for (ai, allow) in file.allows.iter().enumerate() {
                if allow.applies_line == finding.line
                    && allow.rules.iter().any(|r| r == finding.rule)
                {
                    if let Some(flags) = used.get_mut(&(file.path.clone(), allow.applies_line)) {
                        flags[ai] = true;
                    }
                    report.allows_in_force.push(AllowRecord {
                        path: file.path.clone(),
                        line: allow.line,
                        rule: RULES
                            .iter()
                            .find(|r| **r == finding.rule)
                            .copied()
                            .unwrap_or("R?"),
                        reason: allow.reason.clone().unwrap_or_default(),
                    });
                    suppressed = true;
                    break;
                }
            }
        }
        if suppressed {
            report.suppressed.push(finding);
        } else {
            report.findings.push(finding);
        }
    }
    // Allows consumed as R1 edge cuts (a reasoned allow on a call line
    // stops hot propagation through that call) count as in force.
    for &(fi, line) in edge_allows {
        let file = &files[fi];
        for (ai, allow) in file.allows.iter().enumerate() {
            if allow.applies_line == line && allow.rules.iter().any(|r| r == "R1") {
                if let Some(flags) = used.get_mut(&(file.path.clone(), allow.applies_line)) {
                    flags[ai] = true;
                }
                report.allows_in_force.push(AllowRecord {
                    path: file.path.clone(),
                    line: allow.line,
                    rule: "R1",
                    reason: allow.reason.clone().unwrap_or_default(),
                });
            }
        }
    }
    // Directive hygiene: every allow needs a reason, and must suppress
    // something.
    for file in files {
        for (ai, allow) in file.allows.iter().enumerate() {
            let was_used = used
                .get(&(file.path.clone(), allow.applies_line))
                .and_then(|flags| flags.get(ai))
                .copied()
                .unwrap_or(false);
            if allow.reason.is_none() {
                report.findings.push(Finding {
                    rule: "R0",
                    path: file.path.clone(),
                    line: allow.line,
                    col: 1,
                    message: "suppression-missing-reason: every `lint:allow` must carry \
                              `reason = \"…\"` explaining why the rule does not apply"
                        .into(),
                });
            } else if !was_used {
                report.findings.push(Finding {
                    rule: "R0",
                    path: file.path.clone(),
                    line: allow.line,
                    col: 1,
                    message: format!(
                        "unused-suppression: `lint:allow({})` matched no finding — delete it \
                         or move it next to the code it excuses",
                        allow.rules.join(", ")
                    ),
                });
            }
        }
    }
    report
        .findings
        .sort_by(|a, b| (&a.path, a.line, a.col).cmp(&(&b.path, b.line, b.col)));
    report
        .suppressed
        .sort_by(|a, b| (&a.path, a.line, a.col).cmp(&(&b.path, b.line, b.col)));
    report
        .allows_in_force
        .sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    report.allows_in_force.dedup_by(|a, b| {
        a.path == b.path && a.line == b.line && a.rule == b.rule && a.reason == b.reason
    });
    report
}

// ---------------------------------------------------------------------
// R1: alloc-in-hot-path
// ---------------------------------------------------------------------

/// BFS from hot roots through resolved call edges; returns the hot map
/// (fn → root whose zero-alloc contract it inherits) for R6's use.
///
/// A reasoned `lint:allow(R1)` on a *call line* cuts propagation
/// through that edge — the idiom for cold-start allocations: the
/// decision to allocate lives at the call site, so that is where the
/// suppression (and its written reason) belongs. Consumed edge cuts
/// are pushed to `edge_allows` as `(file index, applies line)` so the
/// directive registers as in force rather than unused.
fn rule_r1(
    graph: &Graph<'_>,
    out: &mut Vec<Finding>,
    edge_allows: &mut Vec<(usize, u32)>,
) -> HashMap<FnRef, String> {
    let files = graph.files();
    let mut hot: HashMap<FnRef, String> = HashMap::new();
    let mut queue: VecDeque<FnRef> = VecDeque::new();
    for (fi, file) in files.iter().enumerate() {
        for (ni, f) in file.fns.iter().enumerate() {
            if is_hot_root(&f.name) && !f.in_test_code {
                hot.insert((fi, ni), f.name.clone());
                queue.push_back((fi, ni));
            }
        }
    }
    while let Some((fi, ni)) = queue.pop_front() {
        let root = hot[&(fi, ni)].clone();
        let f = &files[fi].fns[ni];
        for call in graph.calls_in(fi, f.body.clone()) {
            let call_line = files[fi].code[call.tok].line;
            if files[fi]
                .allows
                .iter()
                .any(|a| a.applies_line == call_line && a.rules.iter().any(|r| r == "R1"))
            {
                edge_allows.push((fi, call_line));
                continue;
            }
            for (cfi, cni) in graph.resolve(fi, f.self_type.as_deref(), &call.site, false) {
                if files[cfi].fns[cni].in_test_code {
                    continue;
                }
                if let std::collections::hash_map::Entry::Vacant(e) = hot.entry((cfi, cni)) {
                    e.insert(root.clone());
                    queue.push_back((cfi, cni));
                }
            }
        }
    }
    // Scan every hot body for allocation tokens.
    let mut seen: HashSet<(usize, u32, u32)> = HashSet::new();
    for (&(fi, ni), root) in &hot {
        let file = &files[fi];
        let f = &file.fns[ni];
        let code = &file.code;
        for i in f.body.clone() {
            let t = &code[i];
            if t.kind != TokKind::Ident {
                continue;
            }
            let path_head = |name: &str| {
                i >= 2
                    && code[i - 1].is_punct(':')
                    && code[i - 2].is_punct(':')
                    && i >= 3
                    && code[i - 3].is_ident(name)
            };
            let method = || i > 0 && code[i - 1].is_punct('.');
            let what: Option<String> = match t.text.as_str() {
                "new" if path_head("Vec") => Some("Vec::new".into()),
                "new" if path_head("Box") => Some("Box::new".into()),
                "new" if path_head("String") => Some("String::new".into()),
                "from" if path_head("String") => Some("String::from".into()),
                "with_capacity" => Some("with_capacity".into()),
                "vec" | "format" if code.get(i + 1).is_some_and(|n| n.is_punct('!')) => {
                    Some(format!("{}!", t.text))
                }
                "to_vec" | "to_string" if method() => Some(format!(".{}()", t.text)),
                "clone" | "collect"
                    if method()
                        && code
                            .get(i + 1)
                            .is_some_and(|n| n.is_punct('(') || n.is_punct(':')) =>
                {
                    Some(format!(".{}()", t.text))
                }
                _ => None,
            };
            if let Some(what) = what {
                if seen.insert((fi, t.line, t.col)) {
                    let via = if is_hot_root(&f.name) {
                        String::new()
                    } else {
                        format!(" (reachable from hot root `{root}`)")
                    };
                    out.push(Finding {
                        rule: "R1",
                        path: file.path.clone(),
                        line: t.line,
                        col: t.col,
                        message: format!(
                            "alloc-in-hot-path: `{what}` inside `{}`{via} — hot-path \
                             functions must take buffers from the `Workspace` pool",
                            f.name
                        ),
                    });
                }
            }
        }
    }
    hot
}

// ---------------------------------------------------------------------
// R2: nan-unsafe-ordering
// ---------------------------------------------------------------------

fn rule_r2(file: &FileScan, out: &mut Vec<Finding>) {
    let code = &file.code;
    for (i, t) in code.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        match t.text.as_str() {
            "partial_cmp" => out.push(Finding {
                rule: "R2",
                path: file.path.clone(),
                line: t.line,
                col: t.col,
                message: "nan-unsafe-ordering: `partial_cmp` on floats panics or \
                          tie-poisons on NaN — use `total_cmp`, `tensor::nan_low_cmp` \
                          (f32), or `bayesopt::nan_low_cmp` (f64)"
                    .into(),
            }),
            "max" | "min"
                if i >= 3
                    && code[i - 1].is_punct(':')
                    && code[i - 2].is_punct(':')
                    && (code[i - 3].is_ident("f32") || code[i - 3].is_ident("f64")) =>
            {
                out.push(Finding {
                    rule: "R2",
                    path: file.path.clone(),
                    line: t.line,
                    col: t.col,
                    message: format!(
                        "nan-unsafe-ordering: `{}::{}` silently drops NaN operands — \
                         if NaN must not vanish, compare via `total_cmp`/`nan_low_cmp`; \
                         if dropping NaN is intended, say so in a `lint:allow` reason",
                        code[i - 3].text,
                        t.text
                    ),
                });
            }
            "max_by" | "min_by" if code.get(i + 1).is_some_and(|n| n.is_punct('(')) => {
                // Only flag when the comparator is not visibly
                // NaN-total; a `partial_cmp` inside fires on its own.
                let mut depth = 0u32;
                let mut j = i + 1;
                let mut safe = false;
                while j < code.len() {
                    let a = &code[j];
                    if a.is_punct('(') {
                        depth += 1;
                    } else if a.is_punct(')') {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    } else if a.is_ident("total_cmp")
                        || a.is_ident("nan_low_cmp")
                        || a.is_ident("partial_cmp")
                        // `.cmp(` is Ord::cmp — total by definition. A
                        // path segment like `std::cmp::Ordering` is not.
                        || (a.is_ident("cmp") && j > 0 && code[j - 1].is_punct('.'))
                    {
                        safe = true;
                    }
                    j += 1;
                }
                if !safe {
                    out.push(Finding {
                        rule: "R2",
                        path: file.path.clone(),
                        line: t.line,
                        col: t.col,
                        message: format!(
                            "nan-unsafe-ordering: `{}` with a comparator that is not \
                             visibly NaN-total — rank through `total_cmp` or `nan_low_cmp`",
                            t.text
                        ),
                    });
                }
            }
            _ => {}
        }
    }
}

// ---------------------------------------------------------------------
// R3: panic-on-input
// ---------------------------------------------------------------------

fn rule_r3(file: &FileScan, out: &mut Vec<Finding>) {
    let code = &file.code;
    // Token index -> enclosing test-ness: skip findings inside
    // #[cfg(test)] code; service-path tests may unwrap freely.
    let in_test = |i: usize| {
        file.fns
            .iter()
            .filter(|f| f.body.contains(&i))
            .any(|f| f.in_test_code)
    };
    for (i, t) in code.iter().enumerate() {
        let finding = match t.kind {
            TokKind::Ident => match t.text.as_str() {
                "unwrap" | "expect"
                    if i > 0
                        && code[i - 1].is_punct('.')
                        && code.get(i + 1).is_some_and(|n| n.is_punct('(')) =>
                {
                    Some(format!(
                        ".{}() can panic on malformed input — return a protocol error \
                         response (`{{\"ok\":false,…}}`) or propagate a Result",
                        t.text
                    ))
                }
                "panic" | "unreachable" | "todo" | "unimplemented"
                    if code.get(i + 1).is_some_and(|n| n.is_punct('!')) =>
                {
                    Some(format!(
                        "`{}!` in service code aborts the worker on unexpected input — \
                         convert to an error response",
                        t.text
                    ))
                }
                _ => None,
            },
            TokKind::Punct if t.is_punct('[') => {
                // Literal indexing `x[0]` panics when the shape
                // assumption breaks; array literals `[0; 4]`/`[0]` on
                // the value side are rare enough to allow explicitly.
                if code.get(i + 1).is_some_and(|n| n.kind == TokKind::Num)
                    && code.get(i + 2).is_some_and(|n| n.is_punct(']'))
                    && i > 0
                    && (code[i - 1].kind == TokKind::Ident && !is_keyword(&code[i - 1].text)
                        || code[i - 1].is_punct(')')
                        || code[i - 1].is_punct(']'))
                {
                    Some(format!(
                        "indexing by literal `[{}]` panics when the input is shorter \
                         than assumed — use `.get({})` and answer with an error",
                        code[i + 1].text,
                        code[i + 1].text
                    ))
                } else {
                    None
                }
            }
            _ => None,
        };
        if let Some(message) = finding {
            if !in_test(i) {
                out.push(Finding {
                    rule: "R3",
                    path: file.path.clone(),
                    line: t.line,
                    col: t.col,
                    message: format!("panic-on-input: {message}"),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------
// R4: telemetry hygiene
// ---------------------------------------------------------------------

/// Validates a metric name literal against the house conventions.
/// Returns a complaint, or `None` when the name conforms.
fn metric_name_problem(kind: &str, name: &str) -> Option<String> {
    let (base, label) = match name.find('{') {
        Some(b) => (&name[..b], Some(&name[b..])),
        None => (name, None),
    };
    if base.is_empty()
        || !base.as_bytes()[0].is_ascii_lowercase()
        || !base
            .bytes()
            .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_')
    {
        return Some(format!(
            "metric name `{base}` must match [a-z][a-z0-9_]* — lowercase snake-case only"
        ));
    }
    if let Some(label) = label {
        if !label.ends_with('}') || !label.contains("=\"") {
            return Some(format!(
                "label block `{label}` must look like {{key=\"value\"}}"
            ));
        }
    }
    match kind {
        "counter" if !(base.ends_with("_total") || base.ends_with("_bytes")) => Some(format!(
            "counter `{base}` must end in `_total` (or `_bytes` for byte counters)"
        )),
        "histogram" if !(base.ends_with("_seconds") || base.ends_with("_ms")) => Some(format!(
            "duration histogram `{base}` must end in `_seconds` or `_ms`"
        )),
        _ => None,
    }
}

fn rule_r4(file: &FileScan, out: &mut Vec<Finding>) {
    let code = &file.code;
    for (i, t) in code.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        let kind = match t.text.as_str() {
            "static_counter" => "counter",
            "static_gauge" => "gauge",
            "duration_histogram" => "histogram",
            "counter" | "gauge" | "histogram"
                if i >= 3
                    && code[i - 1].is_punct(':')
                    && code[i - 2].is_punct(':')
                    && code[i - 3].is_ident("telemetry")
                    && code.get(i + 1).is_some_and(|n| n.is_punct('(')) =>
            {
                // Ad-hoc registration bypasses the once-cached static
                // handle and invites runtime-formatted names.
                let arg = code.get(i + 2);
                let name_note = match arg.map(|a| (&a.kind, a.text.as_str())) {
                    Some((TokKind::Str | TokKind::RawStr, name)) => {
                        metric_name_problem(&t.text, name)
                            .map(|p| format!("; additionally: {p}"))
                            .unwrap_or_default()
                    }
                    _ => "; the name is not even a literal, so the registry \
                          cannot be audited statically"
                        .to_string(),
                };
                out.push(Finding {
                    rule: "R4",
                    path: file.path.clone(),
                    line: t.line,
                    col: t.col,
                    message: format!(
                        "telemetry-hygiene: ad-hoc `telemetry::{}()` registration — use \
                         `static_{}!`/`duration_histogram!` so the handle is cached and \
                         the name is a static literal{name_note}",
                        t.text,
                        if t.text == "histogram" {
                            "counter".to_string()
                        } else {
                            t.text.clone()
                        },
                    ),
                });
                continue;
            }
            _ => continue,
        };
        // Macro form: `static_counter!("name")`.
        if !(code.get(i + 1).is_some_and(|n| n.is_punct('!'))
            && code.get(i + 2).is_some_and(|n| n.is_punct('(')))
        {
            continue;
        }
        match code.get(i + 3) {
            Some(arg) if matches!(arg.kind, TokKind::Str | TokKind::RawStr) => {
                if let Some(problem) = metric_name_problem(kind, &arg.text) {
                    out.push(Finding {
                        rule: "R4",
                        path: file.path.clone(),
                        line: arg.line,
                        col: arg.col,
                        message: format!("telemetry-hygiene: {problem}"),
                    });
                }
            }
            Some(arg) => out.push(Finding {
                rule: "R4",
                path: file.path.clone(),
                line: arg.line,
                col: arg.col,
                message: "telemetry-hygiene: metric name must be a string literal so the \
                          registry is statically auditable"
                    .into(),
            }),
            None => {}
        }
    }
}

// ---------------------------------------------------------------------
// R6: atomic-ordering policy
// ---------------------------------------------------------------------

const ATOMIC_OPS: [&str; 14] = [
    "load",
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_nand",
    "fetch_max",
    "fetch_min",
    "compare_exchange",
    "compare_exchange_weak",
    "fetch_update",
];

const ORDERINGS: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

fn rule_r6(
    fi: usize,
    file: &FileScan,
    hot: &HashMap<FnRef, String>,
    cfg: &Config,
    out: &mut Vec<Finding>,
) {
    let code = &file.code;
    let relaxed_file = cfg
        .r6_relaxed_paths
        .iter()
        .any(|p| file.path.contains(p.as_str()));

    // (a) per-op ordering policy, attributed to the enclosing fn.
    for (ni, f) in file.fns.iter().enumerate() {
        if f.in_test_code {
            continue;
        }
        let hot_root = hot.get(&(fi, ni));
        for i in f.body.clone() {
            let t = &code[i];
            if t.kind != TokKind::Ident
                || !ATOMIC_OPS.contains(&t.text.as_str())
                || !code.get(i + 1).is_some_and(|n| n.is_punct('('))
                || i == 0
                || !code[i - 1].is_punct('.')
            {
                continue;
            }
            // Collect ordering literals among the call's arguments.
            let mut depth = 0u32;
            let mut j = i + 1;
            let mut orderings: Vec<&str> = Vec::new();
            while j < code.len() {
                let a = &code[j];
                if a.is_punct('(') {
                    depth += 1;
                } else if a.is_punct(')') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else if a.kind == TokKind::Ident {
                    if let Some(o) = ORDERINGS.iter().find(|o| a.is_ident(o)) {
                        orderings.push(o);
                    }
                }
                j += 1;
            }
            let is_cas = matches!(
                t.text.as_str(),
                "compare_exchange" | "compare_exchange_weak" | "fetch_update"
            );
            if is_cas && orderings.len() < 2 {
                out.push(Finding {
                    rule: "R6",
                    path: file.path.clone(),
                    line: t.line,
                    col: t.col,
                    message: format!(
                        "atomic-ordering: `{}` needs its success *and* failure orderings \
                         spelled as `Ordering::…` literals at the call site — an ordering \
                         smuggled through a variable cannot be audited",
                        t.text
                    ),
                });
            }
            let must_relax = relaxed_file || hot_root.is_some();
            if must_relax {
                if let Some(strong) = orderings.iter().find(|o| **o != "Relaxed") {
                    let why = match hot_root {
                        Some(root) => format!("inside hot path of `{root}`"),
                        None => "on the telemetry hot path".into(),
                    };
                    out.push(Finding {
                        rule: "R6",
                        path: file.path.clone(),
                        line: t.line,
                        col: t.col,
                        message: format!(
                            "atomic-ordering: `{}` uses `Ordering::{strong}` {why} — \
                             counters and gauges are monotonic noise, `Relaxed` is \
                             sufficient and fences here cost real latency",
                            t.text
                        ),
                    });
                }
            }
        }
    }

    // (b) cross-thread flags document their ordering at the declaration.
    for flag in &file.atomic_flags {
        if flag.in_test {
            continue;
        }
        let documented = file.comments.iter().any(|c| {
            c.line + 3 >= flag.line
                && c.line <= flag.line
                && c.text.to_ascii_lowercase().contains("ordering")
        });
        if !documented {
            out.push(Finding {
                rule: "R6",
                path: file.path.clone(),
                line: flag.line,
                col: 1,
                message: format!(
                    "atomic-ordering: cross-thread flag `{}` must document its chosen \
                     memory ordering in a comment at the declaration site (say \
                     \"ordering:\" and why that strength is right)",
                    flag.name
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------
// R7: thread hygiene
// ---------------------------------------------------------------------

fn rule_r7(file: &FileScan, out: &mut Vec<Finding>) {
    let code = &file.code;
    for f in &file.fns {
        if f.in_test_code {
            continue;
        }
        // `thread::scope(|s| …)` closure params: `s.spawn(…)` hands out
        // a handle the scope itself joins, so dropping it is fine.
        let mut scope_params: Vec<&str> = Vec::new();
        for i in f.body.clone() {
            if code[i].is_ident("scope")
                && code.get(i + 1).is_some_and(|n| n.is_punct('('))
                && code.get(i + 2).is_some_and(|n| n.is_punct('|'))
                && code.get(i + 4).is_some_and(|n| n.is_punct('|'))
            {
                if let Some(p) = code.get(i + 3).filter(|t| t.kind == TokKind::Ident) {
                    scope_params.push(&p.text);
                }
            }
        }
        for i in f.body.clone() {
            let t = &code[i];
            let is_spawn_name = t.is_ident("spawn");
            if !is_spawn_name || !code.get(i + 1).is_some_and(|n| n.is_punct('(')) {
                continue;
            }
            if i >= 2
                && code[i - 1].is_punct('.')
                && scope_params.iter().any(|p| code[i - 2].is_ident(p))
            {
                continue;
            }
            // `thread::spawn(`, `Builder…spawn(`, bare `spawn(` — all
            // produce a JoinHandle the caller must not drop.
            let head = spawn_head(code, i, f.body.start);
            // Where does the call's value go? Find the matching `)`.
            let mut depth = 0u32;
            let mut j = i + 1;
            while j < code.len() {
                if code[j].is_punct('(') {
                    depth += 1;
                } else if code[j].is_punct(')') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                j += 1;
            }
            let after = code.get(j + 1);
            if after.is_some_and(|n| n.is_punct('.') || n.is_punct('?')) {
                // Chained — the handle flows onward (collected, joined,
                // expect()ed); the chain's consumer owns it.
                continue;
            }
            if !after.is_some_and(|n| n.is_punct(';')) {
                // Inside a larger expression (pushed, returned, mapped)
                // — the handle escapes.
                continue;
            }
            // Statement form: `…spawn(…);`. Walk back to the statement
            // boundary looking for a binder.
            let mut k = head;
            let mut binder: Option<String> = None;
            let mut bare = true;
            while k > f.body.start {
                k -= 1;
                let b = &code[k];
                if b.is_punct(';') || b.is_punct('{') || b.is_punct('}') {
                    break;
                }
                bare = false;
                if b.is_ident("let") {
                    let mut n = k + 1;
                    while code.get(n).is_some_and(|x| x.is_ident("mut")) {
                        n += 1;
                    }
                    binder = code
                        .get(n)
                        .filter(|x| x.kind == TokKind::Ident)
                        .map(|x| x.text.clone());
                    break;
                }
            }
            if bare || binder.as_deref() == Some("_") {
                out.push(Finding {
                    rule: "R7",
                    path: file.path.clone(),
                    line: t.line,
                    col: t.col,
                    message: format!(
                        "thread-hygiene: `spawn` result dropped in `{}` — a detached \
                         thread outlives its work, panics vanish, and shutdown can't \
                         wait for it; keep the `JoinHandle` or use `thread::scope`",
                        f.name
                    ),
                });
            } else if let Some(name) = binder {
                // `let h = spawn(…); … h.join()` in the same fn: the
                // lifetime is block-shaped, so scoped threads fit.
                let joined = (j..f.body.end).any(|m| {
                    code[m].is_ident(&name)
                        && code.get(m + 1).is_some_and(|n| n.is_punct('.'))
                        && code.get(m + 2).is_some_and(|n| n.is_ident("join"))
                });
                if joined {
                    out.push(Finding {
                        rule: "R7",
                        path: file.path.clone(),
                        line: t.line,
                        col: t.col,
                        message: format!(
                            "thread-hygiene: `{name}` is spawned and joined inside `{}` — \
                             prefer `thread::scope`, which joins on every path (including \
                             panics) and lets the closure borrow locals",
                            f.name
                        ),
                    });
                }
            }
        }
    }
}

/// The first token of the spawn expression: walks `thread::spawn` /
/// `Builder::new().name(…).spawn` chains back to their head.
fn spawn_head(code: &[Tok], spawn_tok: usize, floor: usize) -> usize {
    let mut k = spawn_tok;
    loop {
        // `X :: spawn` / `chain . spawn`
        if k >= 2 && (code[k - 1].is_punct('.') || code[k - 1].is_punct(':')) {
            let mut p = k - 1;
            while p > floor && code[p].is_punct(':') {
                p -= 1;
            }
            if code[p].is_punct('.') && p > floor {
                p -= 1;
            }
            // Skip a call's parens: `new ( )`.
            if code[p].is_punct(')') {
                let mut depth = 0i32;
                while p > floor {
                    if code[p].is_punct(')') {
                        depth += 1;
                    } else if code[p].is_punct('(') {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    p -= 1;
                }
                if p > floor {
                    p -= 1;
                }
            }
            if code[p].kind == TokKind::Ident && k != p {
                k = p;
                continue;
            }
        }
        return k;
    }
}
