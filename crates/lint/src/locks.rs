//! R5 lock-discipline analysis over the workspace call graph.
//!
//! Lock identities are recovered by *name*, not by type: a `Mutex`/
//! `RwLock` struct field (`cache`, `in_flight`, `state`) names a lock,
//! a guard handed out by a fn (`registry().lock()`) is named after the
//! fn, and the advisory kernel file lock behind `ResultStore` is one
//! identity per type. Same-named fields in different structs merge into
//! one identity — a deliberate over-approximation that keeps the
//! analysis dependency-free; the README documents it.
//!
//! Three checks run over guard extents and per-fn lock summaries:
//!
//! 1. **Order graph + cycles** — every "lock B acquired while guard of
//!    A is live" records an edge A→B; a cycle in that graph is a
//!    deadlock waiting for the right interleaving.
//! 2. **Double-acquisition** — re-locking a lock already held on the
//!    same path deadlocks a `std::sync::Mutex` outright.
//! 3. **Guard across blocking ops** — a guard live across `fsync`,
//!    socket/file reads and writes, `thread::sleep`, `JoinHandle::
//!    join`, channel `recv`, or a condvar wait (other than the waited
//!    guard itself) serializes every contender behind that I/O. The
//!    file-lock identity is exempt from file-I/O ops: covering its own
//!    file's write+fsync is exactly what an advisory file lock is for.
//!
//! Summaries are interprocedural: a call into a fn that (transitively)
//! acquires locks or blocks is an acquisition/blocking event at the
//! call site. Calls resolve through the precise graph plus lenient
//! unique-method resolution, so `st.flush_prefix(…)` → `store.append`
//! → file lock is seen.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

use crate::graph::{Call, CallSite, FnRef, Graph};
use crate::rules::{Config, Finding};
use crate::scan::{FileScan, LockKind};
use crate::tokenizer::{Tok, TokKind};

/// One lock identity in the order graph.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LockId {
    /// A `Mutex`/`RwLock` struct field (or a same-named local), by name.
    Field(String),
    /// A guard source fn: `registry().lock()` → `registry`.
    Source(String),
    /// The advisory file lock behind a guard-handing type.
    File(String),
}

impl std::fmt::Display for LockId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LockId::Field(n) => write!(f, "{n}"),
            LockId::Source(n) => write!(f, "{n}()"),
            LockId::File(t) => write!(f, "{t} file lock"),
        }
    }
}

/// One edge in the lock-acquisition order graph, with an example site.
#[derive(Debug, Clone)]
pub struct LockEdge {
    pub from: String,
    pub to: String,
    pub path: String,
    pub line: u32,
}

/// What the R5 pass produced: findings plus the order graph itself
/// (surfaced in the report so tests can assert the documented order).
#[derive(Debug, Default)]
pub struct LockAnalysis {
    pub findings: Vec<Finding>,
    pub edges: Vec<LockEdge>,
}

/// How a blocking operation blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum BlockKind {
    /// File/socket I/O incl. fsync — exempt under a `File` lock guard.
    Io,
    /// Parks the thread: sleep, join, recv, accept, condvar wait.
    Park,
}

/// Per-fn lock behavior, computed to fixpoint over the call graph.
#[derive(Default, Clone)]
struct FnSummary {
    /// Every lock this fn (transitively) acquires.
    locks: BTreeSet<LockId>,
    /// Blocking kinds this fn (transitively) performs, with an example
    /// op name for the message.
    blocking: BTreeMap<BlockKind, String>,
    /// Returns a live guard (`MutexGuard`/`StoreLock`/… in signature).
    guard_returning: bool,
}

/// A primitive acquisition recovered from a body.
struct Prim {
    tok: usize,
    lock: LockId,
}

/// A guard live over a token range (start exclusive at its own site).
struct GuardSpan {
    lock: LockId,
    binding: Option<String>,
    start: usize,
    end: usize,
    line: u32,
}

/// An event evaluated against the active guard spans.
enum Ev {
    Acquire {
        tok: usize,
        locks: Vec<LockId>,
        line: u32,
        col: u32,
    },
    Block {
        tok: usize,
        kind: BlockKind,
        op: String,
        exempt: Option<String>,
        line: u32,
        col: u32,
    },
}

impl Ev {
    fn tok(&self) -> usize {
        match self {
            Ev::Acquire { tok, .. } | Ev::Block { tok, .. } => *tok,
        }
    }
}

/// Method names that acquire the file lock on a `file_lock_types` type.
const FILE_LOCK_METHODS: [&str; 3] = ["lock", "try_lock", "lock_waiting"];
/// Lock-primitive method names — their tokens never resolve as calls.
const LOCK_PRIMITIVES: [&str; 4] = ["lock", "try_lock", "read", "write"];

/// Guard types whose appearance in a signature marks a fn as handing
/// its caller a live guard.
const GUARD_TYPES: [&str; 4] = [
    "MutexGuard",
    "RwLockReadGuard",
    "RwLockWriteGuard",
    "StoreLock",
];

/// Blocking method names (`.name(`), with their kind and whether they
/// only count with an empty argument list (distinguishes `h.join()`
/// from `path.join("x")`, channel `rx.recv()` from `sock.recv(buf)`).
const BLOCKING_METHODS: [(&str, BlockKind, bool); 14] = [
    ("write_all", BlockKind::Io, false),
    ("read_exact", BlockKind::Io, false),
    ("read_line", BlockKind::Io, false),
    ("read_until", BlockKind::Io, false),
    ("read_to_end", BlockKind::Io, false),
    ("read_to_string", BlockKind::Io, false),
    ("fill_buf", BlockKind::Io, true),
    ("sync_all", BlockKind::Io, true),
    ("sync_data", BlockKind::Io, true),
    ("accept", BlockKind::Park, true),
    ("connect", BlockKind::Park, false),
    ("recv", BlockKind::Park, true),
    ("recv_timeout", BlockKind::Park, false),
    ("join", BlockKind::Park, true),
];

pub fn analyze(graph: &Graph<'_>, cfg: &Config) -> LockAnalysis {
    let files = graph.files();
    let ctx = Ctx::new(files, cfg);

    // ---- pass 1: per-fn primitives, calls, direct blocking ----------
    let mut prims: HashMap<FnRef, Vec<Prim>> = HashMap::new();
    let mut calls: HashMap<FnRef, Vec<(usize, Vec<FnRef>)>> = HashMap::new();
    let mut summaries: HashMap<FnRef, FnSummary> = HashMap::new();
    let mut fn_refs: Vec<FnRef> = Vec::new();
    for (fi, file) in files.iter().enumerate() {
        for (ni, f) in file.fns.iter().enumerate() {
            if f.in_test_code {
                continue;
            }
            let fref = (fi, ni);
            fn_refs.push(fref);
            let mut summary = FnSummary {
                guard_returning: file.code[f.sig.clone()]
                    .iter()
                    .any(|t| GUARD_TYPES.iter().any(|g| t.is_ident(g))),
                ..FnSummary::default()
            };
            // Seeded file-lock implementation methods: their summary is
            // the file lock itself and their bodies (the poll loop, the
            // kernel call) are not analyzed further.
            if let Some(ty) = f.self_type.as_deref() {
                if ctx.file_lock_types.iter().any(|t| t == ty)
                    && FILE_LOCK_METHODS.contains(&f.name.as_str())
                {
                    summary.locks.insert(LockId::File(ty.to_string()));
                    summary.guard_returning = true;
                    summaries.insert(fref, summary);
                    continue;
                }
            }
            let fn_prims = ctx.find_primitives(file, f.body.clone(), f.self_type.as_deref());
            let prim_toks: HashSet<usize> = fn_prims.iter().map(|p| p.tok).collect();
            for p in &fn_prims {
                summary.locks.insert(p.lock.clone());
            }
            for (kind, name) in direct_blocking(&file.code, f.body.clone()) {
                summary.blocking.entry(kind).or_insert(name);
            }
            let mut fn_calls = Vec::new();
            for call in graph.calls_in(fi, f.body.clone()) {
                if prim_toks.contains(&call.tok) || is_primitive_site(&call) {
                    continue;
                }
                let targets: Vec<FnRef> = graph
                    .resolve(fi, f.self_type.as_deref(), &call.site, true)
                    .into_iter()
                    .filter(|&(tfi, tni)| !files[tfi].fns[tni].in_test_code)
                    .collect();
                if !targets.is_empty() {
                    fn_calls.push((call.tok, targets));
                }
            }
            prims.insert(fref, fn_prims);
            calls.insert(fref, fn_calls);
            summaries.insert(fref, summary);
        }
    }

    // ---- pass 2: summaries to fixpoint ------------------------------
    loop {
        let mut changed = false;
        for &fref in &fn_refs {
            let Some(call_list) = calls.get(&fref) else {
                continue;
            };
            let mut merged = summaries[&fref].clone();
            for (_, targets) in call_list {
                for t in targets {
                    if let Some(ts) = summaries.get(t) {
                        for l in &ts.locks {
                            merged.locks.insert(l.clone());
                        }
                        for (k, op) in &ts.blocking {
                            merged.blocking.entry(*k).or_insert_with(|| op.clone());
                        }
                    }
                }
            }
            let cur = summaries.get_mut(&fref).expect("summary exists");
            if merged.locks.len() != cur.locks.len() || merged.blocking.len() != cur.blocking.len()
            {
                changed = true;
                *cur = merged;
            }
        }
        if !changed {
            break;
        }
    }

    // ---- pass 3: guard extents + events per fn ----------------------
    let mut out = LockAnalysis::default();
    let mut edge_seen: HashMap<(LockId, LockId), (String, u32)> = HashMap::new();
    let mut edge_order: Vec<(LockId, LockId)> = Vec::new();
    for &(fi, ni) in &fn_refs {
        let file = &files[fi];
        let f = &file.fns[ni];
        if !summaries.contains_key(&(fi, ni)) || f.body.is_empty() {
            continue;
        }
        let body = f.body.clone();
        let geom = Geometry::new(&file.code, body.clone());
        let mut spans: Vec<GuardSpan> = Vec::new();
        let mut events: Vec<Ev> = Vec::new();

        for p in prims.get(&(fi, ni)).map(Vec::as_slice).unwrap_or(&[]) {
            let t = &file.code[p.tok];
            events.push(Ev::Acquire {
                tok: p.tok,
                locks: vec![p.lock.clone()],
                line: t.line,
                col: t.col,
            });
            if let Some((binding, start, end)) = geom.guard_extent(p.tok) {
                spans.push(GuardSpan {
                    lock: p.lock.clone(),
                    binding,
                    start,
                    end,
                    line: t.line,
                });
            }
        }
        for (tok, targets) in calls.get(&(fi, ni)).map(Vec::as_slice).unwrap_or(&[]) {
            let mut locks: BTreeSet<LockId> = BTreeSet::new();
            let mut blocking: BTreeMap<BlockKind, String> = BTreeMap::new();
            let mut guard_ret = false;
            for t in targets {
                if let Some(s) = summaries.get(t) {
                    locks.extend(s.locks.iter().cloned());
                    for (k, op) in &s.blocking {
                        blocking.entry(*k).or_insert_with(|| op.clone());
                    }
                    guard_ret |= s.guard_returning;
                }
            }
            let t = &file.code[*tok];
            if !locks.is_empty() {
                events.push(Ev::Acquire {
                    tok: *tok,
                    locks: locks.iter().cloned().collect(),
                    line: t.line,
                    col: t.col,
                });
                if guard_ret {
                    if let Some((binding, start, end)) = geom.guard_extent(*tok) {
                        for l in &locks {
                            spans.push(GuardSpan {
                                lock: l.clone(),
                                binding: binding.clone(),
                                start,
                                end,
                                line: t.line,
                            });
                        }
                    }
                }
            }
            for (kind, op) in blocking {
                events.push(Ev::Block {
                    tok: *tok,
                    kind,
                    op: format!("{op} (via `{}`)", t.text),
                    exempt: None,
                    line: t.line,
                    col: t.col,
                });
            }
        }
        for ev in blocking_events(&file.code, body.clone()) {
            events.push(ev);
        }
        events.sort_by_key(Ev::tok);

        // Evaluate events against live spans.
        for ev in &events {
            let at = ev.tok();
            let active = || {
                spans
                    .iter()
                    .filter(move |s| s.start < at && at <= s.end && s.start != at)
            };
            match ev {
                Ev::Acquire {
                    locks, line, col, ..
                } => {
                    for span in active() {
                        for lock in locks {
                            if span.lock == *lock {
                                out.findings.push(Finding {
                                    rule: "R5",
                                    path: file.path.clone(),
                                    line: *line,
                                    col: *col,
                                    message: format!(
                                        "lock-discipline: double-acquisition of `{lock}` — \
                                         already held since line {} in `{}`; re-locking a \
                                         `std::sync` lock on one path deadlocks",
                                        span.line, f.name
                                    ),
                                });
                            } else {
                                let key = (span.lock.clone(), lock.clone());
                                if !edge_seen.contains_key(&key) {
                                    edge_seen.insert(key.clone(), (file.path.clone(), *line));
                                    edge_order.push(key);
                                }
                            }
                        }
                    }
                }
                Ev::Block {
                    kind,
                    op,
                    exempt,
                    line,
                    col,
                    ..
                } => {
                    for span in active() {
                        if span.binding.is_some() && span.binding == *exempt {
                            continue; // the condvar releases this guard
                        }
                        if *kind == BlockKind::Io && matches!(span.lock, LockId::File(_)) {
                            continue; // the file lock's own critical section
                        }
                        out.findings.push(Finding {
                            rule: "R5",
                            path: file.path.clone(),
                            line: *line,
                            col: *col,
                            message: format!(
                                "lock-discipline: guard of `{}` (line {}) is live across \
                                 blocking `{op}` in `{}` — every contender stalls behind \
                                 this I/O; release the guard first",
                                span.lock, span.line, f.name
                            ),
                        });
                    }
                }
            }
        }
    }

    // ---- pass 4: order-graph cycles ---------------------------------
    for key in &edge_order {
        let (path, line) = &edge_seen[key];
        out.edges.push(LockEdge {
            from: key.0.to_string(),
            to: key.1.to_string(),
            path: path.clone(),
            line: *line,
        });
    }
    out.edges
        .sort_by(|a, b| (&a.from, &a.to).cmp(&(&b.from, &b.to)));
    for cycle in find_cycles(&edge_order) {
        let names: Vec<String> = cycle.iter().map(LockId::to_string).collect();
        let key = (cycle[0].clone(), cycle[1].clone());
        let (path, line) = edge_seen[&key].clone();
        out.findings.push(Finding {
            rule: "R5",
            path,
            line,
            col: 1,
            message: format!(
                "lock-discipline: lock-order cycle `{} → {}` — two threads taking these \
                 locks in opposite order deadlock; fix one site to follow the documented \
                 order",
                names.join(" → "),
                names[0]
            ),
        });
    }
    out
}

/// Shared lookup state: field-name → lock kind, plus config knobs.
struct Ctx {
    mutex_fields: HashSet<String>,
    rwlock_fields: HashSet<String>,
    file_lock_types: Vec<String>,
}

impl Ctx {
    fn new(files: &[FileScan], cfg: &Config) -> Self {
        let mut mutex_fields = HashSet::new();
        let mut rwlock_fields = HashSet::new();
        for file in files {
            for lf in &file.lock_fields {
                match lf.kind {
                    LockKind::Mutex => mutex_fields.insert(lf.name.clone()),
                    LockKind::RwLock => rwlock_fields.insert(lf.name.clone()),
                };
            }
        }
        Ctx {
            mutex_fields,
            rwlock_fields,
            file_lock_types: cfg.file_lock_types.clone(),
        }
    }

    /// Primitive acquisitions in a body: `recv.lock()`, `rw.read()`,
    /// `rw.write()`, `source().lock()`, `self.lock()` on a file-lock
    /// type. Unknown receivers are skipped — a documented gap, not a
    /// guess.
    fn find_primitives(
        &self,
        file: &FileScan,
        body: std::ops::Range<usize>,
        self_type: Option<&str>,
    ) -> Vec<Prim> {
        let code = &file.code;
        let mut out = Vec::new();
        for i in body {
            let t = &code[i];
            if t.kind != TokKind::Ident
                || !LOCK_PRIMITIVES.contains(&t.text.as_str())
                || !code.get(i + 1).is_some_and(|n| n.is_punct('('))
                || i == 0
                || !code[i - 1].is_punct('.')
            {
                continue;
            }
            let is_rw = matches!(t.text.as_str(), "read" | "write");
            let lock = match receiver(code, i) {
                Recv::SelfDot => match self_type {
                    Some(ty)
                        if self.file_lock_types.iter().any(|f| f == ty)
                            && FILE_LOCK_METHODS.contains(&t.text.as_str()) =>
                    {
                        Some(LockId::File(ty.to_string()))
                    }
                    _ => None,
                },
                Recv::Ident(name) => {
                    if is_rw {
                        self.rwlock_fields
                            .contains(&name)
                            .then_some(LockId::Field(name))
                    } else {
                        (self.mutex_fields.contains(&name) || self.rwlock_fields.contains(&name))
                            .then_some(LockId::Field(name))
                    }
                }
                Recv::CallOf(name) if !is_rw => Some(LockId::Source(name)),
                _ => None,
            };
            if let Some(lock) = lock {
                out.push(Prim { tok: i, lock });
            }
        }
        out
    }
}

/// What sits before the `.` of a method call.
enum Recv {
    SelfDot,
    Ident(String),
    CallOf(String),
    Unknown,
}

fn receiver(code: &[Tok], method_tok: usize) -> Recv {
    let Some(prev) = method_tok.checked_sub(2) else {
        return Recv::Unknown;
    };
    let p = &code[prev];
    if p.is_ident("self") {
        return Recv::SelfDot;
    }
    if p.kind == TokKind::Ident {
        return Recv::Ident(p.text.clone());
    }
    if p.is_punct(')') {
        // Walk back over the call's parens to the fn name.
        let mut depth = 0i32;
        let mut k = prev;
        loop {
            if code[k].is_punct(')') {
                depth += 1;
            } else if code[k].is_punct('(') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            let Some(nk) = k.checked_sub(1) else {
                return Recv::Unknown;
            };
            k = nk;
        }
        if let Some(name) = k.checked_sub(1).map(|j| &code[j]) {
            if name.kind == TokKind::Ident && !crate::scan::is_keyword(&name.text) {
                return Recv::CallOf(name.text.clone());
            }
        }
    }
    Recv::Unknown
}

/// True for call sites that are really lock primitives on receivers we
/// could not name — never let lenient resolution guess those.
fn is_primitive_site(call: &Call) -> bool {
    match &call.site {
        CallSite::Method { name, .. } | CallSite::SelfMethod { name } => {
            LOCK_PRIMITIVES.contains(&name.as_str())
        }
        _ => false,
    }
}

/// Direct blocking ops for the summary (no exemption bookkeeping).
fn direct_blocking(code: &[Tok], body: std::ops::Range<usize>) -> Vec<(BlockKind, String)> {
    blocking_events(code, body)
        .into_iter()
        .filter_map(|ev| match ev {
            Ev::Block { kind, op, .. } => Some((kind, op)),
            Ev::Acquire { .. } => None,
        })
        .collect()
}

/// Blocking-op events in a body, with condvar-wait guard exemptions.
fn blocking_events(code: &[Tok], body: std::ops::Range<usize>) -> Vec<Ev> {
    let mut out = Vec::new();
    for i in body {
        let t = &code[i];
        if t.kind != TokKind::Ident || !code.get(i + 1).is_some_and(|n| n.is_punct('(')) {
            continue;
        }
        let is_method = i > 0 && code[i - 1].is_punct('.');
        let zero_arg = code.get(i + 2).is_some_and(|n| n.is_punct(')'));
        let name = t.text.as_str();
        // `thread::sleep(…)` (or bare `sleep(…)`) parks regardless of
        // call form.
        if name == "sleep" && !is_method {
            out.push(Ev::Block {
                tok: i,
                kind: BlockKind::Park,
                op: "thread::sleep".into(),
                exempt: None,
                line: t.line,
                col: t.col,
            });
            continue;
        }
        if !is_method {
            continue;
        }
        if matches!(name, "wait" | "wait_timeout" | "wait_while") {
            // The waited guard is *released* by the condvar — exempt it.
            let exempt = code
                .get(i + 2)
                .filter(|a| a.kind == TokKind::Ident)
                .map(|a| a.text.clone());
            out.push(Ev::Block {
                tok: i,
                kind: BlockKind::Park,
                op: format!("Condvar::{name}"),
                exempt,
                line: t.line,
                col: t.col,
            });
            continue;
        }
        if let Some((_, kind, _)) = BLOCKING_METHODS
            .iter()
            .find(|(n, _, needs_zero)| *n == name && (!needs_zero || zero_arg))
        {
            out.push(Ev::Block {
                tok: i,
                kind: *kind,
                op: format!(".{name}()"),
                exempt: None,
                line: t.line,
                col: t.col,
            });
        }
    }
    out
}

/// Brace/statement geometry for one fn body: guard-extent recovery.
struct Geometry<'a> {
    code: &'a [Tok],
    body: std::ops::Range<usize>,
    /// Brace depth *before* each token, indexed from `body.start`.
    depth: Vec<u32>,
    /// Paren+bracket group depth before each token.
    group: Vec<u32>,
}

impl<'a> Geometry<'a> {
    fn new(code: &'a [Tok], body: std::ops::Range<usize>) -> Self {
        let mut depth = Vec::with_capacity(body.len());
        let mut group = Vec::with_capacity(body.len());
        let (mut d, mut g) = (0u32, 0u32);
        for i in body.clone() {
            depth.push(d);
            group.push(g);
            let t = &code[i];
            if t.is_punct('{') {
                d += 1;
            } else if t.is_punct('}') {
                d = d.saturating_sub(1);
            } else if t.is_punct('(') || t.is_punct('[') {
                g += 1;
            } else if t.is_punct(')') || t.is_punct(']') {
                g = g.saturating_sub(1);
            }
        }
        Geometry {
            code,
            body,
            depth,
            group,
        }
    }

    fn depth_at(&self, i: usize) -> u32 {
        self.depth[i - self.body.start]
    }

    fn group_at(&self, i: usize) -> u32 {
        self.group[i - self.body.start]
    }

    /// First index after `i` closing the enclosing block, or body end.
    fn block_end(&self, i: usize) -> usize {
        let d = self.depth_at(i);
        (i + 1..self.body.end)
            .find(|&k| self.code[k].is_punct('}') && self.depth_at(k) == d)
            .unwrap_or(self.body.end)
    }

    /// First `;` after `i` at the same brace+group depth, capped at the
    /// block end.
    fn statement_end(&self, i: usize) -> usize {
        let (d, g) = (self.depth_at(i), self.group_at(i));
        let cap = self.block_end(i);
        (i + 1..cap)
            .find(|&k| self.code[k].is_punct(';') && self.depth_at(k) == d && self.group_at(k) == g)
            .unwrap_or(cap)
    }

    /// The guard extent for an acquisition at token `i`:
    /// `(binding, start, end)` — `None` when the guard dies instantly
    /// (`let _ = …`).
    fn guard_extent(&self, i: usize) -> Option<(Option<String>, usize, usize)> {
        // Statement start: walk back to the nearest `;`/`{`/`}`.
        let mut j = i;
        let mut let_at: Option<usize> = None;
        while j > self.body.start {
            j -= 1;
            let t = &self.code[j];
            if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
                break;
            }
            if t.is_ident("let") {
                let_at = Some(j);
            }
        }
        match let_at {
            Some(l) => {
                let scrutinee = l > self.body.start
                    && (self.code[l - 1].is_ident("if") || self.code[l - 1].is_ident("while"));
                if scrutinee {
                    // Guard lives for the block following the condition.
                    let mut g = 0u32;
                    let mut k = i + 1;
                    while k < self.body.end {
                        let t = &self.code[k];
                        if t.is_punct('(') || t.is_punct('[') {
                            g += 1;
                        } else if t.is_punct(')') || t.is_punct(']') {
                            g = g.saturating_sub(1);
                        } else if t.is_punct('{') && g == 0 {
                            return Some((None, i, self.block_end(k + 1).min(self.body.end)));
                        }
                        k += 1;
                    }
                    return Some((None, i, self.body.end));
                }
                // `let [mut] name = …` — name `_` drops the guard now.
                let mut k = l + 1;
                while self.code.get(k).is_some_and(|t| t.is_ident("mut")) {
                    k += 1;
                }
                let name = self
                    .code
                    .get(k)
                    .filter(|t| t.kind == TokKind::Ident)
                    .map(|t| t.text.clone());
                if name.as_deref() == Some("_") {
                    return None;
                }
                let mut end = self.block_end(l);
                if let Some(n) = &name {
                    // An explicit `drop(name)` ends the extent early.
                    let mut d = i;
                    while d + 3 < end {
                        if self.code[d].is_ident("drop")
                            && self.code[d + 1].is_punct('(')
                            && self.code[d + 2].is_ident(n)
                            && self.code[d + 3].is_punct(')')
                        {
                            end = d;
                            break;
                        }
                        d += 1;
                    }
                }
                Some((name, i, end))
            }
            // Temporary guard: lives to the end of the statement.
            None => Some((None, i, self.statement_end(i))),
        }
    }
}

/// Finds simple cycles in the order graph via DFS; each cycle is
/// reported once, as the node sequence along the back edge.
fn find_cycles(edges: &[(LockId, LockId)]) -> Vec<Vec<LockId>> {
    let mut adj: BTreeMap<&LockId, Vec<&LockId>> = BTreeMap::new();
    for (a, b) in edges {
        adj.entry(a).or_default().push(b);
    }
    let mut cycles = Vec::new();
    let mut done: HashSet<&LockId> = HashSet::new();
    for start in adj.keys().copied().collect::<Vec<_>>() {
        if done.contains(start) {
            continue;
        }
        let mut stack: Vec<(&LockId, usize)> = vec![(start, 0)];
        let mut path: Vec<&LockId> = vec![start];
        let mut on_path: HashSet<&LockId> = [start].into();
        while let Some((node, next)) = stack.last_mut() {
            let succs = adj.get(*node).map(Vec::as_slice).unwrap_or(&[]);
            if *next < succs.len() {
                let s = succs[*next];
                *next += 1;
                if on_path.contains(s) {
                    let pos = path.iter().position(|n| *n == s).expect("on path");
                    cycles.push(path[pos..].iter().map(|n| (*n).clone()).collect());
                } else if !done.contains(s) {
                    stack.push((s, 0));
                    path.push(s);
                    on_path.insert(s);
                }
            } else {
                done.insert(node);
                on_path.remove(*node);
                path.pop();
                stack.pop();
            }
        }
    }
    cycles
}
