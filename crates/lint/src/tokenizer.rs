//! A lossless-enough Rust tokenizer for static analysis.
//!
//! This is not a full lexer: it recovers exactly what the lint rules
//! need — identifiers, punctuation, literals, and comments — with
//! correct `line:col` positions, and it never mistakes the *inside* of
//! a string, raw string, char literal, or comment for code. The tricky
//! cases it must get right (each pinned by a unit test):
//!
//! - `"// not a comment"` — comment markers inside string literals;
//! - `r#"she said "hi""#` — raw strings with arbitrary `#` fences;
//! - `/* outer /* inner */ still out */` — nested block comments;
//! - `'a'` vs `'a` — char literals vs lifetimes;
//! - `b"bytes"`, `br##"raw bytes"##`, `r#ident` raw identifiers.

/// What a token is, at the granularity the rules care about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `Vec`, `partial_cmp`, …).
    Ident,
    /// One punctuation character (`.`, `:`, `(`, `!`, …).
    Punct,
    /// `"…"` or `b"…"` string literal (text excludes the quotes).
    Str,
    /// `r"…"` / `r#"…"#` / `br#"…"#` raw string (text excludes fences).
    RawStr,
    /// `'x'` or `b'x'` char literal.
    Char,
    /// Numeric literal (`0`, `1_000`, `0.4f32`, `0xff`).
    Num,
    /// `'a` lifetime.
    Lifetime,
    /// `// …` line comment (text excludes the `//`).
    LineComment,
    /// `/* … */` block comment, nesting-aware (text excludes fences).
    BlockComment,
}

/// One token with its source position (1-based line and column).
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
    pub col: u32,
}

impl Tok {
    /// True for an identifier with exactly this text.
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokKind::Ident && self.text == text
    }

    /// True for a punctuation token with exactly this character.
    pub fn is_punct(&self, ch: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == ch.len_utf8() && self.text.starts_with(ch)
    }
}

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek_at(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    /// Advances one byte, tracking line/col. Multi-byte UTF-8
    /// continuation bytes do not advance the column, so columns count
    /// characters on ASCII-dominated lines and stay sane elsewhere.
    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else if b & 0xC0 != 0x80 {
            self.col += 1;
        }
        Some(b)
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Tokenizes `src`, keeping comments (the allow-directive scanner needs
/// them). Unterminated constructs consume to end-of-file rather than
/// erroring: a linter must degrade gracefully on torn input.
pub fn tokenize(src: &str) -> Vec<Tok> {
    let mut cur = Cursor {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
        col: 1,
    };
    let mut toks = Vec::new();
    while let Some(b) = cur.peek() {
        let (line, col) = (cur.line, cur.col);
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                cur.bump();
            }
            b'/' if cur.peek_at(1) == Some(b'/') => {
                cur.bump();
                cur.bump();
                let start = cur.pos;
                while let Some(c) = cur.peek() {
                    if c == b'\n' {
                        break;
                    }
                    cur.bump();
                }
                toks.push(tok(TokKind::LineComment, src, start, cur.pos, line, col));
            }
            b'/' if cur.peek_at(1) == Some(b'*') => {
                cur.bump();
                cur.bump();
                let start = cur.pos;
                let mut depth = 1usize;
                let mut end = cur.pos;
                while let Some(c) = cur.peek() {
                    if c == b'/' && cur.peek_at(1) == Some(b'*') {
                        depth += 1;
                        cur.bump();
                        cur.bump();
                    } else if c == b'*' && cur.peek_at(1) == Some(b'/') {
                        depth -= 1;
                        cur.bump();
                        cur.bump();
                        if depth == 0 {
                            end = cur.pos - 2;
                            break;
                        }
                    } else {
                        cur.bump();
                    }
                    end = cur.pos;
                }
                toks.push(tok(TokKind::BlockComment, src, start, end, line, col));
            }
            b'r' | b'b' if starts_raw_string(&cur) => {
                // br / rb prefix then `#…"`.
                while matches!(cur.peek(), Some(b'r') | Some(b'b')) {
                    cur.bump();
                }
                let mut fence = 0usize;
                while cur.peek() == Some(b'#') {
                    fence += 1;
                    cur.bump();
                }
                cur.bump(); // opening quote
                let start = cur.pos;
                let mut end = cur.src.len();
                'outer: while let Some(c) = cur.peek() {
                    if c == b'"' {
                        let close = cur.pos;
                        for i in 0..fence {
                            if cur.peek_at(1 + i) != Some(b'#') {
                                cur.bump();
                                continue 'outer;
                            }
                        }
                        for _ in 0..=fence {
                            cur.bump();
                        }
                        end = close;
                        break;
                    }
                    cur.bump();
                }
                toks.push(tok(TokKind::RawStr, src, start, end, line, col));
            }
            b'b' if cur.peek_at(1) == Some(b'"') => {
                cur.bump();
                lex_string(&mut cur, src, &mut toks, line, col);
            }
            b'b' if cur.peek_at(1) == Some(b'\'') => {
                cur.bump();
                lex_char(&mut cur, src, &mut toks, line, col);
            }
            b'r' if cur.peek_at(1) == Some(b'#') && cur.peek_at(2).is_some_and(is_ident_start) => {
                // Raw identifier `r#match`.
                cur.bump();
                cur.bump();
                let start = cur.pos;
                while cur.peek().is_some_and(is_ident_continue) {
                    cur.bump();
                }
                toks.push(tok(TokKind::Ident, src, start, cur.pos, line, col));
            }
            b'"' => lex_string(&mut cur, src, &mut toks, line, col),
            b'\'' => {
                // Char literal or lifetime. `'\…'` and `'x'` are chars;
                // `'ident` (no closing quote right after one char) is a
                // lifetime.
                let is_char = cur.peek_at(1) == Some(b'\\')
                    || (cur.peek_at(1).is_some_and(|c| c != b'\'') && char_closes(&cur));
                if is_char {
                    lex_char(&mut cur, src, &mut toks, line, col);
                } else {
                    cur.bump();
                    let start = cur.pos;
                    while cur.peek().is_some_and(is_ident_continue) {
                        cur.bump();
                    }
                    toks.push(tok(TokKind::Lifetime, src, start, cur.pos, line, col));
                }
            }
            b'0'..=b'9' => {
                let start = cur.pos;
                while let Some(c) = cur.peek() {
                    if c.is_ascii_alphanumeric() || c == b'_' {
                        cur.bump();
                    } else if c == b'.'
                        && cur.peek_at(1) != Some(b'.')
                        && !cur.peek_at(1).is_some_and(is_ident_start)
                    {
                        // `1.5` continues the number; `0..n` and
                        // `1.max(2)` do not.
                        cur.bump();
                    } else {
                        break;
                    }
                }
                toks.push(tok(TokKind::Num, src, start, cur.pos, line, col));
            }
            c if is_ident_start(c) => {
                let start = cur.pos;
                while cur.peek().is_some_and(is_ident_continue) {
                    cur.bump();
                }
                toks.push(tok(TokKind::Ident, src, start, cur.pos, line, col));
            }
            _ => {
                let start = cur.pos;
                cur.bump();
                toks.push(tok(TokKind::Punct, src, start, cur.pos, line, col));
            }
        }
    }
    toks
}

/// Does `'X` close with a quote after exactly one (possibly multi-byte)
/// character? Distinguishes `'a'` from `'a` without lookahead tables.
fn char_closes(cur: &Cursor<'_>) -> bool {
    let bytes = &cur.src[cur.pos + 1..];
    let Some(&first) = bytes.first() else {
        return false;
    };
    let width = match first {
        _ if first < 0x80 => 1,
        _ if first >= 0xF0 => 4,
        _ if first >= 0xE0 => 3,
        _ => 2,
    };
    bytes.get(width) == Some(&b'\'')
}

fn starts_raw_string(cur: &Cursor<'_>) -> bool {
    // `r"`, `r#…"`, `br"`, `br#…"`.
    let mut i = 0;
    if cur.peek_at(i) == Some(b'b') {
        i += 1;
    }
    if cur.peek_at(i) != Some(b'r') {
        return false;
    }
    i += 1;
    while cur.peek_at(i) == Some(b'#') {
        i += 1;
    }
    cur.peek_at(i) == Some(b'"')
}

fn lex_string(cur: &mut Cursor<'_>, src: &str, toks: &mut Vec<Tok>, line: u32, col: u32) {
    cur.bump(); // opening quote
    let start = cur.pos;
    let mut end = cur.src.len();
    while let Some(c) = cur.peek() {
        if c == b'\\' {
            cur.bump();
            cur.bump();
        } else if c == b'"' {
            end = cur.pos;
            cur.bump();
            break;
        } else {
            cur.bump();
        }
    }
    toks.push(tok(TokKind::Str, src, start, end, line, col));
}

fn lex_char(cur: &mut Cursor<'_>, src: &str, toks: &mut Vec<Tok>, line: u32, col: u32) {
    cur.bump(); // opening quote
    let start = cur.pos;
    let mut end = cur.src.len();
    while let Some(c) = cur.peek() {
        if c == b'\\' {
            cur.bump();
            cur.bump();
        } else if c == b'\'' {
            end = cur.pos;
            cur.bump();
            break;
        } else {
            cur.bump();
        }
    }
    toks.push(tok(TokKind::Char, src, start, end, line, col));
}

fn tok(kind: TokKind, src: &str, start: usize, end: usize, line: u32, col: u32) -> Tok {
    let end = end.max(start).min(src.len());
    Tok {
        kind,
        text: src[start..end].to_string(),
        line,
        col,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        tokenize(src)
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn comment_marker_inside_string_is_not_a_comment() {
        let toks = kinds(r#"let url = "https://example.com"; x()"#);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Str && t == "https://example.com"));
        assert!(toks.iter().all(|(k, _)| *k != TokKind::LineComment));
        // Code after the string still tokenizes.
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Ident && t == "x"));
    }

    #[test]
    fn raw_string_with_fences_and_embedded_quotes() {
        let toks = kinds(r###"let s = r#"she said "hi" // nope"#; done()"###);
        let raw = toks
            .iter()
            .find(|(k, _)| *k == TokKind::RawStr)
            .expect("raw string token");
        assert_eq!(raw.1, r#"she said "hi" // nope"#);
        assert!(toks.iter().all(|(k, _)| *k != TokKind::LineComment));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Ident && t == "done"));
    }

    #[test]
    fn double_fence_raw_string() {
        let toks = kinds(r####"r##"inner "# still inside"##"####);
        let raw = toks
            .iter()
            .find(|(k, _)| *k == TokKind::RawStr)
            .expect("raw string token");
        assert_eq!(raw.1, r##"inner "# still inside"##);
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("before /* outer /* inner */ still out */ after");
        let comment = toks
            .iter()
            .find(|(k, _)| *k == TokKind::BlockComment)
            .expect("block comment");
        assert_eq!(comment.1, " outer /* inner */ still out ");
        let idents: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Ident)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(idents, ["before", "after"]);
    }

    #[test]
    fn char_literal_vs_lifetime() {
        let toks = kinds("let c = 'x'; fn f<'a>(v: &'a str) { let q = '\\n'; }");
        assert_eq!(
            toks.iter().filter(|(k, _)| *k == TokKind::Char).count(),
            2,
            "{toks:?}"
        );
        assert_eq!(
            toks.iter().filter(|(k, _)| *k == TokKind::Lifetime).count(),
            2,
            "{toks:?}"
        );
    }

    #[test]
    fn byte_and_raw_byte_strings() {
        let toks = kinds(r##"let a = b"bytes"; let b = br#"raw // bytes"#;"##);
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Str && t == "bytes"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::RawStr && t == "raw // bytes"));
        assert!(toks.iter().all(|(k, _)| *k != TokKind::LineComment));
    }

    #[test]
    fn line_comment_text_and_position() {
        let toks = tokenize("x\n  // lint:allow(R2, reason = \"test\")\ny");
        let c = toks
            .iter()
            .find(|t| t.kind == TokKind::LineComment)
            .expect("comment");
        assert_eq!(c.text, " lint:allow(R2, reason = \"test\")");
        assert_eq!(c.line, 2);
        assert_eq!(c.col, 3);
    }

    #[test]
    fn numbers_do_not_swallow_ranges_or_methods() {
        let toks = kinds("for i in 0..10 { let x = 1.5f32.max(2.0); }");
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Num && t == "0"));
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Num && t == "10"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Num && t == "1.5f32"));
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Ident && t == "max"));
    }

    #[test]
    fn escaped_quote_in_string() {
        let toks = kinds(r#"let s = "a \" b"; next()"#);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Str && t == r#"a \" b"#));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Ident && t == "next"));
    }

    #[test]
    fn positions_are_one_based_and_line_tracked() {
        let toks = tokenize("fn main() {\n    body();\n}");
        let body = toks.iter().find(|t| t.is_ident("body")).expect("body");
        assert_eq!((body.line, body.col), (2, 5));
    }
}
