//! Workspace invariant linter.
//!
//! The compiler cannot check the three contracts PRs 3–7 earned — hot
//! paths stay allocation-free, float rankings stay NaN-total, and the
//! daemon never panics on client bytes — so this crate does, with the
//! same hand-rolled, dependency-free style as the JSON parser and the
//! telemetry registry. See the README's "Static analysis" section for
//! the rule catalog and the suppression contract.
//!
//! Pipeline: [`tokenizer`] (comment/string/raw-string aware) →
//! [`scan`] (fn items, test regions, `lint:allow` directives) →
//! [`rules`] (R1–R4 over an intra-crate call-graph approximation).

pub mod rules;
pub mod scan;
pub mod tokenizer;

use std::path::Path;

pub use rules::{Config, Finding, Report};

/// Lints in-memory sources; `(path, source, force_test)` per file.
/// The unit tests and fixture suite drive this directly.
pub fn lint_sources(sources: &[(String, String, bool)], cfg: &Config) -> Report {
    let files: Vec<scan::FileScan> = sources
        .iter()
        .map(|(path, src, force_test)| {
            scan::scan_file(path.clone(), tokenizer::tokenize(src), *force_test)
        })
        .collect();
    rules::run(&files, cfg)
}

/// Reads and lints files from disk. Paths are reported relative to
/// `root` with `/` separators; files under a `tests/` directory are
/// treated as test code wholesale.
///
/// # Errors
///
/// Returns the first I/O error; unreadable files are findings-level
/// problems the caller should surface, not skip.
pub fn lint_paths(
    root: &Path,
    paths: &[std::path::PathBuf],
    cfg: &Config,
) -> std::io::Result<Report> {
    let mut sources = Vec::with_capacity(paths.len());
    for path in paths {
        let src = std::fs::read_to_string(path)?;
        let rel = path.strip_prefix(root).unwrap_or(path);
        let rel = rel
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        // Integration-test trees are test code wholesale — except lint
        // fixtures, which model production code on purpose.
        let force_test =
            (rel.contains("/tests/") || rel.starts_with("tests/")) && !rel.contains("/fixtures/");
        sources.push((rel, src, force_test));
    }
    Ok(lint_sources(&sources, cfg))
}

/// Renders the allow summary table: one row per suppression in force,
/// so every escape hatch and its written reason stays visible.
pub fn render_allow_summary(report: &Report) -> String {
    if report.allows_in_force.is_empty() {
        return "suppressions in force: none\n".to_string();
    }
    let mut out = format!("suppressions in force: {}\n", report.allows_in_force.len());
    let width = report
        .allows_in_force
        .iter()
        .map(|a| format!("{}:{}", a.path, a.line).len())
        .max()
        .unwrap_or(0);
    for a in &report.allows_in_force {
        let loc = format!("{}:{}", a.path, a.line);
        out.push_str(&format!("  {loc:width$}  {}  {}\n", a.rule, a.reason));
    }
    out
}
