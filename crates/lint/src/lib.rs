//! Workspace invariant linter.
//!
//! The compiler cannot check the three contracts PRs 3–7 earned — hot
//! paths stay allocation-free, float rankings stay NaN-total, and the
//! daemon never panics on client bytes — so this crate does, with the
//! same hand-rolled, dependency-free style as the JSON parser and the
//! telemetry registry. See the README's "Static analysis" section for
//! the rule catalog and the suppression contract.
//!
//! Pipeline: [`tokenizer`] (comment/string/raw-string aware) →
//! [`scan`] (fn/impl/use/lock-field items, test regions, `lint:allow`
//! directives) → [`graph`] (workspace-wide call-graph resolution:
//! bare, `self.method`, `Type::assoc`, `path::fn`, cross-crate) →
//! [`rules`] (R1–R7) with [`locks`] supplying the R5 lock-order
//! analysis.

pub mod graph;
pub mod locks;
pub mod rules;
pub mod scan;
pub mod tokenizer;

use std::path::Path;

pub use rules::{Config, Finding, Report};

/// Lints in-memory sources; `(path, source, force_test)` per file.
/// The unit tests and fixture suite drive this directly.
pub fn lint_sources(sources: &[(String, String, bool)], cfg: &Config) -> Report {
    let files: Vec<scan::FileScan> = sources
        .iter()
        .map(|(path, src, force_test)| {
            scan::scan_file(path.clone(), tokenizer::tokenize(src), *force_test)
        })
        .collect();
    rules::run(&files, cfg)
}

/// Reads and lints files from disk. Paths are reported relative to
/// `root` with `/` separators; files under a `tests/` directory are
/// treated as test code wholesale.
///
/// # Errors
///
/// Returns the first I/O error; unreadable files are findings-level
/// problems the caller should surface, not skip.
pub fn lint_paths(
    root: &Path,
    paths: &[std::path::PathBuf],
    cfg: &Config,
) -> std::io::Result<Report> {
    let mut sources = Vec::with_capacity(paths.len());
    for path in paths {
        let src = std::fs::read_to_string(path)?;
        let rel = path.strip_prefix(root).unwrap_or(path);
        let rel = rel
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        // Integration-test trees are test code wholesale — except lint
        // fixtures, which model production code on purpose.
        let force_test =
            (rel.contains("/tests/") || rel.starts_with("tests/")) && !rel.contains("/fixtures/");
        sources.push((rel, src, force_test));
    }
    Ok(lint_sources(&sources, cfg))
}

/// Renders the allow summary table: one row per suppression in force,
/// so every escape hatch and its written reason stays visible.
pub fn render_allow_summary(report: &Report) -> String {
    if report.allows_in_force.is_empty() {
        return "suppressions in force: none\n".to_string();
    }
    let mut out = format!("suppressions in force: {}\n", report.allows_in_force.len());
    let width = report
        .allows_in_force
        .iter()
        .map(|a| format!("{}:{}", a.path, a.line).len())
        .max()
        .unwrap_or(0);
    for a in &report.allows_in_force {
        let loc = format!("{}:{}", a.path, a.line);
        out.push_str(&format!("  {loc:width$}  {}  {}\n", a.rule, a.reason));
    }
    out
}

/// Renders the report as JSON for machine consumers (CI artifacts).
///
/// The schema is stable: `findings` is every diagnostic — suppressed
/// ones included, marked `"suppressed": true` — each with `file`,
/// `line`, `col`, `rule`, `message`; `suppressions` lists the allow
/// directives in force with their written reasons; `clean` mirrors the
/// process exit status.
pub fn render_json(report: &Report) -> String {
    let mut out = String::from("{\n  \"clean\": ");
    out.push_str(if report.clean() { "true" } else { "false" });
    out.push_str(",\n  \"findings\": [");
    let mut first = true;
    let mut push_finding = |out: &mut String, f: &Finding, suppressed: bool| {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "\n    {{\"file\": \"{}\", \"line\": {}, \"col\": {}, \"rule\": \"{}\", \
             \"message\": \"{}\", \"suppressed\": {}}}",
            json_escape(&f.path),
            f.line,
            f.col,
            f.rule,
            json_escape(&f.message),
            suppressed
        ));
    };
    for f in &report.findings {
        push_finding(&mut out, f, false);
    }
    for f in &report.suppressed {
        push_finding(&mut out, f, true);
    }
    out.push_str(
        if report.findings.is_empty() && report.suppressed.is_empty() {
            "],\n"
        } else {
            "\n  ],\n"
        },
    );
    out.push_str("  \"suppressions\": [");
    for (i, a) in report.allows_in_force.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"reason\": \"{}\"}}",
            json_escape(&a.path),
            a.line,
            a.rule,
            json_escape(&a.reason)
        ));
    }
    out.push_str(if report.allows_in_force.is_empty() {
        "]\n}\n"
    } else {
        "\n  ]\n}\n"
    });
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}
