//! `cargo run -p lint` — lint the workspace; nonzero exit on findings.
//!
//! ```text
//! lint [--root DIR] [--format human|json] [--self-check] [FILE…]
//! ```
//!
//! With no file arguments, walks the workspace's own source trees
//! (`crates/*/{src,tests}`, root `src/`, `tests/`, `examples/`),
//! skipping `vendor/`, `target/`, and the linter's own trip-fixtures.
//! `--self-check` instead asserts the rule engine still fires on its
//! trip fixtures and stays quiet on its pass fixtures — the CI gate
//! runs it first so the gate itself cannot silently rot.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use lint::rules::Config;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut self_check = false;
    let mut json = false;
    let mut files: Vec<PathBuf> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("--root needs a directory");
                    return ExitCode::from(2);
                }
            },
            "--format" => match args.next().as_deref() {
                Some("json") => json = true,
                Some("human") => json = false,
                _ => {
                    eprintln!("--format needs `human` or `json`");
                    return ExitCode::from(2);
                }
            },
            "--self-check" => self_check = true,
            "--help" | "-h" => {
                eprintln!("usage: lint [--root DIR] [--format human|json] [--self-check] [FILE…]");
                return ExitCode::SUCCESS;
            }
            _ => files.push(PathBuf::from(arg)),
        }
    }
    let root = root.unwrap_or_else(workspace_root);
    if self_check {
        return run_self_check(&root);
    }
    if files.is_empty() {
        files = workspace_files(&root);
        if files.is_empty() {
            eprintln!("lint: no source files found under {}", root.display());
            return ExitCode::from(2);
        }
    }
    let report = match lint::lint_paths(&root, &files, &Config::default()) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("lint: {e}");
            return ExitCode::from(2);
        }
    };
    if json {
        print!("{}", lint::render_json(&report));
        return if report.clean() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }
    for finding in &report.findings {
        println!("{}", finding.render());
    }
    print!("{}", lint::render_allow_summary(&report));
    if report.clean() {
        println!("lint: {} files clean", files.len());
        ExitCode::SUCCESS
    } else {
        println!("lint: {} finding(s)", report.findings.len());
        ExitCode::FAILURE
    }
}

/// The workspace root: nearest ancestor of the linter's manifest dir
/// holding a `Cargo.toml` with a `[workspace]` table (falls back to the
/// current directory so `lint --root` stays optional everywhere).
fn workspace_root() -> PathBuf {
    let mut dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return dir;
            }
        }
        if !dir.pop() {
            return PathBuf::from(".");
        }
    }
}

/// Source trees the workspace invariants cover.
fn workspace_files(root: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    let crates = root.join("crates");
    if let Ok(entries) = std::fs::read_dir(&crates) {
        for entry in entries.flatten() {
            let dir = entry.path();
            collect_rs(&dir.join("src"), &mut files);
            let tests = dir.join("tests");
            // The linter's fixtures are *supposed* to trip rules.
            if dir.file_name().is_some_and(|n| n == "lint") {
                collect_rs_filtered(&tests, &mut files, &|p| {
                    !p.components().any(|c| c.as_os_str() == "fixtures")
                });
            } else {
                collect_rs(&tests, &mut files);
            }
        }
    }
    collect_rs(&root.join("src"), &mut files);
    collect_rs(&root.join("tests"), &mut files);
    collect_rs(&root.join("examples"), &mut files);
    files.sort();
    files
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    collect_rs_filtered(dir, out, &|_| true);
}

fn collect_rs_filtered(dir: &Path, out: &mut Vec<PathBuf>, keep: &dyn Fn(&Path) -> bool) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            collect_rs_filtered(&path, out, keep);
        } else if path.extension().is_some_and(|e| e == "rs") && keep(&path) {
            out.push(path);
        }
    }
}

/// Asserts the gate still gates: every `*_trip.rs` fixture must produce
/// at least one finding of its rule, every `*_pass.rs` fixture none,
/// and the allow fixture must suppress R2 while reporting its
/// reason-less directive. Exit nonzero on any miss.
fn run_self_check(root: &Path) -> ExitCode {
    let fixtures = root.join("crates/lint/tests/fixtures");
    let mut failures = Vec::new();
    let cfg = Config {
        // Fixtures live outside the real service paths; scope R3 and
        // the R6 relaxed-only policy onto them so each trip/pass pair
        // is exercised.
        r3_paths: vec!["fixtures/r3".into()],
        r4_exempt: Vec::new(),
        r6_relaxed_paths: vec!["fixtures/r6".into()],
        ..Config::default()
    };
    for (stem, rule_id) in [
        ("r1", "R1"),
        ("r2", "R2"),
        ("r3", "R3"),
        // Supervisor-shaped code pins R3's expanded scope: exit-status
        // handling and child event parsing must stay panic-free.
        ("r3_supervisor", "R3"),
        ("r4", "R4"),
        ("r5", "R5"),
        ("r6", "R6"),
        ("r7", "R7"),
    ] {
        for (suffix, want_findings) in [("trip", true), ("pass", false)] {
            let path = fixtures.join(format!("{stem}_{suffix}.rs"));
            let report = match lint::lint_paths(root, std::slice::from_ref(&path), &cfg) {
                Ok(r) => r,
                Err(e) => {
                    failures.push(format!("{}: {e}", path.display()));
                    continue;
                }
            };
            let hits = report.findings.iter().filter(|f| f.rule == rule_id).count();
            if want_findings && hits == 0 {
                failures.push(format!(
                    "{stem}_{suffix}.rs: expected {rule_id} findings, got none — the \
                     rule has gone blind"
                ));
            }
            if !want_findings && !report.findings.is_empty() {
                failures.push(format!(
                    "{stem}_{suffix}.rs: expected a clean pass, got: {}",
                    report
                        .findings
                        .iter()
                        .map(lint::Finding::render)
                        .collect::<Vec<_>>()
                        .join("; ")
                ));
            }
        }
    }
    let allow_path = fixtures.join("allow.rs");
    match lint::lint_paths(root, &[allow_path], &cfg) {
        Ok(report) => {
            if report.allows_in_force.is_empty() {
                failures.push("allow.rs: expected a suppression in force".into());
            }
            if !report.findings.iter().any(|f| f.rule == "R0") {
                failures.push("allow.rs: expected the reason-less directive to be reported".into());
            }
        }
        Err(e) => failures.push(format!("allow.rs: {e}")),
    }
    if failures.is_empty() {
        println!("lint self-check: fixtures trip and pass as designed");
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("lint self-check FAILED: {f}");
        }
        ExitCode::FAILURE
    }
}
