//! Per-file structure recovery: function items (name + body token
//! range), test-code regions, and `lint:allow` suppression directives.
//!
//! This is an approximation, not a parser: it tracks brace depth and a
//! few keyword/attribute patterns, which is enough to attribute every
//! token to the innermost enclosing `fn` and to know whether that code
//! is `#[cfg(test)]`-gated. It degrades safely — unrecognized syntax
//! just means a token belongs to no function, never a crash.

use crate::tokenizer::{Tok, TokKind};

/// One `fn` item recovered from a file.
#[derive(Debug)]
pub struct FnItem {
    /// The function's bare name (`forward_ws`, not the impl path).
    pub name: String,
    /// Code-token index range of the body, *inside* the braces.
    pub body: std::ops::Range<usize>,
    /// Where the `fn` keyword sits.
    pub line: u32,
    /// Inside a `#[cfg(test)]` module or under `#[test]`.
    pub in_test_code: bool,
}

/// A parsed `// lint:allow(R1, R2, reason = "…")` directive.
#[derive(Debug)]
pub struct Allow {
    /// Rule IDs this directive suppresses (`R1`…`R4`).
    pub rules: Vec<String>,
    /// The mandatory human-written justification.
    pub reason: Option<String>,
    /// Line the comment sits on.
    pub line: u32,
    /// Line the directive covers: its own line if code shares it,
    /// otherwise the next line holding code.
    pub applies_line: u32,
}

/// Everything the rules need to know about one file.
pub struct FileScan {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// Code tokens only (comments stripped), in source order.
    pub code: Vec<Tok>,
    pub fns: Vec<FnItem>,
    pub allows: Vec<Allow>,
}

/// Keywords that look like calls when followed by `(`.
pub fn is_keyword(name: &str) -> bool {
    matches!(
        name,
        "if" | "else"
            | "match"
            | "while"
            | "for"
            | "loop"
            | "return"
            | "break"
            | "continue"
            | "in"
            | "as"
            | "move"
            | "ref"
            | "mut"
            | "let"
            | "fn"
            | "pub"
            | "impl"
            | "trait"
            | "struct"
            | "enum"
            | "mod"
            | "use"
            | "where"
            | "unsafe"
            | "async"
            | "await"
            | "dyn"
            | "self"
            | "Self"
            | "super"
            | "crate"
            | "true"
            | "false"
            | "const"
            | "static"
            | "type"
    )
}

/// Scans one tokenized file. `force_test` marks the whole file as test
/// code (integration-test trees, fixtures).
pub fn scan_file(path: String, toks: Vec<Tok>, force_test: bool) -> FileScan {
    let mut code: Vec<Tok> = Vec::with_capacity(toks.len());
    let mut comments: Vec<Tok> = Vec::new();
    for t in toks {
        match t.kind {
            TokKind::LineComment | TokKind::BlockComment => comments.push(t),
            _ => code.push(t),
        }
    }
    let allows = parse_allows(&comments, &code);
    let fns = scan_fns(&code, force_test);
    FileScan {
        path,
        code,
        fns,
        allows,
    }
}

/// Tracks an open function body on the scan stack.
struct OpenFn {
    fn_index: usize,
    depth_at_open: u32,
}

/// Tracks an open `#[cfg(test)]` module.
struct OpenTestMod {
    depth_at_open: u32,
}

fn scan_fns(code: &[Tok], force_test: bool) -> Vec<FnItem> {
    let mut fns: Vec<FnItem> = Vec::new();
    let mut open_fns: Vec<OpenFn> = Vec::new();
    let mut open_test_mods: Vec<OpenTestMod> = Vec::new();
    let mut depth: u32 = 0;
    // Set by `#[cfg(test)]` / `#[test]`, consumed by the next `fn`/`mod`.
    let mut pending_test_attr = false;
    // Set after `fn name …`, consumed by the body's `{` (or dropped at
    // `;` for trait method declarations).
    let mut pending_fn: Option<(String, u32, bool)> = None;
    // Set after `mod name`, consumed by `{` or `;`.
    let mut pending_mod_test: Option<bool> = None;
    // Inside the parenthesized part of a pending signature.
    let mut paren_depth: u32 = 0;

    let mut i = 0;
    while i < code.len() {
        let t = &code[i];
        match t.kind {
            TokKind::Punct => match t.text.as_str() {
                "(" => paren_depth += 1,
                ")" => paren_depth = paren_depth.saturating_sub(1),
                "{" => {
                    depth += 1;
                    if paren_depth == 0 {
                        if let Some((name, line, is_test)) = pending_fn.take() {
                            fns.push(FnItem {
                                name,
                                body: i + 1..i + 1, // end patched on close
                                line,
                                in_test_code: is_test,
                            });
                            open_fns.push(OpenFn {
                                fn_index: fns.len() - 1,
                                depth_at_open: depth,
                            });
                        }
                        if let Some(is_test) = pending_mod_test.take() {
                            if is_test {
                                open_test_mods.push(OpenTestMod {
                                    depth_at_open: depth,
                                });
                            }
                        }
                    }
                }
                "}" => {
                    while let Some(open) = open_fns.last() {
                        if open.depth_at_open == depth {
                            fns[open.fn_index].body.end = i;
                            open_fns.pop();
                        } else {
                            break;
                        }
                    }
                    while let Some(open) = open_test_mods.last() {
                        if open.depth_at_open == depth {
                            open_test_mods.pop();
                        } else {
                            break;
                        }
                    }
                    depth = depth.saturating_sub(1);
                }
                ";" if paren_depth == 0 => {
                    pending_fn = None;
                    pending_mod_test = None;
                }
                // Attribute: `#[…]`. Recognize `test` / `cfg(test)`
                // anywhere inside the brackets; skip the group so its
                // contents never look like items.
                "#" if code.get(i + 1).is_some_and(|n| n.is_punct('[')) => {
                    let mut j = i + 2;
                    let mut bracket = 1u32;
                    let mut saw_test = false;
                    while j < code.len() && bracket > 0 {
                        let a = &code[j];
                        if a.is_punct('[') {
                            bracket += 1;
                        } else if a.is_punct(']') {
                            bracket -= 1;
                        } else if a.is_ident("test") {
                            saw_test = true;
                        }
                        j += 1;
                    }
                    if saw_test {
                        pending_test_attr = true;
                    }
                    i = j;
                    continue;
                }
                _ => {}
            },
            TokKind::Ident => match t.text.as_str() {
                "fn" => {
                    if let Some(name) = code.get(i + 1).filter(|n| n.kind == TokKind::Ident) {
                        let in_test = force_test || pending_test_attr || !open_test_mods.is_empty();
                        pending_fn = Some((name.text.clone(), t.line, in_test));
                        pending_test_attr = false;
                        i += 2;
                        continue;
                    }
                }
                "mod" if code.get(i + 1).is_some_and(|n| n.kind == TokKind::Ident) => {
                    pending_mod_test = Some(pending_test_attr || !open_test_mods.is_empty());
                    pending_test_attr = false;
                    i += 2;
                    continue;
                }
                "struct" | "enum" | "impl" | "trait" | "use" | "static" | "const" => {
                    // Any other item consumes a stray test attribute so
                    // `#[cfg(test)] struct Fixture` doesn't leak onto the
                    // next fn.
                    pending_test_attr = false;
                }
                _ => {}
            },
            _ => {}
        }
        i += 1;
    }
    // Unclosed bodies (torn input) extend to end-of-file.
    for open in open_fns {
        fns[open.fn_index].body.end = code.len();
    }
    fns
}

/// Extracts `lint:allow(...)` directives from comment tokens.
///
/// A directive on the same line as code covers that line; a directive on
/// its own line covers the next line that holds code (so long findings
/// lines survive rustfmt).
fn parse_allows(comments: &[Tok], code: &[Tok]) -> Vec<Allow> {
    let mut allows = Vec::new();
    for c in comments {
        // A directive is the whole comment: `// lint:allow(…)`. Prose
        // that merely *mentions* lint:allow (docs, this linter's own
        // source) is not a directive.
        let Some(body) = c.text.trim_start().strip_prefix("lint:allow(") else {
            continue;
        };
        // Last `)` so a reason like "bounded (checked above)" survives.
        let Some(end) = body.rfind(')') else {
            // Malformed: surfaces as a reason-less allow, which the
            // rules report.
            allows.push(Allow {
                rules: Vec::new(),
                reason: None,
                line: c.line,
                applies_line: c.line,
            });
            continue;
        };
        let inner = &body[..end];
        // Rules come before `reason = "…"`; the reason is the quoted
        // string (commas inside it are part of the reason, so split the
        // two zones before splitting rules on commas).
        let (rules_part, reason_part) = match inner.find("reason") {
            Some(pos) => (&inner[..pos], Some(&inner[pos..])),
            None => (inner, None),
        };
        let rules: Vec<String> = rules_part
            .split(',')
            .map(str::trim)
            .filter(|p| !p.is_empty())
            .map(str::to_string)
            .collect();
        let reason = reason_part.and_then(|tail| {
            let q0 = tail.find('"')?;
            let q1 = tail[q0 + 1..].find('"')?;
            let full = &tail[q0 + 1..q0 + 1 + q1];
            (!full.is_empty()).then(|| full.to_string())
        });
        let same_line_code = code.iter().any(|t| t.line == c.line);
        let applies_line = if same_line_code {
            c.line
        } else {
            code.iter()
                .map(|t| t.line)
                .filter(|&l| l > c.line)
                .min()
                .unwrap_or(c.line)
        };
        allows.push(Allow {
            rules,
            reason,
            line: c.line,
            applies_line,
        });
    }
    allows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenizer::tokenize;

    fn scan(src: &str) -> FileScan {
        scan_file("test.rs".into(), tokenize(src), false)
    }

    #[test]
    fn recovers_fn_names_and_bodies() {
        let s = scan("fn alpha() { beta(); }\nfn beta() -> usize { 1 }\n");
        let names: Vec<_> = s.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["alpha", "beta"]);
        let alpha = &s.fns[0];
        let body: Vec<_> = s.code[alpha.body.clone()]
            .iter()
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(body, ["beta", "(", ")", ";"]);
    }

    #[test]
    fn nested_fn_bodies_both_recorded() {
        let s = scan("fn outer() { fn inner() { x(); } inner(); }");
        assert_eq!(s.fns.len(), 2);
        let outer = s.fns.iter().find(|f| f.name == "outer").unwrap();
        let inner = s.fns.iter().find(|f| f.name == "inner").unwrap();
        assert!(outer.body.start < inner.body.start && inner.body.end < outer.body.end);
    }

    #[test]
    fn cfg_test_mod_marks_fns_as_test_code() {
        let s = scan(
            "fn prod() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn check() {}\n    fn helper() {}\n}\nfn prod2() {}\n",
        );
        let by_name = |n: &str| s.fns.iter().find(|f| f.name == n).unwrap();
        assert!(!by_name("prod").in_test_code);
        assert!(by_name("check").in_test_code);
        assert!(by_name("helper").in_test_code);
        assert!(!by_name("prod2").in_test_code);
    }

    #[test]
    fn trait_method_declaration_has_no_body() {
        let s = scan("trait T { fn decl(&self) -> usize; fn with_default(&self) { x(); } }");
        let names: Vec<_> = s.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["with_default"]);
    }

    #[test]
    fn allow_on_same_line_and_standalone() {
        let s = scan(
            "fn f() {\n    bad(); // lint:allow(R2, reason = \"tested upstream\")\n    // lint:allow(R1, R3, reason = \"pool growth, warm-up only\")\n    other();\n}\n",
        );
        assert_eq!(s.allows.len(), 2);
        assert_eq!(s.allows[0].rules, ["R2"]);
        assert_eq!(s.allows[0].applies_line, 2);
        assert_eq!(s.allows[0].reason.as_deref(), Some("tested upstream"));
        assert_eq!(s.allows[1].rules, ["R1", "R3"]);
        assert_eq!(s.allows[1].applies_line, 4);
        assert_eq!(
            s.allows[1].reason.as_deref(),
            Some("pool growth, warm-up only")
        );
    }

    #[test]
    fn allow_reason_may_contain_commas() {
        let s = scan("bad(); // lint:allow(R3, reason = \"poison, not input\")\n");
        assert_eq!(s.allows[0].reason.as_deref(), Some("poison, not input"));
        assert_eq!(s.allows[0].rules, ["R3"]);
    }

    #[test]
    fn allow_without_reason_is_recorded_reasonless() {
        let s = scan("bad(); // lint:allow(R2)\n");
        assert_eq!(s.allows[0].rules, ["R2"]);
        assert!(s.allows[0].reason.is_none());
    }
}
