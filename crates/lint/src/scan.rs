//! Per-file structure recovery: function items (name + signature/body
//! token ranges + enclosing `impl` type), `use` imports, lock-typed
//! struct fields, cross-thread atomic flags, test-code regions, and
//! `lint:allow` suppression directives.
//!
//! This is an approximation, not a parser: it tracks brace depth and a
//! few keyword/attribute patterns, which is enough to attribute every
//! token to the innermost enclosing `fn` and to know whether that code
//! is `#[cfg(test)]`-gated. It degrades safely — unrecognized syntax
//! just means a token belongs to no function, never a crash.

use crate::tokenizer::{Tok, TokKind};

/// One `fn` item recovered from a file.
#[derive(Debug)]
pub struct FnItem {
    /// The function's bare name (`forward_ws`, not the impl path).
    pub name: String,
    /// Code-token index range of the signature: the `fn` keyword up to
    /// (excluding) the body's `{`. Rules scan this for guard-returning
    /// types.
    pub sig: std::ops::Range<usize>,
    /// Code-token index range of the body, *inside* the braces.
    pub body: std::ops::Range<usize>,
    /// Where the `fn` keyword sits.
    pub line: u32,
    /// Inside a `#[cfg(test)]` module or under `#[test]`.
    pub in_test_code: bool,
    /// The `impl`/`trait` block's type name, when the fn is a method
    /// (`impl ResultStore { fn lock(…) }` → `Some("ResultStore")`).
    pub self_type: Option<String>,
}

/// One name bound by a `use` declaration, fully expanded: the group
/// `use scenarios::{store::ResultStore, runner as r};` yields two
/// imports with `local` = `ResultStore` / `r`.
#[derive(Debug)]
pub struct UseImport {
    /// The name visible in this file (`*` for glob imports).
    pub local: String,
    /// Full path segments, first segment included (`["scenarios",
    /// "store", "ResultStore"]`).
    pub path: Vec<String>,
}

/// Lock primitive behind a struct field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockKind {
    Mutex,
    RwLock,
}

/// A struct field whose type mentions `Mutex` or `RwLock` — the lock
/// identities R5's order graph is built over.
#[derive(Debug)]
pub struct LockField {
    /// Struct the field belongs to.
    pub owner: String,
    pub name: String,
    pub kind: LockKind,
    pub line: u32,
}

/// An `AtomicBool` declaration (struct field or `static`) — the
/// cross-thread flags R6 requires ordering documentation for.
#[derive(Debug)]
pub struct AtomicFlag {
    pub name: String,
    pub line: u32,
    pub in_test: bool,
}

/// A parsed `// lint:allow(R1, R2, reason = "…")` directive.
#[derive(Debug)]
pub struct Allow {
    /// Rule IDs this directive suppresses (`R1`…`R7`).
    pub rules: Vec<String>,
    /// The mandatory human-written justification.
    pub reason: Option<String>,
    /// Line the comment sits on.
    pub line: u32,
    /// Line the directive covers: its own line if code shares it,
    /// otherwise the next line holding code.
    pub applies_line: u32,
}

/// Everything the rules need to know about one file.
pub struct FileScan {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// Code tokens only (comments stripped), in source order.
    pub code: Vec<Tok>,
    /// Comment tokens, in source order — R6 checks declaration sites
    /// for ordering documentation.
    pub comments: Vec<Tok>,
    pub fns: Vec<FnItem>,
    pub allows: Vec<Allow>,
    pub uses: Vec<UseImport>,
    pub lock_fields: Vec<LockField>,
    pub atomic_flags: Vec<AtomicFlag>,
}

/// Keywords that look like calls when followed by `(`.
pub fn is_keyword(name: &str) -> bool {
    matches!(
        name,
        "if" | "else"
            | "match"
            | "while"
            | "for"
            | "loop"
            | "return"
            | "break"
            | "continue"
            | "in"
            | "as"
            | "move"
            | "ref"
            | "mut"
            | "let"
            | "fn"
            | "pub"
            | "impl"
            | "trait"
            | "struct"
            | "enum"
            | "mod"
            | "use"
            | "where"
            | "unsafe"
            | "async"
            | "await"
            | "dyn"
            | "self"
            | "Self"
            | "super"
            | "crate"
            | "true"
            | "false"
            | "const"
            | "static"
            | "type"
    )
}

/// Scans one tokenized file. `force_test` marks the whole file as test
/// code (integration-test trees, fixtures).
pub fn scan_file(path: String, toks: Vec<Tok>, force_test: bool) -> FileScan {
    let mut code: Vec<Tok> = Vec::with_capacity(toks.len());
    let mut comments: Vec<Tok> = Vec::new();
    for t in toks {
        match t.kind {
            TokKind::LineComment | TokKind::BlockComment => comments.push(t),
            _ => code.push(t),
        }
    }
    let allows = parse_allows(&comments, &code);
    let items = scan_items(&code, force_test);
    FileScan {
        path,
        code,
        comments,
        fns: items.fns,
        allows,
        uses: items.uses,
        lock_fields: items.lock_fields,
        atomic_flags: items.atomic_flags,
    }
}

/// Tracks an open function body on the scan stack.
struct OpenFn {
    fn_index: usize,
    depth_at_open: u32,
}

/// Tracks an open `#[cfg(test)]` module.
struct OpenTestMod {
    depth_at_open: u32,
}

/// Tracks an open `impl`/`trait` block and its self type.
struct OpenImpl {
    self_type: String,
    depth_at_open: u32,
}

#[derive(Default)]
struct Items {
    fns: Vec<FnItem>,
    uses: Vec<UseImport>,
    lock_fields: Vec<LockField>,
    atomic_flags: Vec<AtomicFlag>,
}

fn scan_items(code: &[Tok], force_test: bool) -> Items {
    let mut items = Items::default();
    let mut open_fns: Vec<OpenFn> = Vec::new();
    let mut open_test_mods: Vec<OpenTestMod> = Vec::new();
    let mut open_impls: Vec<OpenImpl> = Vec::new();
    let mut depth: u32 = 0;
    // Set by `#[cfg(test)]` / `#[test]`, consumed by the next `fn`/`mod`.
    let mut pending_test_attr = false;
    // Set after `fn name …`, consumed by the body's `{` (or dropped at
    // `;` for trait method declarations). Carries the `fn` token index.
    let mut pending_fn: Option<(String, u32, bool, usize)> = None;
    // Set after `mod name`, consumed by `{` or `;`.
    let mut pending_mod_test: Option<bool> = None;
    // Set after `impl`/`trait` headers, consumed by `{` or `;`.
    let mut pending_impl: Option<String> = None;
    // Set after `struct name`, consumed by `{` (fields parsed) or `;`.
    let mut pending_struct: Option<String> = None;
    // Inside the parenthesized part of a pending signature.
    let mut paren_depth: u32 = 0;

    let mut i = 0;
    while i < code.len() {
        let t = &code[i];
        match t.kind {
            TokKind::Punct => match t.text.as_str() {
                "(" => paren_depth += 1,
                ")" => paren_depth = paren_depth.saturating_sub(1),
                "{" => {
                    depth += 1;
                    if paren_depth == 0 {
                        if let Some((name, line, is_test, sig_start)) = pending_fn.take() {
                            pending_impl = None; // `-> impl Trait` return types
                            items.fns.push(FnItem {
                                name,
                                sig: sig_start..i,
                                body: i + 1..i + 1, // end patched on close
                                line,
                                in_test_code: is_test,
                                self_type: open_impls.last().map(|o| o.self_type.clone()),
                            });
                            open_fns.push(OpenFn {
                                fn_index: items.fns.len() - 1,
                                depth_at_open: depth,
                            });
                        } else if let Some(is_test) = pending_mod_test.take() {
                            if is_test {
                                open_test_mods.push(OpenTestMod {
                                    depth_at_open: depth,
                                });
                            }
                        } else if let Some(self_type) = pending_impl.take() {
                            open_impls.push(OpenImpl {
                                self_type,
                                depth_at_open: depth,
                            });
                        } else if let Some(owner) = pending_struct.take() {
                            let in_test = force_test || !open_test_mods.is_empty();
                            scan_struct_fields(code, i, &owner, in_test, &mut items);
                        }
                    }
                }
                "}" => {
                    while let Some(open) = open_fns.last() {
                        if open.depth_at_open == depth {
                            items.fns[open.fn_index].body.end = i;
                            open_fns.pop();
                        } else {
                            break;
                        }
                    }
                    while let Some(open) = open_test_mods.last() {
                        if open.depth_at_open == depth {
                            open_test_mods.pop();
                        } else {
                            break;
                        }
                    }
                    while let Some(open) = open_impls.last() {
                        if open.depth_at_open == depth {
                            open_impls.pop();
                        } else {
                            break;
                        }
                    }
                    depth = depth.saturating_sub(1);
                }
                ";" if paren_depth == 0 => {
                    pending_fn = None;
                    pending_mod_test = None;
                    pending_impl = None;
                    pending_struct = None;
                }
                // Attribute: `#[…]`. Recognize `test` / `cfg(test)`
                // anywhere inside the brackets; skip the group so its
                // contents never look like items.
                "#" if code.get(i + 1).is_some_and(|n| n.is_punct('[')) => {
                    let mut j = i + 2;
                    let mut bracket = 1u32;
                    let mut saw_test = false;
                    while j < code.len() && bracket > 0 {
                        let a = &code[j];
                        if a.is_punct('[') {
                            bracket += 1;
                        } else if a.is_punct(']') {
                            bracket -= 1;
                        } else if a.is_ident("test") {
                            saw_test = true;
                        }
                        j += 1;
                    }
                    if saw_test {
                        pending_test_attr = true;
                    }
                    i = j;
                    continue;
                }
                _ => {}
            },
            TokKind::Ident => match t.text.as_str() {
                "fn" => {
                    if let Some(name) = code.get(i + 1).filter(|n| n.kind == TokKind::Ident) {
                        let in_test = force_test || pending_test_attr || !open_test_mods.is_empty();
                        pending_fn = Some((name.text.clone(), t.line, in_test, i));
                        pending_test_attr = false;
                        i += 2;
                        continue;
                    }
                }
                "mod" if code.get(i + 1).is_some_and(|n| n.kind == TokKind::Ident) => {
                    pending_mod_test = Some(pending_test_attr || !open_test_mods.is_empty());
                    pending_test_attr = false;
                    i += 2;
                    continue;
                }
                // `impl Type {` / `impl Trait for Type {` / `trait T {`
                // headers (not `-> impl Trait` return types, which sit
                // under a pending fn, nor `arg: impl Fn()` in parens).
                "impl" | "trait" if paren_depth == 0 && pending_fn.is_none() => {
                    pending_test_attr = false;
                    pending_impl = impl_self_type(code, i + 1);
                }
                "struct" if code.get(i + 1).is_some_and(|n| n.kind == TokKind::Ident) => {
                    pending_test_attr = false;
                    pending_struct = Some(code[i + 1].text.clone());
                    i += 2;
                    continue;
                }
                "use" if paren_depth == 0 => {
                    pending_test_attr = false;
                    // Parse the whole declaration, then skip past its
                    // `;` so group braces never disturb depth tracking.
                    let mut j = i + 1;
                    let mut base = Vec::new();
                    parse_use_tree(code, &mut j, &mut base, &mut items.uses);
                    while j < code.len() && !code[j].is_punct(';') {
                        j += 1;
                    }
                    i = j + 1;
                    continue;
                }
                "static" => {
                    pending_test_attr = false;
                    scan_static_flag(
                        code,
                        i,
                        force_test || !open_test_mods.is_empty(),
                        &mut items,
                    );
                }
                "enum" | "const" | "type" => {
                    // Any other item consumes a stray test attribute so
                    // `#[cfg(test)] enum Fixture` doesn't leak onto the
                    // next fn.
                    pending_test_attr = false;
                }
                _ => {}
            },
            _ => {}
        }
        i += 1;
    }
    // Unclosed bodies (torn input) extend to end-of-file.
    for open in open_fns {
        items.fns[open.fn_index].body.end = code.len();
    }
    items
}

/// Extracts the self type from an `impl`/`trait` header: the last path
/// ident outside generics, after `for` when present. `j` points just
/// past the keyword.
fn impl_self_type(code: &[Tok], mut j: usize) -> Option<String> {
    let mut angle: i32 = 0;
    let mut last: Option<String> = None;
    while j < code.len() {
        let t = &code[j];
        match t.kind {
            TokKind::Punct => match t.text.as_str() {
                "<" => angle += 1,
                ">" => angle -= 1,
                "{" | ";" if angle <= 0 => break,
                // Path separator `::` is two colons; a lone colon at
                // angle 0 is a supertrait bound — stop before it.
                ":" if angle == 0 => {
                    if code.get(j + 1).is_some_and(|n| n.is_punct(':')) {
                        j += 2;
                        continue;
                    }
                    break;
                }
                _ => {}
            },
            TokKind::Ident if angle == 0 => match t.text.as_str() {
                "for" => last = None,
                "where" => break,
                "dyn" | "mut" | "const" => {}
                name if !is_keyword(name) => last = Some(name.to_string()),
                _ => {}
            },
            _ => {}
        }
        j += 1;
    }
    last
}

/// Recursive-descent over one `use` tree. `base` carries the path
/// prefix; every leaf appends a [`UseImport`].
fn parse_use_tree(code: &[Tok], j: &mut usize, base: &mut Vec<String>, out: &mut Vec<UseImport>) {
    let depth_here = base.len();
    loop {
        let Some(t) = code.get(*j) else { return };
        match (&t.kind, t.text.as_str()) {
            (TokKind::Ident, "pub") => *j += 1,
            (TokKind::Ident, seg) => {
                base.push(seg.to_string());
                *j += 1;
                // `::` continues the path; `as local` renames the leaf.
                if code.get(*j).is_some_and(|n| n.is_punct(':'))
                    && code.get(*j + 1).is_some_and(|n| n.is_punct(':'))
                {
                    *j += 2;
                    continue;
                }
                let local = if code.get(*j).is_some_and(|n| n.is_ident("as")) {
                    let name = code.get(*j + 1).map(|n| n.text.clone());
                    *j += 2;
                    name
                } else {
                    None
                };
                // `use a::b::{self, c}` — `self` rebinds the parent.
                let leaf = base.last().cloned().unwrap_or_default();
                let leaf = if leaf == "self" {
                    base.pop();
                    base.last().cloned().unwrap_or_default()
                } else {
                    leaf
                };
                out.push(UseImport {
                    local: local.unwrap_or(leaf),
                    path: base.clone(),
                });
                base.truncate(depth_here);
                return;
            }
            (TokKind::Punct, "{") => {
                *j += 1;
                loop {
                    parse_use_tree(code, j, base, out);
                    match code.get(*j).map(|n| n.text.as_str()) {
                        Some(",") => *j += 1,
                        Some("}") => {
                            *j += 1;
                            break;
                        }
                        _ => return,
                    }
                }
                base.truncate(depth_here);
                return;
            }
            (TokKind::Punct, "*") => {
                *j += 1;
                out.push(UseImport {
                    local: "*".into(),
                    path: base.clone(),
                });
                base.truncate(depth_here);
                return;
            }
            _ => return,
        }
    }
}

/// Walks one struct body (cursor on its `{`) recording `Mutex`/`RwLock`
/// and `AtomicBool` fields. The main scan re-visits the same tokens; a
/// second pass here is simpler than threading field state through it.
fn scan_struct_fields(code: &[Tok], open: usize, owner: &str, in_test: bool, items: &mut Items) {
    let mut brace = 1u32;
    let mut paren = 0u32;
    let mut j = open + 1;
    while j < code.len() && brace > 0 {
        let t = &code[j];
        if t.is_punct('{') {
            brace += 1;
        } else if t.is_punct('}') {
            brace -= 1;
        } else if t.is_punct('(') {
            paren += 1;
        } else if t.is_punct(')') {
            paren = paren.saturating_sub(1);
        } else if brace == 1
            && paren == 0
            && t.kind == TokKind::Ident
            && !is_keyword(&t.text)
            && code.get(j + 1).is_some_and(|n| n.is_punct(':'))
            && !code.get(j + 2).is_some_and(|n| n.is_punct(':'))
        {
            // `name: Type…` — scan the type up to the field separator.
            let (name, line) = (t.text.clone(), t.line);
            let mut k = j + 2;
            let mut angle_or_group = 0u32;
            let mut kind: Option<LockKind> = None;
            let mut atomic = false;
            while k < code.len() {
                let a = &code[k];
                if a.is_punct('<') || a.is_punct('(') || a.is_punct('[') {
                    angle_or_group += 1;
                } else if a.is_punct('>') || a.is_punct(')') || a.is_punct(']') {
                    angle_or_group = angle_or_group.saturating_sub(1);
                } else if a.is_punct(',') && angle_or_group == 0 || a.is_punct('}') {
                    break;
                } else if a.is_ident("Mutex") {
                    kind = Some(LockKind::Mutex);
                } else if a.is_ident("RwLock") {
                    kind = Some(LockKind::RwLock);
                } else if a.is_ident("AtomicBool") {
                    atomic = true;
                }
                k += 1;
            }
            if let Some(kind) = kind {
                if !in_test {
                    items.lock_fields.push(LockField {
                        owner: owner.to_string(),
                        name: name.clone(),
                        kind,
                        line,
                    });
                }
            }
            if atomic && !in_test {
                items.atomic_flags.push(AtomicFlag {
                    name,
                    line,
                    in_test,
                });
            }
            j = k;
            continue;
        }
        j += 1;
    }
}

/// Records `static NAME: …AtomicBool…` declarations (cursor on the
/// `static` keyword).
fn scan_static_flag(code: &[Tok], at: usize, in_test: bool, items: &mut Items) {
    let mut j = at + 1;
    if code.get(j).is_some_and(|n| n.is_ident("mut")) {
        j += 1;
    }
    let Some(name_tok) = code.get(j).filter(|n| n.kind == TokKind::Ident) else {
        return;
    };
    if !code.get(j + 1).is_some_and(|n| n.is_punct(':')) {
        return;
    }
    let mut k = j + 2;
    while k < code.len() {
        let a = &code[k];
        if a.is_punct('=') || a.is_punct(';') {
            break;
        }
        if a.is_ident("AtomicBool") {
            if !in_test {
                items.atomic_flags.push(AtomicFlag {
                    name: name_tok.text.clone(),
                    line: name_tok.line,
                    in_test,
                });
            }
            break;
        }
        k += 1;
    }
}

/// Extracts `lint:allow(...)` directives from comment tokens.
///
/// A directive on the same line as code covers that line; a directive on
/// its own line covers the next line that holds code (so long findings
/// lines survive rustfmt).
fn parse_allows(comments: &[Tok], code: &[Tok]) -> Vec<Allow> {
    let mut allows = Vec::new();
    for c in comments {
        // A directive is the whole comment: `// lint:allow(…)`. Prose
        // that merely *mentions* lint:allow (docs, this linter's own
        // source) is not a directive.
        let Some(body) = c.text.trim_start().strip_prefix("lint:allow(") else {
            continue;
        };
        // Last `)` so a reason like "bounded (checked above)" survives.
        let Some(end) = body.rfind(')') else {
            // Malformed: surfaces as a reason-less allow, which the
            // rules report.
            allows.push(Allow {
                rules: Vec::new(),
                reason: None,
                line: c.line,
                applies_line: c.line,
            });
            continue;
        };
        let inner = &body[..end];
        // Rules come before `reason = "…"`; the reason is the quoted
        // string (commas inside it are part of the reason, so split the
        // two zones before splitting rules on commas).
        let (rules_part, reason_part) = match inner.find("reason") {
            Some(pos) => (&inner[..pos], Some(&inner[pos..])),
            None => (inner, None),
        };
        let rules: Vec<String> = rules_part
            .split(',')
            .map(str::trim)
            .filter(|p| !p.is_empty())
            .map(str::to_string)
            .collect();
        let reason = reason_part.and_then(|tail| {
            let q0 = tail.find('"')?;
            let q1 = tail[q0 + 1..].find('"')?;
            let full = &tail[q0 + 1..q0 + 1 + q1];
            (!full.is_empty()).then(|| full.to_string())
        });
        let same_line_code = code.iter().any(|t| t.line == c.line);
        let applies_line = if same_line_code {
            c.line
        } else {
            code.iter()
                .map(|t| t.line)
                .filter(|&l| l > c.line)
                .min()
                .unwrap_or(c.line)
        };
        allows.push(Allow {
            rules,
            reason,
            line: c.line,
            applies_line,
        });
    }
    allows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenizer::tokenize;

    fn scan(src: &str) -> FileScan {
        scan_file("test.rs".into(), tokenize(src), false)
    }

    #[test]
    fn recovers_fn_names_and_bodies() {
        let s = scan("fn alpha() { beta(); }\nfn beta() -> usize { 1 }\n");
        let names: Vec<_> = s.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["alpha", "beta"]);
        let alpha = &s.fns[0];
        let body: Vec<_> = s.code[alpha.body.clone()]
            .iter()
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(body, ["beta", "(", ")", ";"]);
    }

    #[test]
    fn nested_fn_bodies_both_recorded() {
        let s = scan("fn outer() { fn inner() { x(); } inner(); }");
        assert_eq!(s.fns.len(), 2);
        let outer = s.fns.iter().find(|f| f.name == "outer").unwrap();
        let inner = s.fns.iter().find(|f| f.name == "inner").unwrap();
        assert!(outer.body.start < inner.body.start && inner.body.end < outer.body.end);
    }

    #[test]
    fn cfg_test_mod_marks_fns_as_test_code() {
        let s = scan(
            "fn prod() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn check() {}\n    fn helper() {}\n}\nfn prod2() {}\n",
        );
        let by_name = |n: &str| s.fns.iter().find(|f| f.name == n).unwrap();
        assert!(!by_name("prod").in_test_code);
        assert!(by_name("check").in_test_code);
        assert!(by_name("helper").in_test_code);
        assert!(!by_name("prod2").in_test_code);
    }

    #[test]
    fn trait_method_declaration_has_no_body() {
        let s = scan("trait T { fn decl(&self) -> usize; fn with_default(&self) { x(); } }");
        let names: Vec<_> = s.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["with_default"]);
        assert_eq!(s.fns[0].self_type.as_deref(), Some("T"));
    }

    #[test]
    fn methods_carry_their_impl_self_type() {
        let s = scan(
            "impl ResultStore {\n    fn lock(&self) {}\n}\nimpl std::fmt::Display for Finding {\n    fn fmt(&self) {}\n}\nimpl<'a> Shard<'a> {\n    fn run(&self) {}\n}\nfn free() {}\n",
        );
        let ty = |n: &str| {
            s.fns
                .iter()
                .find(|f| f.name == n)
                .unwrap()
                .self_type
                .as_deref()
                .map(str::to_string)
        };
        assert_eq!(ty("lock").as_deref(), Some("ResultStore"));
        assert_eq!(ty("fmt").as_deref(), Some("Finding"));
        assert_eq!(ty("run").as_deref(), Some("Shard"));
        assert_eq!(ty("free"), None);
    }

    #[test]
    fn return_position_impl_trait_is_not_an_impl_block() {
        let s = scan("fn make() -> impl Iterator<Item = u32> {\n    it()\n}\nfn after() {}\n");
        assert_eq!(s.fns.len(), 2);
        assert_eq!(s.fns[0].self_type, None);
        assert_eq!(s.fns[1].self_type, None);
    }

    #[test]
    fn use_imports_expand_groups_renames_and_globs() {
        let s = scan(
            "use scenarios::store::ResultStore;\nuse tensor::{gemm_into, ops::relu as act};\nuse serde::*;\nuse crate::runner::{self, Outcome};\n",
        );
        let find = |local: &str| s.uses.iter().find(|u| u.local == local).map(|u| &u.path);
        assert_eq!(
            find("ResultStore").unwrap(),
            &["scenarios", "store", "ResultStore"]
        );
        assert_eq!(find("gemm_into").unwrap(), &["tensor", "gemm_into"]);
        assert_eq!(find("act").unwrap(), &["tensor", "ops", "relu"]);
        assert_eq!(find("*").unwrap(), &["serde"]);
        assert_eq!(find("runner").unwrap(), &["crate", "runner"]);
        assert_eq!(find("Outcome").unwrap(), &["crate", "runner", "Outcome"]);
    }

    #[test]
    fn lock_fields_and_atomic_flags_are_indexed() {
        let s = scan(
            "pub struct Shared {\n    pub cache: Mutex<HashMap<K, V>>,\n    index: std::sync::RwLock<Vec<u32>>,\n    shutdown: AtomicBool,\n    count: usize,\n}\nstatic TRACE_ACTIVE: AtomicBool = AtomicBool::new(false);\n",
        );
        let locks: Vec<_> = s
            .lock_fields
            .iter()
            .map(|l| (l.owner.as_str(), l.name.as_str(), l.kind))
            .collect();
        assert_eq!(
            locks,
            [
                ("Shared", "cache", LockKind::Mutex),
                ("Shared", "index", LockKind::RwLock)
            ]
        );
        let flags: Vec<_> = s.atomic_flags.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(flags, ["shutdown", "TRACE_ACTIVE"]);
    }

    #[test]
    fn fn_signature_range_covers_return_type() {
        let s = scan("fn lock_state(s: &Shared) -> MutexGuard<'_, State> { body() }");
        let f = &s.fns[0];
        let sig: Vec<_> = s.code[f.sig.clone()]
            .iter()
            .map(|t| t.text.as_str())
            .collect();
        assert!(sig.contains(&"MutexGuard"), "{sig:?}");
        assert!(!sig.contains(&"body"), "{sig:?}");
    }

    #[test]
    fn allow_on_same_line_and_standalone() {
        let s = scan(
            "fn f() {\n    bad(); // lint:allow(R2, reason = \"tested upstream\")\n    // lint:allow(R1, R3, reason = \"pool growth, warm-up only\")\n    other();\n}\n",
        );
        assert_eq!(s.allows.len(), 2);
        assert_eq!(s.allows[0].rules, ["R2"]);
        assert_eq!(s.allows[0].applies_line, 2);
        assert_eq!(s.allows[0].reason.as_deref(), Some("tested upstream"));
        assert_eq!(s.allows[1].rules, ["R1", "R3"]);
        assert_eq!(s.allows[1].applies_line, 4);
        assert_eq!(
            s.allows[1].reason.as_deref(),
            Some("pool growth, warm-up only")
        );
    }

    #[test]
    fn allow_reason_may_contain_commas() {
        let s = scan("bad(); // lint:allow(R3, reason = \"poison, not input\")\n");
        assert_eq!(s.allows[0].reason.as_deref(), Some("poison, not input"));
        assert_eq!(s.allows[0].rules, ["R3"]);
    }

    #[test]
    fn allow_without_reason_is_recorded_reasonless() {
        let s = scan("bad(); // lint:allow(R2)\n");
        assert_eq!(s.allows[0].rules, ["R2"]);
        assert!(s.allows[0].reason.is_none());
    }
}
