//! Workspace-wide call-graph approximation.
//!
//! PR 8's graph followed bare `name(` calls inside one crate only. This
//! module resolves the call forms that graph dropped — `self.method(…)`
//! via the enclosing `impl` block, `Type::assoc(…)` via a workspace
//! type→method index, `path::fn(…)` via crate names and `use` imports —
//! and makes every edge cross-crate (workspace modules only; `vendor/`
//! never enters the file set).
//!
//! Resolution is name-based, not type-checked, so it over-approximates:
//! a method name defined on two workspace types resolves to both in
//! precise mode and to neither in lenient mode. That bias is deliberate
//! — R1 wants every plausible callee, R5's lock summaries want only
//! confident ones.

use std::collections::{HashMap, HashSet};

use crate::scan::{is_keyword, FileScan};
use crate::tokenizer::TokKind;

/// A function definition site: (file index, fn index).
pub type FnRef = (usize, usize);

/// One call site recovered from a function body.
#[derive(Debug)]
pub enum CallSite {
    /// `name(…)` — free fn in the same crate, or `use`-imported.
    Bare { name: String },
    /// `self.name(…)` — method on the enclosing impl type.
    SelfMethod { name: String },
    /// `seg::…::name(…)` — associated fn (uppercase head) or a module
    /// path rooted at a crate name, alias, or import.
    Qualified { path: Vec<String>, name: String },
    /// `recv.name(…)` on an arbitrary receiver — resolved only in
    /// lenient mode, when the name is distinctive, workspace-unique,
    /// and the argument count matches the candidate's parameter list
    /// (which keeps `OpenOptions::append(true)` away from
    /// `ResultStore::append(campaign, outcome)`).
    Method { name: String, args: usize },
}

/// A call site plus the token index of its name (for diagnostics and
/// for R5's guard-extent analysis).
#[derive(Debug)]
pub struct Call {
    pub site: CallSite,
    pub tok: usize,
}

/// Method names too generic to trust in lenient resolution: std
/// containers define them all, so a same-named workspace method being
/// unique proves nothing about the receiver.
const GENERIC_METHOD_NAMES: [&str; 20] = [
    "get", "insert", "remove", "len", "is_empty", "push", "pop", "clone", "next", "iter",
    "contains", "new", "drain", "clear", "take", "set", "send", "recv", "join", "flush",
];

/// Counts a call's arguments: commas at group depth 1 between the
/// opening paren after `name_tok` and its close. Commas inside nested
/// groups don't count; bare multi-param closure headers (`|a, b|`) do,
/// overcounting — which only disables lenient resolution, never
/// misdirects it.
fn call_arg_count(code: &[crate::tokenizer::Tok], name_tok: usize) -> usize {
    let mut depth = 0u32;
    let mut args = 0usize;
    let mut seg_tokens = 0usize;
    let mut j = name_tok + 1;
    while j < code.len() {
        let a = &code[j];
        if a.is_punct('(') || a.is_punct('[') || a.is_punct('{') {
            if depth > 0 {
                seg_tokens += 1;
            }
            depth += 1;
        } else if a.is_punct(')') || a.is_punct(']') || a.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                break;
            }
            seg_tokens += 1;
        } else if a.is_punct(',') && depth == 1 {
            args += 1;
            seg_tokens = 0;
        } else {
            seg_tokens += 1;
        }
        j += 1;
    }
    if seg_tokens > 0 {
        args += 1;
    }
    args
}

/// The crate a file belongs to: `crates/<name>/…` → `<name>`,
/// everything else → the root package.
pub fn crate_of(path: &str) -> &str {
    path.strip_prefix("crates/")
        .and_then(|rest| rest.split('/').next())
        .unwrap_or("root")
}

/// The workspace call graph: definition indexes over every scanned
/// file, plus per-file import maps.
pub struct Graph<'a> {
    files: &'a [FileScan],
    /// Crate dirs present in the file set.
    crates: HashSet<String>,
    /// Package-name → crate-dir aliases (`bayesft` → `core`).
    aliases: HashMap<String, String>,
    /// crate dir → fn name → definition sites.
    fn_by_crate: HashMap<String, HashMap<String, Vec<FnRef>>>,
    /// (self type, method name) → definition sites, workspace-wide.
    type_methods: HashMap<(String, String), Vec<FnRef>>,
    /// method name → definition sites (methods only).
    method_defs: HashMap<String, Vec<FnRef>>,
    /// method name → distinct self types defining it.
    method_types: HashMap<String, HashSet<String>>,
}

impl<'a> Graph<'a> {
    pub fn build(files: &'a [FileScan], aliases: &[(String, String)]) -> Self {
        let mut g = Graph {
            files,
            crates: HashSet::new(),
            aliases: aliases.iter().cloned().collect(),
            fn_by_crate: HashMap::new(),
            type_methods: HashMap::new(),
            method_defs: HashMap::new(),
            method_types: HashMap::new(),
        };
        for (fi, file) in files.iter().enumerate() {
            let krate = crate_of(&file.path).to_string();
            g.crates.insert(krate.clone());
            let by_name = g.fn_by_crate.entry(krate).or_default();
            for (ni, f) in file.fns.iter().enumerate() {
                by_name.entry(f.name.clone()).or_default().push((fi, ni));
                if let Some(ty) = &f.self_type {
                    g.type_methods
                        .entry((ty.clone(), f.name.clone()))
                        .or_default()
                        .push((fi, ni));
                    g.method_defs
                        .entry(f.name.clone())
                        .or_default()
                        .push((fi, ni));
                    g.method_types
                        .entry(f.name.clone())
                        .or_default()
                        .insert(ty.clone());
                }
            }
        }
        g
    }

    pub fn files(&self) -> &'a [FileScan] {
        self.files
    }

    /// Extracts every call site in a token range. Macros (`name!`) are
    /// not calls; keywords and turbofish tails are skipped.
    pub fn calls_in(&self, fi: usize, body: std::ops::Range<usize>) -> Vec<Call> {
        let code = &self.files[fi].code;
        let mut out = Vec::new();
        for i in body {
            let t = &code[i];
            if t.kind != TokKind::Ident || is_keyword(&t.text) {
                continue;
            }
            if !code.get(i + 1).is_some_and(|n| n.is_punct('(')) {
                continue;
            }
            if i > 0 && code[i - 1].is_punct('.') {
                let site = if i >= 2 && code[i - 2].is_ident("self") {
                    CallSite::SelfMethod {
                        name: t.text.clone(),
                    }
                } else {
                    CallSite::Method {
                        name: t.text.clone(),
                        args: call_arg_count(code, i),
                    }
                };
                out.push(Call { site, tok: i });
                continue;
            }
            if i >= 3 && code[i - 1].is_punct(':') && code[i - 2].is_punct(':') {
                let mut segs: Vec<String> = Vec::new();
                let mut k = i;
                while k >= 3
                    && code[k - 1].is_punct(':')
                    && code[k - 2].is_punct(':')
                    && code[k - 3].kind == TokKind::Ident
                {
                    segs.push(code[k - 3].text.clone());
                    k -= 3;
                }
                segs.reverse();
                if segs.is_empty() {
                    // `::name(` or a turbofish tail — treat as bare.
                    out.push(Call {
                        site: CallSite::Bare {
                            name: t.text.clone(),
                        },
                        tok: i,
                    });
                } else {
                    out.push(Call {
                        site: CallSite::Qualified {
                            path: segs,
                            name: t.text.clone(),
                        },
                        tok: i,
                    });
                }
                continue;
            }
            out.push(Call {
                site: CallSite::Bare {
                    name: t.text.clone(),
                },
                tok: i,
            });
        }
        out
    }

    /// Maps a path head segment to a crate dir, when it names one:
    /// `crate`/`self`/`super` → the caller's crate, a workspace package
    /// name or alias → its dir, an imported module → its crate.
    fn head_crate(&self, fi: usize, head: &str) -> Option<String> {
        if matches!(head, "crate" | "self" | "super") {
            return Some(crate_of(&self.files[fi].path).to_string());
        }
        let dir = self.aliases.get(head).map(String::as_str).unwrap_or(head);
        if self.crates.contains(dir) {
            return Some(dir.to_string());
        }
        // `use scenarios::store; … store::open(…)` — head is a local
        // module alias; chase one import hop.
        let import = self.files[fi].uses.iter().find(|u| u.local == head)?;
        let first = import.path.first()?;
        if first == head {
            return None; // no progress — avoid cycles
        }
        self.head_crate(fi, first)
    }

    /// Parameter count of a definition, `self` excluded. Counted over
    /// the signature tokens with bracket groups and generics skipped;
    /// pathological closure-typed params may undercount, which only
    /// makes lenient resolution skip (the safe direction).
    fn param_count(&self, (fi, ni): FnRef) -> usize {
        let f = &self.files[fi].fns[ni];
        let code = &self.files[fi].code;
        let mut group = 0u32;
        let mut angle = 0u32;
        let mut params = 0usize;
        let mut seg_tokens = 0usize;
        let mut seg_self = false;
        let mut started = false;
        for j in f.sig.clone() {
            let a = &code[j];
            if !started {
                if a.is_punct('(') {
                    started = true;
                    group = 1;
                }
                continue;
            }
            if a.is_punct('(') || a.is_punct('[') || a.is_punct('{') {
                group += 1;
                seg_tokens += 1;
            } else if a.is_punct(')') || a.is_punct(']') || a.is_punct('}') {
                group -= 1;
                if group == 0 {
                    break;
                }
                seg_tokens += 1;
            } else if a.is_punct('<') {
                angle += 1;
                seg_tokens += 1;
            } else if a.is_punct('>') {
                // Saturating: the `>` of a `->` in a closure-typed
                // param must not wedge the comma counter.
                angle = angle.saturating_sub(1);
                seg_tokens += 1;
            } else if a.is_punct(',') && group == 1 && angle == 0 {
                if seg_tokens > 0 && !seg_self {
                    params += 1;
                }
                seg_tokens = 0;
                seg_self = false;
            } else {
                if group == 1 && a.is_ident("self") {
                    seg_self = true;
                }
                seg_tokens += 1;
            }
        }
        if seg_tokens > 0 && !seg_self {
            params += 1;
        }
        params
    }

    fn crate_defs(&self, krate: &str, name: &str) -> &[FnRef] {
        self.fn_by_crate
            .get(krate)
            .and_then(|m| m.get(name))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Resolves a call site to its possible workspace definitions.
    /// `self_type` is the caller's enclosing impl type. In lenient mode
    /// (lock summaries), bare `recv.method(…)` calls resolve too, when
    /// the method name is distinctive and defined by exactly one type.
    pub fn resolve(
        &self,
        fi: usize,
        self_type: Option<&str>,
        site: &CallSite,
        lenient: bool,
    ) -> Vec<FnRef> {
        let mut out: Vec<FnRef> = Vec::new();
        match site {
            CallSite::Bare { name } => {
                let krate = crate_of(&self.files[fi].path);
                out.extend_from_slice(self.crate_defs(krate, name));
                for import in &self.files[fi].uses {
                    let matches_name = import.local == *name;
                    let is_glob = import.local == "*";
                    if !matches_name && !is_glob {
                        continue;
                    }
                    let Some(head) = import.path.first() else {
                        continue;
                    };
                    let Some(target) = self.head_crate(fi, head) else {
                        continue;
                    };
                    // Through `as` renames the definition keeps its
                    // original (path-leaf) name; globs import `name`.
                    let def_name = if is_glob {
                        name.as_str()
                    } else {
                        import.path.last().map(String::as_str).unwrap_or(name)
                    };
                    out.extend_from_slice(self.crate_defs(&target, def_name));
                }
            }
            CallSite::SelfMethod { name } => {
                if let Some(ty) = self_type {
                    if let Some(defs) = self.type_methods.get(&(ty.to_string(), name.clone())) {
                        out.extend_from_slice(defs);
                    }
                }
            }
            CallSite::Qualified { path, name } => {
                let last = path.last().map(String::as_str).unwrap_or_default();
                let is_type_head = last == "Self" || last.starts_with(char::is_uppercase);
                if is_type_head {
                    let ty = if last == "Self" {
                        self_type.unwrap_or(last)
                    } else {
                        last
                    };
                    if let Some(defs) = self.type_methods.get(&(ty.to_string(), name.clone())) {
                        out.extend_from_slice(defs);
                    }
                } else if let Some(target) = self.head_crate(fi, &path[0]) {
                    out.extend_from_slice(self.crate_defs(&target, name));
                }
            }
            CallSite::Method { name, args } => {
                if lenient
                    && !GENERIC_METHOD_NAMES.contains(&name.as_str())
                    && self.method_types.get(name).is_some_and(|t| t.len() == 1)
                {
                    if let Some(defs) = self.method_defs.get(name) {
                        out.extend(
                            defs.iter()
                                .copied()
                                .filter(|&d| self.param_count(d) == *args),
                        );
                    }
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::scan_file;
    use crate::tokenizer::tokenize;

    fn ws(sources: &[(&str, &str)]) -> Vec<FileScan> {
        sources
            .iter()
            .map(|(p, s)| scan_file(p.to_string(), tokenize(s), false))
            .collect()
    }

    fn names(files: &[FileScan], refs: &[FnRef]) -> Vec<String> {
        refs.iter()
            .map(|&(fi, ni)| format!("{}::{}", crate_of(&files[fi].path), files[fi].fns[ni].name))
            .collect()
    }

    #[test]
    fn self_method_resolves_through_impl_block() {
        let files = ws(&[(
            "crates/a/src/lib.rs",
            "struct Runner;\nimpl Runner {\n    fn exec(&self) { self.compute(); }\n    fn compute(&self) {}\n}\n",
        )]);
        let g = Graph::build(&files, &[]);
        let exec = &files[0].fns[0];
        let calls = g.calls_in(0, exec.body.clone());
        assert_eq!(calls.len(), 1);
        let defs = g.resolve(0, exec.self_type.as_deref(), &calls[0].site, false);
        assert_eq!(names(&files, &defs), ["a::compute"]);
    }

    #[test]
    fn cross_crate_bare_call_resolves_via_use_import() {
        let files = ws(&[
            (
                "crates/nn/src/layer.rs",
                "use tensor::gemm_into;\nfn forward_ws() { gemm_into(); }\n",
            ),
            ("crates/tensor/src/ops.rs", "pub fn gemm_into() {}\n"),
        ]);
        let g = Graph::build(&files, &[]);
        let calls = g.calls_in(0, files[0].fns[0].body.clone());
        let defs = g.resolve(0, None, &calls[0].site, false);
        assert_eq!(names(&files, &defs), ["tensor::gemm_into"]);
    }

    #[test]
    fn qualified_type_and_module_paths_resolve() {
        let files = ws(&[
            (
                "crates/serve/src/daemon.rs",
                "fn run() { telemetry::Timer::start(); scenarios::store::open(); crate::local(); }\nfn local() {}\n",
            ),
            (
                "crates/telemetry/src/lib.rs",
                "pub struct Timer;\nimpl Timer {\n    pub fn start() {}\n}\n",
            ),
            ("crates/scenarios/src/store.rs", "pub fn open() {}\n"),
        ]);
        let g = Graph::build(&files, &[]);
        let calls = g.calls_in(0, files[0].fns[0].body.clone());
        let all: Vec<String> = calls
            .iter()
            .flat_map(|c| names(&files, &g.resolve(0, None, &c.site, false)))
            .collect();
        assert!(all.contains(&"telemetry::start".to_string()), "{all:?}");
        assert!(all.contains(&"scenarios::open".to_string()), "{all:?}");
        assert!(all.contains(&"serve::local".to_string()), "{all:?}");
    }

    #[test]
    fn package_alias_maps_to_crate_dir() {
        let files = ws(&[
            (
                "tests/zero_alloc.rs",
                "use bayesft::engine::fit;\nfn drive() { fit(); }\n",
            ),
            ("crates/core/src/engine.rs", "pub fn fit() {}\n"),
        ]);
        let g = Graph::build(&files, &[("bayesft".into(), "core".into())]);
        let calls = g.calls_in(0, files[0].fns[0].body.clone());
        let defs = g.resolve(0, None, &calls[0].site, false);
        assert_eq!(names(&files, &defs), ["core::fit"]);
    }

    #[test]
    fn lenient_method_resolution_requires_unique_distinctive_name() {
        let files = ws(&[(
            "crates/scenarios/src/runner.rs",
            "struct St;\nimpl St {\n    fn flush_prefix(&self) {}\n    fn get(&self) {}\n}\nfn go(st: &St) { st.flush_prefix(); st.get(); }\n",
        )]);
        let g = Graph::build(&files, &[]);
        let go = files[0].fns.iter().position(|f| f.name == "go").unwrap();
        let calls = g.calls_in(0, files[0].fns[go].body.clone());
        let strict: Vec<_> = calls
            .iter()
            .flat_map(|c| g.resolve(0, None, &c.site, false))
            .collect();
        assert!(strict.is_empty(), "{strict:?}");
        let lenient: Vec<String> = calls
            .iter()
            .flat_map(|c| names(&files, &g.resolve(0, None, &c.site, true)))
            .collect();
        // `flush_prefix` is distinctive and unique; `get` is generic.
        assert_eq!(lenient, ["scenarios::flush_prefix"]);
    }

    #[test]
    fn macros_are_not_calls() {
        let files = ws(&[(
            "crates/a/src/lib.rs",
            "fn hot_into() { format!(\"x\"); vec![1]; real(); }\nfn real() {}\n",
        )]);
        let g = Graph::build(&files, &[]);
        let calls = g.calls_in(0, files[0].fns[0].body.clone());
        assert_eq!(calls.len(), 1);
        assert!(matches!(&calls[0].site, CallSite::Bare { name } if name == "real"));
    }
}
