//! Asserts the Monte-Carlo steady state is allocation-free: once the
//! workspace is warm, an `inject_from → forward_ws → recycle` trial
//! performs **zero** heap allocations.
//!
//! This file holds a single test on purpose: it installs a counting
//! global allocator, and a lone test keeps the measured window free of
//! concurrent harness activity.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use nn::{Dense, Layer, Mode, Relu, Sequential, Workspace};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use reram::{monte_carlo, FaultInjector, LogNormalDrift};
use tensor::Tensor;

struct CountingAllocator;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocs() -> (u64, u64) {
    (ALLOCS.load(Ordering::SeqCst), BYTES.load(Ordering::SeqCst))
}

#[test]
fn steady_state_trial_allocates_nothing() {
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let mut net = Sequential::new(vec![
        Box::new(Dense::new(16, 32, &mut rng)),
        Box::new(Relu::new()),
        Box::new(Dense::new(32, 32, &mut rng)),
        Box::new(Relu::new()),
        Box::new(Dense::new(32, 4, &mut rng)),
    ]);
    let x = Tensor::ones(&[8, 16]);
    let model = LogNormalDrift::new(0.4);
    let snapshot = FaultInjector::snapshot(&mut net);
    let mut ws = Workspace::new();

    let trial = |t: usize, net: &mut Sequential, ws: &mut Workspace| -> f32 {
        let mut rng = ChaCha8Rng::seed_from_u64(reram::mix_seed(9, t as u64));
        FaultInjector::inject_from(&snapshot, net, &model, &mut rng)
            .expect("snapshot taken from this network");
        let y = net.forward_ws(&x, Mode::Eval, ws);
        let s = y.sum();
        ws.recycle(y);
        s
    };

    // Warm-up: populate the workspace pool (allocates) and let best-fit
    // settle.
    let mut warm = Vec::with_capacity(4);
    for t in 0..2 {
        warm.push(trial(t, &mut net, &mut ws));
    }

    // Steady state: the fused inject touches weights from the pristine
    // snapshot in place, and every forward buffer comes from the pool.
    let (allocs_before, bytes_before) = allocs();
    let mut acc = 0.0f32;
    for t in 2..32 {
        acc += trial(t, &mut net, &mut ws);
    }
    let (allocs_after, bytes_after) = allocs();
    assert!(acc.is_finite());
    assert_eq!(
        allocs_after - allocs_before,
        0,
        "steady-state trials allocated {} times ({} bytes)",
        allocs_after - allocs_before,
        bytes_after - bytes_before,
    );

    // Sanity: the allocation-free loop computes the same trial values as
    // the plain (allocating) metric through the public driver.
    snapshot.restore_into(&mut net).unwrap();
    let x2 = x.clone();
    let reference = monte_carlo(&mut net, &model, 4, 9, |n| n.forward(&x2, Mode::Eval).sum());
    assert_eq!(&reference.values[..2], &warm[..2]);

    // Whole-driver check: `monte_carlo`'s allocation count must not scale
    // with the trial count (fixed setup cost only: snapshot + one values
    // vec + workspace warm-up inside the first trials).
    let count_driver = |trials: usize, net: &mut Sequential| -> u64 {
        let x = x.clone();
        let mut ws = Workspace::new();
        let (before, _) = allocs();
        let _ = monte_carlo(net, &model, trials, 9, move |n| {
            let y = n.forward_ws(&x, Mode::Eval, &mut ws);
            let s = y.sum();
            ws.recycle(y);
            s
        });
        let (after, _) = allocs();
        after - before
    };
    let small = count_driver(8, &mut net);
    let large = count_driver(64, &mut net);
    assert_eq!(
        small, large,
        "allocations grew with trial count: {small} for 8 trials vs {large} for 64"
    );
}
