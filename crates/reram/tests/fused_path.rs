//! Integration tests pinning the fused inject-from-snapshot Monte-Carlo
//! hot path: golden values captured from the pre-refactor implementation
//! (separate inject + per-trial restore, allocating matmul), fused ≡
//! unfused equivalence, and serial ≡ parallel bit-identity for every fault
//! model in the suite.

use nn::{Dense, Layer, Mode, Relu, Sequential, Workspace};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use reram::{monte_carlo, monte_carlo_parallel, DriftModel, FaultInjector};
use tensor::Tensor;

fn test_net(seed: u64) -> Sequential {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    Sequential::new(vec![
        Box::new(Dense::new(3, 4, &mut rng)),
        Box::new(Relu::new()),
        Box::new(Dense::new(4, 2, &mut rng)),
    ])
}

/// One of each fault-model family, with the exact parameters the golden
/// values below were captured under.
fn model_suite() -> Vec<(&'static str, Box<dyn DriftModel>)> {
    vec![
        ("lognormal", Box::new(reram::LogNormalDrift::new(0.5))),
        ("gauss", Box::new(reram::GaussianAdditive::new(0.3))),
        ("uniform", Box::new(reram::UniformDrift::new(0.4))),
        ("uniform_add", Box::new(reram::UniformAdditive::new(0.2))),
        ("devvar", Box::new(reram::DeviceVariation::new(0.15))),
        (
            "stuckat",
            Box::new(reram::StuckAtFault::new(0.2, 0.05, 1.0)),
        ),
        ("bitflip", Box::new(reram::BitFlipFault::new(0.01, 8, 1.0))),
        ("quantize", Box::new(reram::LevelQuantization::new(16, 1.5))),
        (
            "composite",
            "quantize:16+lognormal:0.4"
                .parse::<reram::FaultSpec>()
                .unwrap()
                .build()
                .unwrap(),
        ),
    ]
}

/// Per-trial metric bits of `monte_carlo(test_net(42), model, 6, 99, Σ f(1))`
/// captured from the implementation **before** the fused hot path landed
/// (commit with separate `inject` + per-trial `restore`). The refactor
/// contract is bit-identity: same trial seeds, same arithmetic order.
const GOLDEN: &[(&str, [u32; 6])] = &[
    (
        "lognormal",
        [
            0x41044d4b, 0x4134bdc2, 0x403668f6, 0x3f772de4, 0x41778a58, 0x4073e3b2,
        ],
    ),
    (
        "gauss",
        [
            0x40b6d677, 0x40bd109a, 0x402880ad, 0x3f8e96f2, 0x40fc34d4, 0x4086fe56,
        ],
    ),
    (
        "uniform",
        [
            0x4068af33, 0x40835095, 0x4042a753, 0x404ac84c, 0x40171b91, 0x404ddf89,
        ],
    ),
    (
        "uniform_add",
        [
            0x4070e2ad, 0x405f3744, 0x409897cd, 0x406b843e, 0x3fc22a73, 0x408bbed8,
        ],
    ),
    (
        "devvar",
        [
            0x40883b0c, 0x408f0a6e, 0x40428ad4, 0x400a4764, 0x40983f94, 0x404d67e4,
        ],
    ),
    (
        "stuckat",
        [
            0x4092f8db, 0x4092f8db, 0x3fe85530, 0x3ffba2d3, 0x3d78560f, 0x40a57413,
        ],
    ),
    (
        "bitflip",
        [
            0x404dfe37, 0x4077b985, 0x404dfe37, 0x404dfe37, 0x40a6de9a, 0x404dfe37,
        ],
    ),
    (
        "quantize",
        [
            0x4066666a, 0x4066666a, 0x4066666a, 0x4066666a, 0x4066666a, 0x4066666a,
        ],
    ),
    (
        "composite",
        [
            0x40a590de, 0x40dc492f, 0x3ffb65bb, 0x3f2471b8, 0x410c42c6, 0x4013db61,
        ],
    ),
];

#[test]
fn fused_path_reproduces_pre_refactor_golden_values() {
    let x = Tensor::ones(&[2, 3]);
    let models = model_suite();
    for (name, expected_bits) in GOLDEN {
        let model = &models
            .iter()
            .find(|(n, _)| n == name)
            .expect("golden model present in suite")
            .1;
        let mut net = test_net(42);
        let stats = monte_carlo(&mut net, model.as_ref(), 6, 99, |n| {
            n.forward(&x, Mode::Eval).sum()
        });
        let got: Vec<u32> = stats.values.iter().map(|v| v.to_bits()).collect();
        assert_eq!(got, expected_bits.to_vec(), "{name} diverged from golden");
    }
}

/// The workspace-backed forward is part of the same bit-identity contract:
/// a metric evaluated through `forward_ws` pins the identical golden bits.
#[test]
fn workspace_metric_reproduces_golden_values() {
    let x = Tensor::ones(&[2, 3]);
    let model = reram::LogNormalDrift::new(0.5);
    let mut net = test_net(42);
    let mut ws = Workspace::new();
    let stats = monte_carlo(&mut net, &model, 6, 99, move |n| {
        let y = n.forward_ws(&x, Mode::Eval, &mut ws);
        let s = y.sum();
        ws.recycle(y);
        s
    });
    let golden = &GOLDEN.iter().find(|(n, _)| *n == "lognormal").unwrap().1;
    let got: Vec<u32> = stats.values.iter().map(|v| v.to_bits()).collect();
    assert_eq!(got, golden.to_vec());
}

/// `inject_from` must equal `restore_into` followed by `inject` — same RNG
/// stream, same writes — starting from an arbitrarily drifted network.
#[test]
fn inject_from_equals_restore_then_inject_for_every_model() {
    for (name, model) in &model_suite() {
        let mut fused = test_net(5);
        let mut unfused = test_net(5);
        let snap_f = FaultInjector::snapshot(&mut fused);
        let snap_u = FaultInjector::snapshot(&mut unfused);
        // Dirty both networks with an unrelated drift first.
        let mut dirty_rng = ChaCha8Rng::seed_from_u64(77);
        FaultInjector::inject(
            &mut fused,
            &reram::GaussianAdditive::new(0.5),
            &mut dirty_rng,
        );
        let mut dirty_rng = ChaCha8Rng::seed_from_u64(77);
        FaultInjector::inject(
            &mut unfused,
            &reram::GaussianAdditive::new(0.5),
            &mut dirty_rng,
        );

        let mut rng = ChaCha8Rng::seed_from_u64(123);
        FaultInjector::inject_from(&snap_f, &mut fused, model.as_ref(), &mut rng).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(123);
        snap_u.restore_into(&mut unfused).unwrap();
        FaultInjector::inject(&mut unfused, model.as_ref(), &mut rng);

        let a = FaultInjector::snapshot(&mut fused);
        let b = FaultInjector::snapshot(&mut unfused);
        for (ta, tb) in a.tensors().iter().zip(b.tensors()) {
            assert_eq!(ta.as_slice(), tb.as_slice(), "{name} fused != unfused");
        }
    }
}

/// Serial and parallel drivers stay bit-identical on the fused path for
/// every fault-model variant and worker counts {1, 2, 5}.
#[test]
fn parallel_matches_serial_for_every_model_and_worker_count() {
    let x = Tensor::ones(&[2, 3]);
    let metric = move |n: &mut dyn Layer| n.forward(&x, Mode::Eval).sum();
    for (name, model) in &model_suite() {
        let mut net = test_net(21);
        let serial = monte_carlo(&mut net, model.as_ref(), 7, 13, &metric);
        for workers in [1usize, 2, 5] {
            let mut net = test_net(21);
            let parallel = monte_carlo_parallel(&mut net, model.as_ref(), 7, 13, workers, &metric);
            assert_eq!(
                serial.values, parallel.values,
                "{name} with {workers} workers diverged from serial"
            );
            assert_eq!(
                serial.mean.to_bits(),
                parallel.mean.to_bits(),
                "{name} mean"
            );
            assert_eq!(serial.std.to_bits(), parallel.std.to_bits(), "{name} std");
        }
    }
}

/// The fused drivers must still hand the network back pristine.
#[test]
fn fused_drivers_restore_the_network() {
    let x = Tensor::ones(&[1, 3]);
    for workers in [1usize, 3] {
        let mut net = test_net(30);
        let clean = net.forward(&x, Mode::Eval);
        let metric = {
            let x = x.clone();
            move |n: &mut dyn Layer| n.forward(&x, Mode::Eval).sum()
        };
        let _ = monte_carlo_parallel(
            &mut net,
            &reram::LogNormalDrift::new(0.9),
            5,
            2,
            workers,
            &metric,
        );
        assert_eq!(
            clean.as_slice(),
            net.forward(&x, Mode::Eval).as_slice(),
            "{workers} workers left the network drifted"
        );
    }
}

/// A structural mismatch surfaces as a recoverable error from the fused
/// injector and leaves the target untouched.
#[test]
fn inject_from_rejects_mismatched_snapshot() {
    let mut net = test_net(1);
    let mut other = {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        Sequential::new(vec![
            Box::new(Dense::new(3, 5, &mut rng)),
            Box::new(Relu::new()),
            Box::new(Dense::new(5, 2, &mut rng)),
        ])
    };
    let snap = FaultInjector::snapshot(&mut other);
    let before = FaultInjector::snapshot(&mut net);
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let err =
        FaultInjector::inject_from(&snap, &mut net, &reram::LogNormalDrift::new(0.5), &mut rng);
    assert!(matches!(
        err,
        Err(reram::FaultError::SnapshotMismatch { .. })
    ));
    let after = FaultInjector::snapshot(&mut net);
    for (a, b) in before.tensors().iter().zip(after.tensors()) {
        assert_eq!(a.as_slice(), b.as_slice(), "failed inject_from wrote data");
    }
}
