//! Recoverable errors for fault-model construction, spec parsing, and
//! snapshot restoration.

use std::fmt;

/// Everything that can go wrong in the fault-injection layer.
///
/// These used to be `assert!` panics; surfacing them as values lets a
/// campaign driver reject one malformed scenario and keep running the rest
/// instead of aborting the whole sweep.
///
/// # Example
///
/// ```
/// use reram::{FaultError, FaultSpec};
///
/// let err = "lognormal:-0.3".parse::<FaultSpec>().unwrap_err();
/// assert!(matches!(err, FaultError::Parse { .. }));
/// assert!(err.to_string().contains("lognormal:-0.3"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultError {
    /// A fault-model parameter is outside its valid domain.
    InvalidParam {
        /// The model's short name (e.g. `"log_normal"`).
        model: &'static str,
        /// What was wrong with the parameter.
        reason: String,
    },
    /// A textual fault spec could not be parsed.
    Parse {
        /// The offending spec string.
        spec: String,
        /// What was wrong with it.
        reason: String,
    },
    /// A [`WeightSnapshot`](crate::WeightSnapshot) does not match the
    /// network it is being restored into.
    SnapshotMismatch {
        /// How the structures diverge.
        reason: String,
    },
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultError::InvalidParam { model, reason } => {
                write!(f, "invalid {model} parameter: {reason}")
            }
            FaultError::Parse { spec, reason } => {
                write!(f, "cannot parse fault spec '{spec}': {reason}")
            }
            FaultError::SnapshotMismatch { reason } => {
                write!(f, "snapshot does not match network: {reason}")
            }
        }
    }
}

impl std::error::Error for FaultError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = FaultError::InvalidParam {
            model: "log_normal",
            reason: "sigma must be >= 0".into(),
        };
        assert_eq!(
            e.to_string(),
            "invalid log_normal parameter: sigma must be >= 0"
        );
        let e = FaultError::SnapshotMismatch {
            reason: "parameter 2 changed shape".into(),
        };
        assert!(e.to_string().contains("parameter 2"));
    }
}
