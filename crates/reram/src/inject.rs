//! Snapshot/inject/restore machinery and Monte-Carlo drift evaluation.

use nn::Layer;
use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;
use tensor::Tensor;

use crate::{DriftModel, FaultError};

/// A copy of every trainable parameter of a network, in visit order.
///
/// Obtained from [`FaultInjector::snapshot`]; call [`WeightSnapshot::restore`]
/// to return the network to its pristine state after drift injection.
#[derive(Debug, Clone)]
pub struct WeightSnapshot {
    values: Vec<Tensor>,
}

impl WeightSnapshot {
    /// Checks that `network`'s parameter structure matches the snapshot
    /// without writing anything.
    ///
    /// Shared by every write path ([`WeightSnapshot::restore_into`],
    /// [`FaultInjector::inject_from`]) so a malformed snapshot can never
    /// half-write a model. The success path performs no heap allocation —
    /// this runs once per Monte-Carlo trial.
    ///
    /// # Errors
    ///
    /// Returns [`FaultError::SnapshotMismatch`] naming the first
    /// structural difference.
    pub fn validate(&self, network: &mut dyn Layer) -> Result<(), FaultError> {
        let mut idx = 0usize;
        let mut mismatch: Option<String> = None;
        network.visit_params(&mut |p| {
            if mismatch.is_some() {
                return;
            }
            match self.values.get(idx) {
                None => {
                    mismatch = Some(format!(
                        "network has more parameters than the snapshot's {}",
                        self.values.len()
                    ));
                }
                Some(saved) if saved.dims() != p.value.dims() => {
                    mismatch = Some(format!(
                        "parameter {idx} changed shape since snapshot: {:?} vs {:?}",
                        saved.dims(),
                        p.value.dims()
                    ));
                }
                Some(_) => idx += 1,
            }
        });
        if let Some(reason) = mismatch {
            return Err(FaultError::SnapshotMismatch { reason });
        }
        if idx != self.values.len() {
            return Err(FaultError::SnapshotMismatch {
                reason: format!(
                    "network has {idx} parameters, snapshot has {}",
                    self.values.len()
                ),
            });
        }
        Ok(())
    }

    /// Writes the saved values back into `network`.
    ///
    /// Alias of [`WeightSnapshot::restore_into`], kept as the historical
    /// entry-point name.
    ///
    /// # Errors
    ///
    /// Returns [`FaultError::SnapshotMismatch`] if the network's parameter
    /// structure differs from what the snapshot captured.
    pub fn restore(&self, network: &mut dyn Layer) -> Result<(), FaultError> {
        self.restore_into(network)
    }

    /// Copies the saved values into `network`'s existing parameter
    /// buffers (`copy_from_slice`), allocating nothing.
    ///
    /// A structural mismatch is detected **before** any parameter is
    /// written, so on error the network is left exactly as it was — a
    /// malformed snapshot (e.g. loaded from a stale weight file by a
    /// campaign scenario) cannot half-restore a model.
    ///
    /// # Errors
    ///
    /// Returns [`FaultError::SnapshotMismatch`] if the network's parameter
    /// structure differs from what the snapshot captured.
    pub fn restore_into(&self, network: &mut dyn Layer) -> Result<(), FaultError> {
        // lint:allow(R1, reason = "validate allocates only to describe a structural mismatch; the restore path itself is allocation-free")
        self.validate(network)?;
        let mut idx = 0usize;
        network.visit_params(&mut |p| {
            p.value
                .as_mut_slice()
                .copy_from_slice(self.values[idx].as_slice());
            idx += 1;
        });
        Ok(())
    }

    /// Number of parameter tensors captured.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the snapshot is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Total number of scalar weights captured.
    pub fn scalar_count(&self) -> usize {
        self.values.iter().map(Tensor::len).sum()
    }

    /// The captured parameter tensors, in visit order.
    pub fn tensors(&self) -> &[Tensor] {
        &self.values
    }

    /// Serializes the snapshot to a writer in a simple self-describing
    /// little-endian binary format (magic, tensor count, then per tensor:
    /// rank, dims, f32 data). A `&mut` reference can be passed as the
    /// writer.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn write_to<W: std::io::Write>(&self, mut w: W) -> std::io::Result<()> {
        w.write_all(b"BFTW")?;
        w.write_all(&(self.values.len() as u64).to_le_bytes())?;
        for t in &self.values {
            w.write_all(&(t.rank() as u64).to_le_bytes())?;
            for &d in t.dims() {
                w.write_all(&(d as u64).to_le_bytes())?;
            }
            for &v in t.as_slice() {
                w.write_all(&v.to_le_bytes())?;
            }
        }
        Ok(())
    }

    /// Deserializes a snapshot previously produced by
    /// [`WeightSnapshot::write_to`]. A `&mut` reference can be passed as
    /// the reader.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` on a bad magic header or truncated stream.
    pub fn read_from<R: std::io::Read>(mut r: R) -> std::io::Result<Self> {
        use std::io::{Error, ErrorKind};
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if &magic != b"BFTW" {
            return Err(Error::new(ErrorKind::InvalidData, "bad weight-file magic"));
        }
        let mut u64buf = [0u8; 8];
        r.read_exact(&mut u64buf)?;
        let count = u64::from_le_bytes(u64buf) as usize;
        let mut values = Vec::with_capacity(count);
        for _ in 0..count {
            r.read_exact(&mut u64buf)?;
            let rank = u64::from_le_bytes(u64buf) as usize;
            if rank > 8 {
                return Err(Error::new(
                    ErrorKind::InvalidData,
                    "implausible tensor rank",
                ));
            }
            let mut dims = Vec::with_capacity(rank);
            for _ in 0..rank {
                r.read_exact(&mut u64buf)?;
                dims.push(u64::from_le_bytes(u64buf) as usize);
            }
            let len: usize = dims.iter().product();
            let mut data = Vec::with_capacity(len);
            let mut f32buf = [0u8; 4];
            for _ in 0..len {
                r.read_exact(&mut f32buf)?;
                data.push(f32::from_le_bytes(f32buf));
            }
            values.push(
                Tensor::from_vec(data, &dims)
                    .map_err(|e| Error::new(ErrorKind::InvalidData, e.to_string()))?,
            );
        }
        Ok(WeightSnapshot { values })
    }
}

/// Stateless namespace for drift injection on [`nn::Layer`] networks.
///
/// Injection perturbs **every** trainable parameter — dense and convolution
/// kernels, biases, and normalization γ/β. This mirrors deployment on a
/// crossbar, where all stored coefficients live in drifting cells, and is
/// what makes the paper's normalization "Achilles heel" observable.
#[derive(Debug, Clone, Copy)]
pub struct FaultInjector;

impl FaultInjector {
    /// Captures the current parameter values of `network`.
    pub fn snapshot(network: &mut dyn Layer) -> WeightSnapshot {
        let mut values = Vec::new();
        network.visit_params(&mut |p| values.push(p.value.clone()));
        WeightSnapshot { values }
    }

    /// Applies `model` to every trainable scalar of `network` in place.
    pub fn inject(network: &mut dyn Layer, model: &dyn DriftModel, rng: &mut dyn RngCore) {
        network.visit_params(&mut |p| {
            for v in p.value.as_mut_slice() {
                *v = model.perturb(*v, rng);
            }
        });
    }

    /// Fused restore + inject: writes `model.perturb(pristine, rng)` into
    /// the live network directly from `snapshot`, in one pass and without
    /// allocating.
    ///
    /// For a network currently holding the previous trial's drifted
    /// weights, this is equivalent to `snapshot.restore_into(network)`
    /// followed by `FaultInjector::inject(network, model, rng)` — the
    /// perturbation always sees the pristine value and consumes the RNG
    /// stream in the same visit order — but touches every weight once per
    /// trial instead of twice. This is what lets the Monte-Carlo drivers
    /// skip the per-trial restore pass entirely (one restore runs after
    /// the final trial).
    ///
    /// # Errors
    ///
    /// Returns [`FaultError::SnapshotMismatch`] if `network`'s parameter
    /// structure differs from what `snapshot` captured; the network is
    /// left untouched.
    pub fn inject_from(
        snapshot: &WeightSnapshot,
        network: &mut dyn Layer,
        model: &dyn DriftModel,
        rng: &mut dyn RngCore,
    ) -> Result<(), FaultError> {
        snapshot.validate(network)?;
        let mut idx = 0usize;
        network.visit_params(&mut |p| {
            let pristine = snapshot.values[idx].as_slice();
            for (v, &p0) in p.value.as_mut_slice().iter_mut().zip(pristine) {
                *v = model.perturb(p0, rng);
            }
            idx += 1;
        });
        Ok(())
    }

    /// Runs `f` on a drifted copy of the network, restoring the pristine
    /// weights before returning.
    pub fn with_drift<R>(
        network: &mut dyn Layer,
        model: &dyn DriftModel,
        rng: &mut dyn RngCore,
        f: impl FnOnce(&mut dyn Layer) -> R,
    ) -> R {
        let snapshot = FaultInjector::snapshot(network);
        FaultInjector::inject(network, model, rng);
        let result = f(network);
        snapshot
            .restore(network)
            .expect("snapshot was taken from this network");
        result
    }
}

/// Summary statistics of a Monte-Carlo drift evaluation (Eq. 4).
#[derive(Debug, Clone, PartialEq)]
pub struct McStats {
    /// Per-trial metric values.
    pub values: Vec<f32>,
    /// Sample mean.
    pub mean: f32,
    /// Sample standard deviation (0 for a single trial).
    pub std: f32,
}

impl McStats {
    /// Computes statistics from raw per-trial values.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty.
    pub fn from_values(values: Vec<f32>) -> Self {
        assert!(!values.is_empty(), "Monte-Carlo needs at least one trial");
        // Identical samples (e.g. σ = 0 drift) must report exactly zero
        // spread; the general path below can round the mean and leak a
        // ~1e-7 phantom deviation.
        if values.iter().all(|&v| v == values[0]) {
            return McStats {
                mean: values[0],
                std: 0.0,
                values,
            };
        }
        // Welford's online algorithm in f64. Accumulating in f32 suffers
        // catastrophic cancellation for metrics with large means (e.g.
        // summed logits ~1e6): the naive `Σ(v−mean)²` collapses into
        // rounding noise and can even go negative.
        let mut mean = 0.0f64;
        let mut m2 = 0.0f64;
        for (n, &v) in values.iter().enumerate() {
            let v = v as f64;
            let delta = v - mean;
            mean += delta / (n + 1) as f64;
            m2 += delta * (v - mean);
        }
        let var = m2 / values.len() as f64;
        McStats {
            mean: mean as f32,
            std: var.sqrt() as f32,
            values,
        }
    }
}

/// Mixes a master seed with a stream index through a SplitMix64-style
/// finalizer.
///
/// Plain XOR-with-index schemes (`seed ^ (i << k)`) leave stream 0 equal to
/// the master seed and neighbouring streams differing in a couple of bits —
/// both of which correlate Monte-Carlo draws with other consumers of the
/// master seed (e.g. the training shuffler). The multiply–xor–shift cascade
/// here decorrelates every `(master, stream)` pair, including `stream == 0`.
///
/// # Example
///
/// ```
/// use reram::mix_seed;
///
/// assert_ne!(mix_seed(42, 0), 42, "stream 0 must not reuse the master seed");
/// assert_ne!(mix_seed(42, 0), mix_seed(42, 1));
/// assert_ne!(mix_seed(42, 1), mix_seed(43, 1));
/// ```
pub fn mix_seed(master: u64, stream: u64) -> u64 {
    let mut z = master
        .wrapping_add(0xD6E8_FEB8_6659_FD93)
        .rotate_left(23)
        .wrapping_add(stream.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The RNG seed of Monte-Carlo trial `t` under master seed `seed`.
///
/// Shared by [`monte_carlo`] and [`monte_carlo_parallel`] so the two
/// produce bit-identical trial streams.
fn trial_seed(seed: u64, t: usize) -> u64 {
    mix_seed(seed, t as u64)
}

/// Monte-Carlo marginalization of a metric over the drift distribution
/// (the tractable estimator of the paper's Eq. 3/4):
///
/// `u ≈ (1/T) Σ_t metric(f(θ·e^{λ_t}))`
///
/// Each trial drifts from the same pristine snapshot with an independent
/// seed derived from `seed` via [`mix_seed`], and the network is restored
/// afterwards.
///
/// # Panics
///
/// Panics if `trials` is zero.
///
/// # Example
///
/// ```
/// use nn::{Dense, Layer, Mode};
/// use rand::SeedableRng;
/// use rand_chacha::ChaCha8Rng;
/// use reram::{monte_carlo, LogNormalDrift};
/// use tensor::Tensor;
///
/// let mut rng = ChaCha8Rng::seed_from_u64(0);
/// let mut net = Dense::new(2, 2, &mut rng);
/// let x = Tensor::ones(&[1, 2]);
/// let stats = monte_carlo(&mut net, &LogNormalDrift::new(0.3), 8, 7, |n| {
///     n.forward(&x, Mode::Eval).sum()
/// });
/// assert_eq!(stats.values.len(), 8);
/// ```
pub fn monte_carlo(
    network: &mut dyn Layer,
    model: &dyn DriftModel,
    trials: usize,
    seed: u64,
    mut metric: impl FnMut(&mut dyn Layer) -> f32,
) -> McStats {
    assert!(trials > 0, "Monte-Carlo needs at least one trial");
    let snapshot = FaultInjector::snapshot(network);
    let mut values = Vec::with_capacity(trials);
    // Fused hot loop: each trial drifts directly from the pristine
    // snapshot, so the per-trial restore pass (and its weight traffic)
    // disappears; a steady-state trial allocates nothing in inject.
    for t in 0..trials {
        let mut rng = ChaCha8Rng::seed_from_u64(trial_seed(seed, t));
        FaultInjector::inject_from(&snapshot, network, model, &mut rng)
            .expect("snapshot was taken from this network");
        values.push(metric(network));
    }
    snapshot
        .restore_into(network)
        .expect("snapshot was taken from this network");
    McStats::from_values(values)
}

/// [`monte_carlo`] with the independent drift trials fanned out over
/// `workers` scoped threads.
///
/// Each worker clones the pristine network once
/// ([`nn::Layer::clone_box`]), then repeatedly injects drift into its
/// replica, evaluates `metric`, and restores from a shared
/// [`WeightSnapshot`]. Trial `t` uses the same RNG seed as in the serial
/// driver and results are reassembled in trial order, so for any worker
/// count the returned statistics are **bit-identical** to
/// `monte_carlo(..)` with the same arguments — parallelism is a pure
/// wall-clock optimization of the Eq. 4 hot path.
///
/// `workers <= 1` runs the serial driver in place (no clones).
///
/// # Panics
///
/// Panics if `trials` is zero, or if a worker thread panics.
pub fn monte_carlo_parallel(
    network: &mut dyn Layer,
    model: &dyn DriftModel,
    trials: usize,
    seed: u64,
    workers: usize,
    metric: &(dyn Fn(&mut dyn Layer) -> f32 + Sync),
) -> McStats {
    assert!(trials > 0, "Monte-Carlo needs at least one trial");
    let workers = workers.min(trials);
    if workers <= 1 {
        return monte_carlo(network, model, trials, seed, metric);
    }

    let snapshot = FaultInjector::snapshot(network);
    let snapshot_ref = &snapshot;
    // `dyn Layer` is Send but not Sync, so replicas are cloned here and
    // moved into their worker threads rather than cloned from a shared
    // reference inside them.
    let replicas: Vec<Box<dyn Layer>> = (0..workers).map(|_| network.clone_box()).collect();
    let mut values = vec![0.0f32; trials];
    std::thread::scope(|scope| {
        let handles: Vec<_> = replicas
            .into_iter()
            .enumerate()
            .map(|(w, mut replica)| {
                scope.spawn(move || {
                    let mut local = Vec::with_capacity(trials / workers + 1);
                    let mut t = w;
                    // Same fused loop as the serial driver: drift straight
                    // from the shared pristine snapshot, no per-trial
                    // restore. The replica is dropped afterwards, so no
                    // final restore is needed either.
                    while t < trials {
                        let mut rng = ChaCha8Rng::seed_from_u64(trial_seed(seed, t));
                        FaultInjector::inject_from(snapshot_ref, replica.as_mut(), model, &mut rng)
                            .expect("snapshot was taken from this network's replica");
                        local.push((t, metric(replica.as_mut())));
                        t += workers;
                    }
                    local
                })
            })
            .collect();
        for handle in handles {
            for (t, v) in handle.join().expect("Monte-Carlo worker panicked") {
                values[t] = v;
            }
        }
    });
    McStats::from_values(values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GaussianAdditive, LogNormalDrift, StuckAtFault};
    use nn::{Dense, Mode, Sequential};
    use rand::SeedableRng;

    fn test_net(seed: u64) -> Sequential {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        Sequential::new(vec![
            Box::new(Dense::new(3, 4, &mut rng)),
            Box::new(nn::Relu::new()),
            Box::new(Dense::new(4, 2, &mut rng)),
        ])
    }

    #[test]
    fn snapshot_restore_round_trips() {
        let mut net = test_net(0);
        let snap = FaultInjector::snapshot(&mut net);
        assert_eq!(snap.len(), 4); // 2 weights + 2 biases
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        FaultInjector::inject(&mut net, &LogNormalDrift::new(1.0), &mut rng);
        snap.restore(&mut net).unwrap();
        let snap2 = FaultInjector::snapshot(&mut net);
        for (a, b) in snap.scalar_count_pairs(&snap2) {
            assert_eq!(a, b);
        }
    }

    impl WeightSnapshot {
        fn scalar_count_pairs<'a>(
            &'a self,
            other: &'a WeightSnapshot,
        ) -> impl Iterator<Item = (f32, f32)> + 'a {
            self.values.iter().zip(&other.values).flat_map(|(a, b)| {
                a.as_slice()
                    .iter()
                    .copied()
                    .zip(b.as_slice().iter().copied())
            })
        }
    }

    #[test]
    fn injection_changes_weights() {
        let mut net = test_net(2);
        let before = FaultInjector::snapshot(&mut net);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        FaultInjector::inject(&mut net, &GaussianAdditive::new(0.5), &mut rng);
        let after = FaultInjector::snapshot(&mut net);
        let changed = before
            .scalar_count_pairs(&after)
            .filter(|(a, b)| a != b)
            .count();
        assert!(changed > 0, "injection must modify weights");
    }

    #[test]
    fn with_drift_restores_automatically() {
        let mut net = test_net(4);
        let x = Tensor::ones(&[1, 3]);
        let clean = net.forward(&x, Mode::Eval);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let _ =
            FaultInjector::with_drift(&mut net, &StuckAtFault::new(0.9, 0.0, 0.0), &mut rng, |n| {
                n.forward(&x, Mode::Eval).sum()
            });
        let restored = net.forward(&x, Mode::Eval);
        assert_eq!(clean.as_slice(), restored.as_slice());
    }

    #[test]
    fn monte_carlo_sigma_zero_has_no_variance() {
        let mut net = test_net(6);
        let x = Tensor::ones(&[2, 3]);
        let stats = monte_carlo(&mut net, &LogNormalDrift::new(0.0), 5, 1, |n| {
            n.forward(&x, Mode::Eval).sum()
        });
        assert!(stats.std < 1e-9, "σ=0 drift must be deterministic");
    }

    #[test]
    fn monte_carlo_trials_are_independent() {
        let mut net = test_net(7);
        let x = Tensor::ones(&[2, 3]);
        let stats = monte_carlo(&mut net, &LogNormalDrift::new(0.8), 16, 2, |n| {
            n.forward(&x, Mode::Eval).sum()
        });
        assert_eq!(stats.values.len(), 16);
        assert!(stats.std > 0.0, "independent drifted trials must vary");
    }

    #[test]
    fn monte_carlo_is_reproducible() {
        let x = Tensor::ones(&[2, 3]);
        let mut net1 = test_net(8);
        let s1 = monte_carlo(&mut net1, &LogNormalDrift::new(0.5), 4, 11, |n| {
            n.forward(&x, Mode::Eval).sum()
        });
        let mut net2 = test_net(8);
        let s2 = monte_carlo(&mut net2, &LogNormalDrift::new(0.5), 4, 11, |n| {
            n.forward(&x, Mode::Eval).sum()
        });
        assert_eq!(s1.values, s2.values);
    }

    #[test]
    fn parallel_monte_carlo_matches_serial_bitwise() {
        let x = Tensor::ones(&[2, 3]);
        let metric = move |n: &mut dyn Layer| n.forward(&x, Mode::Eval).sum();
        for workers in [1usize, 2, 3, 8, 32] {
            let mut net_a = test_net(12);
            let serial = monte_carlo(&mut net_a, &LogNormalDrift::new(0.7), 9, 5, &metric);
            let mut net_b = test_net(12);
            let parallel = monte_carlo_parallel(
                &mut net_b,
                &LogNormalDrift::new(0.7),
                9,
                5,
                workers,
                &metric,
            );
            assert_eq!(
                serial.values, parallel.values,
                "{workers} workers diverged from serial"
            );
        }
    }

    #[test]
    fn parallel_monte_carlo_leaves_network_untouched() {
        let mut net = test_net(13);
        let x = Tensor::ones(&[1, 3]);
        let clean = net.forward(&x, Mode::Eval);
        let metric = move |n: &mut dyn Layer| n.forward(&x, Mode::Eval).sum();
        let _ = monte_carlo_parallel(&mut net, &GaussianAdditive::new(0.4), 6, 3, 3, &metric);
        let x = Tensor::ones(&[1, 3]);
        assert_eq!(clean.as_slice(), net.forward(&x, Mode::Eval).as_slice());
    }

    #[test]
    fn mix_seed_decorrelates_stream_zero() {
        assert_ne!(mix_seed(0, 0), 0);
        assert_ne!(mix_seed(7, 0), 7);
        let streams: Vec<u64> = (0..64).map(|i| mix_seed(123, i)).collect();
        let mut unique = streams.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), streams.len(), "stream collision");
    }

    #[test]
    fn mc_stats_mean_and_std() {
        let s = McStats::from_values(vec![1.0, 3.0]);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.std, 1.0);
    }

    /// f32 accumulation corrupts the statistics of large-mean samples
    /// (summing 100 values of magnitude 1e6 loses the low bits, and the
    /// biased mean then poisons every squared deviation): the old path
    /// reported mean 1000001.125 / std 1.663 for this input. The f64
    /// Welford path recovers both exactly — each sample is an exact f32,
    /// so mean 1000002 and std √2 are the true values.
    #[test]
    fn mc_stats_survive_large_mean_offset() {
        let values: Vec<f32> = (0..100).map(|i| 1.0e6 + (i % 5) as f32).collect();
        let stats = McStats::from_values(values);
        assert_eq!(stats.mean, 1_000_002.0, "mean biased by f32 summation");
        assert!(
            (stats.std - std::f32::consts::SQRT_2).abs() < 1e-6,
            "variance corrupted by catastrophic cancellation: {}",
            stats.std
        );
    }

    /// The exact-zero-spread shortcut still reports literally 0 for
    /// identical samples, however extreme their magnitude.
    #[test]
    fn mc_stats_identical_samples_have_exactly_zero_std() {
        let s = McStats::from_values(vec![1.0e6 + 0.5; 7]);
        assert_eq!(s.std, 0.0);
        assert_eq!(s.mean, 1.0e6 + 0.5);
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn empty_mc_panics() {
        let _ = McStats::from_values(vec![]);
    }

    #[test]
    fn snapshot_binary_round_trip() {
        let mut net = test_net(9);
        let snap = FaultInjector::snapshot(&mut net);
        let mut buf = Vec::new();
        snap.write_to(&mut buf).unwrap();
        let loaded = WeightSnapshot::read_from(buf.as_slice()).unwrap();
        assert_eq!(loaded.len(), snap.len());
        for (a, b) in snap.tensors().iter().zip(loaded.tensors()) {
            assert_eq!(a.dims(), b.dims());
            assert_eq!(a.as_slice(), b.as_slice());
        }
        // Loaded snapshot can restore the network (deployment round trip).
        loaded.restore(&mut net).unwrap();
    }

    #[test]
    fn snapshot_read_rejects_garbage() {
        assert!(WeightSnapshot::read_from(&b"NOPE1234"[..]).is_err());
        assert!(WeightSnapshot::read_from(&b"BF"[..]).is_err()); // truncated
    }

    #[test]
    fn restore_into_mismatched_network_is_a_recoverable_error() {
        let mut small = test_net(20);
        let mut big = {
            let mut rng = ChaCha8Rng::seed_from_u64(21);
            Sequential::new(vec![
                Box::new(Dense::new(3, 4, &mut rng)),
                Box::new(Dense::new(4, 4, &mut rng)),
                Box::new(Dense::new(4, 2, &mut rng)),
            ])
        };
        let small_snap = FaultInjector::snapshot(&mut small);
        let big_snap = FaultInjector::snapshot(&mut big);

        // Too few saved tensors for the target network.
        let err = small_snap.restore(&mut big).unwrap_err();
        assert!(matches!(err, crate::FaultError::SnapshotMismatch { .. }));
        // Too many saved tensors for the target network.
        let err = big_snap.restore(&mut small).unwrap_err();
        assert!(matches!(err, crate::FaultError::SnapshotMismatch { .. }));
        // Same tensor count, different shapes.
        let mut other = {
            let mut rng = ChaCha8Rng::seed_from_u64(22);
            Sequential::new(vec![
                Box::new(Dense::new(3, 5, &mut rng)),
                Box::new(nn::Relu::new()),
                Box::new(Dense::new(5, 2, &mut rng)),
            ])
        };
        let err = small_snap.restore(&mut other).unwrap_err();
        assert!(err.to_string().contains("changed shape"), "{err}");
    }

    #[test]
    fn failed_restore_leaves_the_network_untouched() {
        let mut net = test_net(23);
        let x = Tensor::ones(&[1, 3]);
        let before = net.forward(&x, Mode::Eval);
        let mut other = {
            let mut rng = ChaCha8Rng::seed_from_u64(24);
            Sequential::new(vec![
                Box::new(Dense::new(3, 5, &mut rng)),
                Box::new(nn::Relu::new()),
                Box::new(Dense::new(5, 2, &mut rng)),
            ])
        };
        // First tensor shape matches neither network fully; the pre-write
        // validation must reject without mutating anything.
        assert!(FaultInjector::snapshot(&mut other)
            .restore(&mut net)
            .is_err());
        assert_eq!(before.as_slice(), net.forward(&x, Mode::Eval).as_slice());
    }
}
