//! Device-level ReRAM crossbar model.
//!
//! A weight matrix is stored as *differential conductance pairs*
//! `w = s·(G⁺ − G⁻)`: positive weights program `G⁺`, negative weights
//! program `G⁻`, and both cells sit in a bounded conductance range
//! `[g_min, g_max]` with a finite number of programmable levels. Programming
//! adds level-quantization error; reading adds Gaussian read noise; time
//! and temperature drift the stored conductances multiplicatively.
//!
//! The [`ReRAM-V` baseline](https://doi.org/10.5555/3130379.3130385) (paper
//! ref. [5]) uses [`Crossbar::diagnose`] to measure realized drift and
//! re-programs the cells iteratively.

use rand::RngCore;
use tensor::Tensor;

use crate::DriftModel;

/// Physical configuration of a crossbar array.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrossbarConfig {
    /// Minimum programmable conductance (µS).
    pub g_min: f32,
    /// Maximum programmable conductance (µS).
    pub g_max: f32,
    /// Number of discrete programmable levels between `g_min` and `g_max`
    /// (0 = continuous analog programming).
    pub levels: usize,
    /// Standard deviation of programming error, as a fraction of the
    /// conductance range.
    pub program_noise: f32,
    /// Standard deviation of per-read Gaussian noise, as a fraction of the
    /// conductance range.
    pub read_noise: f32,
}

impl Default for CrossbarConfig {
    /// A mildly non-ideal device: 64 levels, 0.5% programming noise, 0.2%
    /// read noise over a 1–100 µS range.
    fn default() -> Self {
        CrossbarConfig {
            g_min: 1.0,
            g_max: 100.0,
            levels: 64,
            program_noise: 0.005,
            read_noise: 0.002,
        }
    }
}

impl CrossbarConfig {
    /// An ideal device: continuous levels, no noise. Useful in tests.
    pub fn ideal() -> Self {
        CrossbarConfig {
            g_min: 0.0,
            g_max: 100.0,
            levels: 0,
            program_noise: 0.0,
            read_noise: 0.0,
        }
    }
}

/// Drift diagnosis produced by comparing a crossbar read-out against
/// reference weights.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftReport {
    /// Mean absolute weight error.
    pub mean_abs_error: f32,
    /// Maximum absolute weight error.
    pub max_abs_error: f32,
    /// Fraction of weights whose relative error exceeds 10%.
    pub fraction_drifted: f32,
}

/// A programmed crossbar holding one weight matrix as differential
/// conductance pairs.
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// use rand_chacha::ChaCha8Rng;
/// use reram::{Crossbar, CrossbarConfig};
/// use tensor::Tensor;
///
/// let w = Tensor::from_vec(vec![0.5, -0.25, 0.0, 1.0], &[2, 2])?;
/// let mut rng = ChaCha8Rng::seed_from_u64(0);
/// let xbar = Crossbar::program(&w, CrossbarConfig::ideal(), &mut rng);
/// let read = xbar.read(&mut rng);
/// assert!((read.at(&[0, 0]) - 0.5).abs() < 1e-4);
/// # Ok::<(), tensor::TensorError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Crossbar {
    config: CrossbarConfig,
    g_pos: Tensor,
    g_neg: Tensor,
    /// Weight scale: `w = scale · (g⁺ − g⁻)`.
    scale: f32,
    dims: Vec<usize>,
}

impl Crossbar {
    /// Programs `weights` onto a crossbar with the given device config.
    ///
    /// The scale is chosen so the largest |weight| maps to the full
    /// conductance range.
    pub fn program(weights: &Tensor, config: CrossbarConfig, rng: &mut dyn RngCore) -> Self {
        let w_max = weights
            .as_slice()
            .iter()
            .fold(0.0f32, |m, v| m.max(v.abs()));
        let range = config.g_max - config.g_min;
        let scale = if w_max > 0.0 { w_max / range } else { 1.0 };
        let mut g_pos = Tensor::zeros(weights.dims());
        let mut g_neg = Tensor::zeros(weights.dims());
        for ((gp, gn), &w) in g_pos
            .as_mut_slice()
            .iter_mut()
            .zip(g_neg.as_mut_slice())
            .zip(weights.as_slice())
        {
            let target = (w / scale).abs().min(range);
            let (pos_t, neg_t) = if w >= 0.0 {
                (target, 0.0)
            } else {
                (0.0, target)
            };
            *gp = config.g_min + Self::quantize_and_noise(pos_t, &config, rng);
            *gn = config.g_min + Self::quantize_and_noise(neg_t, &config, rng);
        }
        Crossbar {
            config,
            g_pos,
            g_neg,
            scale,
            dims: weights.dims().to_vec(),
        }
    }

    fn quantize_and_noise(target: f32, config: &CrossbarConfig, rng: &mut dyn RngCore) -> f32 {
        let range = config.g_max - config.g_min;
        let mut g = if config.levels > 1 {
            let step = range / (config.levels - 1) as f32;
            (target / step).round() * step
        } else {
            target
        };
        if config.program_noise > 0.0 {
            g += range * config.program_noise * super::drift::normal_sample(rng);
        }
        g.clamp(0.0, range)
    }

    /// Reads back the effective weight matrix, including read noise.
    pub fn read(&self, rng: &mut dyn RngCore) -> Tensor {
        let range = self.config.g_max - self.config.g_min;
        let mut out = Tensor::zeros(&self.dims);
        for (o, (gp, gn)) in out
            .as_mut_slice()
            .iter_mut()
            .zip(self.g_pos.as_slice().iter().zip(self.g_neg.as_slice()))
        {
            let mut diff = gp - gn;
            if self.config.read_noise > 0.0 {
                diff += range * self.config.read_noise * super::drift::normal_sample(rng);
            }
            *o = self.scale * diff;
        }
        out
    }

    /// Applies a drift model to every stored conductance (both cells of the
    /// differential pair).
    pub fn drift(&mut self, model: &dyn DriftModel, rng: &mut dyn RngCore) {
        let range = self.config.g_max - self.config.g_min;
        for g in self
            .g_pos
            .as_mut_slice()
            .iter_mut()
            .chain(self.g_neg.as_mut_slice())
        {
            *g = model.perturb(*g, rng).clamp(0.0, self.config.g_min + range);
        }
    }

    /// Compares a (noiseless-as-possible) read-out against `reference`
    /// weights and reports drift statistics — the diagnosis step of the
    /// ReRAM-V baseline.
    ///
    /// # Panics
    ///
    /// Panics if `reference` has a different shape.
    pub fn diagnose(&self, reference: &Tensor, rng: &mut dyn RngCore) -> DriftReport {
        assert_eq!(reference.dims(), &self.dims[..], "diagnosis shape mismatch");
        let read = self.read(rng);
        let mut mean_abs = 0.0f32;
        let mut max_abs = 0.0f32;
        let mut drifted = 0usize;
        for (&r, &w) in read.as_slice().iter().zip(reference.as_slice()) {
            let err = (r - w).abs();
            mean_abs += err;
            max_abs = max_abs.max(err);
            if err > 0.1 * w.abs().max(1e-6) {
                drifted += 1;
            }
        }
        let n = reference.len().max(1) as f32;
        DriftReport {
            mean_abs_error: mean_abs / n,
            max_abs_error: max_abs,
            fraction_drifted: drifted as f32 / n,
        }
    }

    /// Re-programs the crossbar towards `weights` (compensation step of
    /// ReRAM-V). Equivalent to a fresh [`Crossbar::program`] with the same
    /// device config.
    pub fn reprogram(&mut self, weights: &Tensor, rng: &mut dyn RngCore) {
        *self = Crossbar::program(weights, self.config, rng);
    }

    /// The device configuration.
    pub fn config(&self) -> &CrossbarConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LogNormalDrift;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn weights() -> Tensor {
        Tensor::from_vec(vec![0.8, -0.4, 0.1, 0.0, -1.2, 0.6], &[2, 3]).unwrap()
    }

    #[test]
    fn ideal_crossbar_round_trips_weights() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let xbar = Crossbar::program(&weights(), CrossbarConfig::ideal(), &mut rng);
        let read = xbar.read(&mut rng);
        for (r, w) in read.as_slice().iter().zip(weights().as_slice()) {
            assert!((r - w).abs() < 1e-4, "read {r} vs weight {w}");
        }
    }

    #[test]
    fn quantization_bounds_error_by_half_step() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let config = CrossbarConfig {
            levels: 16,
            program_noise: 0.0,
            read_noise: 0.0,
            ..CrossbarConfig::default()
        };
        let w = weights();
        let xbar = Crossbar::program(&w, config, &mut rng);
        let read = xbar.read(&mut rng);
        let w_max = 1.2f32;
        let step = w_max / 15.0;
        for (r, t) in read.as_slice().iter().zip(w.as_slice()) {
            assert!(
                (r - t).abs() <= step,
                "error {} above half-step bound",
                (r - t).abs()
            );
        }
    }

    #[test]
    fn drift_degrades_readout() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let w = weights();
        let mut xbar = Crossbar::program(&w, CrossbarConfig::ideal(), &mut rng);
        let before = xbar.diagnose(&w, &mut rng);
        xbar.drift(&LogNormalDrift::new(0.5), &mut rng);
        let after = xbar.diagnose(&w, &mut rng);
        assert!(after.mean_abs_error > before.mean_abs_error);
        assert!(after.fraction_drifted > 0.0);
    }

    #[test]
    fn reprogram_heals_drift() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let w = weights();
        let mut xbar = Crossbar::program(&w, CrossbarConfig::ideal(), &mut rng);
        xbar.drift(&LogNormalDrift::new(1.0), &mut rng);
        xbar.reprogram(&w, &mut rng);
        let report = xbar.diagnose(&w, &mut rng);
        assert!(
            report.mean_abs_error < 1e-3,
            "reprogramming must restore weights"
        );
    }

    #[test]
    fn conductances_stay_in_range_under_extreme_drift() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let mut xbar = Crossbar::program(&weights(), CrossbarConfig::default(), &mut rng);
        xbar.drift(&LogNormalDrift::new(3.0), &mut rng);
        for &g in xbar.g_pos.as_slice().iter().chain(xbar.g_neg.as_slice()) {
            assert!((0.0..=100.0).contains(&g), "conductance {g} out of range");
        }
    }
}
