//! ReRAM fault-injection substrate for the BayesFT reproduction.
//!
//! The paper deploys trained networks onto resistive-RAM crossbars whose
//! conductances drift with temperature, programming error and age. This
//! crate simulates that deployment:
//!
//! * [`DriftModel`] — pluggable weight-perturbation distributions. The
//!   paper's model (Eq. 1) is [`LogNormalDrift`]: `θ′ = θ·e^λ` with
//!   `λ ~ N(0, σ²)`. Gaussian-additive, uniform-multiplicative, and
//!   stuck-at fault models are provided for the drift-transfer ablation.
//! * [`FaultInjector`] — snapshots a trained network's parameters, applies
//!   a drift model to every trainable value (dense/conv weights, biases,
//!   and normalization γ/β — the paper's "Achilles heel"), and restores the
//!   pristine weights afterwards.
//! * [`monte_carlo`] / [`monte_carlo_parallel`] — the Monte-Carlo
//!   marginalization of Eq. (4): evaluate a metric under `T` independent
//!   drift samples, serially or fanned out over scoped worker threads with
//!   per-thread network replicas (bit-identical results either way).
//! * [`Crossbar`] — a device-level model (differential conductance pairs,
//!   programming noise, quantized levels, read noise) that gives the
//!   ReRAM-V baseline something to diagnose and re-program.
//!
//! # Example
//!
//! ```
//! use nn::{Dense, Layer, Mode};
//! use rand::SeedableRng;
//! use rand_chacha::ChaCha8Rng;
//! use reram::{FaultInjector, LogNormalDrift};
//! use tensor::Tensor;
//!
//! let mut rng = ChaCha8Rng::seed_from_u64(0);
//! let mut net = Dense::new(4, 2, &mut rng);
//! let x = Tensor::ones(&[1, 4]);
//! let clean = net.forward(&x, Mode::Eval);
//!
//! let snapshot = FaultInjector::snapshot(&mut net);
//! FaultInjector::inject(&mut net, &LogNormalDrift::new(0.5), &mut rng);
//! let drifted = net.forward(&x, Mode::Eval); // degraded output
//! snapshot.restore(&mut net);
//! let restored = net.forward(&x, Mode::Eval);
//! assert_eq!(clean.as_slice(), restored.as_slice());
//! # let _ = drifted;
//! ```

mod crossbar;
mod drift;
mod inject;

pub use crossbar::{Crossbar, CrossbarConfig, DriftReport};
pub use drift::{
    BitFlipFault, CompositeDrift, DriftModel, GaussianAdditive, LogNormalDrift, StuckAtFault,
    UniformDrift,
};
pub use inject::{
    mix_seed, monte_carlo, monte_carlo_parallel, FaultInjector, McStats, WeightSnapshot,
};
