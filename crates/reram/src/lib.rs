//! ReRAM fault-injection substrate for the BayesFT reproduction.
//!
//! The paper deploys trained networks onto resistive-RAM crossbars whose
//! conductances drift with temperature, programming error and age. This
//! crate simulates that deployment:
//!
//! * [`DriftModel`] — pluggable weight-perturbation distributions. The
//!   paper's model (Eq. 1) is [`LogNormalDrift`]: `θ′ = θ·e^λ` with
//!   `λ ~ N(0, σ²)`. The full fault suite covers additive Gaussian and
//!   uniform read noise ([`GaussianAdditive`], [`UniformAdditive`]),
//!   bounded process variation ([`UniformDrift`]), static device-to-device
//!   mismatch ([`DeviceVariation`]), stuck-at-zero/one conductance defects
//!   ([`StuckAtFault`]), digital bit flips ([`BitFlipFault`]), discrete
//!   conductance-level quantization ([`LevelQuantization`]), and
//!   deterministic chains of any of these ([`CompositeFault`]).
//! * [`FaultSpec`] — a textual/serializable spec grammar
//!   (`lognormal:0.3`, `quantize:16+stuckat:0.01`) shared by CLIs and JSON
//!   configs, with `FromStr`/`Display` round-tripping and validated
//!   [`FaultSpec::build`] instantiation.
//! * [`FaultInjector`] — snapshots a trained network's parameters, applies
//!   a drift model to every trainable value (dense/conv weights, biases,
//!   and normalization γ/β — the paper's "Achilles heel"), and restores the
//!   pristine weights afterwards. Structural mismatches surface as
//!   recoverable [`FaultError`]s, not panics.
//! * [`monte_carlo`] / [`monte_carlo_parallel`] — the Monte-Carlo
//!   marginalization of Eq. (4): evaluate a metric under `T` independent
//!   drift samples, serially or fanned out over scoped worker threads with
//!   per-thread network replicas (bit-identical results either way).
//! * [`Crossbar`] — a device-level model (differential conductance pairs,
//!   programming noise, quantized levels, read noise) that gives the
//!   ReRAM-V baseline something to diagnose and re-program.
//!
//! # Example
//!
//! ```
//! use nn::{Dense, Layer, Mode};
//! use rand::SeedableRng;
//! use rand_chacha::ChaCha8Rng;
//! use reram::{FaultInjector, FaultSpec};
//! use tensor::Tensor;
//!
//! let mut rng = ChaCha8Rng::seed_from_u64(0);
//! let mut net = Dense::new(4, 2, &mut rng);
//! let x = Tensor::ones(&[1, 4]);
//! let clean = net.forward(&x, Mode::Eval);
//!
//! // Any fault mix, described as text.
//! let model = "quantize:16+lognormal:0.5".parse::<FaultSpec>()?.build()?;
//! let snapshot = FaultInjector::snapshot(&mut net);
//! FaultInjector::inject(&mut net, model.as_ref(), &mut rng);
//! let drifted = net.forward(&x, Mode::Eval); // degraded output
//! snapshot.restore(&mut net)?;
//! let restored = net.forward(&x, Mode::Eval);
//! assert_eq!(clean.as_slice(), restored.as_slice());
//! # let _ = drifted;
//! # Ok::<(), reram::FaultError>(())
//! ```

mod crossbar;
mod drift;
mod error;
mod inject;
mod spec;

pub use crossbar::{Crossbar, CrossbarConfig, DriftReport};
pub use drift::{
    BitFlipFault, CompositeDrift, CompositeFault, DeviceVariation, DriftModel, GaussianAdditive,
    LevelQuantization, LogNormalDrift, StuckAtFault, UniformAdditive, UniformDrift,
};
pub use error::FaultError;
pub use inject::{
    mix_seed, monte_carlo, monte_carlo_parallel, FaultInjector, McStats, WeightSnapshot,
};
pub use spec::FaultSpec;
