//! Textual fault-model specs: one grammar shared by CLIs and JSON configs.
//!
//! A spec is `name:arg[,arg...]`, e.g. `lognormal:0.3` or
//! `stuckat:0.01,0.005,1.5`; chains are joined with `+`
//! (`quantize:16+lognormal:0.3` quantizes the programmed conductance and
//! then drifts it). [`FaultSpec`] parses ([`std::str::FromStr`]) and prints
//! ([`std::fmt::Display`]) this grammar losslessly, and [`FaultSpec::build`]
//! instantiates the corresponding [`DriftModel`].

use std::fmt;
use std::str::FromStr;
use std::sync::Arc;

use crate::{
    BitFlipFault, CompositeFault, DeviceVariation, DriftModel, FaultError, GaussianAdditive,
    LevelQuantization, LogNormalDrift, StuckAtFault, UniformAdditive, UniformDrift,
};

/// A parsed, serializable description of one fault model (or a `+`-chain
/// of them).
///
/// Numeric fields are stored exactly as parsed; [`fmt::Display`] emits the
/// shortest form that round-trips, eliding trailing arguments that still
/// hold their defaults. `Display` → `FromStr` is the identity on
/// **canonical** values — everything `FromStr` itself can produce. The
/// only non-canonical values are degenerate composites built in code
/// (empty, single-element, or nested), which the text grammar cannot
/// express; [`FaultSpec::normalize`] folds them to canonical form, and an
/// empty composite is rejected by [`FaultSpec::build`] before it can
/// reach a config file.
///
/// # Example
///
/// ```
/// use reram::FaultSpec;
///
/// let spec: FaultSpec = "quantize:16+lognormal:0.3".parse().unwrap();
/// assert_eq!(spec.to_string(), "quantize:16+lognormal:0.3");
/// let model = spec.build().unwrap();
/// assert_eq!(model.name(), "composite");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum FaultSpec {
    /// `lognormal:σ` — the paper's multiplicative log-normal drift.
    LogNormal {
        /// Resistance variation σ.
        sigma: f32,
    },
    /// `gaussian:σ` — additive Gaussian read noise.
    Gaussian {
        /// Noise standard deviation.
        sigma: f32,
    },
    /// `uniform:δ` — multiplicative uniform process variation.
    Uniform {
        /// Relative half-width.
        delta: f32,
    },
    /// `uniformread:δ` — additive uniform read noise.
    UniformRead {
        /// Absolute half-width.
        delta: f32,
    },
    /// `stuckat:p₀[,p₁[,max]]` — stuck-at-zero / stuck-at-max conductance
    /// faults (defaults: `p₁ = 0`, `max = 1`).
    StuckAt {
        /// Probability a cell reads 0.
        p_zero: f32,
        /// Probability a cell saturates to ±`max_value`.
        p_max: f32,
        /// Saturation magnitude.
        max_value: f32,
    },
    /// `bitflip:p[,bits[,range]]` — per-bit flips in a fixed-point code
    /// (defaults: `bits = 8`, `range = 1`).
    BitFlip {
        /// Per-bit flip probability.
        p_flip: f32,
        /// Code width in bits.
        bits: u32,
        /// Code span `[-range, range]`.
        range: f32,
    },
    /// `quantize:levels[,range]` — deterministic conductance-level
    /// quantization (default: `range = 1`).
    Quantize {
        /// Number of discrete conductance levels.
        levels: u32,
        /// Level span `[-range, range]`.
        range: f32,
    },
    /// `devvar:σ` — static device-to-device gain variation.
    DeviceVariation {
        /// Relative gain spread.
        sigma: f32,
    },
    /// `a+b+…` — the models applied in sequence.
    Composite(Vec<FaultSpec>),
}

impl FaultSpec {
    /// Instantiates the described fault model, validating every parameter.
    ///
    /// # Errors
    ///
    /// Returns [`FaultError::InvalidParam`] for out-of-domain parameters
    /// (the same checks the `try_new` constructors make) or an empty
    /// composite.
    pub fn build(&self) -> Result<Box<dyn DriftModel>, FaultError> {
        Ok(match self {
            FaultSpec::LogNormal { sigma } => Box::new(LogNormalDrift::try_new(*sigma)?),
            FaultSpec::Gaussian { sigma } => Box::new(GaussianAdditive::try_new(*sigma)?),
            FaultSpec::Uniform { delta } => Box::new(UniformDrift::try_new(*delta)?),
            FaultSpec::UniformRead { delta } => Box::new(UniformAdditive::try_new(*delta)?),
            FaultSpec::StuckAt {
                p_zero,
                p_max,
                max_value,
            } => Box::new(StuckAtFault::try_new(*p_zero, *p_max, *max_value)?),
            FaultSpec::BitFlip {
                p_flip,
                bits,
                range,
            } => Box::new(BitFlipFault::try_new(*p_flip, *bits, *range)?),
            FaultSpec::Quantize { levels, range } => {
                Box::new(LevelQuantization::try_new(*levels, *range)?)
            }
            FaultSpec::DeviceVariation { sigma } => Box::new(DeviceVariation::try_new(*sigma)?),
            FaultSpec::Composite(parts) => {
                if parts.is_empty() {
                    return Err(FaultError::InvalidParam {
                        model: "composite",
                        reason: "needs at least one chained model".into(),
                    });
                }
                let models = parts
                    .iter()
                    .map(FaultSpec::build)
                    .collect::<Result<Vec<_>, _>>()?;
                Box::new(CompositeFault::new(models))
            }
        })
    }

    /// [`FaultSpec::build`] returning an `Arc`, the form
    /// `DriftObjective::with_models` consumes.
    ///
    /// # Errors
    ///
    /// Same as [`FaultSpec::build`].
    pub fn build_arc(&self) -> Result<Arc<dyn DriftModel>, FaultError> {
        self.build().map(Arc::from)
    }

    /// Folds degenerate composites into the canonical form the text
    /// grammar produces: nested composites flatten, a single-element
    /// composite becomes its element. After normalization,
    /// `Display` → `FromStr` is the identity for every buildable spec.
    pub fn normalize(self) -> FaultSpec {
        match self {
            FaultSpec::Composite(parts) => {
                let mut flat = Vec::with_capacity(parts.len());
                for part in parts {
                    match part.normalize() {
                        FaultSpec::Composite(inner) => flat.extend(inner),
                        leaf => flat.push(leaf),
                    }
                }
                if flat.len() == 1 {
                    flat.pop().expect("len checked")
                } else {
                    FaultSpec::Composite(flat)
                }
            }
            leaf => leaf,
        }
    }
}

impl fmt::Display for FaultSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultSpec::LogNormal { sigma } => write!(f, "lognormal:{sigma}"),
            FaultSpec::Gaussian { sigma } => write!(f, "gaussian:{sigma}"),
            FaultSpec::Uniform { delta } => write!(f, "uniform:{delta}"),
            FaultSpec::UniformRead { delta } => write!(f, "uniformread:{delta}"),
            FaultSpec::StuckAt {
                p_zero,
                p_max,
                max_value,
            } => {
                write!(f, "stuckat:{p_zero}")?;
                if *max_value != 1.0 {
                    write!(f, ",{p_max},{max_value}")
                } else if *p_max != 0.0 {
                    write!(f, ",{p_max}")
                } else {
                    Ok(())
                }
            }
            FaultSpec::BitFlip {
                p_flip,
                bits,
                range,
            } => {
                write!(f, "bitflip:{p_flip}")?;
                if *range != 1.0 {
                    write!(f, ",{bits},{range}")
                } else if *bits != 8 {
                    write!(f, ",{bits}")
                } else {
                    Ok(())
                }
            }
            FaultSpec::Quantize { levels, range } => {
                write!(f, "quantize:{levels}")?;
                if *range != 1.0 {
                    write!(f, ",{range}")?;
                }
                Ok(())
            }
            FaultSpec::DeviceVariation { sigma } => write!(f, "devvar:{sigma}"),
            FaultSpec::Composite(parts) => {
                for (i, part) in parts.iter().enumerate() {
                    if i > 0 {
                        write!(f, "+")?;
                    }
                    write!(f, "{part}")?;
                }
                Ok(())
            }
        }
    }
}

impl FromStr for FaultSpec {
    type Err = FaultError;

    fn from_str(s: &str) -> Result<Self, FaultError> {
        let parse_err = |reason: String| FaultError::Parse {
            spec: s.to_string(),
            reason,
        };
        let trimmed = s.trim();
        if trimmed.is_empty() {
            return Err(parse_err("empty spec".into()));
        }
        if trimmed.contains('+') {
            let parts = trimmed
                .split('+')
                .map(|part| parse_single(part.trim(), &parse_err))
                .collect::<Result<Vec<_>, _>>()?;
            let spec = FaultSpec::Composite(parts);
            // Validate the whole chain so a config error surfaces at parse
            // time, not mid-campaign.
            spec.build().map_err(|e| parse_err(e.to_string()))?;
            return Ok(spec);
        }
        let spec = parse_single(trimmed, &parse_err)?;
        spec.build().map_err(|e| parse_err(e.to_string()))?;
        Ok(spec)
    }
}

/// Parses one `name:args` segment (no `+` chaining).
fn parse_single(
    part: &str,
    parse_err: &dyn Fn(String) -> FaultError,
) -> Result<FaultSpec, FaultError> {
    let (name, args) = match part.split_once(':') {
        Some((name, args)) => (name.trim(), args),
        None => {
            return Err(parse_err(format!(
                "'{part}' has no ':' — expected name:args (e.g. lognormal:0.3)"
            )))
        }
    };
    let args: Vec<&str> = if args.trim().is_empty() {
        Vec::new()
    } else {
        args.split(',').map(str::trim).collect()
    };
    let arity = |min: usize, max: usize| -> Result<(), FaultError> {
        if args.len() < min || args.len() > max {
            return Err(parse_err(format!(
                "'{name}' takes {min}..={max} arguments, got {}",
                args.len()
            )));
        }
        Ok(())
    };
    let f32_arg = |i: usize| -> Result<f32, FaultError> {
        args[i]
            .parse::<f32>()
            .map_err(|_| parse_err(format!("'{}' is not a number", args[i])))
    };
    let f32_arg_or = |i: usize, default: f32| -> Result<f32, FaultError> {
        if i < args.len() {
            f32_arg(i)
        } else {
            Ok(default)
        }
    };
    let u32_arg = |i: usize| -> Result<u32, FaultError> {
        args[i]
            .parse::<u32>()
            .map_err(|_| parse_err(format!("'{}' is not a whole number", args[i])))
    };
    match name {
        "lognormal" => {
            arity(1, 1)?;
            Ok(FaultSpec::LogNormal { sigma: f32_arg(0)? })
        }
        "gaussian" => {
            arity(1, 1)?;
            Ok(FaultSpec::Gaussian { sigma: f32_arg(0)? })
        }
        "uniform" => {
            arity(1, 1)?;
            Ok(FaultSpec::Uniform { delta: f32_arg(0)? })
        }
        "uniformread" => {
            arity(1, 1)?;
            Ok(FaultSpec::UniformRead { delta: f32_arg(0)? })
        }
        "stuckat" => {
            arity(1, 3)?;
            Ok(FaultSpec::StuckAt {
                p_zero: f32_arg(0)?,
                p_max: f32_arg_or(1, 0.0)?,
                max_value: f32_arg_or(2, 1.0)?,
            })
        }
        "bitflip" => {
            arity(1, 3)?;
            Ok(FaultSpec::BitFlip {
                p_flip: f32_arg(0)?,
                bits: if args.len() > 1 { u32_arg(1)? } else { 8 },
                range: f32_arg_or(2, 1.0)?,
            })
        }
        "quantize" => {
            arity(1, 2)?;
            Ok(FaultSpec::Quantize {
                levels: u32_arg(0)?,
                range: f32_arg_or(1, 1.0)?,
            })
        }
        "devvar" => {
            arity(1, 1)?;
            Ok(FaultSpec::DeviceVariation { sigma: f32_arg(0)? })
        }
        other => Err(parse_err(format!(
            "unknown fault model '{other}' (expected lognormal|gaussian|uniform|uniformread|\
             stuckat|bitflip|quantize|devvar)"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn round_trip(s: &str) -> FaultSpec {
        let spec: FaultSpec = s.parse().unwrap_or_else(|e| panic!("{e}"));
        let printed = spec.to_string();
        assert_eq!(printed, s, "display drifted from input");
        let reparsed: FaultSpec = printed.parse().unwrap();
        assert_eq!(reparsed, spec, "parse(display(x)) != x");
        spec
    }

    #[test]
    fn canonical_specs_round_trip() {
        round_trip("lognormal:0.3");
        round_trip("gaussian:0.15");
        round_trip("uniform:0.2");
        round_trip("uniformread:0.05");
        round_trip("stuckat:0.01");
        round_trip("stuckat:0.01,0.005");
        round_trip("stuckat:0.01,0.005,1.5");
        round_trip("bitflip:0.001");
        round_trip("bitflip:0.001,4");
        round_trip("bitflip:0.001,8,2");
        round_trip("quantize:16");
        round_trip("quantize:16,2");
        round_trip("devvar:0.1");
        round_trip("quantize:16+lognormal:0.3+stuckat:0.01");
    }

    #[test]
    fn defaults_are_elided_but_preserved() {
        let spec: FaultSpec = "stuckat:0.02,0,1".parse().unwrap();
        assert_eq!(spec.to_string(), "stuckat:0.02");
        assert_eq!(
            spec,
            FaultSpec::StuckAt {
                p_zero: 0.02,
                p_max: 0.0,
                max_value: 1.0
            }
        );
        let spec: FaultSpec = "bitflip:0.01,8,1".parse().unwrap();
        assert_eq!(spec.to_string(), "bitflip:0.01");
    }

    #[test]
    fn whitespace_is_tolerated() {
        let spec: FaultSpec = " quantize:16 + lognormal:0.3 ".parse().unwrap();
        assert_eq!(spec.to_string(), "quantize:16+lognormal:0.3");
        let spec: FaultSpec = "stuckat: 0.01 , 0.02".parse().unwrap();
        assert_eq!(spec.to_string(), "stuckat:0.01,0.02");
    }

    #[test]
    fn built_models_carry_the_right_names() {
        for (s, name) in [
            ("lognormal:0.3", "log_normal"),
            ("gaussian:0.1", "gaussian_additive"),
            ("uniform:0.2", "uniform"),
            ("uniformread:0.05", "uniform_additive"),
            ("stuckat:0.01", "stuck_at"),
            ("bitflip:0.01", "bit_flip"),
            ("quantize:16", "quantize"),
            ("devvar:0.1", "device_variation"),
            ("lognormal:0.3+stuckat:0.01", "composite"),
        ] {
            let model = s.parse::<FaultSpec>().unwrap().build().unwrap();
            assert_eq!(model.name(), name, "{s}");
        }
    }

    #[test]
    fn built_composite_matches_hand_built_chain() {
        let spec: FaultSpec = "quantize:16+lognormal:0.4".parse().unwrap();
        let from_spec = spec.build().unwrap();
        let by_hand = CompositeFault::new(vec![
            Box::new(LevelQuantization::new(16, 1.0)),
            Box::new(LogNormalDrift::new(0.4)),
        ]);
        let mut rng_a = ChaCha8Rng::seed_from_u64(3);
        let mut rng_b = ChaCha8Rng::seed_from_u64(3);
        for i in 0..128 {
            let w = (i as f32 - 64.0) / 64.0;
            assert_eq!(
                from_spec.perturb(w, &mut rng_a),
                by_hand.perturb(w, &mut rng_b)
            );
        }
    }

    #[test]
    fn malformed_specs_are_rejected() {
        for bad in [
            "",
            "lognormal",
            "lognormal:",
            "lognormal:abc",
            "lognormal:0.3,0.4",
            "lognormal:-0.3",
            "stuckat:0.7,0.6",
            "stuckat:1.5",
            "bitflip:0.1,99",
            "quantize:1",
            "quantize:16,-1",
            "warp:0.5",
            "lognormal:0.3+",
            "+lognormal:0.3",
            "devvar:nan",
        ] {
            let err = bad.parse::<FaultSpec>().unwrap_err();
            assert!(
                matches!(err, FaultError::Parse { .. }),
                "{bad:?} -> {err:?}"
            );
        }
    }

    #[test]
    fn normalize_folds_degenerate_composites() {
        let single = FaultSpec::Composite(vec![FaultSpec::LogNormal { sigma: 0.3 }]);
        assert_eq!(
            single.clone().normalize(),
            FaultSpec::LogNormal { sigma: 0.3 }
        );
        // Display of the degenerate form already prints the canonical
        // string, so reparse yields exactly the normalized value.
        let reparsed: FaultSpec = single.to_string().parse().unwrap();
        assert_eq!(reparsed, single.normalize());

        let nested = FaultSpec::Composite(vec![
            FaultSpec::Quantize {
                levels: 16,
                range: 1.0,
            },
            FaultSpec::Composite(vec![
                FaultSpec::LogNormal { sigma: 0.3 },
                FaultSpec::DeviceVariation { sigma: 0.1 },
            ]),
        ]);
        let flat = nested.clone().normalize();
        assert_eq!(flat.to_string(), "quantize:16+lognormal:0.3+devvar:0.1");
        assert_eq!(flat, nested.to_string().parse::<FaultSpec>().unwrap());
        // Canonical specs are fixed points.
        let canonical: FaultSpec = "quantize:16+stuckat:0.01".parse().unwrap();
        assert_eq!(canonical.clone().normalize(), canonical);
    }

    #[test]
    fn parse_error_carries_the_spec_text() {
        let err = "lognormal:oops".parse::<FaultSpec>().unwrap_err();
        assert!(err.to_string().contains("lognormal:oops"), "{err}");
        assert!(err.to_string().contains("not a number"), "{err}");
    }

    #[test]
    fn full_precision_f32_survives_the_round_trip() {
        // Display of f32 is the shortest string that re-parses to the same
        // bits, so any representable parameter survives.
        let spec = FaultSpec::LogNormal {
            sigma: 0.300_000_04,
        };
        let reparsed: FaultSpec = spec.to_string().parse().unwrap();
        assert_eq!(reparsed, spec);
    }
}
