//! Weight-drift and device-fault distributions.

use rand::Rng;

use crate::FaultError;

/// A memristance-drift distribution applied independently to each stored
/// weight.
///
/// Object-safe so experiments can mix models at run time; the RNG is passed
/// as a dynamic trait object for the same reason.
pub trait DriftModel: Send + Sync {
    /// Returns the drifted version of `value`.
    fn perturb(&self, value: f32, rng: &mut dyn rand::RngCore) -> f32;

    /// Short name for reports.
    fn name(&self) -> &'static str;
}

/// One standard-normal sample via Box–Muller (object-safe RNG variant).
pub(crate) fn normal_sample(rng: &mut dyn rand::RngCore) -> f32 {
    standard_normal(rng)
}

fn standard_normal(rng: &mut dyn rand::RngCore) -> f32 {
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

/// Checks that a spread-style parameter is finite and non-negative.
fn check_spread(model: &'static str, name: &str, v: f32) -> Result<(), FaultError> {
    if !(v >= 0.0 && v.is_finite()) {
        return Err(FaultError::InvalidParam {
            model,
            reason: format!("{name} must be >= 0 and finite, got {v}"),
        });
    }
    Ok(())
}

/// Checks that a probability lies in `[0, 1]`.
fn check_prob(model: &'static str, name: &str, p: f32) -> Result<(), FaultError> {
    if !(0.0..=1.0).contains(&p) {
        return Err(FaultError::InvalidParam {
            model,
            reason: format!("{name} must be in [0, 1], got {p}"),
        });
    }
    Ok(())
}

/// The paper's memristance-drift model (Eq. 1): `θ′ = θ·e^λ, λ ~ N(0, σ²)`,
/// i.e. multiplicative log-normal drift. `σ` is the "resistance variation"
/// swept on every x-axis of Figs. 2–3.
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// use rand_chacha::ChaCha8Rng;
/// use reram::{DriftModel, LogNormalDrift};
///
/// let drift = LogNormalDrift::new(0.0); // σ = 0 → identity
/// let mut rng = ChaCha8Rng::seed_from_u64(0);
/// assert_eq!(drift.perturb(1.5, &mut rng), 1.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormalDrift {
    sigma: f32,
}

impl LogNormalDrift {
    /// Creates log-normal drift with resistance variation `sigma`.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative or non-finite; use
    /// [`LogNormalDrift::try_new`] for a recoverable error.
    pub fn new(sigma: f32) -> Self {
        Self::try_new(sigma).expect("sigma must be >= 0")
    }

    /// Fallible [`LogNormalDrift::new`].
    ///
    /// # Errors
    ///
    /// Returns [`FaultError::InvalidParam`] if `sigma` is negative or
    /// non-finite.
    pub fn try_new(sigma: f32) -> Result<Self, FaultError> {
        check_spread("log_normal", "sigma", sigma)?;
        Ok(LogNormalDrift { sigma })
    }

    /// The resistance-variation parameter σ.
    pub fn sigma(&self) -> f32 {
        self.sigma
    }
}

impl DriftModel for LogNormalDrift {
    fn perturb(&self, value: f32, rng: &mut dyn rand::RngCore) -> f32 {
        if self.sigma == 0.0 {
            return value;
        }
        value * (self.sigma * standard_normal(rng)).exp()
    }

    fn name(&self) -> &'static str {
        "log_normal"
    }
}

/// Additive Gaussian noise: `θ′ = θ + ε, ε ~ N(0, σ²)` (models electrical
/// read noise at the sense amplifier rather than memristance drift).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaussianAdditive {
    sigma: f32,
}

impl GaussianAdditive {
    /// Creates additive Gaussian noise with standard deviation `sigma`.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative or non-finite; use
    /// [`GaussianAdditive::try_new`] for a recoverable error.
    pub fn new(sigma: f32) -> Self {
        Self::try_new(sigma).expect("sigma must be >= 0")
    }

    /// Fallible [`GaussianAdditive::new`].
    ///
    /// # Errors
    ///
    /// Returns [`FaultError::InvalidParam`] if `sigma` is negative or
    /// non-finite.
    pub fn try_new(sigma: f32) -> Result<Self, FaultError> {
        check_spread("gaussian_additive", "sigma", sigma)?;
        Ok(GaussianAdditive { sigma })
    }
}

impl DriftModel for GaussianAdditive {
    fn perturb(&self, value: f32, rng: &mut dyn rand::RngCore) -> f32 {
        value + self.sigma * standard_normal(rng)
    }

    fn name(&self) -> &'static str {
        "gaussian_additive"
    }
}

/// Uniform multiplicative drift: `θ′ = θ·(1 + U(−δ, δ))` (bounded process
/// variation).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UniformDrift {
    delta: f32,
}

impl UniformDrift {
    /// Creates uniform drift with half-width `delta`.
    ///
    /// # Panics
    ///
    /// Panics if `delta` is negative or non-finite; use
    /// [`UniformDrift::try_new`] for a recoverable error.
    pub fn new(delta: f32) -> Self {
        Self::try_new(delta).expect("delta must be >= 0")
    }

    /// Fallible [`UniformDrift::new`].
    ///
    /// # Errors
    ///
    /// Returns [`FaultError::InvalidParam`] if `delta` is negative or
    /// non-finite.
    pub fn try_new(delta: f32) -> Result<Self, FaultError> {
        check_spread("uniform", "delta", delta)?;
        Ok(UniformDrift { delta })
    }
}

impl DriftModel for UniformDrift {
    fn perturb(&self, value: f32, rng: &mut dyn rand::RngCore) -> f32 {
        if self.delta == 0.0 {
            return value;
        }
        value * (1.0 + rng.gen_range(-self.delta..self.delta))
    }

    fn name(&self) -> &'static str {
        "uniform"
    }
}

/// Additive uniform read noise: `θ′ = θ + U(−δ, δ)`.
///
/// Unlike [`UniformDrift`] the disturbance is independent of the stored
/// magnitude — the signature of bounded quantization/readout error on the
/// bit lines, which hits small weights proportionally hardest.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UniformAdditive {
    delta: f32,
}

impl UniformAdditive {
    /// Creates additive uniform read noise with half-width `delta`.
    ///
    /// # Panics
    ///
    /// Panics if `delta` is negative or non-finite; use
    /// [`UniformAdditive::try_new`] for a recoverable error.
    pub fn new(delta: f32) -> Self {
        Self::try_new(delta).expect("delta must be >= 0")
    }

    /// Fallible [`UniformAdditive::new`].
    ///
    /// # Errors
    ///
    /// Returns [`FaultError::InvalidParam`] if `delta` is negative or
    /// non-finite.
    pub fn try_new(delta: f32) -> Result<Self, FaultError> {
        check_spread("uniform_additive", "delta", delta)?;
        Ok(UniformAdditive { delta })
    }
}

impl DriftModel for UniformAdditive {
    fn perturb(&self, value: f32, rng: &mut dyn rand::RngCore) -> f32 {
        if self.delta == 0.0 {
            return value;
        }
        value + rng.gen_range(-self.delta..self.delta)
    }

    fn name(&self) -> &'static str {
        "uniform_additive"
    }
}

/// Device-to-device variation: `θ′ = θ·(1 + ε), ε ~ N(0, σ²)`.
///
/// Each conductance cell gets its own Gaussian gain, modeling the static
/// fabrication mismatch between devices (as opposed to the temporal drift
/// of [`LogNormalDrift`]). Gains below −100 % are clamped so a cell can
/// attenuate to zero but never invert the stored sign.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceVariation {
    sigma: f32,
}

impl DeviceVariation {
    /// Creates device-to-device variation with relative spread `sigma`.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative or non-finite; use
    /// [`DeviceVariation::try_new`] for a recoverable error.
    pub fn new(sigma: f32) -> Self {
        Self::try_new(sigma).expect("sigma must be >= 0")
    }

    /// Fallible [`DeviceVariation::new`].
    ///
    /// # Errors
    ///
    /// Returns [`FaultError::InvalidParam`] if `sigma` is negative or
    /// non-finite.
    pub fn try_new(sigma: f32) -> Result<Self, FaultError> {
        check_spread("device_variation", "sigma", sigma)?;
        Ok(DeviceVariation { sigma })
    }
}

impl DriftModel for DeviceVariation {
    fn perturb(&self, value: f32, rng: &mut dyn rand::RngCore) -> f32 {
        if self.sigma == 0.0 {
            return value;
        }
        value * (1.0 + self.sigma * standard_normal(rng)).max(0.0)
    }

    fn name(&self) -> &'static str {
        "device_variation"
    }
}

/// Stuck-at faults: with probability `p_zero` a cell reads as `0`
/// (stuck-off), with probability `p_max` it saturates to ±`max_value`
/// keeping the original sign (stuck-on). Models hard device defects.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StuckAtFault {
    p_zero: f32,
    p_max: f32,
    max_value: f32,
}

impl StuckAtFault {
    /// Creates a stuck-at model.
    ///
    /// # Panics
    ///
    /// Panics if the probabilities are outside `[0, 1]` or sum above 1; use
    /// [`StuckAtFault::try_new`] for a recoverable error.
    pub fn new(p_zero: f32, p_max: f32, max_value: f32) -> Self {
        // Guard order mirrors try_new's checks so each legacy panic prefix
        // matches the error it wraps.
        match Self::try_new(p_zero, p_max, max_value) {
            Ok(model) => model,
            Err(e) if !(0.0..=1.0).contains(&p_zero) || !(0.0..=1.0).contains(&p_max) => {
                panic!("probability must be in [0, 1]: {e}")
            }
            Err(e) if p_zero + p_max > 1.0 => panic!("fault probabilities exceed 1: {e}"),
            Err(e) => panic!("invalid stuck-at parameter: {e}"),
        }
    }

    /// Fallible [`StuckAtFault::new`].
    ///
    /// # Errors
    ///
    /// Returns [`FaultError::InvalidParam`] if a probability is outside
    /// `[0, 1]`, the probabilities sum above 1, or `max_value` is not
    /// finite.
    pub fn try_new(p_zero: f32, p_max: f32, max_value: f32) -> Result<Self, FaultError> {
        check_prob("stuck_at", "p_zero", p_zero)?;
        check_prob("stuck_at", "p_max", p_max)?;
        if p_zero + p_max > 1.0 {
            return Err(FaultError::InvalidParam {
                model: "stuck_at",
                reason: format!("p_zero + p_max must be <= 1, got {}", p_zero + p_max),
            });
        }
        if !max_value.is_finite() {
            return Err(FaultError::InvalidParam {
                model: "stuck_at",
                reason: format!("max_value must be finite, got {max_value}"),
            });
        }
        Ok(StuckAtFault {
            p_zero,
            p_max,
            max_value,
        })
    }
}

impl DriftModel for StuckAtFault {
    fn perturb(&self, value: f32, rng: &mut dyn rand::RngCore) -> f32 {
        let u: f32 = rng.gen();
        if u < self.p_zero {
            0.0
        } else if u < self.p_zero + self.p_max {
            self.max_value.copysign(value)
        } else {
            value
        }
    }

    fn name(&self) -> &'static str {
        "stuck_at"
    }
}

/// Bit flips in a quantized weight representation: the value is quantized
/// to a signed fixed-point code of `bits` bits over `[-range, range]`, each
/// bit flips independently with probability `p_flip`, and the code is
/// dequantized. Models digital storage corruption (e.g. SLC/MLC read
/// upsets) as opposed to analog conductance drift.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BitFlipFault {
    p_flip: f32,
    bits: u32,
    range: f32,
}

impl BitFlipFault {
    /// Creates a bit-flip model over a `bits`-bit signed code spanning
    /// `[-range, range]`.
    ///
    /// # Panics
    ///
    /// Panics if `p_flip` is outside `[0, 1]`, `bits` is not in `2..=16`,
    /// or `range` is not positive; use [`BitFlipFault::try_new`] for a
    /// recoverable error.
    pub fn new(p_flip: f32, bits: u32, range: f32) -> Self {
        match Self::try_new(p_flip, bits, range) {
            Ok(model) => model,
            Err(e) if !(0.0..=1.0).contains(&p_flip) => panic!("p_flip must be in [0, 1]: {e}"),
            Err(e) if !(2..=16).contains(&bits) => panic!("bits must be in 2..=16: {e}"),
            Err(e) => panic!("range must be positive: {e}"),
        }
    }

    /// Fallible [`BitFlipFault::new`].
    ///
    /// # Errors
    ///
    /// Returns [`FaultError::InvalidParam`] if `p_flip` is outside
    /// `[0, 1]`, `bits` is not in `2..=16`, or `range` is not positive.
    pub fn try_new(p_flip: f32, bits: u32, range: f32) -> Result<Self, FaultError> {
        check_prob("bit_flip", "p_flip", p_flip)?;
        if !(2..=16).contains(&bits) {
            return Err(FaultError::InvalidParam {
                model: "bit_flip",
                reason: format!("bits must be in 2..=16, got {bits}"),
            });
        }
        if !(range > 0.0 && range.is_finite()) {
            return Err(FaultError::InvalidParam {
                model: "bit_flip",
                reason: format!("range must be positive and finite, got {range}"),
            });
        }
        Ok(BitFlipFault {
            p_flip,
            bits,
            range,
        })
    }
}

impl DriftModel for BitFlipFault {
    fn perturb(&self, value: f32, rng: &mut dyn rand::RngCore) -> f32 {
        let levels = (1u32 << self.bits) - 1;
        let step = 2.0 * self.range / levels as f32;
        // Quantize to an unsigned code centered at range.
        let mut code =
            (((value + self.range) / step).round() as i64).clamp(0, levels as i64) as u32;
        for bit in 0..self.bits {
            if rng.gen::<f32>() < self.p_flip {
                code ^= 1 << bit;
            }
        }
        (code.min(levels) as f32) * step - self.range
    }

    fn name(&self) -> &'static str {
        "bit_flip"
    }
}

/// Discrete conductance-level quantization: the value is clamped to
/// `[-range, range]` and rounded to the nearest of `levels` evenly spaced
/// conductance levels. Deterministic — the RNG is unused — so it composes
/// cleanly with stochastic models in a [`CompositeFault`] (e.g. quantize
/// the programmed level, then drift it).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LevelQuantization {
    levels: u32,
    range: f32,
}

impl LevelQuantization {
    /// Creates a quantizer with `levels` conductance levels over
    /// `[-range, range]`.
    ///
    /// # Panics
    ///
    /// Panics if `levels < 2` or `range` is not positive; use
    /// [`LevelQuantization::try_new`] for a recoverable error.
    pub fn new(levels: u32, range: f32) -> Self {
        Self::try_new(levels, range).expect("levels must be >= 2 and range positive")
    }

    /// Fallible [`LevelQuantization::new`].
    ///
    /// # Errors
    ///
    /// Returns [`FaultError::InvalidParam`] if `levels < 2` or `range` is
    /// not positive and finite.
    pub fn try_new(levels: u32, range: f32) -> Result<Self, FaultError> {
        if levels < 2 {
            return Err(FaultError::InvalidParam {
                model: "quantize",
                reason: format!("need at least 2 conductance levels, got {levels}"),
            });
        }
        if !(range > 0.0 && range.is_finite()) {
            return Err(FaultError::InvalidParam {
                model: "quantize",
                reason: format!("range must be positive and finite, got {range}"),
            });
        }
        Ok(LevelQuantization { levels, range })
    }
}

impl DriftModel for LevelQuantization {
    fn perturb(&self, value: f32, _rng: &mut dyn rand::RngCore) -> f32 {
        let step = 2.0 * self.range / (self.levels - 1) as f32;
        let clamped = value.clamp(-self.range, self.range);
        let code = ((clamped + self.range) / step).round();
        code * step - self.range
    }

    fn name(&self) -> &'static str {
        "quantize"
    }
}

/// Applies several fault models in sequence (e.g. conductance quantization,
/// then log-normal drift, then stuck-at defects).
///
/// The chain is deterministic in `(input, RNG state)`: models are applied
/// in construction order against the single RNG stream passed to
/// [`DriftModel::perturb`], so the same seed always reproduces the same
/// composite perturbation.
pub struct CompositeFault {
    models: Vec<Box<dyn DriftModel>>,
}

impl CompositeFault {
    /// Chains the given models; they are applied in order.
    pub fn new(models: Vec<Box<dyn DriftModel>>) -> Self {
        CompositeFault { models }
    }

    /// The chained models, in application order.
    pub fn models(&self) -> &[Box<dyn DriftModel>] {
        &self.models
    }
}

impl DriftModel for CompositeFault {
    fn perturb(&self, value: f32, rng: &mut dyn rand::RngCore) -> f32 {
        self.models.iter().fold(value, |v, m| m.perturb(v, rng))
    }

    fn name(&self) -> &'static str {
        "composite"
    }
}

/// Former name of [`CompositeFault`].
pub type CompositeDrift = CompositeFault;

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn samples(model: &dyn DriftModel, value: f32, n: usize) -> Vec<f32> {
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        (0..n).map(|_| model.perturb(value, &mut rng)).collect()
    }

    /// Median via a NaN-total sort: if a drift model ever emits NaN, the
    /// sort must not panic mid-test — total_cmp ranks NaN above +∞, so a
    /// poisoned sample set skews the median and fails the *assertion*
    /// instead of aborting in the comparator.
    fn median(mut s: Vec<f32>) -> f32 {
        s.sort_by(|a, b| a.total_cmp(b));
        s[s.len() / 2]
    }

    #[test]
    fn zero_sigma_is_identity() {
        assert_eq!(
            LogNormalDrift::new(0.0).perturb(2.5, &mut ChaCha8Rng::seed_from_u64(0)),
            2.5
        );
        assert_eq!(
            UniformDrift::new(0.0).perturb(2.5, &mut ChaCha8Rng::seed_from_u64(0)),
            2.5
        );
        assert_eq!(
            UniformAdditive::new(0.0).perturb(2.5, &mut ChaCha8Rng::seed_from_u64(0)),
            2.5
        );
        assert_eq!(
            DeviceVariation::new(0.0).perturb(2.5, &mut ChaCha8Rng::seed_from_u64(0)),
            2.5
        );
    }

    #[test]
    fn log_normal_preserves_sign_and_median() {
        let model = LogNormalDrift::new(0.8);
        let s = samples(&model, 2.0, 20_000);
        assert!(
            s.iter().all(|&v| v > 0.0),
            "multiplicative drift keeps sign"
        );
        // Median of θ·e^λ is θ (λ symmetric around 0).
        let median = median(s.clone());
        assert!((median - 2.0).abs() < 0.1, "median {median}");
        // Mean is θ·e^{σ²/2} ≈ 2·1.377 = 2.754.
        let mean: f32 = s.iter().sum::<f32>() / s.len() as f32;
        assert!((mean - 2.0 * (0.32f32).exp()).abs() < 0.15, "mean {mean}");
    }

    #[test]
    fn median_helper_survives_nan_samples() {
        // Regression: the old comparator was partial_cmp(..).unwrap(),
        // which aborts the test process the moment one sample is NaN.
        let m = median(vec![1.0, f32::NAN, 3.0, 2.0, f32::NAN]);
        assert_eq!(m, 3.0, "NaN sorts above +inf, shifting the median up");
    }

    #[test]
    fn log_normal_negative_weights_stay_negative() {
        let model = LogNormalDrift::new(1.0);
        assert!(samples(&model, -1.0, 1000).iter().all(|&v| v < 0.0));
    }

    #[test]
    fn gaussian_additive_moments() {
        let model = GaussianAdditive::new(0.5);
        let s = samples(&model, 1.0, 20_000);
        let mean: f32 = s.iter().sum::<f32>() / s.len() as f32;
        let var: f32 = s.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / s.len() as f32;
        assert!((mean - 1.0).abs() < 0.02);
        assert!((var - 0.25).abs() < 0.02);
    }

    #[test]
    fn uniform_drift_is_bounded() {
        let model = UniformDrift::new(0.2);
        assert!(samples(&model, 10.0, 5000)
            .iter()
            .all(|&v| (8.0..12.0).contains(&v)));
    }

    #[test]
    fn uniform_additive_is_magnitude_independent() {
        let model = UniformAdditive::new(0.1);
        // Disturbance bounds do not scale with the stored value.
        assert!(samples(&model, 10.0, 2000)
            .iter()
            .all(|&v| (9.9..10.1).contains(&v)));
        assert!(samples(&model, 0.0, 2000)
            .iter()
            .all(|&v| (-0.1..0.1).contains(&v)));
    }

    #[test]
    fn device_variation_keeps_sign_and_centers_on_value() {
        let model = DeviceVariation::new(0.1);
        let s = samples(&model, -2.0, 20_000);
        assert!(s.iter().all(|&v| v <= 0.0), "gain clamp must preserve sign");
        let mean: f32 = s.iter().sum::<f32>() / s.len() as f32;
        assert!((mean + 2.0).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn device_variation_large_sigma_clamps_at_zero() {
        let model = DeviceVariation::new(5.0);
        let s = samples(&model, 1.0, 5_000);
        assert!(s.contains(&0.0), "some gains must clamp to 0");
        assert!(s.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn stuck_at_rates_are_respected() {
        let model = StuckAtFault::new(0.1, 0.05, 3.0);
        let s = samples(&model, -1.0, 50_000);
        let zeros = s.iter().filter(|&&v| v == 0.0).count() as f32 / s.len() as f32;
        let maxed = s.iter().filter(|&&v| v == -3.0).count() as f32 / s.len() as f32;
        assert!((zeros - 0.1).abs() < 0.01, "zero rate {zeros}");
        assert!((maxed - 0.05).abs() < 0.01, "saturation rate {maxed}");
        // Stuck-on keeps the sign.
        assert!(s.iter().all(|&v| v <= 0.0));
    }

    #[test]
    fn composite_applies_in_sequence() {
        let comp = CompositeFault::new(vec![
            Box::new(StuckAtFault::new(1.0, 0.0, 0.0)), // everything sticks to zero
            Box::new(GaussianAdditive::new(0.0)),
        ]);
        assert_eq!(comp.perturb(5.0, &mut ChaCha8Rng::seed_from_u64(1)), 0.0);
        assert_eq!(comp.name(), "composite");
        assert_eq!(comp.models().len(), 2);
    }

    #[test]
    fn composite_is_deterministic_in_the_seed() {
        let comp = CompositeFault::new(vec![
            Box::new(LevelQuantization::new(16, 2.0)),
            Box::new(LogNormalDrift::new(0.4)),
            Box::new(StuckAtFault::new(0.1, 0.05, 2.0)),
        ]);
        for seed in [0u64, 1, 99] {
            let a: Vec<f32> = {
                let mut rng = ChaCha8Rng::seed_from_u64(seed);
                (0..64)
                    .map(|i| comp.perturb(i as f32 / 32.0, &mut rng))
                    .collect()
            };
            let b: Vec<f32> = {
                let mut rng = ChaCha8Rng::seed_from_u64(seed);
                (0..64)
                    .map(|i| comp.perturb(i as f32 / 32.0, &mut rng))
                    .collect()
            };
            assert_eq!(a, b, "seed {seed} not reproducible");
        }
    }

    #[test]
    fn quantization_is_deterministic_and_snaps_to_levels() {
        let model = LevelQuantization::new(5, 1.0); // levels at -1, -0.5, 0, 0.5, 1
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        assert_eq!(model.perturb(0.3, &mut rng), 0.5);
        assert_eq!(model.perturb(0.2, &mut rng), 0.0);
        assert_eq!(model.perturb(-0.8, &mut rng), -1.0);
        // Out-of-range values clamp to the extreme levels.
        assert_eq!(model.perturb(7.0, &mut rng), 1.0);
        assert_eq!(model.perturb(-7.0, &mut rng), -1.0);
    }

    #[test]
    fn quantization_error_is_bounded_by_half_a_step() {
        let model = LevelQuantization::new(33, 1.0);
        let step = 2.0 / 32.0;
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        for i in 0..200 {
            let w = -1.0 + 2.0 * (i as f32 / 199.0);
            let out = model.perturb(w, &mut rng);
            assert!((out - w).abs() <= step / 2.0 + 1e-6, "{w} -> {out}");
        }
    }

    #[test]
    fn bit_flip_zero_probability_is_quantization_only() {
        let model = BitFlipFault::new(0.0, 8, 1.0);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        // Error bounded by half a quantization step.
        let step = 2.0 / 255.0;
        for &w in &[0.0f32, 0.5, -0.73, 0.99, -1.0] {
            let out = model.perturb(w, &mut rng);
            assert!((out - w).abs() <= step / 2.0 + 1e-6, "{w} -> {out}");
        }
    }

    #[test]
    fn bit_flip_rate_matches_probability() {
        let model = BitFlipFault::new(0.5, 8, 1.0);
        let s = samples(&model, 0.25, 20_000);
        let changed = s
            .iter()
            .filter(|&&v| (v - 0.25).abs() > 2.0 / 255.0)
            .count() as f32
            / s.len() as f32;
        // With p=0.5 per bit, essentially every sample changes.
        assert!(changed > 0.95, "changed fraction {changed}");
        // Outputs stay within the code range.
        assert!(s.iter().all(|&v| (-1.0..=1.0).contains(&v)));
    }

    #[test]
    fn bit_flip_high_bits_cause_large_errors() {
        // Flipping the MSB moves the value by ~range — the failure mode that
        // makes digital storage brittle without ECC.
        let model = BitFlipFault::new(0.2, 4, 1.0);
        let s = samples(&model, 0.8, 5_000);
        // lint:allow(R2, reason = "absolute errors of finite bit-flipped codes are never NaN")
        let max_err = s.iter().map(|v| (v - 0.8f32).abs()).fold(0.0f32, f32::max);
        assert!(
            max_err > 0.5,
            "expected MSB-flip scale errors, got {max_err}"
        );
    }

    #[test]
    #[should_panic(expected = "sigma must be >= 0")]
    fn negative_sigma_panics() {
        let _ = LogNormalDrift::new(-0.1);
    }

    #[test]
    #[should_panic(expected = "fault probabilities exceed 1")]
    fn stuck_at_rejects_excess_probability() {
        let _ = StuckAtFault::new(0.7, 0.6, 1.0);
    }

    #[test]
    fn try_new_rejects_bad_params_recoverably() {
        assert!(LogNormalDrift::try_new(f32::NAN).is_err());
        assert!(GaussianAdditive::try_new(-0.1).is_err());
        assert!(UniformAdditive::try_new(f32::INFINITY).is_err());
        assert!(DeviceVariation::try_new(-1.0).is_err());
        assert!(StuckAtFault::try_new(0.7, 0.6, 1.0).is_err());
        assert!(StuckAtFault::try_new(0.1, 0.1, f32::NAN).is_err());
        assert!(BitFlipFault::try_new(0.1, 1, 1.0).is_err());
        assert!(BitFlipFault::try_new(0.1, 8, 0.0).is_err());
        assert!(LevelQuantization::try_new(1, 1.0).is_err());
        assert!(LevelQuantization::try_new(8, -1.0).is_err());
        assert!(LogNormalDrift::try_new(0.3).is_ok());
    }
}
