//! The campaign subsystem's unified error type.

use std::fmt;

use bayesft::BayesFtError;
use reram::FaultError;

/// Everything that can go wrong while parsing, validating, running, or
/// persisting a campaign.
///
/// One malformed scenario surfaces here as a value; the
/// [`CampaignRunner`](crate::CampaignRunner) reports it per scenario
/// instead of aborting the whole sweep.
#[derive(Debug, Clone, PartialEq)]
pub enum CampaignError {
    /// A campaign/scenario document is malformed (bad JSON, missing or
    /// unknown fields, out-of-domain budgets).
    Parse(String),
    /// A fault spec inside a scenario failed to parse or build.
    Fault(FaultError),
    /// The experiment engine rejected or failed a scenario run.
    Engine(BayesFtError),
    /// Reading or writing the result store failed.
    Io(String),
    /// The result store's advisory writer lock is held by someone else and
    /// was not released within the bounded wait.
    Locked(String),
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::Parse(msg) => write!(f, "campaign spec: {msg}"),
            CampaignError::Fault(e) => write!(f, "fault spec: {e}"),
            CampaignError::Engine(e) => write!(f, "engine: {e}"),
            CampaignError::Io(msg) => write!(f, "result store: {msg}"),
            CampaignError::Locked(msg) => write!(f, "result store lock: {msg}"),
        }
    }
}

impl std::error::Error for CampaignError {}

impl From<FaultError> for CampaignError {
    fn from(e: FaultError) -> Self {
        CampaignError::Fault(e)
    }
}

impl From<BayesFtError> for CampaignError {
    fn from(e: BayesFtError) -> Self {
        CampaignError::Engine(e)
    }
}

impl From<std::io::Error> for CampaignError {
    fn from(e: std::io::Error) -> Self {
        CampaignError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_prefixes_the_failing_layer() {
        assert!(CampaignError::Parse("missing 'name'".into())
            .to_string()
            .contains("campaign spec"));
        let fault: FaultError = "warp:1".parse::<reram::FaultSpec>().unwrap_err();
        assert!(CampaignError::from(fault).to_string().contains("warp"));
    }
}
