//! Fans campaign scenarios through the experiment [`Engine`], memoizing by
//! `(seed, scenario-digest)`.

use std::collections::HashMap;
use std::time::Instant;

use baselines::TrainConfig;
use bayesft::{DriftObjective, Engine, RunReport, SharedDropoutSpace};
use datasets::ClassificationDataset;
use models::{Mlp, MlpConfig};
use nn::Layer;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use reram::mix_seed;

use crate::{Campaign, CampaignError, Scenario, SpaceKind, TaskKind};

/// Seed stream for dataset generation, decorrelated from the engine's
/// suggest/eval streams.
const DATA_STREAM: u64 = 0xda7a;
/// Seed stream for network initialization.
const INIT_STREAM: u64 = 0x1417;
/// Seed stream for the SGD shuffler.
const TRAIN_STREAM: u64 = 0x7124;

/// How one scenario of a campaign went: the (possibly budget-clamped) spec
/// that actually ran, its digest, and the engine's report.
#[derive(Debug, Clone)]
pub struct ScenarioOutcome {
    /// The scenario as executed (after any quick-mode clamping).
    pub scenario: Scenario,
    /// Content digest of [`ScenarioOutcome::scenario`].
    pub digest: String,
    /// The engine's run record, tagged with the scenario metadata.
    pub report: RunReport,
    /// Whether this outcome came from the runner's memo cache instead of
    /// a fresh engine run.
    pub from_cache: bool,
    /// Wall-clock of the producing run in milliseconds (0 on cache hits).
    pub wall_ms: f64,
}

/// One entry of [`CampaignRunner::run_campaign`]'s result list: scenarios
/// fail individually, never the whole campaign.
#[derive(Debug)]
pub struct ScenarioRun {
    /// Scenario name as written in the campaign file.
    pub name: String,
    /// The outcome, or why this scenario could not run.
    pub result: Result<ScenarioOutcome, CampaignError>,
}

/// Runs scenarios through the [`Engine`] with per-`(seed, digest)`
/// memoization.
///
/// Scenario runs are deterministic in the scenario spec: the same
/// `(seed, digest)` pair always yields a bit-identical
/// [`RunReport::deterministic_eq`] record, for any `parallelism` and
/// whether or not the memo cache served it.
///
/// # Example
///
/// ```no_run
/// use scenarios::{Campaign, CampaignRunner, Scenario};
///
/// let campaign = Campaign::new(
///     "demo",
///     vec![Scenario::new("ln", vec!["lognormal:0.3".parse().unwrap()])],
/// );
/// let mut runner = CampaignRunner::new();
/// for run in runner.run_campaign(&campaign) {
///     let outcome = run.result.expect("scenario failed");
///     println!("{}: α* = {:?}", run.name, outcome.report.best_alpha);
/// }
/// ```
#[derive(Debug, Default)]
pub struct CampaignRunner {
    parallelism: usize,
    quick: bool,
    cache: HashMap<(u64, String), ScenarioOutcome>,
}

impl CampaignRunner {
    /// A serial, full-budget runner.
    pub fn new() -> Self {
        CampaignRunner {
            parallelism: 1,
            quick: false,
            cache: HashMap::new(),
        }
    }

    /// Sets the Monte-Carlo worker-thread budget (`0` = one per core).
    /// Results are bit-identical for every setting.
    pub fn parallelism(mut self, workers: usize) -> Self {
        self.parallelism = workers;
        self
    }

    /// Clamps every scenario to smoke-test budgets
    /// ([`Scenario::clamped_quick`]) before running — the `BENCH_QUICK=1`
    /// path of the `campaign` CLI.
    pub fn quick(mut self, quick: bool) -> Self {
        self.quick = quick;
        self
    }

    /// Number of memoized outcomes held.
    pub fn cached_runs(&self) -> usize {
        self.cache.len()
    }

    /// Runs every scenario of `campaign`, in order. A failing scenario
    /// yields an `Err` entry and the campaign continues.
    pub fn run_campaign(&mut self, campaign: &Campaign) -> Vec<ScenarioRun> {
        campaign
            .scenarios
            .iter()
            .map(|sc| ScenarioRun {
                name: sc.name.clone(),
                result: self.run_scenario(sc),
            })
            .collect()
    }

    /// Runs one scenario (or serves it from the memo cache).
    ///
    /// # Errors
    ///
    /// Returns [`CampaignError::Parse`]/[`CampaignError::Fault`] for an
    /// invalid spec and [`CampaignError::Engine`] if the search itself
    /// fails.
    pub fn run_scenario(&mut self, scenario: &Scenario) -> Result<ScenarioOutcome, CampaignError> {
        scenario.validate()?;
        let scenario = if self.quick {
            scenario.clamped_quick()
        } else {
            scenario.clone()
        };
        let digest = scenario.digest();
        let key = (scenario.seed, digest.clone());
        if let Some(hit) = self.cache.get(&key) {
            let mut outcome = hit.clone();
            outcome.from_cache = true;
            outcome.wall_ms = 0.0;
            // Memoization is keyed on content, not name: a renamed copy of
            // a cached scenario reuses the evaluation but reports its own
            // name.
            outcome.scenario.name = scenario.name.clone();
            outcome.report.scenario = outcome.report.scenario.map(|meta| bayesft::ScenarioMeta {
                name: scenario.name.clone(),
                ..meta
            });
            return Ok(outcome);
        }

        let started = Instant::now();
        let (train, val, mut net) = build_task(&scenario);
        let objective = DriftObjective::from_specs(&scenario.faults, scenario.mc_samples)?;
        let mut builder = Engine::builder()
            .objective(objective)
            .trials(scenario.trials)
            .epochs_per_trial(scenario.epochs_per_trial)
            .final_epochs(scenario.final_epochs)
            .seed(scenario.seed)
            .parallelism(self.parallelism)
            .train(TrainConfig {
                // The engine overrides `epochs` per stage; only the
                // shuffler seed matters here.
                seed: mix_seed(scenario.seed, TRAIN_STREAM),
                ..TrainConfig::default()
            });
        if scenario.space == SpaceKind::Shared {
            builder = builder.space(SharedDropoutSpace::probe(net.as_mut()));
        }
        let result = builder.run(net, &train, &val)?;
        let outcome = ScenarioOutcome {
            digest: digest.clone(),
            report: result.report.with_scenario(scenario.name.clone(), digest),
            scenario,
            from_cache: false,
            wall_ms: started.elapsed().as_secs_f64() * 1e3,
        };
        self.cache.insert(key, outcome.clone());
        Ok(outcome)
    }
}

/// Builds the train/val splits and a dropout-bearing MLP for a scenario's
/// task, all seeded from decorrelated streams of the scenario seed.
fn build_task(
    scenario: &Scenario,
) -> (ClassificationDataset, ClassificationDataset, Box<dyn Layer>) {
    let mut data_rng = ChaCha8Rng::seed_from_u64(mix_seed(scenario.seed, DATA_STREAM));
    let mut init_rng = ChaCha8Rng::seed_from_u64(mix_seed(scenario.seed, INIT_STREAM));
    let (data, input_dim, classes) = match scenario.task {
        TaskKind::Moons { samples, noise } => {
            (datasets::moons(samples, noise, &mut data_rng), 2, 2)
        }
        TaskKind::Digits { per_class } => (datasets::digits(per_class, &mut data_rng), 14 * 14, 10),
        TaskKind::Shapes { per_class } => {
            (datasets::shapes(per_class, &mut data_rng), 3 * 16 * 16, 10)
        }
    };
    let (train, val) = data.split(0.8, &mut data_rng);
    let hidden = if input_dim <= 2 { 16 } else { 32 };
    let net = Box::new(Mlp::new(
        &MlpConfig::new(input_dim, classes).hidden(hidden),
        &mut init_rng,
    ));
    (train, val, net)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(name: &str, faults: &[&str], seed: u64) -> Scenario {
        Scenario::new(name, faults.iter().map(|f| f.parse().unwrap()).collect())
            .seed(seed)
            .budgets(2, 2, 1, 1)
            .task(TaskKind::Moons {
                samples: 80,
                noise: 0.1,
            })
    }

    #[test]
    fn scenario_runs_and_tags_the_report() {
        let sc = tiny("ln", &["lognormal:0.4"], 3);
        let outcome = CampaignRunner::new().run_scenario(&sc).unwrap();
        assert_eq!(outcome.report.trials.len(), 2);
        let meta = outcome.report.scenario.as_ref().unwrap();
        assert_eq!(meta.name, "ln");
        assert_eq!(meta.digest, outcome.digest);
        assert!(!outcome.from_cache);
        assert!(outcome.wall_ms > 0.0);
    }

    #[test]
    fn repeated_runs_are_memoized_and_identical() {
        let sc = tiny("memo", &["lognormal:0.4", "stuckat:0.05"], 5);
        let mut runner = CampaignRunner::new();
        let first = runner.run_scenario(&sc).unwrap();
        let second = runner.run_scenario(&sc).unwrap();
        assert!(!first.from_cache);
        assert!(second.from_cache);
        assert_eq!(runner.cached_runs(), 1);
        assert!(first.report.deterministic_eq(&second.report));
    }

    #[test]
    fn cache_hits_are_keyed_on_content_not_name() {
        let mut runner = CampaignRunner::new();
        let a = runner
            .run_scenario(&tiny("original", &["lognormal:0.4"], 5))
            .unwrap();
        let b = runner
            .run_scenario(&tiny("renamed", &["lognormal:0.4"], 5))
            .unwrap();
        assert!(b.from_cache, "same content must hit the cache");
        assert_eq!(b.report.scenario.as_ref().unwrap().name, "renamed");
        assert_eq!(a.report.best_alpha, b.report.best_alpha);
        // Different seed misses.
        let c = runner
            .run_scenario(&tiny("original", &["lognormal:0.4"], 6))
            .unwrap();
        assert!(!c.from_cache);
    }

    #[test]
    fn a_failing_scenario_does_not_abort_the_campaign() {
        let good = tiny("good", &["lognormal:0.3"], 1);
        let mut bad = tiny("bad", &["lognormal:0.3"], 1);
        bad.faults = vec![reram::FaultSpec::LogNormal { sigma: -2.0 }];
        let campaign = Campaign::new("mixed", vec![bad, good]);
        let runs = CampaignRunner::new().run_campaign(&campaign);
        assert_eq!(runs.len(), 2);
        assert!(runs[0].result.is_err(), "bad scenario must fail");
        assert!(runs[1].result.is_ok(), "good scenario must still run");
    }

    #[test]
    fn quick_mode_clamps_budgets() {
        let sc = tiny("q", &["lognormal:0.3"], 2).budgets(10, 8, 4, 4);
        let outcome = CampaignRunner::new().quick(true).run_scenario(&sc).unwrap();
        assert_eq!(outcome.scenario.trials, 3);
        assert_eq!(outcome.report.trials.len(), 3);
        assert_ne!(outcome.digest, sc.digest());
    }
}
